//! Non-deterministic constraint search with IDLOG: 2-coloring a graph.
//!
//! The man/woman guess pattern of the paper's Example 2 generalizes to
//! constraint problems: guess a color per node through an ID-relation
//! grouped by node, derive the conflicts, and enumerate the answers —
//! proper colorings are exactly the answers with no conflicts.
//!
//! Run with: `cargo run -p idlog-suite --example coloring`

use idlog_core::{Query, SeededOracle};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Guess: each node's group in color_guess has two candidate rows
    // (red / blue); the row holding tid 0 is the node's color.
    let src = "
        color_guess(N, red) :- node(N).
        color_guess(N, blue) :- node(N).
        color(N, C) :- color_guess[1](N, C, 0).
        conflict(X, Y) :- edge(X, Y), color(X, C), color(Y, C).
        colored_pair(N, C) :- color(N, C).
    ";

    // A 6-cycle: 2-colorable in exactly two ways.
    let query = Query::parse(src, "colored_pair")?;
    let mut db = query.new_database();
    let n = 6;
    for k in 0..n {
        db.insert_syms("node", &[&format!("v{k}")])?;
        db.insert_syms("edge", &[&format!("v{k}"), &format!("v{}", (k + 1) % n)])?;
    }
    let interner = query.interner().clone();

    // One random coloring (may or may not be proper):
    let guess = query
        .session(&db)
        .run_with(&mut SeededOracle::new(7))?
        .relation;
    println!("a random coloring (seed 7):");
    for t in guess.sorted_canonical(&interner) {
        println!("  color{}", t.display(&interner));
    }

    // All colorings, filtered to the proper ones: the answer for
    // colored_pair and conflict are computed in the same perfect model, so
    // pair them by enumerating conflict-freedom through a combined query.
    let checker = idlog_core::Query::parse_with_interner(
        &format!("{src}\n bad :- conflict(X, Y)."),
        "bad",
        std::sync::Arc::clone(&interner),
    )?;
    let bad_answers = checker.session(&db).all_answers()?;
    let colorings = query.session(&db).all_answers()?;
    println!(
        "\n{} distinct colorings enumerated; conflict-freedom is achievable: {}",
        colorings.len(),
        bad_answers.iter().any(|rel| rel.is_empty())
    );

    // Count proper colorings directly: enumerate colorings of the combined
    // program through `proper_color`, which only derives when no conflict
    // exists anywhere.
    let combined = idlog_core::Query::parse_with_interner(
        &format!(
            "{src}
             bad :- conflict(X, Y).
             proper_color(N, C) :- color(N, C), not bad."
        ),
        "proper_color",
        std::sync::Arc::clone(&interner),
    )?;
    let proper = combined.session(&db).all_answers()?;
    let nonempty = proper
        .to_sorted_strings(&interner)
        .into_iter()
        .filter(|ans| !ans.is_empty())
        .collect::<Vec<_>>();
    println!("proper 2-colorings of the 6-cycle: {}", nonempty.len());
    for ans in &nonempty {
        println!("  {{{}}}", ans.join(", "));
    }
    assert_eq!(
        nonempty.len(),
        2,
        "a 6-cycle has exactly two proper 2-colorings"
    );
    Ok(())
}
