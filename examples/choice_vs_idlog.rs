//! DATALOG^C and its translation into IDLOG (Theorem 2): print the
//! four-stratum translation of a choice program and verify q-equivalence by
//! exhaustive enumeration.
//!
//! Run with: `cargo run -p idlog-suite --example choice_vs_idlog`

use std::sync::Arc;

use idlog_core::{EnumBudget, Interner, Query, ValidatedProgram};
use idlog_storage::Database;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let interner = Arc::new(Interner::new());

    // The paper's §3.2.2 translation example: guessing everyone's sex with
    // one choice per person.
    let src = "\
sex_guess(X, male) :- person(X).
sex_guess(X, female) :- person(X).
sex(X, Y) :- sex_guess(X, Y), choice((X), (Y)).
man(X) :- sex(X, male).
woman(X) :- sex(X, female).";
    println!("DATALOG^C program:\n{}\n", indent(src));

    let ast = idlog_core::parse_program(src, &interner)?;
    idlog_choice::check_conditions(&ast, &interner)?;
    println!("conditions C1 and C2: satisfied ✓\n");

    let translated_src = idlog_choice::to_idlog_source(&ast, &interner)?;
    println!(
        "Theorem 2 translation into stratified IDLOG:\n{}",
        indent(&translated_src)
    );

    let mut db = Database::with_interner(Arc::clone(&interner));
    for p in ["ann", "bob", "cay"] {
        db.insert_syms("person", &[p])?;
    }
    let budget = EnumBudget::default();

    let direct = idlog_choice::intended_models(&ast, &interner, &db, "man", &budget)?;
    let translated_ast = idlog_choice::to_idlog::to_idlog(&ast, &interner)?;
    let validated = ValidatedProgram::new(translated_ast, Arc::clone(&interner))?;
    let q = Query::new(validated, "man")?;
    let via_idlog = q.session(&db).budget(budget).all_answers()?;

    println!("answers for `man` on person = {{ann, bob, cay}}:");
    println!("  direct KN88 semantics:   {} answers", direct.len());
    println!("  translated IDLOG:        {} answers", via_idlog.len());
    assert!(direct.same_answers(&via_idlog, &interner));
    println!("  ✓ identical answer sets (all 2³ = 8 subsets):");
    for answer in via_idlog.to_sorted_strings(&interner) {
        println!("    {{{}}}", answer.join(", "));
    }
    Ok(())
}

fn indent(s: &str) -> String {
    s.lines().map(|l| format!("  {l}\n")).collect()
}
