//! Quickstart: parse an IDLOG program, load a database, evaluate one
//! non-deterministic answer, then enumerate them all.
//!
//! Run with: `cargo run -p idlog-suite --example quickstart`

use idlog_core::{Query, SeededOracle};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's flagship sampling query (§1): pick exactly 2 employees
    // from every department. `emp[2]` reads the ID-relation of `emp`
    // grouped by attribute 2 (the department); `T < 2` keeps the tuples
    // with tids 0 and 1 of each group.
    let query = Query::parse(
        "select_two_emp(Name) :- emp[2](Name, Dept, T), T < 2.",
        "select_two_emp",
    )?;

    let mut db = query.new_database();
    for (name, dept) in [
        ("ann", "sales"),
        ("bob", "sales"),
        ("cay", "sales"),
        ("dan", "dev"),
        ("eve", "dev"),
        ("fred", "dev"),
    ] {
        db.insert_syms("emp", &[name, dept])?;
    }
    let interner = query.interner().clone();

    // One answer, resolved deterministically (canonical tid order):
    let canonical = query.session(&db).run()?.relation;
    println!("canonical answer ({} samples):", canonical.len());
    for t in canonical.sorted_canonical(&interner) {
        println!("  select_two_emp{}", t.display(&interner));
    }

    // A different random-but-reproducible answer:
    let sampled = query
        .session(&db)
        .run_with(&mut SeededOracle::new(2024))?
        .relation;
    println!("\nseed-2024 answer:");
    for t in sampled.sorted_canonical(&interner) {
        println!("  select_two_emp{}", t.display(&interner));
    }

    // The full answer set of the non-deterministic query:
    let all = query.session(&db).all_answers()?;
    println!(
        "\nthe query has {} distinct answers (C(3,2) × C(3,2) = 9), \
         enumerated from {} perfect models:",
        all.len(),
        all.models_explored()
    );
    for answer in all.to_sorted_strings(&interner) {
        println!("  {{{}}}", answer.join(", "));
    }
    assert_eq!(all.len(), 9);
    Ok(())
}
