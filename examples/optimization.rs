//! Optimizing DATALOG programs with ID-literals (paper §4): run the
//! adornment analysis, apply both rewrites, and measure the reduction in
//! intermediate work.
//!
//! Run with: `cargo run -p idlog-suite --example optimization`

use std::sync::Arc;

use idlog_core::{Interner, Query, ValidatedProgram};
use idlog_optimizer::{push_projections, to_id_program};
use idlog_storage::Database;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let interner = Arc::new(Interner::new());

    // The paper's §4 opening example.
    let src = "p(X) :- q(X, Z), z(Z, Y), y(W).";
    let original = idlog_core::parse_program(src, &interner)?;
    let output = interner.intern("p");

    println!("original program:\n  {src}\n");

    let projected = push_projections(&original, output);
    println!("after ∀-existential projection pushing:");
    print!("{}", indent(&projected.display(&interner).to_string()));

    let optimized = to_id_program(&original, output);
    println!("\nafter the ∃-existential ID-literal rewrite (steps 1–3):");
    print!("{}", indent(&optimized.display(&interner).to_string()));

    // Workload: 50 q-keys, each z-key fanning out to 100 Y values, 200
    // y-witnesses.
    let mut db = Database::with_interner(Arc::clone(&interner));
    for k in 0..50 {
        db.insert_syms("q", &[&format!("x{k}"), &format!("zk{k}")])?;
        for f in 0..100 {
            db.insert_syms("z", &[&format!("zk{k}"), &format!("y{f}")])?;
        }
    }
    for w in 0..200 {
        db.insert_syms("y", &[&format!("w{w}")])?;
    }

    let run = |ast: &idlog_core::Program, label: &str| -> Result<(), Box<dyn std::error::Error>> {
        let validated = ValidatedProgram::new(ast.clone(), Arc::clone(&interner))?;
        let q = Query::new(validated, "p")?;
        let t0 = std::time::Instant::now();
        let result = q.session(&db).run()?;
        let (rel, stats) = (result.relation, result.stats);
        println!(
            "  {label:<12} answers={:<4} instantiations={:<9} probes={:<9} time={:?}",
            rel.len(),
            stats.instantiations,
            stats.probes,
            t0.elapsed()
        );
        Ok(())
    };

    println!("\nevaluation on 50 keys × 100 fanout × 200 witnesses:");
    run(&original, "original")?;
    run(&projected, "∀-rewrite")?;
    run(&optimized, "ID-rewrite")?;

    println!(
        "\nThe ID-rewrite fires once per q-key (50 instantiations) instead of \
         once per (key, fanout, witness) combination (1,000,000)."
    );
    Ok(())
}

fn indent(s: &str) -> String {
    s.lines().map(|l| format!("  {l}\n")).collect()
}
