//! Expressiveness (Theorems 5/6): compile a non-deterministic Turing
//! machine into IDLOG and compare its outcome set with native simulation.
//!
//! Run with: `cargo run -p idlog-suite --example turing`

use idlog_core::EnumBudget;
use idlog_gtm::{compile_tm, explore, queries, Outcome, RunBudget};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A machine with a genuine choice: write 1 or 2, then accept.
    let tm = queries::coin_writer();
    println!(
        "machine: {} states, {} symbols, branching factor {}",
        tm.n_states(),
        tm.n_symbols(),
        tm.max_branching()
    );

    let compiled = compile_tm(&tm, 3, 3);
    println!("\ncompiled IDLOG program:\n{}", indent(compiled.source()));

    // Native exploration of all branches.
    let native = explore(&tm, &[], &RunBudget::default())?;
    println!("native outcomes:");
    for o in &native {
        match o {
            Outcome::Accepted(t) => println!("  accepted, tape {t:?}"),
            Outcome::Halted(t) => println!("  halted,   tape {t:?}"),
        }
    }

    // The same outcomes through the IDLOG simulation: each ID-function of
    // the `coin` relation (grouped by time) resolves every branch point.
    let tapes = compiled.accepting_tapes(&[], &EnumBudget::default())?;
    println!("\nIDLOG-enumerated accepting tapes (non-blank cells):");
    for tape in &tapes {
        println!("  {tape:?}");
    }
    assert_eq!(tapes.len(), 2);

    // And a deterministic machine end-to-end: binary successor of 5.
    let succ = queries::successor();
    let compiled = compile_tm(&succ, 8, 8);
    // 5 = 101₂, LSB first with symbols 1(=bit 0) / 2(=bit 1): [2, 1, 2].
    let tapes = compiled.accepting_tapes(&[2, 1, 2], &EnumBudget::default())?;
    println!(
        "\nsuccessor(5) through the compiled machine: {:?}",
        tapes[0]
    );
    // 6 = 011₂ LSB-first → [1, 2, 2].
    assert_eq!(tapes, vec![vec![(0, 1), (1, 2), (2, 2)]]);
    println!("✓ equals 6");
    Ok(())
}

fn indent(s: &str) -> String {
    s.lines().map(|l| format!("  {l}\n")).collect()
}
