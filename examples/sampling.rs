//! Sampling queries (paper §3.3): why multi-sample queries are easy in
//! IDLOG and awkward with the choice operator.
//!
//! Run with: `cargo run -p idlog-suite --example sampling`

use std::sync::Arc;

use idlog_core::{EnumBudget, Interner, Query};
use idlog_storage::Database;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let interner = Arc::new(Interner::new());
    let mut db = Database::with_interner(Arc::clone(&interner));
    for (name, dept) in [
        ("ann", "sales"),
        ("bob", "sales"),
        ("cay", "sales"),
        ("dan", "dev"),
        ("eve", "dev"),
    ] {
        db.insert_syms("emp", &[name, dept])?;
    }
    let budget = EnumBudget::default();

    // --- One sample per department: both languages handle this well. -----
    let choice_src = "select_emp(N) :- emp(N, D), choice((D), (N)).";
    let choice_ast = idlog_core::parse_program(choice_src, &interner)?;
    let choice_answers =
        idlog_choice::intended_models(&choice_ast, &interner, &db, "select_emp", &budget)?;

    let idlog_one = Query::parse_with_interner(
        "select_emp(N) :- emp[2](N, D, 0).",
        "select_emp",
        Arc::clone(&interner),
    )?;
    let idlog_answers = idlog_one.session(&db).budget(budget).all_answers()?;

    println!("one-per-department (Example 4):");
    println!("  DATALOG^C answers: {}", choice_answers.len());
    println!("  IDLOG answers:     {}", idlog_answers.len());
    assert!(choice_answers.same_answers(&idlog_answers, &interner));
    println!("  ✓ the two semantics agree (Theorem 2 instance)\n");

    // --- Two samples per department (Example 5). -------------------------
    // The naive DATALOG^C attempt: choose twice, then require the choices
    // to differ. Its flaw: the two choices are independent, so they can
    // agree, and then a department contributes nothing.
    let naive = idlog_core::parse_program(
        "emp1(N, D) :- emp(N, D), choice((D), (N)).
         emp2(N, D) :- emp(N, D), choice((D), (N)).
         select_two_emp(N1) :- emp1(N1, D), emp2(N2, D), N1 != N2.",
        &interner,
    )?;
    let naive_answers =
        idlog_choice::intended_models(&naive, &interner, &db, "select_two_emp", &budget)?;
    let deficient = naive_answers.iter().filter(|rel| rel.len() < 4).count();
    println!("two-per-department (Example 5):");
    println!(
        "  naive DATALOG^C: {} answers, {} of them deficient (a department \
         contributes < 2 samples)",
        naive_answers.len(),
        deficient
    );

    // The IDLOG program: a single literal with `T < 2`.
    let idlog_two = Query::parse_with_interner(
        "select_two_emp(N) :- emp[2](N, D, T), T < 2.",
        "select_two_emp",
        Arc::clone(&interner),
    )?;
    let two_answers = idlog_two.session(&db).budget(budget).all_answers()?;
    println!(
        "  IDLOG `T < 2`:   {} answers, every one with exactly 4 samples",
        two_answers.len()
    );
    for rel in two_answers.iter() {
        assert_eq!(rel.len(), 4);
    }

    println!("\nall IDLOG two-sample answers:");
    for answer in two_answers.to_sorted_strings(&interner) {
        println!("  {{{}}}", answer.join(", "));
    }
    Ok(())
}
