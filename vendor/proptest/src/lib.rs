//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors a
//! small, deterministic, non-shrinking property-test runner that implements
//! exactly the slice of proptest's API the test suites use:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(...)]`);
//! * [`strategy::Strategy`] with `prop_map` and `boxed`;
//! * `any::<T>()` for the primitive types the suites draw;
//! * integer-range strategies (`0u32..64`), tuple strategies, [`strategy::Just`];
//! * string strategies from a regex *subset*: character classes with
//!   `{m,n}` repetition (`"[a-z]{1,8}"`, `"[ -~\n]{0,200}"`);
//! * [`collection::vec`], [`collection::btree_set`], [`option::of`];
//! * `prop_assert!`, `prop_assert_eq!`, `prop_assert_ne!`, `prop_assume!`,
//!   [`prop_oneof!`] (weighted and unweighted).
//!
//! Differences from real proptest: cases are generated from a fixed
//! deterministic seed (stable across runs and platforms), there is **no
//! shrinking**, and unsupported regex constructs panic with a clear message.

// Vendored stand-in: keep clippy quiet so the workspace-wide `-D warnings`
// gate stays about first-party code.
#![allow(clippy::all)]

pub mod test_runner {
    /// Why a test case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The case failed an assertion.
        Fail(String),
        /// The case asked to be discarded (`prop_assume!`).
        Reject(String),
    }

    impl TestCaseError {
        /// A failing case.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// A discarded case.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Runner configuration (only `cases` is honoured).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Deterministic generator state for one test case.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from the test name and attempt index so every test gets an
        /// independent, reproducible stream.
        pub fn for_case(name: &str, attempt: u32) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            h ^= attempt as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
            TestRng { state: h }
        }

        /// Next 64 pseudo-random bits (SplitMix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }

    /// Drive one property: generate cases until `cfg.cases` pass, treating
    /// rejects as discards (bounded so a rejecting property cannot loop
    /// forever).
    pub fn run_cases(
        cfg: &ProptestConfig,
        name: &str,
        mut case: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    ) {
        let mut passed = 0u32;
        let mut attempt = 0u32;
        let max_attempts = cfg.cases.saturating_mul(20).saturating_add(100);
        while passed < cfg.cases {
            attempt += 1;
            if attempt > max_attempts {
                panic!(
                    "property {name}: too many rejected cases \
                     ({passed}/{} passed after {attempt} attempts)",
                    cfg.cases
                );
            }
            let mut rng = TestRng::for_case(name, attempt);
            match case(&mut rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(_)) => continue,
                Err(TestCaseError::Fail(msg)) => {
                    panic!("property {name} failed (attempt {attempt}): {msg}")
                }
            }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A source of random values of one type. Non-shrinking: `sample` is the
    /// whole contract.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Type-erase.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (**self).sample(rng)
        }
    }

    /// Always the same value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Weighted union of type-erased strategies (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<(u32, BoxedStrategy<T>)>,
        total: u64,
    }

    impl<T> Union<T> {
        /// Build from `(weight, strategy)` pairs; weights must not all be 0.
        pub fn new_weighted(options: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            let total: u64 = options.iter().map(|(w, _)| *w as u64).sum();
            assert!(total > 0, "prop_oneof! needs a positive total weight");
            Union { options, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below(self.total);
            for (w, s) in &self.options {
                if pick < *w as u64 {
                    return s.sample(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weights covered above")
        }
    }

    macro_rules! int_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (self.start as i128 + v as i128) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let v = (rng.next_u64() as u128) % span;
                    (lo as i128 + v as i128) as $t
                }
            }
        )*};
    }

    int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategies {
        ($(($($s:ident $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    tuple_strategies! {
        (A 0, B 1)
        (A 0, B 1, C 2)
        (A 0, B 1, C 2, D 3)
        (A 0, B 1, C 2, D 3, E 4)
        (A 0, B 1, C 2, D 3, E 4, F 5)
    }

    /// `any::<T>()` support.
    pub trait Arbitrary: Sized {
        /// Draw an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_ints {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy for any value of `T` (see [`Arbitrary`]).
    #[derive(Debug, Clone, Default)]
    pub struct Any<T>(core::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The strategy of all values of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(core::marker::PhantomData)
    }

    // ----- string strategies from a regex subset -----

    /// One element of a linear pattern: a set of candidate chars plus a
    /// repetition count range.
    struct Piece {
        choices: Vec<char>,
        min: usize,
        max: usize,
    }

    /// Parse the regex subset: literal chars, `\n`/`\t`/`\\` escapes,
    /// character classes `[a-z0-9_]` (ranges and literals), and `{n}` /
    /// `{m,n}` quantifiers. Anything else panics — the point is to fail
    /// loudly rather than silently generate the wrong language.
    fn parse_pattern(pattern: &str) -> Vec<Piece> {
        let mut chars = pattern.chars().peekable();
        let mut pieces = Vec::new();
        while let Some(c) = chars.next() {
            let choices = match c {
                '[' => {
                    let mut set = Vec::new();
                    loop {
                        let Some(k) = chars.next() else {
                            panic!("unterminated character class in {pattern:?}")
                        };
                        match k {
                            ']' => break,
                            '\\' => set.push(unescape(chars.next(), pattern)),
                            _ => {
                                if chars.peek() == Some(&'-')
                                    && chars.clone().nth(1).is_some_and(|x| x != ']')
                                {
                                    chars.next(); // the '-'
                                    let hi = match chars.next() {
                                        Some('\\') => unescape(chars.next(), pattern),
                                        Some(h) => h,
                                        None => panic!("unterminated range in {pattern:?}"),
                                    };
                                    assert!(k <= hi, "inverted range in {pattern:?}");
                                    set.extend(k..=hi);
                                } else {
                                    set.push(k);
                                }
                            }
                        }
                    }
                    assert!(!set.is_empty(), "empty character class in {pattern:?}");
                    set
                }
                '\\' => vec![unescape(chars.next(), pattern)],
                '{' | '}' | '*' | '+' | '?' | '(' | ')' | '|' | '.' => panic!(
                    "unsupported regex construct {c:?} in {pattern:?} \
                     (the vendored proptest stub supports classes + counted repetition only)"
                ),
                lit => vec![lit],
            };
            let (min, max) = if chars.peek() == Some(&'{') {
                chars.next();
                let mut spec = String::new();
                loop {
                    match chars.next() {
                        Some('}') => break,
                        Some(d) => spec.push(d),
                        None => panic!("unterminated repetition in {pattern:?}"),
                    }
                }
                match spec.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("repetition bound"),
                        hi.trim().parse().expect("repetition bound"),
                    ),
                    None => {
                        let n = spec.trim().parse().expect("repetition count");
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            pieces.push(Piece { choices, min, max });
        }
        pieces
    }

    fn unescape(c: Option<char>, pattern: &str) -> char {
        match c {
            Some('n') => '\n',
            Some('t') => '\t',
            Some(lit) => lit,
            None => panic!("dangling escape in {pattern:?}"),
        }
    }

    impl Strategy for &'static str {
        type Value = String;
        fn sample(&self, rng: &mut TestRng) -> String {
            let mut out = String::new();
            for piece in parse_pattern(self) {
                let span = (piece.max - piece.min) as u64 + 1;
                let count = piece.min + rng.below(span) as usize;
                for _ in 0..count {
                    out.push(piece.choices[rng.below(piece.choices.len() as u64) as usize]);
                }
            }
            out
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Acceptable size specifications for collections.
    pub trait SizeRange {
        /// Draw a size.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for core::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty collection size range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    impl SizeRange for core::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.start() + rng.below((self.end() - self.start()) as u64 + 1) as usize
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// A vector of `element` values.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    /// Strategy for `BTreeSet<S::Value>`. The size bound is best-effort:
    /// duplicates collapse, exactly like real proptest.
    pub struct BTreeSetStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S: Strategy, R: SizeRange> Strategy for BTreeSetStrategy<S, R>
    where
        S::Value: Ord,
    {
        type Value = std::collections::BTreeSet<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// A sorted set of `element` values.
    pub fn btree_set<S: Strategy, R: SizeRange>(element: S, size: R) -> BTreeSetStrategy<S, R> {
        BTreeSetStrategy { element, size }
    }
}

pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Option<S::Value>` (3/4 `Some`, matching proptest's
    /// bias toward present values).
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.sample(rng))
            }
        }
    }

    /// `Some` of the inner strategy, or `None`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

/// The names test files import with `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Define property tests. Supports an optional leading
/// `#![proptest_config(expr)]` and any number of
/// `#[test] fn name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        #[allow(unreachable_code)]
        fn $name() {
            let __cfg = $cfg;
            $crate::test_runner::run_cases(&__cfg, stringify!($name), |__rng| {
                $(let $pat = $crate::strategy::Strategy::sample(&($strat), __rng);)+
                let __out: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        { $body }
                        ::std::result::Result::Ok(())
                    })();
                __out
            });
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fail the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "{}: {:?} == {:?}", format!($($fmt)+), l, r);
    }};
}

/// Fail the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "{}: {:?} != {:?}", format!($($fmt)+), l, r);
    }};
}

/// Discard the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// A strategy choosing among alternatives, optionally weighted
/// (`prop_oneof![3 => a, 1 => b]`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn string_pattern_subset() {
        let mut rng = TestRng::for_case("string_pattern_subset", 0);
        for _ in 0..200 {
            let s = Strategy::sample(&"[a-z][a-z0-9_]{0,12}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 13);
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
            let t = Strategy::sample(&"[ -~\n]{0,8}", &mut rng);
            assert!(t.len() <= 8);
            assert!(t.chars().all(|c| c == '\n' || (' '..='~').contains(&c)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro wires patterns, strategies, asserts, and assumes.
        #[test]
        fn macro_end_to_end(
            n in 3usize..10,
            b in any::<bool>(),
            v in crate::collection::vec(0i64..5, 1..4),
            o in crate::option::of(0u32..3),
            w in prop_oneof![2 => Just(0u8), 1 => Just(1u8)],
            (x, y) in (0u32..4, 0u32..4),
        ) {
            prop_assume!(n != 9);
            prop_assert!(n >= 3 && n < 9);
            prop_assert_eq!(b, !(!b));
            prop_assert!(!v.is_empty() && v.len() < 4);
            prop_assert!(v.iter().all(|&e| (0..5).contains(&e)));
            if let Some(u) = o { prop_assert!(u < 3); }
            prop_assert!(w <= 1);
            prop_assert_ne!(x + 5, y);
            if b { return Ok(()); }
        }
    }
}
