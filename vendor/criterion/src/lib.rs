//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the minimal API its benches use: [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_function`] / [`BenchmarkGroup::bench_with_input`],
//! [`BenchmarkId`], [`Bencher::iter`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Statistics are deliberately simple: each benchmark runs a short warm-up
//! plus `sample_size` timed iterations and reports the mean. Good enough to
//! compare orders of magnitude, which is what the paper-shape benches check.

// Vendored stand-in: keep clippy quiet so the workspace-wide `-D warnings`
// gate stays about first-party code.
#![allow(clippy::all)]

use std::hint;
use std::time::Instant;

/// Prevent the optimizer from deleting a computed value.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifies one benchmark within a group: `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter rendering.
    pub fn new(function_id: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_id.into(), parameter),
        }
    }

    /// An id from a parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// Runs closures under timing.
pub struct Bencher {
    iters: u64,
    /// Mean nanoseconds per iteration of the last `iter` call.
    last_mean_ns: f64,
}

impl Bencher {
    /// Time `routine`, running it a warm-up round plus `iters` measured
    /// rounds.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        black_box(routine()); // warm-up
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.last_mean_ns = start.elapsed().as_nanos() as f64 / self.iters as f64;
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: u64,
}

impl BenchmarkGroup<'_> {
    /// Number of measured iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            iters: self.sample_size,
            last_mean_ns: 0.0,
        };
        f(&mut b);
        self.report(&id.to_string(), b.last_mean_ns);
        self
    }

    /// Run one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            iters: self.sample_size,
            last_mean_ns: 0.0,
        };
        f(&mut b, input);
        self.report(&id.to_string(), b.last_mean_ns);
        self
    }

    fn report(&mut self, id: &str, mean_ns: f64) {
        let _ = &self.criterion;
        let (value, unit) = if mean_ns >= 1e9 {
            (mean_ns / 1e9, "s")
        } else if mean_ns >= 1e6 {
            (mean_ns / 1e6, "ms")
        } else if mean_ns >= 1e3 {
            (mean_ns / 1e3, "µs")
        } else {
            (mean_ns, "ns")
        };
        println!("{}/{id:<40} mean {value:>10.3} {unit}", self.name);
    }

    /// Finish the group (prints nothing extra in the stub).
    pub fn finish(&mut self) {}
}

/// Entry point, mirroring criterion's driver object.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== group {name}");
        BenchmarkGroup {
            criterion: self,
            name,
            sample_size: 10,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }

    /// Parity with criterion's configuration API (no-op).
    pub fn configure_from_args(self) -> Self {
        self
    }
}

/// Bundle benchmark functions into a named runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($fun:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($fun(&mut c);)+
        }
    };
}

/// Produce a `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
