//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the *tiny* corner of rand's 0.8 API it actually uses:
//!
//! * [`rngs::SmallRng`] — a seedable, non-cryptographic PRNG
//!   (xoshiro256++, the same family the real `SmallRng` uses);
//! * [`Rng::gen_range`] over half-open integer ranges;
//! * [`Rng::gen_bool`];
//! * [`SeedableRng::seed_from_u64`];
//! * [`seq::SliceRandom::shuffle`] / [`seq::SliceRandom::choose`].
//!
//! Determinism matters more than statistical quality here: every caller in
//! the workspace seeds explicitly, and tests depend on stable streams.

// Vendored stand-in: keep clippy quiet so the workspace-wide `-D warnings`
// gate stays about first-party code.
#![allow(clippy::all)]

/// The core of a random number generator: a source of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A seedable generator.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (mixed through SplitMix64, as
    /// rand does, so similar seeds give unrelated streams).
    fn seed_from_u64(state: u64) -> Self;
}

/// Integer types [`Rng::gen_range`] supports.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform value in `[low, high)`; callers guarantee `low < high`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                debug_assert!(low < high, "gen_range called with an empty range");
                let span = (high as i128 - low as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (low as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

/// Convenience methods every [`RngCore`] gets, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform value from `range` (half-open integer ranges only).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        // 53 random bits give a uniform float in [0, 1).
        let v = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        v < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, seedable PRNG (xoshiro256++ seeded via SplitMix64) —
    /// the same construction family as rand 0.8's `SmallRng` on 64-bit
    /// targets. Not cryptographically secure.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(mut state: u64) -> Self {
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000u64), b.gen_range(0..1000u64));
        }
        let mut c = SmallRng::seed_from_u64(8);
        let same = (0..100).all(|_| a.gen_range(0..1000u64) == c.gen_range(0..1000u64));
        assert!(!same, "different seeds should diverge");
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&w));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(2);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_covers_elements() {
        let mut rng = SmallRng::seed_from_u64(4);
        let v = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[*v.choose(&mut rng).unwrap() - 1] = true;
        }
        assert_eq!(seen, [true; 3]);
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
