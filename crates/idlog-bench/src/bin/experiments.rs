//! The experiment report generator: runs E1–E20 from `DESIGN.md` and prints
//! a paper-claim vs. measured table. `EXPERIMENTS.md` is this binary's
//! output, annotated.
//!
//! Run all: `cargo run -p idlog-bench --bin experiments --release`
//! Run one: `cargo run -p idlog-bench --bin experiments --release -- e5`

use std::sync::Arc;
use std::time::Instant;

use idlog_bench::{choice_sampling_src, emp_db, grid_db, idlog_sampling_src, run_canonical, zy_db};
use idlog_core::{
    evaluate_with_options, CanonicalOracle, EnumBudget, EvalOptions, Interner, Query,
    ValidatedProgram,
};
use idlog_storage::{count_id_functions, Database};

struct Report {
    filter: Option<String>,
}

impl Report {
    fn wants(&self, id: &str) -> bool {
        self.filter
            .as_deref()
            .is_none_or(|f| f.eq_ignore_ascii_case(id))
    }

    fn section(&self, id: &str, paper: &str) {
        println!("\n=== {} ===", id.to_uppercase());
        println!("  paper claim: {paper}");
    }

    fn row(&self, label: &str, value: impl std::fmt::Display) {
        println!("  {label:<52} {value}");
    }

    fn verdict(&self, ok: bool, note: &str) {
        println!(
            "  -> {} {note}",
            if ok { "REPRODUCED:" } else { "MISMATCH:" }
        );
        assert!(ok, "experiment failed: {note}");
    }
}

fn db_from(interner: &Arc<Interner>, facts: &[(&str, &[&str])]) -> Database {
    let mut db = Database::with_interner(Arc::clone(interner));
    for (pred, cols) in facts {
        db.insert_syms(pred, cols).unwrap();
    }
    db
}

fn main() {
    let filter = std::env::args().nth(1);
    let r = Report { filter };
    let t0 = Instant::now();

    if r.wants("e1") {
        e1(&r);
    }
    if r.wants("e2") {
        e2(&r);
    }
    if r.wants("e3") {
        e3(&r);
    }
    if r.wants("e4") {
        e4(&r);
    }
    if r.wants("e5") {
        e5(&r);
    }
    if r.wants("e6") {
        e6(&r);
    }
    if r.wants("e7") {
        e7(&r);
    }
    if r.wants("e8") {
        e8(&r);
    }
    if r.wants("e9") {
        e9(&r);
    }
    if r.wants("e10") {
        e10(&r);
    }
    if r.wants("e11") {
        e11(&r);
    }
    if r.wants("e12") {
        e12(&r);
    }
    if r.wants("e13") {
        e13(&r);
    }
    if r.wants("e14") {
        e14(&r);
    }
    if r.wants("e15") {
        e15(&r);
    }
    if r.wants("e16") {
        e16(&r);
    }
    if r.wants("e17") {
        e17(&r);
    }
    if r.wants("e18") {
        e18(&r);
    }
    if r.wants("e19") {
        e19(&r);
    }
    if r.wants("e20") {
        e20(&r);
    }

    println!("\nall selected experiments completed in {:?}", t0.elapsed());
}

/// E1 (Example 1): ID-relations of r on {1}.
fn e1(r: &Report) {
    r.section(
        "e1",
        "r = {(a,c),(a,d),(b,c)} has exactly 2 ID-relations on {1}",
    );
    let interner = Arc::new(Interner::new());
    let db = db_from(
        &interner,
        &[("r", &["a", "c"]), ("r", &["a", "d"]), ("r", &["b", "c"])],
    );
    let rel = db.relation("r").unwrap();
    let n = count_id_functions(rel, &[0], &interner);
    r.row("ID-functions counted", n);
    // General law: ∏ |group|!.
    let big = emp_db(&interner, 3, 4);
    let n_big = count_id_functions(big.relation("emp").unwrap(), &[1], &interner);
    r.row("3 groups of 4 (expect 24^3 = 13824)", n_big);
    r.verdict(
        n == 2 && n_big == 13824,
        "counts equal products of factorials",
    );
}

/// E2 (Example 2): man/woman answer sets.
fn e2(r: &Report) {
    r.section("e2", "man(r) = woman(r) = { {}, {a}, {b}, {a,b} }");
    let src = "
        sex_guess(X, male) :- person(X).
        sex_guess(X, female) :- person(X).
        man(X) :- sex_guess[1](X, male, 1).
        woman(X) :- sex_guess[1](X, female, 1).
    ";
    let q = Query::parse(src, "man").unwrap();
    let db = db_from(q.interner(), &[("person", &["a"]), ("person", &["b"])]);
    let man = q.session(&db).all_answers().unwrap();
    let woman = Query::parse_with_interner(src, "woman", Arc::clone(q.interner()))
        .unwrap()
        .session(&db)
        .all_answers()
        .unwrap();
    r.row("distinct man answers (expect 4)", man.len());
    r.row("distinct woman answers (expect 4)", woman.len());
    r.row("perfect models explored", man.models_explored());
    r.verdict(
        man.len() == 4 && woman.same_answers(&man, q.interner()),
        "all four subsets, symmetric between man and woman",
    );
}

/// E3 (Example 3): DL non-deterministic vs deterministic inflationary.
fn e3(r: &Report) {
    r.section(
        "e3",
        "DL: man(r) has 4 outcomes non-deterministically, {(a),(b)} deterministically",
    );
    use idlog_dl::{all_outcomes, deterministic_inflationary, Dialect, DlBudget, DlProgram};
    let prog = DlProgram::parse(
        "man(X) :- person(X), not woman(X).
         woman(X) :- person(X), not man(X).",
        Dialect::Dl,
    )
    .unwrap();
    let db = db_from(prog.interner(), &[("person", &["a"]), ("person", &["b"])]);
    let nd = all_outcomes(&prog, &db, "man", &DlBudget::default()).unwrap();
    let det = deterministic_inflationary(&prog, &db, "man").unwrap();
    r.row("non-deterministic outcomes (expect 4)", nd.len());
    r.row("deterministic inflationary |man| (expect 2)", det.len());
    r.verdict(
        nd.len() == 4 && det.len() == 2,
        "matches the paper's Example 3 table",
    );
}

/// E4 (Example 4): one-per-dept sampling, choice ≡ IDLOG.
fn e4(r: &Report) {
    r.section(
        "e4",
        "choice((Dept),(Name)) ≡ emp[2](Name, Dept, 0) (q-equivalent)",
    );
    let interner = Arc::new(Interner::new());
    let db = emp_db(&interner, 3, 3);
    let budget = EnumBudget::default();
    let choice_ast =
        idlog_core::parse_program("select_emp(N) :- emp(N, D), choice((D), (N)).", &interner)
            .unwrap();
    let a =
        idlog_choice::intended_models(&choice_ast, &interner, &db, "select_emp", &budget).unwrap();
    let q = Query::parse_with_interner(
        "select_emp(N) :- emp[2](N, D, 0).",
        "select_emp",
        Arc::clone(&interner),
    )
    .unwrap();
    let b = q.session(&db).budget(budget).all_answers().unwrap();
    r.row("choice answers (expect 3^3 = 27)", a.len());
    r.row("idlog answers", b.len());
    r.verdict(
        a.same_answers(&b, &interner) && a.len() == 27,
        "identical answer sets",
    );
}

/// E5 (Example 5): the naive choice 2-sampling is wrong, IDLOG is right.
fn e5(r: &Report) {
    r.section(
        "e5",
        "naive choice 2-sampling has deficient models; emp[2](N,D,T), T<2 never does",
    );
    let interner = Arc::new(Interner::new());
    let db = emp_db(&interner, 2, 3);
    let budget = EnumBudget::default();
    let naive = idlog_core::parse_program(&choice_sampling_src(2), &interner).unwrap();
    let a = idlog_choice::intended_models(&naive, &interner, &db, "select_n", &budget).unwrap();
    let deficient = a.iter().filter(|rel| rel.len() < 4).count();
    let q = Query::parse_with_interner(&idlog_sampling_src(2), "select_n", Arc::clone(&interner))
        .unwrap();
    let b = q.session(&db).budget(budget).all_answers().unwrap();
    let exact = b.iter().all(|rel| rel.len() == 4);
    r.row(
        "choice answers / deficient",
        format!("{} / {deficient}", a.len()),
    );
    r.row("idlog answers (expect C(3,2)^2 = 9), all exact", b.len());
    r.verdict(
        deficient > 0 && exact && b.len() == 9,
        "choice emulation provably deficient, IDLOG exact",
    );
}

/// E6 (§3.3 cost claim): emulation cost grows ~n², IDLOG stays one literal.
fn e6(r: &Report) {
    r.section(
        "e6",
        "choice-emulated n-sampling needs n choices + n(n-1)/2 disequalities; \
         IDLOG one literal — instantiations & time vs n",
    );
    let interner = Arc::new(Interner::new());
    let db = emp_db(&interner, 3, 6);
    println!(
        "  {:>2} {:>14} {:>14} {:>12} {:>12}",
        "n", "choice_inst", "idlog_inst", "choice_ms", "idlog_ms"
    );
    let mut ok = true;
    let mut prev_choice = 0u64;
    for n in 1..=4usize {
        let t0 = Instant::now();
        let choice_ast = idlog_core::parse_program(&choice_sampling_src(n), &interner).unwrap();
        let (_, stats) =
            idlog_choice::one_intended_model(&choice_ast, &interner, &db, "select_n", Some(7))
                .unwrap();
        let choice_ms = t0.elapsed().as_secs_f64() * 1e3;

        let t1 = Instant::now();
        let (_, idlog_stats) = run_canonical(&idlog_sampling_src(n), "select_n", &db);
        let idlog_ms = t1.elapsed().as_secs_f64() * 1e3;
        println!(
            "  {n:>2} {:>14} {:>14} {choice_ms:>12.2} {idlog_ms:>12.2}",
            stats.instantiations, idlog_stats.instantiations
        );
        ok &= idlog_stats.instantiations == (3 * n) as u64;
        ok &= stats.instantiations >= prev_choice;
        prev_choice = stats.instantiations;
    }
    r.verdict(
        ok,
        "IDLOG instantiations = n per group; emulation grows superlinearly",
    );
}

/// E7 (Examples 6 & 8): the rewrites match the paper's printed programs.
fn e7(r: &Report) {
    r.section(
        "e7",
        "adornment + ID rewrites reproduce the paper's transformed programs",
    );
    use idlog_optimizer::{push_projections, to_id_program};
    let interner = Arc::new(Interner::new());
    let original = idlog_core::parse_program(
        "q(X) :- a(X, Y).
         a(X, Y) :- p(X, Z), a(Z, Y).
         a(X, Y) :- p(X, Y).",
        &interner,
    )
    .unwrap();
    let out = interner.intern("q");
    let projected = push_projections(&original, out)
        .display(&interner)
        .to_string();
    let idp = to_id_program(&original, out).display(&interner).to_string();
    r.row("∀-rewrite", projected.replace('\n', " "));
    r.row("ID-rewrite", idp.replace('\n', " "));
    r.verdict(
        projected == "q(X) :- a(X).\na(X) :- p(X, Z), a(Z).\na(X) :- p(X, Y).\n"
            && idp == "q(X) :- a(X).\na(X) :- p(X, Z), a(Z).\na(X) :- p[1](X, Y, 0).\n",
        "both match Example 6 / Example 8 verbatim",
    );
}

/// E8 (Example 7): ∀- and ∃-existential are incomparable.
fn e8(r: &Report) {
    r.section(
        "e8",
        "Example 7: Y is ∀- but not ∃-existential w.r.t. q1, and ∃- but not ∀- w.r.t. q2",
    );
    use idlog_optimizer::{q_equivalent_on, random_databases};
    let interner = Arc::new(Interner::new());
    let p = idlog_core::parse_program(
        "q1 :- x(c).  q2 :- x(a).  x(Y) :- p(Y).  p(b) :- y(X).  p(c) :- y(X).",
        &interner,
    )
    .unwrap();
    let p2 = idlog_core::parse_program(
        "q1 :- x(c).  q2 :- x(a).  x(Y) :- p[](Y, 0).  p(b) :- y(X).  p(c) :- y(X).",
        &interner,
    )
    .unwrap();
    let p1 = idlog_core::parse_program(
        "q1 :- x(c).  q2 :- x(a).  x(Y) :- pprime(Y).  pprime(Yp) :- dom(Yp), p(Y).
         p(b) :- y(X).  p(c) :- y(X).",
        &interner,
    )
    .unwrap();
    let mut dbs = random_databases(&interner, &[("y", 1)], &["d1", "d2"], 12, 11);
    for db in &mut dbs {
        for d in ["a", "b", "c", "d1", "d2"] {
            db.insert_syms("dom", &[d]).unwrap();
        }
    }
    let budget = EnumBudget::default();
    let forall_q1 = q_equivalent_on(&p, &p1, &interner, &dbs, "q1", &budget)
        .unwrap()
        .equivalent;
    let forall_q2 = q_equivalent_on(&p, &p1, &interner, &dbs, "q2", &budget)
        .unwrap()
        .equivalent;
    let exists_q1 = q_equivalent_on(&p, &p2, &interner, &dbs, "q1", &budget)
        .unwrap()
        .equivalent;
    let exists_q2 = q_equivalent_on(&p, &p2, &interner, &dbs, "q2", &budget)
        .unwrap()
        .equivalent;
    r.row(
        "∀-existential w.r.t. q1 / q2 (expect yes / no)",
        format!("{forall_q1} / {forall_q2}"),
    );
    r.row(
        "∃-existential w.r.t. q1 / q2 (expect no / yes)",
        format!("{exists_q1} / {exists_q2}"),
    );
    r.verdict(
        forall_q1 && !forall_q2 && !exists_q1 && exists_q2,
        "the two notions are incomparable, exactly as Example 7 states",
    );
}

/// E9 (§4 opening): the ID-rewrite greatly reduces intermediate tuples.
fn e9(r: &Report) {
    r.section(
        "e9",
        "p(X) :- q(X,Z), z(Z,Y), y(W): ID-rewrite reduces instantiations by fanout×witnesses",
    );
    use idlog_optimizer::to_id_program;
    let interner = Arc::new(Interner::new());
    let original = idlog_core::parse_program("p(X) :- q(X, Z), z(Z, Y), y(W).", &interner).unwrap();
    let optimized = to_id_program(&original, interner.intern("p"));
    println!(
        "  {:>6} {:>7} {:>9} {:>16} {:>14} {:>8}",
        "keys", "fanout", "witness", "original_inst", "idlog_inst", "ratio"
    );
    let mut ok = true;
    for (keys, fanout, witnesses) in [(5, 10, 10), (10, 20, 40), (20, 40, 80)] {
        let db = zy_db(&interner, keys, fanout, witnesses);
        let (_, s1) = run_and_stats(&original, &interner, &db, "p");
        let (_, s2) = run_and_stats(&optimized, &interner, &db, "p");
        let ratio = s1.instantiations as f64 / s2.instantiations as f64;
        println!(
            "  {keys:>6} {fanout:>7} {witnesses:>9} {:>16} {:>14} {ratio:>8.0}",
            s1.instantiations, s2.instantiations
        );
        ok &= s1.instantiations == (keys * fanout * witnesses) as u64
            && s2.instantiations == keys as u64;
    }
    r.verdict(ok, "ratio = fanout × witnesses at every scale");
}

/// E10 (§1/§4 all_depts): three formulations, same answers, IDLOG cheapest.
fn e10(r: &Report) {
    r.section(
        "e10",
        "all_depts: naive scans D·E tuples, IDLOG tid-0 scans D",
    );
    let interner = Arc::new(Interner::new());
    println!(
        "  {:>4} {:>4} {:>13} {:>12} {:>12}",
        "D", "E", "naive_inst", "idlog_inst", "choice_inst"
    );
    let mut ok = true;
    for (d, e) in [(5, 10), (10, 50), (20, 100)] {
        let db = emp_db(&interner, d, e);
        let (_, naive) = run_canonical("all_depts(D) :- emp(N, D).", "all_depts", &db);
        let (_, idlog) = run_canonical("all_depts(D) :- emp[2](N, D, 0).", "all_depts", &db);
        let choice_ast =
            idlog_core::parse_program("all_depts(D) :- emp(N, D), choice((D), (N)).", &interner)
                .unwrap();
        let (_, choice) =
            idlog_choice::one_intended_model(&choice_ast, &interner, &db, "all_depts", None)
                .unwrap();
        println!(
            "  {d:>4} {e:>4} {:>13} {:>12} {:>12}",
            naive.instantiations, idlog.instantiations, choice.instantiations
        );
        ok &= naive.instantiations == (d * e) as u64 && idlog.instantiations == d as u64;
    }
    r.verdict(ok, "IDLOG considers exactly one tuple per department");
}

/// E11 (Theorem 2): translation equivalence over a program family.
fn e11(r: &Report) {
    r.section(
        "e11",
        "every C1/C2 DATALOG^C program ≡ its four-stratum IDLOG translation",
    );
    let interner = Arc::new(Interner::new());
    let db = emp_db(&interner, 2, 3);
    let budget = EnumBudget::default();
    let programs = [
        "s(N) :- emp(N, D), choice((D), (N)).",
        "s(D) :- emp(N, D), choice((N), (D)).",
        "s(N, D) :- emp(N, D), choice((), (N, D)).",
        "picked(N) :- emp(N, D), choice((D), (N)).\ns(D) :- picked(N), emp(N, D).",
        "s(N, M) :- emp(N, D), emp(M, D), N != M, choice((D), (N, M)).",
    ];
    let mut ok = true;
    for (k, src) in programs.iter().enumerate() {
        let ast = idlog_core::parse_program(src, &interner).unwrap();
        let direct = idlog_choice::intended_models(&ast, &interner, &db, "s", &budget).unwrap();
        let translated = idlog_choice::to_idlog::to_idlog(&ast, &interner).unwrap();
        let v = ValidatedProgram::new(translated, Arc::clone(&interner)).unwrap();
        let via = Query::new(v, "s")
            .unwrap()
            .session(&db)
            .budget(budget)
            .all_answers()
            .unwrap();
        let same = direct.same_answers(&via, &interner);
        r.row(
            &format!("program #{k} ({} answers)", direct.len()),
            if same { "equivalent" } else { "DIFFERENT" },
        );
        ok &= same;
    }
    r.verdict(ok, "all translations q-equivalent");
}

/// E12 (Theorem 4): adornment-identified args are ∃-existential.
fn e12(r: &Report) {
    r.section(
        "e12",
        "every adornment-identified ∀-existential arg is ∃-existential",
    );
    use idlog_optimizer::{q_equivalent_on, random_databases, to_id_program};
    let interner = Arc::new(Interner::new());
    let family = [
        ("q(X) :- e(X, Y).", vec![("e", 2)]),
        (
            "p(X) :- q(X, Z), z(Z, Y), y(W).",
            vec![("q", 2), ("z", 2), ("y", 1)],
        ),
        (
            "q(X) :- a(X, Y).\na(X, Y) :- p(X, Z), a(Z, Y).\na(X, Y) :- p(X, Y).",
            vec![("p", 2)],
        ),
        ("out(X) :- l(X, Y), rr(X, Z).", vec![("l", 2), ("rr", 2)]),
    ];
    let budget = EnumBudget::default();
    let mut ok = true;
    for (k, (src, schema)) in family.iter().enumerate() {
        let ast = idlog_core::parse_program(src, &interner).unwrap();
        let output = ast.clauses[0].head[0].atom.pred.base();
        let output_name = interner.resolve(output);
        let rewritten = to_id_program(&ast, output);
        let dbs = random_databases(&interner, schema, &["a", "b", "c"], 6, 100 + k as u64);
        let rep =
            q_equivalent_on(&ast, &rewritten, &interner, &dbs, &output_name, &budget).unwrap();
        r.row(
            &format!("family #{k} on {} random dbs", rep.databases_checked),
            if rep.equivalent {
                "equivalent"
            } else {
                "DIFFERENT"
            },
        );
        ok &= rep.equivalent;
    }
    r.verdict(
        ok,
        "ID-rewrites preserved every query (Theorem 4 empirically)",
    );
}

/// E13 (Theorems 5/6): TM→IDLOG compilation agrees with native simulation.
fn e13(r: &Report) {
    r.section(
        "e13",
        "compiled (N)TMs have the same outcome sets as native simulation",
    );
    use idlog_gtm::{compile_tm, explore, queries, Outcome, RunBudget};
    let budget = EnumBudget::default();
    let mut ok = true;

    // Deterministic: successor over several inputs.
    let tm = queries::successor();
    let compiled = compile_tm(&tm, 8, 8);
    for input in [vec![1u8], vec![2], vec![2, 2], vec![1, 2, 2]] {
        let tapes = compiled.accepting_tapes(&input, &budget).unwrap();
        ok &= tapes.len() == 1;
    }
    r.row(
        "successor machine (4 inputs)",
        if ok { "agrees" } else { "DIFFERS" },
    );

    // Non-deterministic: two branch points → 4 outcomes.
    let tm = idlog_gtm::TmBuilder::new(3, 3, 0, 2)
        .on(0, 0, 1, idlog_gtm::Move::Right, 1)
        .on(0, 0, 2, idlog_gtm::Move::Right, 1)
        .on(1, 0, 1, idlog_gtm::Move::Stay, 2)
        .on(1, 0, 2, idlog_gtm::Move::Stay, 2)
        .build()
        .unwrap();
    let native = explore(&tm, &[], &RunBudget::default())
        .unwrap()
        .iter()
        .filter(|o| matches!(o, Outcome::Accepted(_)))
        .count();
    let compiled = compile_tm(&tm, 3, 3);
    let tapes = compiled.accepting_tapes(&[], &budget).unwrap();
    r.row(
        "NTM outcomes native / compiled (expect 4 / 4)",
        format!("{native} / {}", tapes.len()),
    );
    ok &= native == 4 && tapes.len() == 4;
    r.verdict(ok, "bounded Theorem 6 construction reproduces outcome sets");
}

/// E14 (§2.2): the binding-pattern safety discipline.
fn e14(r: &Report) {
    r.section(
        "e14",
        "plus(N, L, M) rejected, plus(L, M, N) accepted (paper's p1/p2)",
    );
    let bad = ValidatedProgram::parse(
        "q(a, 1). p1(X, N) :- q(X, N), plus(N, L, M).",
        Arc::new(Interner::new()),
    );
    let good = ValidatedProgram::parse(
        "q(a, 1). p2(X, N) :- q(X, N), plus(L, M, N).",
        Arc::new(Interner::new()),
    );
    r.row(
        "p1 (pattern bnn)",
        if bad.is_err() { "rejected" } else { "ACCEPTED" },
    );
    r.row(
        "p2 (pattern nnb)",
        if good.is_ok() { "accepted" } else { "REJECTED" },
    );
    r.verdict(
        bad.is_err() && good.is_ok(),
        "matches the paper's safety example",
    );
}

/// E15 (footnotes 6/7, extension): the tid-bound analysis shrinks the
/// enumeration walk from factorial to falling-factorial without changing
/// the answer set.
fn e15(r: &Report) {
    r.section(
        "e15",
        "`T < n` bounds observable tids: enumeration walks k-prefix arrangements \
         (n·(n-1)·…) instead of full permutations (m!)",
    );
    let interner = Arc::new(Interner::new());
    println!(
        "  {:>6} {:>18} {:>18} {:>10}",
        "group", "bounded_models", "full_models", "answers"
    );
    let mut ok = true;
    for emps in [4usize, 5, 6, 7] {
        let db = emp_db(&interner, 1, emps);
        let budget = EnumBudget {
            max_models: 10_000_000,
            max_answers: 1_000_000,
        };

        // Bounded: `pick(N) :- emp[2](N, D, T), T < 2` — only tids < 2 observable.
        let bounded = Query::parse_with_interner(
            "pick(N) :- emp[2](N, D, T), T < 2.",
            "pick",
            Arc::clone(&interner),
        )
        .unwrap();
        let a = bounded.session(&db).budget(budget).all_answers().unwrap();

        // Full walk: semantically identical query with the tid exposed
        // through a helper, defeating the bound analysis.
        let full = Query::parse_with_interner(
            "expose(N, T) :- emp[2](N, D, T).\npick(N) :- expose(N, T), T < 2.",
            "pick",
            Arc::clone(&interner),
        )
        .unwrap();
        let b = full.session(&db).budget(budget).all_answers().unwrap();

        println!(
            "  {emps:>6} {:>18} {:>18} {:>10}",
            a.models_explored(),
            b.models_explored(),
            a.len()
        );
        let falling: u64 = (emps as u64) * (emps as u64 - 1);
        let factorial: u64 = (1..=emps as u64).product();
        ok &= a.models_explored() == falling
            && b.models_explored() == factorial
            && a.same_answers(&b, &interner)
            && a.complete()
            && b.complete();
    }
    r.verdict(ok, "identical answer sets; walk shrinks from m! to m(m-1)");
}

/// E16 (intro claim via \[She90b\]): tids add deterministic expressive power
/// — counting. Cardinality parity through an empty-grouping ID-relation is
/// the same in every perfect model.
fn e16(r: &Report) {
    r.section(
        "e16",
        "cardinality parity via tids: one answer across all n! tid assignments, \
         correct for every n (inexpressible in DATALOG(¬))",
    );
    let src = "
        numbered(X, T) :- person[](X, T).
        has(T) :- numbered(X, T).
        even_upto(0) :- has(0).
        odd_upto(T2) :- even_upto(T), succ(T, T2), has(T2).
        even_upto(T2) :- odd_upto(T), succ(T, T2), has(T2).
        top(T) :- has(T), succ(T, T2), not has(T2).
        even_card :- top(T), odd_upto(T).
        some :- person(X).
        empty :- not some.
        even_card :- empty.
    ";
    let q = Query::parse(src, "even_card").unwrap();
    let mut ok = true;
    print!("  parity(n) for n=0..5:");
    for n in 0..6usize {
        let mut db = Database::with_interner(Arc::clone(q.interner()));
        for k in 0..n {
            db.insert_syms("person", &[&format!("p{k}")]).unwrap();
        }
        let answers = q.session(&db).all_answers().unwrap();
        let deterministic = answers.len() == 1;
        let is_even = !answers.iter().next().unwrap().is_empty();
        print!(" {}", if is_even { "even" } else { "odd" });
        ok &= deterministic && (is_even == (n % 2 == 0));
    }
    println!();
    r.verdict(ok, "single correct answer at every size despite n! models");
}

/// E17 (engine property, not a paper claim): parallel round execution is
/// observationally invisible. Relations *and* evaluation statistics are
/// identical at every thread count; threads change wall-time only.
fn e17(r: &Report) {
    r.section(
        "e17",
        "parallel rounds: byte-identical relations and stats at any thread count",
    );
    let interner = Arc::new(Interner::new());
    let db = grid_db(&interner, 12, 12);
    let program = ValidatedProgram::parse(
        "tc(X, Y) :- e(X, Y). tc(X, Y) :- e(X, Z), tc(Z, Y).",
        Arc::clone(&interner),
    )
    .unwrap();
    let timed = |threads: usize| {
        let t = Instant::now();
        let out = evaluate_with_options(
            &program,
            &db,
            &mut CanonicalOracle,
            &EvalOptions::new().threads(threads),
        )
        .unwrap();
        (out, t.elapsed())
    };

    let (baseline, t1) = timed(1);
    r.row("threads=1 (baseline)", format!("{:>9.2?}", t1));
    let mut ok = baseline.relation("tc").unwrap().len() == 5940; // 78² − 144
    let mut t4 = t1;
    for threads in [2usize, 4, 8] {
        let (out, t) = timed(threads);
        if threads == 4 {
            t4 = t;
        }
        let same = out
            .relation("tc")
            .unwrap()
            .set_eq(baseline.relation("tc").unwrap())
            && out.stats() == baseline.stats();
        ok &= same;
        r.row(
            &format!("threads={threads}"),
            format!("{t:>9.2?}  relations+stats identical: {same}"),
        );
    }
    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    r.row(
        "speedup at 4 threads (informational)",
        format!(
            "{:.2}x on a {cores}-core host{}",
            t1.as_secs_f64() / t4.as_secs_f64(),
            if cores < 4 {
                " — no speedup expected below 4 cores"
            } else {
                ""
            }
        ),
    );
    r.verdict(
        ok,
        "thread count changes wall-time only, never relations or stats",
    );
}

/// E18 (profiler): per-rule profiling localizes §4's savings to the
/// rewritten rule. E9 shows the *totals* shrink by fanout×witnesses; the
/// profile shows *which clause* stopped doing the work, and its JSON form
/// is stable across thread counts.
fn e18(r: &Report) {
    r.section(
        "e18",
        "profiler localizes the §4 instantiation savings to the rewritten rule",
    );
    use idlog_optimizer::to_id_program;
    let interner = Arc::new(Interner::new());
    let original = idlog_core::parse_program("p(X) :- q(X, Z), z(Z, Y), y(W).", &interner).unwrap();
    let optimized = to_id_program(&original, interner.intern("p"));
    let (keys, fanout, witnesses) = (10usize, 20, 40);
    let db = zy_db(&interner, keys, fanout, witnesses);

    let profile_of = |ast: &idlog_core::Program, threads: usize| {
        let v = ValidatedProgram::new(ast.clone(), Arc::clone(&interner)).unwrap();
        let q = Query::new(v, "p").unwrap();
        q.session(&db)
            .threads(threads)
            .profile(true)
            .run()
            .unwrap()
            .profile
            .expect("profiling enabled")
    };
    let orig = profile_of(&original, 1);
    let opt = profile_of(&optimized, 1);

    let worst = |p: &idlog_core::Profile| {
        let mut totals = p.per_rule_totals();
        totals.sort_by_key(|t| std::cmp::Reverse(t.stats.instantiations));
        totals.into_iter().next().expect("at least one rule fired")
    };
    let worst_orig = worst(&orig);
    let worst_opt = worst(&opt);
    r.row(
        "original worst rule",
        format!(
            "{} inst  `{}`",
            worst_orig.stats.instantiations,
            orig.rule_text(worst_orig.clause)
        ),
    );
    r.row(
        "rewritten worst rule",
        format!(
            "{} inst  `{}`",
            worst_opt.stats.instantiations,
            opt.rule_text(worst_opt.clause)
        ),
    );
    let saved = orig.totals.instantiations - opt.totals.instantiations;
    let localized = worst_orig.stats.instantiations - worst_opt.stats.instantiations;
    r.row(
        "savings localized to that rule",
        format!("{localized} of {saved} total"),
    );

    // The profile's JSON form is schema-tagged and thread-count independent.
    let json = opt.to_json(false);
    let json_ok = json.starts_with('{')
        && json.ends_with('}')
        && json.contains("\"schema\":\"idlog-profile/1\"")
        && json.contains("\"strata\"");
    let stable = profile_of(&optimized, 4).to_json(false) == json;
    r.row(
        "profile JSON (schema tag, stable at 4 threads)",
        format!("{json_ok} / {stable}"),
    );

    let ok = worst_orig.stats.instantiations == (keys * fanout * witnesses) as u64
        && opt.totals.instantiations == keys as u64
        && saved == localized
        && json_ok
        && stable;
    r.verdict(
        ok,
        "the profiler pins the entire §4 saving on the rewritten clause",
    );
}

/// E19 (Theorem 3 fast path): the conservative determinism certification
/// lets `all_answers` on a certified query return one canonical evaluation
/// instead of walking every ID-function.
fn e19(r: &Report) {
    r.section(
        "e19",
        "certified-deterministic queries skip ID-function enumeration entirely",
    );
    let interner = Arc::new(Interner::new());
    let (depts, emps) = (4usize, 10usize);
    let db = emp_db(&interner, depts, emps);
    let q = Query::parse_with_interner(
        "all_depts(D) :- emp[2](N, D, 0).",
        "all_depts",
        Arc::clone(&interner),
    )
    .unwrap();
    r.row("query certified deterministic", q.certified_deterministic());

    let budget = EnumBudget {
        max_models: 1_000_000,
        max_answers: 1_000_000,
    };
    let t = Instant::now();
    let slow = q
        .session(&db)
        .options(EvalOptions::serial().budget(budget).det_fastpath(false))
        .all_answers()
        .unwrap();
    let t_slow = t.elapsed();
    let t = Instant::now();
    let fast = q
        .session(&db)
        .options(EvalOptions::serial().budget(budget))
        .all_answers()
        .unwrap();
    let t_fast = t.elapsed();

    r.row(
        &format!("full enumeration ({} models)", slow.models_explored()),
        format!("{t_slow:?}"),
    );
    r.row(
        &format!("fast path ({} model)", fast.models_explored()),
        format!("{t_fast:?}"),
    );
    r.row(
        "speedup",
        format!(
            "{:.0}x",
            t_slow.as_secs_f64() / t_fast.as_secs_f64().max(1e-9)
        ),
    );
    let same = fast.to_sorted_strings(&interner) == slow.to_sorted_strings(&interner);
    let ok = q.certified_deterministic()
        && fast.models_explored() == 1
        && slow.models_explored() == (emps as u64).pow(depts as u32)
        && slow.len() == 1
        && same
        && fast.complete()
        && t_fast < t_slow;
    r.verdict(
        ok,
        "one canonical evaluation replaces the whole walk, byte-identically",
    );
}

/// E20: the resource governor — Theorem 3 says termination is undecidable,
/// so divergence is handled at runtime: ceilings trip at deterministic
/// round barriers with a coherent partial result, and the bookkeeping is
/// nearly free on terminating workloads.
fn e20(r: &Report) {
    use idlog_core::{EvalError, LimitKind, Limits};

    r.section(
        "e20",
        "Theorem 3 (termination undecidable) -> runtime governance: \
         deterministic limit trips, cheap when idle",
    );

    // (a) Overhead on a terminating fixture: transitive closure on the
    // 16x16 grid (the parallel_scaling bench workload), ungoverned vs
    // under generous ceilings, best-of-5 each to shed scheduler noise.
    let interner = Arc::new(Interner::new());
    let db = idlog_bench::grid_db(&interner, 16, 16);
    let q = Query::parse_with_interner(
        "tc(X, Y) :- e(X, Y). tc(X, Y) :- e(X, Z), tc(Z, Y).",
        "tc",
        Arc::clone(&interner),
    )
    .unwrap();
    let generous = Limits {
        deadline: Some(std::time::Duration::from_secs(3600)),
        max_rounds: Some(1_000_000),
        max_tuples: Some(1_000_000_000),
        max_bytes: Some(1 << 40),
    };
    let best = |limits: Limits| {
        (0..5)
            .map(|_| {
                let t = Instant::now();
                q.session(&db)
                    .options(EvalOptions::new().threads(4).limits(limits))
                    .try_run()
                    .unwrap();
                t.elapsed()
            })
            .min()
            .unwrap()
    };
    let plain = best(Limits::none());
    let governed = best(generous);
    let ratio = governed.as_secs_f64() / plain.as_secs_f64().max(1e-9);
    r.row(
        "tc 16x16 grid, ungoverned (best of 5)",
        format!("{plain:?}"),
    );
    r.row(
        "tc 16x16 grid, governed (best of 5)",
        format!("{governed:?}"),
    );
    r.row("overhead ratio", format!("{ratio:.3}"));

    // (b) A diverging program under a wall-clock deadline: stops promptly,
    // reports which limit tripped, and hands back a non-empty partial
    // relation (complete rounds only).
    let diverge = Query::parse_with_interner(
        "count(0). count(M) :- count(N), plus(N, 1, M).",
        "count",
        Arc::clone(&interner),
    )
    .unwrap();
    let ddb = Database::with_interner(Arc::clone(&interner));
    let t = Instant::now();
    let err = diverge
        .session(&ddb)
        .options(
            EvalOptions::new()
                .threads(4)
                .deadline(std::time::Duration::from_millis(100)),
        )
        .try_run()
        .unwrap_err();
    let stop_elapsed = t.elapsed();
    let deadline_ok = match &err {
        EvalError::Limit { limit, partial } => {
            let n = partial.relation("count").map_or(0, |rel| rel.len());
            r.row(
                "diverging run, 100ms deadline",
                format!("stopped after {stop_elapsed:?}, partial = {n} tuple(s)"),
            );
            *limit == LimitKind::Deadline && n > 0
        }
        _ => false,
    };

    // (c) Determinism of the trip: a round ceiling yields byte-identical
    // partial relations and statistics at 1, 2, and 8 threads.
    let mut partials = Vec::new();
    for threads in [1usize, 2, 8] {
        let err = diverge
            .session(&ddb)
            .options(EvalOptions::new().threads(threads).limits(Limits {
                max_rounds: Some(64),
                ..Limits::none()
            }))
            .try_run()
            .unwrap_err();
        let EvalError::Limit { limit, partial } = err else {
            panic!("expected a limit trip at {threads} threads");
        };
        assert_eq!(limit, LimitKind::Rounds);
        let rel = partial.relation("count").cloned().unwrap();
        partials.push((rel.sorted_canonical(&interner), partial.stats()));
    }
    let identical = partials.windows(2).all(|w| w[0] == w[1]);
    r.row(
        "max-rounds=64 partial at 1/2/8 threads",
        format!("{} tuple(s), identical = {identical}", partials[0].0.len()),
    );

    // The overhead bound in DESIGN.md is < 2% on the criterion bench; a
    // single best-of-5 in a shared CI runner is noisier, so the hard gate
    // here is looser while the functional claims stay exact.
    let ok = ratio < 1.25 && deadline_ok && identical && stop_elapsed.as_secs() < 30;
    r.verdict(
        ok,
        "limits trip deterministically with a coherent partial result; \
         governance is within noise of ungoverned evaluation",
    );
}

fn run_and_stats(
    ast: &idlog_core::Program,
    interner: &Arc<Interner>,
    db: &Database,
    output: &str,
) -> (idlog_core::Relation, idlog_core::EvalStats) {
    let v = ValidatedProgram::new(ast.clone(), Arc::clone(interner)).unwrap();
    let q = Query::new(v, output).unwrap();
    let result = q.session(db).run().unwrap();
    (result.relation, result.stats)
}
