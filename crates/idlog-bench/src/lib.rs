//! Shared workload generators and experiment plumbing for the IDLOG
//! reproduction benchmarks.
//!
//! The paper (SIGMOD 1991) is a language paper without an empirical
//! section; the workloads here are synthesized from its quantitative
//! *claims* (see `DESIGN.md`'s experiment index E1–E14): employee/department
//! grouping for the sampling queries, key/fanout/witness joins for the
//! existential-argument optimization, chains and trees for the recursive
//! engine baselines.

#![warn(missing_docs)]

use std::sync::Arc;

use idlog_core::{EvalStats, Interner, Query, Relation};
use idlog_storage::Database;

/// D departments × E employees per department (`emp(name, dept)`).
pub fn emp_db(interner: &Arc<Interner>, depts: usize, emps_per_dept: usize) -> Database {
    let mut db = Database::with_interner(Arc::clone(interner));
    for d in 0..depts {
        for e in 0..emps_per_dept {
            db.insert_syms("emp", &[&format!("n{d}_{e}"), &format!("dept{d}")])
                .expect("elementary facts");
        }
    }
    db
}

/// The §4 join workload: `q(key, zkey)` × `z(zkey, fanout)` × `y(witness)`.
pub fn zy_db(interner: &Arc<Interner>, keys: usize, fanout: usize, witnesses: usize) -> Database {
    let mut db = Database::with_interner(Arc::clone(interner));
    for k in 0..keys {
        db.insert_syms("q", &[&format!("x{k}"), &format!("zk{k}")])
            .expect("facts");
        for f in 0..fanout {
            db.insert_syms("z", &[&format!("zk{k}"), &format!("y{f}")])
                .expect("facts");
        }
    }
    for w in 0..witnesses {
        db.insert_syms("y", &[&format!("w{w}")]).expect("facts");
    }
    db
}

/// A linear edge chain `e(v0, v1), …, e(v{n-1}, v{n})`.
pub fn chain_db(interner: &Arc<Interner>, n: usize) -> Database {
    let mut db = Database::with_interner(Arc::clone(interner));
    for k in 0..n {
        db.insert_syms("e", &[&format!("v{k}"), &format!("v{}", k + 1)])
            .expect("facts");
    }
    db
}

/// A `w × h` grid graph. Node `(i, j)` gets `e` edges to `(i+1, j)` and
/// `(i, j+1)`, matching `par(child, parent)` edges pointing back toward the
/// origin, and a `person` fact. Unlike a chain, transitive closure and
/// same-generation on a grid produce wide per-round deltas (hundreds of
/// tuples), which is what the parallel round executor shards.
pub fn grid_db(interner: &Arc<Interner>, w: usize, h: usize) -> Database {
    let mut db = Database::with_interner(Arc::clone(interner));
    let name = |i: usize, j: usize| format!("g{i}_{j}");
    for i in 0..w {
        for j in 0..h {
            db.insert_syms("person", &[&name(i, j)]).expect("facts");
            if i + 1 < w {
                db.insert_syms("e", &[&name(i, j), &name(i + 1, j)])
                    .expect("facts");
                db.insert_syms("par", &[&name(i + 1, j), &name(i, j)])
                    .expect("facts");
            }
            if j + 1 < h {
                db.insert_syms("e", &[&name(i, j), &name(i, j + 1)])
                    .expect("facts");
                db.insert_syms("par", &[&name(i, j + 1), &name(i, j)])
                    .expect("facts");
            }
        }
    }
    db
}

/// A complete binary tree with `levels` levels: `par(child, parent)` and
/// `person(node)` facts.
pub fn tree_db(interner: &Arc<Interner>, levels: u32) -> Database {
    let mut db = Database::with_interner(Arc::clone(interner));
    let n = (1u32 << levels) - 1;
    db.insert_syms("person", &["v1"]).expect("facts");
    for child in 2..=n {
        db.insert_syms("par", &[&format!("v{child}"), &format!("v{}", child / 2)])
            .expect("facts");
        db.insert_syms("person", &[&format!("v{child}")])
            .expect("facts");
    }
    db
}

/// Evaluate `src`'s `output` against `db` with the canonical oracle,
/// returning the answer and statistics. Panics on invalid programs — bench
/// programs are fixtures.
pub fn run_canonical(src: &str, output: &str, db: &Database) -> (Relation, EvalStats) {
    let q = Query::parse_with_interner(src, output, Arc::clone(db.interner()))
        .expect("bench program is valid");
    let result = q.session(db).run().expect("bench evaluation succeeds");
    (result.relation, result.stats)
}

/// The paper's choice-emulated n-sampling program (Example 5 generalized):
/// n independent choices plus n(n−1)/2 pairwise disequalities.
pub fn choice_sampling_src(n: usize) -> String {
    let mut src = String::new();
    for i in 0..n {
        src.push_str(&format!("emp{i}(N, D) :- emp(N, D), choice((D), (N)).\n"));
    }
    let mut body: Vec<String> = (0..n).map(|i| format!("emp{i}(N{i}, D)")).collect();
    for i in 0..n {
        for j in (i + 1)..n {
            body.push(format!("N{i} != N{j}"));
        }
    }
    src.push_str(&format!("select_n(N0) :- {}.\n", body.join(", ")));
    src
}

/// The IDLOG n-sampling program: one literal.
pub fn idlog_sampling_src(n: usize) -> String {
    format!("select_n(N) :- emp[2](N, D, T), T < {n}.")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_have_expected_sizes() {
        let i = Arc::new(Interner::new());
        assert_eq!(emp_db(&i, 3, 4).relation("emp").unwrap().len(), 12);
        assert_eq!(chain_db(&i, 5).relation("e").unwrap().len(), 5);
        let g = grid_db(&i, 3, 4);
        assert_eq!(g.relation("person").unwrap().len(), 12);
        // (w-1)·h right edges + w·(h-1) down edges.
        assert_eq!(g.relation("e").unwrap().len(), 2 * 4 + 3 * 3);
        assert_eq!(g.relation("par").unwrap().len(), 2 * 4 + 3 * 3);
        let t = tree_db(&i, 3);
        assert_eq!(t.relation("person").unwrap().len(), 7);
        assert_eq!(t.relation("par").unwrap().len(), 6);
        let z = zy_db(&i, 2, 3, 4);
        assert_eq!(z.relation("q").unwrap().len(), 2);
        assert_eq!(z.relation("z").unwrap().len(), 6);
        assert_eq!(z.relation("y").unwrap().len(), 4);
    }

    #[test]
    fn sampling_sources_parse() {
        let i = Arc::new(Interner::new());
        for n in 1..=4 {
            idlog_core::parse_program(&choice_sampling_src(n), &i).unwrap();
            idlog_core::parse_program(&idlog_sampling_src(n), &i).unwrap();
        }
        // n=3 has 3 choices and 3 disequalities.
        let src = choice_sampling_src(3);
        assert_eq!(src.matches("choice").count(), 3);
        assert_eq!(src.matches("!=").count(), 3);
    }

    /// Memory side of the `index_maintenance` before/after check: the
    /// legacy [`idlog_storage::Index`] clones every tuple (plus a projected
    /// key per distinct key) into its per-key vectors, while backend
    /// indexes store one `u32` offset per tuple.
    #[test]
    fn offset_indexes_cost_a_fraction_of_legacy_clones() {
        use idlog_common::{Tuple, Value};
        use idlog_storage::Index;

        let i = Arc::new(Interner::new());
        let mut rel = idlog_core::Relation::elementary(2);
        for k in 0..1000usize {
            rel.insert(
                vec![
                    Value::Sym(i.intern(&format!("k{}", k % 32))),
                    Value::Sym(i.intern(&format!("v{k}"))),
                ]
                .into(),
            )
            .unwrap();
        }
        let idx = Index::build(&rel, &[0]);
        let cloned: usize = (0..32)
            .map(|k| {
                let key: Tuple = vec![Value::Sym(i.intern(&format!("k{k}")))].into();
                idx.probe(&key).len()
            })
            .sum();
        assert_eq!(cloned, rel.len(), "legacy index duplicates every tuple");

        // Per-entry heap cost, in bytes: a cloned arity-2 tuple vs a u32
        // offset into the tuple store.
        let legacy = std::mem::size_of::<Tuple>() + 2 * std::mem::size_of::<Value>();
        let offset = std::mem::size_of::<u32>();
        assert!(
            legacy >= 4 * offset,
            "offset entries must be at least 4x smaller ({legacy} vs {offset} bytes)"
        );
    }

    #[test]
    fn run_canonical_works() {
        let i = Arc::new(Interner::new());
        let db = emp_db(&i, 2, 3);
        let (rel, stats) = run_canonical("all_depts(D) :- emp[2](N, D, 0).", "all_depts", &db);
        assert_eq!(rel.len(), 2);
        assert_eq!(stats.instantiations, 2);
    }
}
