//! E10 bench: `all_depts` over a D×E employee relation — naive DATALOG scan
//! vs choice-operator semantics vs the IDLOG tid-0 formulation.
//!
//! Paper shape to hold: IDLOG and choice consider far fewer tuples than the
//! naive scan; the gap grows linearly with E.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use idlog_bench::{emp_db, run_canonical};
use idlog_core::Interner;

fn bench_all_depts(c: &mut Criterion) {
    let mut group = c.benchmark_group("all_depts");
    group.sample_size(10);

    for (depts, emps) in [(10usize, 10usize), (10, 50), (10, 200)] {
        let interner = Arc::new(Interner::new());
        let db = emp_db(&interner, depts, emps);
        let label = format!("{depts}x{emps}");

        group.bench_with_input(BenchmarkId::new("naive", &label), &db, |b, db| {
            b.iter(|| run_canonical("all_depts(D) :- emp(N, D).", "all_depts", db))
        });
        group.bench_with_input(BenchmarkId::new("idlog_tid0", &label), &db, |b, db| {
            b.iter(|| run_canonical("all_depts(D) :- emp[2](N, D, 0).", "all_depts", db))
        });
        let choice_ast =
            idlog_core::parse_program("all_depts(D) :- emp(N, D), choice((D), (N)).", &interner)
                .expect("fixture parses");
        group.bench_with_input(BenchmarkId::new("choice", &label), &db, |b, db| {
            b.iter(|| {
                idlog_choice::one_intended_model(&choice_ast, &interner, db, "all_depts", None)
                    .expect("fixture evaluates")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_all_depts);
criterion_main!(benches);
