//! E9 bench: the §4 join workload `p(X) :- q(X,Z), z(Z,Y), y(W)` — original
//! vs ∀-projection vs the ID-literal rewrite.
//!
//! Paper shape to hold: ID-rewrite ≤ ∀-rewrite ≤ original, with the
//! ID-rewrite's advantage proportional to fanout × witnesses.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use idlog_bench::zy_db;
use idlog_core::{Interner, Query, ValidatedProgram};
use idlog_optimizer::{push_projections, to_id_program};

fn bench_rewrites(c: &mut Criterion) {
    let mut group = c.benchmark_group("existential_rewrite");
    group.sample_size(10);

    let interner = Arc::new(Interner::new());
    let original = idlog_core::parse_program("p(X) :- q(X, Z), z(Z, Y), y(W).", &interner)
        .expect("fixture parses");
    let out = interner.intern("p");
    let projected = push_projections(&original, out);
    let optimized = to_id_program(&original, out);

    for (keys, fanout, witnesses) in [(5usize, 10usize, 10usize), (10, 20, 40)] {
        let db = zy_db(&interner, keys, fanout, witnesses);
        let label = format!("{keys}k_{fanout}f_{witnesses}w");
        for (name, ast) in [
            ("original", &original),
            ("forall", &projected),
            ("id_rewrite", &optimized),
        ] {
            let validated = ValidatedProgram::new(ast.clone(), Arc::clone(&interner))
                .expect("fixture validates");
            let q = Query::new(validated, "p").expect("output exists");
            group.bench_with_input(BenchmarkId::new(name, &label), &db, |b, db| {
                b.iter(|| q.session(db).run().expect("fixture evaluates").relation)
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_rewrites);
criterion_main!(benches);
