//! Ablation bench: semi-naive vs naive fixpoint on recursive workloads.
//!
//! Shape to hold: semi-naive wall-time grows polynomially with chain length;
//! naive re-derivation adds a factor proportional to the number of
//! iterations (the chain length), so the gap widens with input size.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use idlog_bench::chain_db;
use idlog_core::{
    evaluate_with_options, CanonicalOracle, EvalOptions, Interner, Strategy, ValidatedProgram,
};

fn bench_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("seminaive_ablation");
    group.sample_size(10);
    for n in [30usize, 60, 120] {
        let interner = Arc::new(Interner::new());
        let db = chain_db(&interner, n);
        let program = ValidatedProgram::parse(
            "tc(X, Y) :- e(X, Y). tc(X, Y) :- e(X, Z), tc(Z, Y).",
            Arc::clone(&interner),
        )
        .expect("fixture validates");
        for (name, strategy) in [
            ("semi_naive", Strategy::SemiNaive),
            ("naive", Strategy::Naive),
        ] {
            group.bench_with_input(BenchmarkId::new(name, n), &db, |b, db| {
                let options = EvalOptions::new().strategy(strategy);
                b.iter(|| {
                    evaluate_with_options(&program, db, &mut CanonicalOracle, &options)
                        .expect("fixture evaluates")
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
