//! E13 bench: the Theorem 6 pipeline — TM→IDLOG compilation plus bounded
//! evaluation vs native tape simulation.
//!
//! Shape to hold: the compiled simulation is polynomially slower than the
//! native one (it materializes time-indexed configuration relations) but
//! scales the same way in steps; compilation itself is linear in |δ|·steps.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use idlog_core::EnumBudget;
use idlog_gtm::{compile_tm, queries, run_deterministic, RunBudget};

fn bench_gtm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gtm");
    group.sample_size(10);

    let tm = queries::successor();
    for bits in [3usize, 5, 7] {
        // Input: all-ones (maximum carry chain), LSB first.
        let input: Vec<u8> = vec![2; bits];
        let steps = bits + 2;
        let space = bits + 2;

        group.bench_with_input(BenchmarkId::new("native", bits), &input, |b, input| {
            b.iter(|| run_deterministic(&tm, input, &RunBudget::default()).expect("halts"))
        });

        group.bench_with_input(BenchmarkId::new("compile", bits), &input, |b, _| {
            b.iter(|| compile_tm(&tm, steps, space))
        });

        let compiled = compile_tm(&tm, steps, space);
        group.bench_with_input(
            BenchmarkId::new("compiled_eval", bits),
            &input,
            |b, input| {
                b.iter(|| {
                    compiled
                        .accepting_tapes(input, &EnumBudget::default())
                        .expect("bounded run succeeds")
                })
            },
        );
    }
    group.finish();
}

fn bench_gtm_nondet(c: &mut Criterion) {
    let mut group = c.benchmark_group("gtm_nondet");
    group.sample_size(10);
    let tm = queries::coin_writer();
    let compiled = compile_tm(&tm, 2, 2);
    group.bench_function("coin_writer_outcomes", |b| {
        b.iter(|| {
            let tapes = compiled
                .accepting_tapes(&[], &EnumBudget::default())
                .expect("succeeds");
            assert_eq!(tapes.len(), 2);
            tapes
        })
    });
    group.finish();
}

criterion_group!(benches, bench_gtm, bench_gtm_nondet);
criterion_main!(benches);
