//! Enumeration bench: all-answers walks — factorial growth for unbounded
//! tid uses vs the falling-factorial k-prefix walk when the tid is bounded
//! (the paper's footnote 6/7 optimization).
//!
//! Shape to hold: the unbounded walk explodes with group size; the bounded
//! walk grows linearly (k = 1) and stays usable.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use idlog_bench::emp_db;
use idlog_core::{EnumBudget, EvalOptions, Interner, Query};

fn bench_enumeration(c: &mut Criterion) {
    let mut group = c.benchmark_group("enumeration");
    group.sample_size(10);
    let budget = EnumBudget {
        max_models: 1_000_000,
        max_answers: 1_000_000,
    };

    for emps in [4usize, 5, 6] {
        let interner = Arc::new(Interner::new());
        let db = emp_db(&interner, 1, emps);

        // Bounded: only tid 0 observable → `emps` arrangements.
        let bounded = Query::parse_with_interner(
            "pick(N) :- emp[2](N, D, 0).",
            "pick",
            Arc::clone(&interner),
        )
        .expect("fixture parses");
        group.bench_with_input(BenchmarkId::new("bounded_tid0", emps), &db, |b, db| {
            b.iter(|| {
                let a = bounded
                    .session(db)
                    .budget(budget)
                    .all_answers()
                    .expect("enumeration succeeds");
                assert_eq!(a.models_explored(), emps as u64);
                a
            })
        });

        // Certified: the non-grouping variable stays local, so the taint
        // analysis certifies the query and one canonical evaluation
        // replaces the walk. The `_no_fastpath` twin measures what the
        // certification saves.
        let certified = Query::parse_with_interner(
            "all_depts(D) :- emp[2](N, D, 0).",
            "all_depts",
            Arc::clone(&interner),
        )
        .expect("fixture parses");
        assert!(certified.certified_deterministic());
        group.bench_with_input(
            BenchmarkId::new("certified_fastpath", emps),
            &db,
            |b, db| {
                b.iter(|| {
                    let a = certified
                        .session(db)
                        .budget(budget)
                        .all_answers()
                        .expect("enumeration succeeds");
                    assert_eq!(a.models_explored(), 1);
                    a
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("certified_no_fastpath", emps),
            &db,
            |b, db| {
                b.iter(|| {
                    certified
                        .session(db)
                        .options(EvalOptions::new().budget(budget).det_fastpath(false))
                        .all_answers()
                        .expect("enumeration succeeds")
                })
            },
        );

        // Unbounded: the tid escapes into the head → emps! permutations.
        let unbounded = Query::parse_with_interner(
            "pick(N, T) :- emp[2](N, D, T).",
            "pick",
            Arc::clone(&interner),
        )
        .expect("fixture parses");
        group.bench_with_input(BenchmarkId::new("unbounded_full", emps), &db, |b, db| {
            b.iter(|| {
                unbounded
                    .session(db)
                    .budget(budget)
                    .all_answers()
                    .expect("enumeration succeeds")
            })
        });
    }
    group.finish();
}

fn bench_parallel(c: &mut Criterion) {
    let mut group = c.benchmark_group("enumeration_parallel");
    group.sample_size(10);
    let budget = EnumBudget {
        max_models: 1_000_000,
        max_answers: 1_000_000,
    };
    let interner = Arc::new(Interner::new());
    let db = emp_db(&interner, 1, 7);
    let q = Query::parse_with_interner(
        "pick(N, T) :- emp[2](N, D, T).",
        "pick",
        Arc::clone(&interner),
    )
    .expect("fixture parses");
    group.bench_function("sequential_7fact", |b| {
        b.iter(|| {
            q.session(&db)
                .threads(1)
                .budget(budget)
                .all_answers()
                .expect("enumeration succeeds")
        })
    });
    group.bench_function("parallel_7fact", |b| {
        b.iter(|| {
            q.session(&db)
                .budget(budget)
                .all_answers()
                .expect("enumeration succeeds")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_enumeration, bench_parallel);
criterion_main!(benches);
