//! E6 bench: n-per-group sampling — the choice-operator emulation (n choice
//! rounds + n(n−1)/2 disequality tests) vs the IDLOG `tid < n` literal.
//!
//! Paper shape to hold (§3.3): the emulation's cost grows superlinearly in
//! n ("a considerable amount of overhead … may not be avoidable"), IDLOG's
//! stays essentially flat.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use idlog_bench::{choice_sampling_src, emp_db, idlog_sampling_src, run_canonical};
use idlog_core::Interner;

fn bench_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("sampling_cost");
    group.sample_size(10);

    let interner = Arc::new(Interner::new());
    let db = emp_db(&interner, 3, 8);

    for n in [1usize, 2, 3, 4] {
        let idlog_src = idlog_sampling_src(n);
        group.bench_with_input(BenchmarkId::new("idlog", n), &db, |b, db| {
            b.iter(|| run_canonical(&idlog_src, "select_n", db))
        });

        let choice_ast =
            idlog_core::parse_program(&choice_sampling_src(n), &interner).expect("fixture parses");
        group.bench_with_input(BenchmarkId::new("choice_emulation", n), &db, |b, db| {
            b.iter(|| {
                idlog_choice::one_intended_model(&choice_ast, &interner, db, "select_n", Some(7))
                    .expect("fixture evaluates")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sampling);
criterion_main!(benches);
