//! E11 bench: direct DATALOG^C evaluation vs the Theorem 2 translation run
//! through the IDLOG engine — same answers, bounded translation overhead.
//!
//! Shape to hold: the translated program's single-model evaluation is within
//! a small constant factor of the direct two-phase KN88 evaluation.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use idlog_bench::emp_db;
use idlog_core::{Interner, Query, ValidatedProgram};

fn bench_translation(c: &mut Criterion) {
    let mut group = c.benchmark_group("choice_translate");
    group.sample_size(10);

    for (depts, emps) in [(5usize, 10usize), (10, 40), (20, 80)] {
        let interner = Arc::new(Interner::new());
        let db = emp_db(&interner, depts, emps);
        let label = format!("{depts}x{emps}");

        let src = "select_emp(N) :- emp(N, D), choice((D), (N)).";
        let ast = idlog_core::parse_program(src, &interner).expect("fixture parses");

        group.bench_with_input(BenchmarkId::new("direct_kn88", &label), &db, |b, db| {
            b.iter(|| {
                idlog_choice::one_intended_model(&ast, &interner, db, "select_emp", None)
                    .expect("fixture evaluates")
            })
        });

        let translated =
            idlog_choice::to_idlog::to_idlog(&ast, &interner).expect("translation succeeds");
        let validated = ValidatedProgram::new(translated, Arc::clone(&interner))
            .expect("translated program validates");
        let q = Query::new(validated, "select_emp").expect("output exists");
        group.bench_with_input(BenchmarkId::new("via_idlog", &label), &db, |b, db| {
            b.iter(|| q.session(db).run().expect("fixture evaluates").relation)
        });
    }
    group.finish();
}

criterion_group!(benches, bench_translation);
criterion_main!(benches);
