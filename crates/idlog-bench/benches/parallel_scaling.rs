//! Parallel round-execution scaling: the same fixpoint at 1/2/4/8 worker
//! threads.
//!
//! Shape to hold: workloads with wide per-round deltas (transitive closure
//! and same-generation on grids) speed up with threads on multi-core hosts,
//! while the chain — whose deltas mostly stay under the parallel threshold —
//! is unaffected. Results are byte-identical at every thread count (see the
//! `determinism` suite in `idlog-core`); this bench only measures time.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use idlog_bench::{chain_db, grid_db};
use idlog_core::{
    evaluate_with_options, CanonicalOracle, EvalOptions, Interner, Limits, ValidatedProgram,
};

const THREADS: [usize; 4] = [1, 2, 4, 8];

const TC_SRC: &str = "tc(X, Y) :- e(X, Y). tc(X, Y) :- e(X, Z), tc(Z, Y).";
const SG_SRC: &str = "sg(X, X) :- person(X). sg(X, Y) :- par(X, XP), sg(XP, YP), par(Y, YP).";

/// Generous ceilings a terminating fixture never reaches: the measured cost
/// is pure governance bookkeeping (per-item polls + barrier checks).
fn generous_limits() -> Limits {
    Limits {
        deadline: Some(std::time::Duration::from_secs(3600)),
        max_rounds: Some(1_000_000),
        max_tuples: Some(1_000_000_000),
        max_bytes: Some(1 << 40),
    }
}

fn bench_workload(c: &mut Criterion, group_name: &str, src: &str, db: &idlog_storage::Database) {
    bench_workload_with(c, group_name, src, db, Limits::none());
}

fn bench_workload_with(
    c: &mut Criterion,
    group_name: &str,
    src: &str,
    db: &idlog_storage::Database,
    limits: Limits,
) {
    let program =
        ValidatedProgram::parse(src, Arc::clone(db.interner())).expect("fixture validates");
    let mut group = c.benchmark_group(group_name);
    group.sample_size(10);
    for threads in THREADS {
        group.bench_with_input(BenchmarkId::from_parameter(threads), db, |b, db| {
            let options = EvalOptions::new().threads(threads).limits(limits);
            b.iter(|| {
                evaluate_with_options(&program, db, &mut CanonicalOracle, &options)
                    .expect("fixture evaluates")
            })
        });
    }
    group.finish();
}

fn bench_parallel_scaling(c: &mut Criterion) {
    let interner = Arc::new(Interner::new());
    // Narrow deltas: stays on the serial path, measures scheduling overhead.
    bench_workload(
        c,
        "parallel_scaling/tc_chain_128",
        TC_SRC,
        &chain_db(&interner, 128),
    );
    // Wide deltas: the sharded scoped-pool path.
    let interner = Arc::new(Interner::new());
    bench_workload(
        c,
        "parallel_scaling/tc_grid_16x16",
        TC_SRC,
        &grid_db(&interner, 16, 16),
    );
    let interner = Arc::new(Interner::new());
    bench_workload(
        c,
        "parallel_scaling/sg_grid_16x16",
        SG_SRC,
        &grid_db(&interner, 16, 16),
    );
    // The same wide-delta fixture under full governance: the delta against
    // tc_grid_16x16 is the governor's overhead (budgeted at < 2%).
    let interner = Arc::new(Interner::new());
    bench_workload_with(
        c,
        "parallel_scaling/tc_grid_16x16_governed",
        TC_SRC,
        &grid_db(&interner, 16, 16),
        generous_limits(),
    );
}

criterion_group!(benches, bench_parallel_scaling);
criterion_main!(benches);
