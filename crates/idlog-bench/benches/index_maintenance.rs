//! Before/after check for the index-maintenance fix: the legacy
//! [`idlog_storage::Index`] clones every tuple into per-key `Vec<Tuple>`
//! and had to be rebuilt from scratch every semi-naive round, while the
//! storage backends keep offset-based indexes that absorb each delta batch
//! incrementally.
//!
//! Shape to hold: the incremental path stays ahead of the rebuild path,
//! and its advantage grows with the number of rounds (rebuild is
//! quadratic in total tuples, maintenance is linear).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use idlog_common::{Tuple, Value};
use idlog_core::Interner;
use idlog_storage::{BackendKind, Index, Relation};

const ROUNDS: usize = 16;
const DELTA: usize = 256;
const KEYS: usize = 32;

/// Per-round delta batches of arity-2 symbol tuples, plus the probe keys
/// (every value of the first column).
fn fixture(interner: &Arc<Interner>) -> (Vec<Vec<Tuple>>, Vec<Tuple>) {
    let keys: Vec<Tuple> = (0..KEYS)
        .map(|k| Tuple::from(vec![Value::Sym(interner.intern(&format!("k{k}")))]))
        .collect();
    let deltas: Vec<Vec<Tuple>> = (0..ROUNDS)
        .map(|r| {
            (0..DELTA)
                .map(|i| {
                    Tuple::from(vec![
                        Value::Sym(interner.intern(&format!("k{}", i % KEYS))),
                        Value::Sym(interner.intern(&format!("v{r}_{i}"))),
                    ])
                })
                .collect()
        })
        .collect();
    (deltas, keys)
}

/// Probing every key after every round touches each stored tuple once per
/// round: round r (1-based) holds r·DELTA tuples.
const EXPECTED_HITS: usize = DELTA * ROUNDS * (ROUNDS + 1) / 2;

fn bench_index_maintenance(c: &mut Criterion) {
    let interner = Arc::new(Interner::new());
    let (deltas, keys) = fixture(&interner);
    let mut group = c.benchmark_group("index_maintenance");
    group.sample_size(10);

    // Before: rebuild a cloning index from the whole relation every round.
    group.bench_function("legacy_rebuild_per_round", |b| {
        b.iter(|| {
            let mut rel = Relation::elementary(2);
            let mut hits = 0usize;
            for delta in &deltas {
                let refs: Vec<&Tuple> = delta.iter().collect();
                rel.delta_batch_insert(&refs);
                let idx = Index::build(&rel, &[0]);
                for key in &keys {
                    hits += idx.probe(key).len();
                }
            }
            assert_eq!(hits, EXPECTED_HITS);
            hits
        })
    });

    // After: one offset index per backend, maintained from the deltas.
    for backend in [BackendKind::Hash, BackendKind::Columnar] {
        group.bench_with_input(
            BenchmarkId::new("incremental", backend),
            &backend,
            |b, &backend| {
                b.iter(|| {
                    let mut rel = Relation::elementary(2).to_backend(backend);
                    rel.ensure_index(&[0]);
                    let mut hits = 0usize;
                    for delta in &deltas {
                        let refs: Vec<&Tuple> = delta.iter().collect();
                        rel.delta_batch_insert(&refs);
                        for key in &keys {
                            hits += rel.probe(&[0], key).len();
                        }
                    }
                    assert_eq!(hits, EXPECTED_HITS);
                    hits
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_index_maintenance);
criterion_main!(benches);
