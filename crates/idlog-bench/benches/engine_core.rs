//! Engine baseline bench: semi-naive transitive closure and same-generation
//! throughput — the substrate every other experiment sits on.
//!
//! Shape to hold: time grows polynomially with input size, no pathological
//! blowup from the delta rewriting or index maintenance.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use idlog_bench::{chain_db, tree_db};
use idlog_core::{Interner, Query};

fn bench_tc(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_tc");
    group.sample_size(10);
    for n in [50usize, 100, 200] {
        let interner = Arc::new(Interner::new());
        let db = chain_db(&interner, n);
        let q = Query::parse_with_interner(
            "tc(X, Y) :- e(X, Y). tc(X, Y) :- e(X, Z), tc(Z, Y).",
            "tc",
            interner,
        )
        .expect("fixture parses");
        group.bench_with_input(BenchmarkId::new("chain", n), &db, |b, db| {
            b.iter(|| {
                let rel = q.session(db).run().expect("fixture evaluates").relation;
                assert_eq!(rel.len(), n * (n + 1) / 2);
                rel
            })
        });
    }
    group.finish();
}

fn bench_same_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_sg");
    group.sample_size(10);
    for levels in [4u32, 6, 8] {
        let interner = Arc::new(Interner::new());
        let db = tree_db(&interner, levels);
        let q = Query::parse_with_interner(
            "sg(X, X) :- person(X).
             sg(X, Y) :- par(X, XP), sg(XP, YP), par(Y, YP).",
            "sg",
            interner,
        )
        .expect("fixture parses");
        group.bench_with_input(BenchmarkId::new("tree_levels", levels), &db, |b, db| {
            b.iter(|| q.session(db).run().expect("fixture evaluates").relation)
        });
    }
    group.finish();
}

criterion_group!(benches, bench_tc, bench_same_generation);
criterion_main!(benches);
