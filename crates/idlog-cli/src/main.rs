//! `idlog` — command-line front end for the IDLOG deductive database.

use std::process::ExitCode;

use idlog_cli::{args, run, Args};

fn main() -> ExitCode {
    let args = match Args::parse(std::env::args().skip(1)) {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("error: {msg}\n");
            eprint!("{}", args::USAGE);
            return ExitCode::from(2);
        }
    };
    match run(args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}
