//! `idlog` — command-line front end for the IDLOG deductive database.
//!
//! Exit codes: 0 success, 1 failure, 2 usage error, 3 resource limit
//! tripped, 130 interrupted (see `idlog help`).

#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

use std::process::ExitCode;

use idlog_cli::{args, run, signal, Args};

fn main() -> ExitCode {
    signal::install_ctrlc();
    let args = match Args::parse(std::env::args().skip(1)) {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("error: {msg}\n");
            eprint!("{}", args::USAGE);
            return ExitCode::from(2);
        }
    };
    match run(args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(e.exit_code())
        }
    }
}
