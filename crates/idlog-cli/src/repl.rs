//! The interactive session: enter clauses and facts, ask queries.
//!
//! ```text
//! idlog> emp(ann, sales).                  % ground fact -> database
//! idlog> pick(N) :- emp[2](N, D, 0).       % rule -> program
//! idlog> ?- pick.                          % one answer (current oracle)
//! idlog> :all pick                         % the full answer set
//! idlog> :seed 42                          % switch to a seeded oracle
//! idlog> :list                             % show program and facts
//! idlog> :quit
//! ```
//!
//! The REPL is generic over reader/writer so tests can drive it with
//! strings.

use std::io::{BufRead, Write};
use std::sync::Arc;
use std::time::Duration;

use idlog_core::{BackendKind, EnumBudget, Interner, Query, Strategy, ValidatedProgram};
use idlog_storage::Database;

use crate::args::{parse_backend_name, parse_duration, parse_strategy_name};
use crate::{options_for, oracle_for, signal};

/// REPL state: accumulated rule sources and the fact database.
///
/// Robustness contract: a failed evaluation (limit trip, Ctrl-C, arithmetic
/// overflow, even a contained engine panic) reports an `error:` line and
/// leaves every piece of this state — rules, facts, `:seed`, `:threads`,
/// `:profile`, `:timeout`, `:backend`, `:strategy` — exactly as it was.
struct Session {
    interner: Arc<Interner>,
    rules: Vec<String>,
    db: Database,
    seed: Option<u64>,
    threads: Option<usize>,
    profile: bool,
    timeout: Option<Duration>,
    backend: BackendKind,
    strategy: Strategy,
}

/// Run the REPL until `:quit` or end of input.
pub fn run(input: &mut dyn BufRead, out: &mut dyn Write) -> Result<(), String> {
    let interner = Arc::new(Interner::new());
    let mut session = Session {
        db: Database::with_interner(Arc::clone(&interner)),
        interner,
        rules: Vec::new(),
        seed: None,
        threads: None,
        profile: false,
        timeout: None,
        backend: BackendKind::default(),
        strategy: Strategy::default(),
    };
    let io = |e: std::io::Error| format!("i/o error: {e}");

    writeln!(out, "idlog interactive session — :help for commands").map_err(io)?;
    loop {
        write!(out, "idlog> ").map_err(io)?;
        out.flush().map_err(io)?;
        let mut line = String::new();
        if input.read_line(&mut line).map_err(io)? == 0 {
            writeln!(out).map_err(io)?;
            return Ok(());
        }
        let line = line.trim();
        if line.is_empty() || line.starts_with('%') {
            continue;
        }
        match session.step(line) {
            Ok(Reply::Quit) => return Ok(()),
            Ok(Reply::Text(t)) => {
                if !t.is_empty() {
                    writeln!(out, "{t}").map_err(io)?;
                }
            }
            Err(msg) => writeln!(out, "error: {msg}").map_err(io)?,
        }
    }
}

enum Reply {
    Text(String),
    Quit,
}

const HELP: &str = "\
  <fact>.            add a ground fact, e.g. emp(ann, sales).
  <head> :- <body>.  add a rule
  ?- <pred>.         evaluate one answer for <pred>
  :all <pred>        enumerate the full answer set
  :seed <n>          use a seeded random oracle (\":seed off\" for canonical)
  :threads <n>       worker threads for evaluation (\":threads auto\" for the
                     default; answers never depend on the thread count)
  :profile on|off    print the per-rule evaluation profile after ?- queries
  :backend <name>    storage backend: hash (default) or columnar; answers
                     and statistics never depend on it
  :strategy <name>   evaluation strategy: seminaive (default), naive, or
                     magic (goal-directed; refused with a witness when the
                     relevance analysis cannot certify the query)
  :timeout <dur>     wall-clock budget per query, e.g. 500ms, 2s
                     (\":timeout off\" to lift it); Ctrl-C also stops a
                     running query — session state survives either way
  :list              show the current program and fact counts
  :analyze           determinism, termination, and goal-directed relevance
                     certificates for the accumulated rules
  :help              this text
  :quit              leave";

impl Session {
    fn step(&mut self, line: &str) -> Result<Reply, String> {
        if let Some(cmd) = line.strip_prefix(':') {
            return self.command(cmd.trim());
        }
        if let Some(query) = line.strip_prefix("?-") {
            let pred = query.trim().trim_end_matches('.').trim();
            return self.query(pred, false);
        }
        self.add_clause(line)
    }

    fn command(&mut self, cmd: &str) -> Result<Reply, String> {
        let (word, rest) = cmd.split_once(' ').unwrap_or((cmd, ""));
        match word {
            "quit" | "q" | "exit" => Ok(Reply::Quit),
            "help" | "h" => Ok(Reply::Text(HELP.to_string())),
            "list" | "l" => {
                let mut text = String::new();
                for r in &self.rules {
                    text.push_str(r);
                    text.push('\n');
                }
                for name in self.db.predicate_names() {
                    let n = self.db.relation(&name).map_or(0, |r| r.len());
                    text.push_str(&format!("% {name}: {n} fact(s)\n"));
                }
                Ok(Reply::Text(text.trim_end().to_string()))
            }
            "seed" => {
                let rest = rest.trim();
                if rest == "off" || rest.is_empty() {
                    self.seed = None;
                    Ok(Reply::Text("oracle: canonical".into()))
                } else {
                    let n: u64 = rest
                        .parse()
                        .map_err(|_| ":seed expects a number or `off`")?;
                    self.seed = Some(n);
                    Ok(Reply::Text(format!("oracle: seeded({n})")))
                }
            }
            "threads" => {
                let rest = rest.trim();
                if rest == "auto" || rest.is_empty() {
                    self.threads = None;
                    Ok(Reply::Text("threads: auto".into()))
                } else {
                    let n: usize = rest
                        .parse()
                        .ok()
                        .filter(|&n| n > 0)
                        .ok_or(":threads expects a positive number or `auto`")?;
                    self.threads = Some(n);
                    Ok(Reply::Text(format!("threads: {n}")))
                }
            }
            "profile" => {
                let rest = rest.trim();
                match rest {
                    "on" => self.profile = true,
                    "off" => self.profile = false,
                    "" => self.profile = !self.profile,
                    _ => return Err(":profile expects `on` or `off`".into()),
                }
                Ok(Reply::Text(format!(
                    "profile: {}",
                    if self.profile { "on" } else { "off" }
                )))
            }
            "timeout" => {
                let rest = rest.trim();
                if rest == "off" || rest.is_empty() {
                    self.timeout = None;
                    Ok(Reply::Text("timeout: off".into()))
                } else {
                    let d = parse_duration(rest).map_err(|e| format!(":timeout: {e}"))?;
                    self.timeout = Some(d);
                    Ok(Reply::Text(format!("timeout: {}ms", d.as_millis())))
                }
            }
            "backend" => {
                let rest = rest.trim();
                if !rest.is_empty() {
                    self.backend =
                        parse_backend_name(rest).map_err(|e| format!(":backend: {e}"))?;
                }
                Ok(Reply::Text(format!("backend: {}", self.backend)))
            }
            "strategy" => {
                let rest = rest.trim();
                if !rest.is_empty() {
                    self.strategy =
                        parse_strategy_name(rest).map_err(|e| format!(":strategy: {e}"))?;
                }
                Ok(Reply::Text(format!("strategy: {}", self.strategy)))
            }
            "analyze" => self.analyze(),
            "all" | "a" => self.query(rest.trim().trim_end_matches('.').trim(), true),
            other => Err(format!("unknown command :{other} (try :help)")),
        }
    }

    /// `:analyze`: determinism and termination certificates for the
    /// accumulated rules, against the facts loaded so far.
    fn analyze(&self) -> Result<Reply, String> {
        if self.rules.is_empty() {
            return Ok(Reply::Text("no rules to analyze yet".into()));
        }
        let program = ValidatedProgram::parse(&self.rules.join("\n"), Arc::clone(&self.interner))
            .map_err(|e| e.to_string())?;
        let taint = idlog_core::analyze_taint(program.ast());
        let cert = idlog_core::analyze_termination(program.ast());
        let mut derived: Vec<String> = program
            .idb()
            .iter()
            .map(|&p| self.interner.resolve(p))
            .collect();
        derived.sort();
        let mut text = String::new();
        for name in &derived {
            let Some(id) = self.interner.get(name) else {
                continue;
            };
            let det = if taint.deterministic(id) {
                "deterministic"
            } else {
                "possibly non-deterministic"
            };
            let kind = cert.recursion_kind(id);
            text.push_str(&format!("{name}: {det}, {} recursion", kind.as_str()));
            if !cert.pred_bounded(id) {
                text.push_str(", possibly unbounded");
            }
            text.push('\n');
        }
        if cert.bounded() {
            match cert.round_bound(&self.db) {
                Some(b) => text.push_str(&format!(
                    "termination: certified bounded; round ceiling {b} for the current facts"
                )),
                None => text.push_str("termination: certified bounded"),
            }
        } else if cert.growth_witness().is_some() {
            text.push_str(
                "termination: possibly diverging (run `idlog lint` for the W020 witness)",
            );
        } else {
            text.push_str("termination: not certified (outside the analyzed fragment)");
        }
        text.push('\n');
        // Relevance: would `:strategy magic` accept a query at each root?
        let bodies = program.ast().body_predicates();
        let mut seen = std::collections::HashSet::new();
        for clause in &program.ast().clauses {
            for head in &clause.head {
                let root = head.atom.pred.base();
                if bodies.contains(&root) || !seen.insert(root) {
                    continue;
                }
                let name = self.interner.resolve(root);
                let analysis = idlog_core::analyze_relevance(program.ast(), root);
                let line = if let Some(r) = analysis.refusal() {
                    match r.reason {
                        idlog_core::RefusalReason::Floundering => format!(
                            "relevance: {name} refuses magic (flounders under the \
                             left-to-right SIPS, W030)"
                        ),
                        idlog_core::RefusalReason::ChoiceSite => format!(
                            "relevance: {name} refuses magic (blocked by a choice \
                             site, W031)"
                        ),
                    }
                } else if analysis.is_point_query() {
                    let adorned: Vec<String> = analysis
                        .adorned()
                        .iter()
                        .map(|a| a.display(&self.interner))
                        .collect();
                    format!(
                        "relevance: {name} is a certified point query (H020); \
                         reaches {}",
                        adorned.join(", ")
                    )
                } else {
                    format!("relevance: {name} has no bound positions; magic would not prune")
                };
                text.push_str(&line);
                text.push('\n');
            }
        }
        Ok(Reply::Text(text.trim_end().to_string()))
    }

    fn add_clause(&mut self, line: &str) -> Result<Reply, String> {
        let clause = idlog_parser::parse_clause(line, &self.interner).map_err(|e| e.to_string())?;
        if clause.is_fact() {
            // Ground fact: straight into the database.
            idlog_core::load_facts(line, &mut self.db).map_err(|e| e.to_string())?;
            return Ok(Reply::Text(String::new()));
        }
        // Rule: validate the whole accumulated program before accepting.
        let mut rules = self.rules.clone();
        rules.push(line.to_string());
        ValidatedProgram::parse(&rules.join("\n"), Arc::clone(&self.interner))
            .map_err(|e| e.to_string())?;
        self.rules = rules;
        Ok(Reply::Text(String::new()))
    }

    fn query(&mut self, pred: &str, all: bool) -> Result<Reply, String> {
        if pred.is_empty() {
            return Err("query needs a predicate name".into());
        }
        let program = ValidatedProgram::parse(&self.rules.join("\n"), Arc::clone(&self.interner))
            .map_err(|e| e.to_string())?;
        let query = Query::new(program, pred).map_err(|e| e.to_string())?;
        let mut options = options_for(self.threads)
            .backend(self.backend)
            .strategy(self.strategy);
        if let Some(t) = self.timeout {
            options = options.deadline(t);
        }
        // A fresh token per query: a Ctrl-C from a previous (finished)
        // evaluation must not cancel this one.
        let token = signal::token();
        token.reset();
        if all {
            let answers = query
                .session(&self.db)
                .options(options.budget(EnumBudget::default()))
                .cancel_token(token)
                .all_answers()
                .map_err(|e| e.to_string())?;
            let note = match answers.stopped() {
                None => String::new(),
                Some(reason) => format!(" ({reason}; incomplete)"),
            };
            let mut text = format!(
                "{} answer(s) from {} model(s){}:",
                answers.len(),
                answers.models_explored(),
                note
            );
            for ans in answers.to_sorted_strings(&self.interner) {
                text.push_str(&format!("\n  {{{}}}", ans.join(", ")));
            }
            Ok(Reply::Text(text))
        } else {
            let mut oracle = oracle_for(self.seed);
            let result = query
                .session(&self.db)
                .options(options.profile(self.profile))
                .cancel_token(token)
                .run_with(oracle.as_mut())
                .map_err(|e| e.to_string())?;
            let mut text = String::new();
            if result.relation.is_empty() {
                text.push_str("(empty)\n");
            }
            for t in result.relation.sorted_canonical(&self.interner) {
                text.push_str(&format!("{pred}{}\n", t.display(&self.interner)));
            }
            if let Some(profile) = &result.profile {
                text.push_str(&profile.render_table(false));
            }
            Ok(Reply::Text(text.trim_end().to_string()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(script: &str) -> String {
        let mut input = std::io::Cursor::new(script.to_string());
        let mut out: Vec<u8> = Vec::new();
        run(&mut input, &mut out).unwrap();
        String::from_utf8(out).unwrap()
    }

    #[test]
    fn facts_rules_and_query() {
        let out = drive(
            "emp(ann, sales).\n\
             emp(bob, sales).\n\
             pick(N) :- emp[2](N, D, 0).\n\
             ?- pick.\n\
             :quit\n",
        );
        assert!(out.contains("pick(ann)"), "{out}");
    }

    #[test]
    fn all_answers_command() {
        let out = drive("item(a).\nitem(b).\npick(X) :- item[](X, 0).\n:all pick\n:quit\n");
        assert!(out.contains("2 answer(s)"), "{out}");
        assert!(out.contains("{(a)}"), "{out}");
        assert!(out.contains("{(b)}"), "{out}");
    }

    #[test]
    fn analyze_reports_certificates() {
        let out = drive(
            "e(a, b).\ne(b, c).\n\
             tc(X, Y) :- e(X, Y).\n\
             tc(X, Z) :- tc(X, Y), e(Y, Z).\n\
             :analyze\n\
             :quit\n",
        );
        assert!(out.contains("tc: deterministic, linear recursion"), "{out}");
        assert!(out.contains("certified bounded; round ceiling"), "{out}");

        let growing = drive(
            "n(0).\n\
             n(M) :- n(N), succ(N, M).\n\
             :analyze\n\
             :quit\n",
        );
        assert!(growing.contains("possibly unbounded"), "{growing}");
        assert!(growing.contains("possibly diverging"), "{growing}");

        let empty = drive(":analyze\n:quit\n");
        assert!(empty.contains("no rules to analyze yet"), "{empty}");
    }

    #[test]
    fn strategy_switching_and_magic_query() {
        let out = drive(
            "parent(a, b).\nparent(b, c).\nparent(x, y).\n\
             anc(X, Y) :- parent(X, Y).\n\
             anc(X, Z) :- anc(X, Y), parent(Y, Z).\n\
             q(Y) :- anc(a, Y).\n\
             :strategy magic\n\
             ?- q.\n\
             :strategy\n\
             :strategy seminaive\n\
             :strategy earley\n\
             :quit\n",
        );
        assert!(out.contains("strategy: magic"), "{out}");
        assert!(out.contains("q(b)") && out.contains("q(c)"), "{out}");
        assert!(!out.contains("q(y)"), "irrelevant fact derived: {out}");
        assert!(out.contains("strategy: seminaive"), "{out}");
        assert!(out.contains("error: :strategy:"), "{out}");
        // The bare `:strategy` after switching reports the current value.
        assert_eq!(out.matches("strategy: magic").count(), 2, "{out}");
    }

    #[test]
    fn magic_refusal_is_an_error_line_and_state_survives() {
        let out = drive(
            "likes(ann, tea).\nlikes(bob, mud).\n\
             pick(X, Y) :- likes[1](X, Y, 0).\n\
             q(Y) :- pick(ann, Y).\n\
             :strategy magic\n\
             ?- q.\n\
             :strategy seminaive\n\
             ?- q.\n\
             :quit\n",
        );
        assert!(out.contains("error:"), "{out}");
        assert!(out.contains("choice site"), "{out}");
        assert!(out.contains("witness"), "{out}");
        assert!(out.contains("q(tea)"), "retry after refusal failed: {out}");
    }

    #[test]
    fn analyze_reports_relevance() {
        let out = drive(
            "parent(a, b).\n\
             anc(X, Y) :- parent(X, Y).\n\
             anc(X, Z) :- anc(X, Y), parent(Y, Z).\n\
             q(Y) :- anc(a, Y).\n\
             :analyze\n\
             :quit\n",
        );
        assert!(
            out.contains("relevance: q is a certified point query (H020)"),
            "{out}"
        );
        assert!(out.contains("reaches anc^bf"), "{out}");
    }

    #[test]
    fn seed_switching_and_list() {
        let out = drive("item(a).\n:seed 7\n:list\n:seed off\n:quit\n");
        assert!(out.contains("oracle: seeded(7)"), "{out}");
        assert!(out.contains("% item: 1 fact(s)"), "{out}");
        assert!(out.contains("oracle: canonical"), "{out}");
    }

    #[test]
    fn threads_switching_and_query() {
        let out = drive(
            "e(a, b).\ne(b, c).\n\
             tc(X, Y) :- e(X, Y).\n\
             tc(X, Y) :- e(X, Z), tc(Z, Y).\n\
             :threads 4\n\
             ?- tc.\n\
             :threads auto\n\
             :threads 0\n\
             :quit\n",
        );
        assert!(out.contains("threads: 4"), "{out}");
        assert!(out.contains("tc(a, c)") || out.contains("tc(a,c)"), "{out}");
        assert!(out.contains("threads: auto"), "{out}");
        assert!(out.contains("error:"), "{out}");
    }

    #[test]
    fn backend_switching_and_query() {
        let out = drive(
            "e(a, b).\ne(b, c).\n\
             tc(X, Y) :- e(X, Y).\n\
             tc(X, Y) :- e(X, Z), tc(Z, Y).\n\
             :backend columnar\n\
             ?- tc.\n\
             :backend\n\
             :backend hash\n\
             :backend btree\n\
             :quit\n",
        );
        assert!(out.contains("backend: columnar"), "{out}");
        assert!(out.contains("tc(a, c)"), "{out}");
        assert!(out.contains("backend: hash"), "{out}");
        assert!(out.contains("error: :backend:"), "{out}");
        // The bare `:backend` after switching reports the current value.
        assert_eq!(out.matches("backend: columnar").count(), 2, "{out}");
    }

    #[test]
    fn profile_toggle_prints_table_after_queries() {
        let out = drive(
            "emp(ann, sales).\n\
             emp(bob, sales).\n\
             pick(N) :- emp[2](N, D, 0).\n\
             :profile on\n\
             ?- pick.\n\
             :profile off\n\
             ?- pick.\n\
             :profile nope\n\
             :quit\n",
        );
        assert!(out.contains("profile: on"), "{out}");
        assert!(out.contains("evaluation profile"), "{out}");
        assert!(out.contains("totals: instantiations="), "{out}");
        assert!(out.contains("profile: off"), "{out}");
        assert!(out.contains("error: :profile expects"), "{out}");
        // After switching off, only one table was printed.
        assert_eq!(out.matches("evaluation profile").count(), 1, "{out}");
    }

    #[test]
    fn timeout_set_and_clear() {
        let out = drive(
            "item(a).\n\
             pick(X) :- item[](X, 0).\n\
             :timeout 2s\n\
             ?- pick.\n\
             :timeout off\n\
             :timeout soon\n\
             :quit\n",
        );
        assert!(out.contains("timeout: 2000ms"), "{out}");
        assert!(out.contains("pick(a)"), "{out}");
        assert!(out.contains("timeout: off"), "{out}");
        assert!(out.contains("error: :timeout:"), "{out}");
    }

    #[test]
    fn timeout_trip_reports_error_and_keeps_state() {
        // A diverging program: with a zero wall-clock budget the query must
        // come back as an `error:` line, and the session must still answer
        // other queries with its settings intact.
        let out = drive(
            "count(0).\n\
             count(M) :- count(N), plus(N, 1, M).\n\
             item(a).\n\
             pick(X) :- item[](X, 0).\n\
             :threads 2\n\
             :timeout 0ms\n\
             ?- count.\n\
             :timeout off\n\
             :profile on\n\
             ?- pick.\n\
             :list\n\
             :quit\n",
        );
        assert!(out.contains("error:"), "{out}");
        assert!(out.contains("profile: on"), "{out}");
        assert!(out.contains("pick(a)"), "{out}");
        assert!(out.contains("evaluation profile"), "{out}");
        assert!(out.contains("% item: 1 fact(s)"), "{out}");
    }

    #[test]
    fn errors_are_reported_not_fatal() {
        let out = drive(
            "this is not valid ???\n\
             item(a).\n\
             ?- missing.\n\
             :quit\n",
        );
        assert!(out.contains("error:"), "{out}");
    }

    #[test]
    fn eof_ends_the_session() {
        let out = drive("item(a).\n");
        assert!(out.contains("idlog>"), "{out}");
    }

    #[test]
    fn bad_rule_is_rejected_and_not_kept() {
        let out = drive(
            "p(X, Y) :- q(X).\n\
             q(a).\n\
             p2(X) :- q(X).\n\
             ?- p2.\n\
             :quit\n",
        );
        assert!(out.contains("error:"), "{out}");
        assert!(out.contains("p2(a)"), "{out}");
    }
}
