//! Ctrl-C wiring: one process-wide [`CancelToken`] that the SIGINT handler
//! trips.
//!
//! The handler body is a single atomic store ([`CancelToken::cancel`] is
//! async-signal-safe), so no locks, allocation, or I/O happen in signal
//! context. Every governed evaluation polls the token at work-item
//! boundaries and unwinds cleanly with a partial result — the process never
//! dies mid-merge.

use std::sync::OnceLock;

use idlog_core::CancelToken;

static TOKEN: OnceLock<CancelToken> = OnceLock::new();

/// The process-wide cancellation token. Call [`CancelToken::reset`] before
/// each interactive evaluation so a stale Ctrl-C does not cancel the next
/// query.
pub fn token() -> CancelToken {
    TOKEN.get_or_init(CancelToken::new).clone()
}

/// Install the SIGINT handler (no-op off Unix). Safe to call more than
/// once.
#[cfg(unix)]
pub fn install_ctrlc() {
    extern "C" fn on_sigint(_signum: i32) {
        if let Some(token) = TOKEN.get() {
            token.cancel();
        }
    }

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> isize;
    }
    const SIGINT: i32 = 2;

    // Initialize the token on the main thread so the handler only ever
    // reads an already-published OnceLock.
    let _ = token();
    unsafe {
        signal(SIGINT, on_sigint);
    }
}

/// Install the SIGINT handler (no-op off Unix). Safe to call more than
/// once.
#[cfg(not(unix))]
pub fn install_ctrlc() {
    let _ = token();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_is_shared_and_resettable() {
        let a = token();
        let b = token();
        a.cancel();
        assert!(b.is_cancelled(), "clones share the flag");
        b.reset();
        assert!(!a.is_cancelled());
    }
}
