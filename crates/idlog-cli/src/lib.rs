//! Library internals of the `idlog` CLI: argument parsing, command
//! implementations, and the interactive REPL. Split from the binary so the
//! integration tests can drive commands directly.

#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

use std::fmt;
use std::sync::Arc;

use idlog_core::{
    CanonicalOracle, EnumBudget, EvalOptions, Interner, Limits, Query, SeededOracle, TidOracle,
    ValidatedProgram,
};
use idlog_storage::Database;

pub mod args;
pub mod commands;
pub mod repl;
pub mod signal;

pub use args::{Args, Command, RunOpts, USAGE};

/// A command failure, classified for the process exit code: ordinary
/// failures exit 1, governor limit trips exit 3, and interruptions exit
/// with the conventional 130 (128 + SIGINT).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliError {
    /// Ordinary failure: bad input, evaluation error, I/O problem.
    Failure(String),
    /// A resource ceiling (`--timeout`, `--max-rounds`, `--max-tuples`)
    /// stopped the evaluation.
    Limit(String),
    /// Ctrl-C (or an embedder's cancel token) stopped the evaluation.
    Cancelled(String),
}

impl CliError {
    /// The process exit code this failure maps to.
    pub fn exit_code(&self) -> u8 {
        match self {
            CliError::Failure(_) => 1,
            CliError::Limit(_) => 3,
            CliError::Cancelled(_) => 130,
        }
    }

    /// The human-readable message.
    pub fn message(&self) -> &str {
        match self {
            CliError::Failure(m) | CliError::Limit(m) | CliError::Cancelled(m) => m,
        }
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.message())
    }
}

impl From<String> for CliError {
    fn from(m: String) -> Self {
        CliError::Failure(m)
    }
}

/// Run a parsed invocation (everything except `main`'s exit-code mapping).
pub fn run(args: Args) -> Result<(), CliError> {
    match args.command {
        Command::Help => {
            print!("{USAGE}");
            Ok(())
        }
        Command::Check { program } => commands::check(&program).map_err(CliError::from),
        Command::Explain {
            program,
            facts,
            analyze,
            seed,
            threads,
        } => commands::explain(&program, facts.as_deref(), analyze, seed, threads)
            .map_err(CliError::from),
        Command::Lint {
            programs,
            deny_warnings,
            json,
            allow,
        } => commands::lint(&programs, deny_warnings, json, &allow).map_err(CliError::from),
        Command::TranslateChoice { program } => {
            commands::translate_choice(&program).map_err(CliError::from)
        }
        Command::Optimize {
            program,
            output,
            suggest_prune,
        } => commands::optimize(&program, &output, suggest_prune).map_err(CliError::from),
        Command::Repl => {
            repl::run(&mut std::io::stdin().lock(), &mut std::io::stdout()).map_err(CliError::from)
        }
        Command::Run(opts) => commands::run_query(&opts),
    }
}

/// The [`Limits`] for `idlog run`'s `--timeout`/`--max-rounds`/
/// `--max-tuples` flags.
pub fn limits_for(opts: &RunOpts) -> Limits {
    Limits {
        deadline: opts.timeout,
        max_rounds: opts.max_rounds,
        max_tuples: opts.max_tuples,
        max_bytes: None,
    }
}

/// A loaded program + database pair.
pub struct Loaded {
    /// The query (program portion related to the output).
    pub query: Query,
    /// The fact database.
    pub db: Database,
}

/// Read and validate a program file, optionally loading a fact file.
pub fn load(program_path: &str, facts_path: Option<&str>, output: &str) -> Result<Loaded, String> {
    let interner = Arc::new(Interner::new());
    let src = std::fs::read_to_string(program_path)
        .map_err(|e| format!("cannot read {program_path}: {e}"))?;
    let program = ValidatedProgram::parse(&src, Arc::clone(&interner))
        .map_err(|e| format!("{program_path}: {e}"))?;
    let query = Query::new(program, output).map_err(|e| e.to_string())?;

    let mut db = Database::with_interner(interner);
    if let Some(path) = facts_path {
        let facts_src =
            std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        idlog_core::load_facts(&facts_src, &mut db).map_err(|e| format!("{path}: {e}"))?;
    }
    Ok(Loaded { query, db })
}

/// The oracle for a `--seed` option (canonical when absent).
pub fn oracle_for(seed: Option<u64>) -> Box<dyn TidOracle> {
    match seed {
        Some(s) => Box::new(SeededOracle::new(s)),
        None => Box::new(CanonicalOracle),
    }
}

/// The evaluation options for a `--threads` option (auto when absent:
/// `IDLOG_THREADS`, else the machine's available parallelism).
pub fn options_for(threads: Option<usize>) -> EvalOptions {
    EvalOptions::new().threads(threads.unwrap_or(0))
}

/// The enumeration budget for a `--max-models` option.
pub fn default_budget(max_models: Option<u64>) -> EnumBudget {
    EnumBudget {
        max_models: max_models.unwrap_or(EnumBudget::default().max_models),
        ..EnumBudget::default()
    }
}
