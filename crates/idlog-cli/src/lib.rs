//! Library internals of the `idlog` CLI: argument parsing, command
//! implementations, and the interactive REPL. Split from the binary so the
//! integration tests can drive commands directly.

#![warn(missing_docs)]

use std::sync::Arc;

use idlog_core::{
    CanonicalOracle, EnumBudget, EvalOptions, Interner, Query, SeededOracle, TidOracle,
    ValidatedProgram,
};
use idlog_storage::Database;

pub mod args;
pub mod commands;
pub mod repl;

pub use args::{Args, Command, RunOpts, USAGE};

/// Run a parsed invocation (everything except `main`'s exit-code mapping).
pub fn run(args: Args) -> Result<(), String> {
    match args.command {
        Command::Help => {
            print!("{USAGE}");
            Ok(())
        }
        Command::Check { program } => commands::check(&program),
        Command::Explain {
            program,
            facts,
            analyze,
            seed,
            threads,
        } => commands::explain(&program, facts.as_deref(), analyze, seed, threads),
        Command::Lint {
            programs,
            deny_warnings,
            json,
            allow,
        } => commands::lint(&programs, deny_warnings, json, &allow),
        Command::TranslateChoice { program } => commands::translate_choice(&program),
        Command::Optimize {
            program,
            output,
            suggest_prune,
        } => commands::optimize(&program, &output, suggest_prune),
        Command::Repl => repl::run(&mut std::io::stdin().lock(), &mut std::io::stdout()),
        Command::Run(opts) => commands::run_query(&opts),
    }
}

/// A loaded program + database pair.
pub struct Loaded {
    /// The query (program portion related to the output).
    pub query: Query,
    /// The fact database.
    pub db: Database,
}

/// Read and validate a program file, optionally loading a fact file.
pub fn load(program_path: &str, facts_path: Option<&str>, output: &str) -> Result<Loaded, String> {
    let interner = Arc::new(Interner::new());
    let src = std::fs::read_to_string(program_path)
        .map_err(|e| format!("cannot read {program_path}: {e}"))?;
    let program = ValidatedProgram::parse(&src, Arc::clone(&interner))
        .map_err(|e| format!("{program_path}: {e}"))?;
    let query = Query::new(program, output).map_err(|e| e.to_string())?;

    let mut db = Database::with_interner(interner);
    if let Some(path) = facts_path {
        let facts_src =
            std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        idlog_core::load_facts(&facts_src, &mut db).map_err(|e| format!("{path}: {e}"))?;
    }
    Ok(Loaded { query, db })
}

/// The oracle for a `--seed` option (canonical when absent).
pub fn oracle_for(seed: Option<u64>) -> Box<dyn TidOracle> {
    match seed {
        Some(s) => Box::new(SeededOracle::new(s)),
        None => Box::new(CanonicalOracle),
    }
}

/// The evaluation options for a `--threads` option (auto when absent:
/// `IDLOG_THREADS`, else the machine's available parallelism).
pub fn options_for(threads: Option<usize>) -> EvalOptions {
    EvalOptions::new().threads(threads.unwrap_or(0))
}

/// The enumeration budget for a `--max-models` option.
pub fn default_budget(max_models: Option<u64>) -> EnumBudget {
    EnumBudget {
        max_models: max_models.unwrap_or(EnumBudget::default().max_models),
        ..EnumBudget::default()
    }
}
