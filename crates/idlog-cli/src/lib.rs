//! Library internals of the `idlog` CLI: argument parsing, command
//! implementations, and the interactive REPL. Split from the binary so the
//! integration tests can drive commands directly.

#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

use std::fmt;
use std::sync::Arc;

use idlog_core::{
    CanonicalOracle, CoreError, EnumBudget, ErrorCode, EvalOptions, Interner, LimitKind, Limits,
    Query, SeededOracle, TidOracle, ValidatedProgram,
};
use idlog_storage::Database;

pub mod args;
pub mod commands;
pub mod repl;
pub mod signal;

pub use args::{Args, Command, RunOpts, USAGE};

/// A command failure: a stable [`ErrorCode`] plus a human-readable message.
///
/// The process exit code is the code's [`ErrorCode::exit_code`] — ordinary
/// failures exit 1, usage errors 2, resource limit trips 3, interruptions
/// the conventional 130 (128 + SIGINT). The same codes travel in `idlog
/// serve` responses, so scripts driving either surface can switch on one
/// vocabulary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError {
    code: ErrorCode,
    message: String,
    retry_after_ms: Option<u64>,
}

impl CliError {
    /// A failure with an explicit [`ErrorCode`].
    pub fn new(code: ErrorCode, message: impl Into<String>) -> Self {
        CliError {
            code,
            message: message.into(),
            retry_after_ms: None,
        }
    }

    /// Attach the server's retry hint (carried on `overloaded` responses).
    pub fn with_retry_after(mut self, ms: Option<u64>) -> Self {
        self.retry_after_ms = ms;
        self
    }

    /// The server's retry hint, if one was sent.
    pub fn retry_after_ms(&self) -> Option<u64> {
        self.retry_after_ms
    }

    /// An unclassified ordinary failure (exit 1).
    pub fn failure(message: impl Into<String>) -> Self {
        CliError::new(ErrorCode::Failure, message)
    }

    /// A bad-arguments failure (exit 2).
    pub fn usage(message: impl Into<String>) -> Self {
        CliError::new(ErrorCode::Usage, message)
    }

    /// A governor limit trip (exit 3).
    pub fn limit(kind: LimitKind, message: impl Into<String>) -> Self {
        CliError::new(ErrorCode::Limit(kind), message)
    }

    /// An interruption (exit 130).
    pub fn cancelled(message: impl Into<String>) -> Self {
        CliError::new(ErrorCode::Cancelled, message)
    }

    /// The stable error code.
    pub fn code(&self) -> ErrorCode {
        self.code
    }

    /// The process exit code this failure maps to.
    pub fn exit_code(&self) -> u8 {
        self.code.exit_code()
    }

    /// The human-readable message.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.message())
    }
}

impl From<String> for CliError {
    fn from(m: String) -> Self {
        CliError::failure(m)
    }
}

impl From<CoreError> for CliError {
    fn from(e: CoreError) -> Self {
        CliError::new(e.code(), e.to_string())
    }
}

/// Run a parsed invocation (everything except `main`'s exit-code mapping).
pub fn run(args: Args) -> Result<(), CliError> {
    match args.command {
        Command::Help => {
            print!("{USAGE}");
            Ok(())
        }
        Command::Check { program } => commands::check(&program).map_err(CliError::from),
        Command::Explain {
            program,
            facts,
            analyze,
            seed,
            threads,
        } => commands::explain(&program, facts.as_deref(), analyze, seed, threads)
            .map_err(CliError::from),
        Command::Lint {
            programs,
            deny_warnings,
            json,
            allow,
        } => commands::lint(&programs, deny_warnings, json, &allow).map_err(CliError::from),
        Command::TranslateChoice { program } => {
            commands::translate_choice(&program).map_err(CliError::from)
        }
        Command::Optimize {
            program,
            output,
            suggest_prune,
        } => commands::optimize(&program, &output, suggest_prune).map_err(CliError::from),
        Command::Repl => {
            repl::run(&mut std::io::stdin().lock(), &mut std::io::stdout()).map_err(CliError::from)
        }
        Command::Run(opts) => commands::run_query(&opts),
        Command::Serve {
            listen,
            workers,
            data_dir,
            sync,
            checkpoint_every,
            queue_depth,
        } => commands::serve(
            &listen,
            workers,
            data_dir.as_deref(),
            sync,
            checkpoint_every,
            queue_depth,
        ),
        Command::Client {
            addr,
            request,
            retries,
            backoff_ms,
        } => commands::client(&addr, &request, retries, backoff_ms),
    }
}

/// The [`Limits`] for `idlog run`'s `--timeout`/`--max-rounds`/
/// `--max-tuples` flags.
pub fn limits_for(opts: &RunOpts) -> Limits {
    Limits {
        deadline: opts.timeout,
        max_rounds: opts.max_rounds,
        max_tuples: opts.max_tuples,
        max_bytes: None,
    }
}

/// A loaded program + database pair.
pub struct Loaded {
    /// The query (program portion related to the output).
    pub query: Query,
    /// The fact database.
    pub db: Database,
}

/// Read and validate a program file, optionally loading a fact file.
/// Failures carry the engine's [`ErrorCode`] (I/O problems map to
/// [`ErrorCode::Io`]) instead of flattening everything to a string.
pub fn load(
    program_path: &str,
    facts_path: Option<&str>,
    output: &str,
) -> Result<Loaded, CliError> {
    let interner = Arc::new(Interner::new());
    let src = std::fs::read_to_string(program_path)
        .map_err(|e| CliError::new(ErrorCode::Io, format!("cannot read {program_path}: {e}")))?;
    let program = ValidatedProgram::parse(&src, Arc::clone(&interner))
        .map_err(|e| CliError::new(e.code(), format!("{program_path}: {e}")))?;
    let query = Query::new(program, output).map_err(CliError::from)?;

    let mut db = Database::with_interner(interner);
    if let Some(path) = facts_path {
        let facts_src = std::fs::read_to_string(path)
            .map_err(|e| CliError::new(ErrorCode::Io, format!("cannot read {path}: {e}")))?;
        idlog_core::load_facts(&facts_src, &mut db)
            .map_err(|e| CliError::new(e.code(), format!("{path}: {e}")))?;
    }
    Ok(Loaded { query, db })
}

/// The oracle for a `--seed` option (canonical when absent).
pub fn oracle_for(seed: Option<u64>) -> Box<dyn TidOracle> {
    match seed {
        Some(s) => Box::new(SeededOracle::new(s)),
        None => Box::new(CanonicalOracle),
    }
}

/// The evaluation options for a `--threads` option (auto when absent:
/// `IDLOG_THREADS`, else the machine's available parallelism).
pub fn options_for(threads: Option<usize>) -> EvalOptions {
    EvalOptions::new().threads(threads.unwrap_or(0))
}

/// The enumeration budget for a `--max-models` option.
pub fn default_budget(max_models: Option<u64>) -> EnumBudget {
    EnumBudget {
        max_models: max_models.unwrap_or(EnumBudget::default().max_models),
        ..EnumBudget::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The 0/1/2/3/130 exit-code convention, regression-tested: scripts
    /// depend on these values, so they may never drift.
    #[test]
    fn exit_code_convention_is_stable() {
        assert_eq!(CliError::failure("x").exit_code(), 1);
        assert_eq!(CliError::usage("x").exit_code(), 2);
        for kind in [
            LimitKind::Deadline,
            LimitKind::Rounds,
            LimitKind::Tuples,
            LimitKind::Bytes,
        ] {
            assert_eq!(CliError::limit(kind, "x").exit_code(), 3, "{kind}");
        }
        assert_eq!(CliError::cancelled("x").exit_code(), 130);
        // Engine errors keep their family code through the conversion.
        let err = CliError::from(CoreError::Cancelled);
        assert_eq!(err.code(), ErrorCode::Cancelled);
        assert_eq!(err.exit_code(), 130);
        let err = CliError::from(CoreError::Eval {
            message: "overflow".into(),
        });
        assert_eq!(err.code(), ErrorCode::Eval);
        assert_eq!(err.exit_code(), 1);
    }
}
