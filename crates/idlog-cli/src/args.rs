//! Hand-rolled argument parsing (the workspace deliberately avoids extra
//! dependencies; the grammar is small).

use std::time::Duration;

use idlog_core::{BackendKind, Strategy};

/// Usage text for `--help` and argument errors.
pub const USAGE: &str = "\
idlog — the IDLOG deductive database

USAGE:
  idlog run <program> --output <pred> [options]   evaluate a query
  idlog check <program>                           validate and report strata
  idlog explain <program> [--analyze] [options]   print the evaluation plan
  idlog lint <program>... [options]               collect-all diagnostics & lints
  idlog translate-choice <program>                Theorem 2: DATALOG^C -> IDLOG
  idlog optimize <program> --output <pred> [--suggest-prune]
                                                  ID-literal rewrite (paper §4)
  idlog repl                                      interactive session
  idlog serve [options]                           multi-tenant query service
  idlog client <addr> <request>                   send one service request
  idlog help                                      this text

RUN OPTIONS:
  --facts <file>      load ground facts from a separate file
  --output <pred>     the output predicate (required)
  --seed <n>          resolve non-determinism with a seeded random oracle
                      (default: canonical, reproducible tid order)
  --all               enumerate the full answer set instead of one answer
  --max-models <n>    cap on perfect models visited with --all
  --stats             print evaluation statistics
  --profile           print the per-rule evaluation profile (worst first)
  --profile-json <f>  write the profile as JSON to <f> ('-' = stdout)
  --profile-time      include wall time in the profile output (wall time is
                      the one non-deterministic profile column, so it is
                      off by default)
  --threads <n>       worker threads for evaluation and enumeration
                      (default: IDLOG_THREADS env var, else the machine's
                      available parallelism; results never depend on it)
  --timeout <dur>     wall-clock budget, e.g. 500ms, 2s, 1m (bare numbers
                      are seconds); a trip prints the partial result and
                      exits with code 3
  --max-rounds <n>    cap on semi-naive fixpoint rounds (deterministic:
                      trips at the same round for any --threads value)
  --max-tuples <n>    cap on newly derived tuples (deterministic)
  --backend <name>    storage backend: hash (default) or columnar; results
                      and statistics are identical across backends
  --strategy <name>   evaluation strategy: seminaive (default), naive, or
                      magic (goal-directed: rewrite with magic sets seeded
                      from query constants and derive only relevant facts;
                      refused with a witness walk when the relevance
                      analysis cannot certify the rewrite — see W030/W031)

EXIT CODES:
  0   success (including --all walks truncated by --max-models)
  1   failure (bad program, missing file, evaluation error)
  2   usage error
  3   a resource limit tripped (--timeout, --max-rounds, --max-tuples)
  130 interrupted (Ctrl-C)

EXPLAIN OPTIONS:
  --facts <file>      load ground facts from a separate file
  --analyze           evaluate the program and annotate each clause with
                      measured counters (EXPLAIN ANALYZE) and report the
                      determinism and termination certification per
                      predicate
  --seed <n>          oracle seed for --analyze (default: canonical)
  --threads <n>       worker threads for --analyze

SERVE OPTIONS:
  --listen <addr>     bind address (default 127.0.0.1:7421; port 0 picks an
                      ephemeral port, printed on stderr)
  --workers <n>       connection worker threads (default 16)
  --data-dir <dir>    durable tenant state: every acknowledged write goes
                      to a per-tenant write-ahead log before the ack, and
                      restarting over the same directory recovers exactly
                      the acknowledged facts (default: in-memory only)
  --sync <policy>     WAL fsync policy with --data-dir: always (fsync every
                      record before the ack), batch (default; every 32
                      records), or never (OS-scheduled flushes only)
  --checkpoint-every <n>
                      WAL records between checkpoint snapshots; a snapshot
                      truncates the log and bounds recovery time
                      (default 1024)
  --queue-depth <n>   connections allowed to wait for a worker; arrivals
                      beyond it get an \"overloaded\" error with a
                      retry_after_ms hint instead of unbounded queueing
                      (default 64)

  The service speaks the idlog-service/2 line protocol (idlog-service/1
  clients negotiate down via ping): one JSON request per line in, one JSON
  response per line out (see LANGUAGE.md §Service). `idlog client` sends a
  single raw request line and prints the response; its process exit code
  mirrors the response's \"exit\" field, which uses the same 0/1/2/3/130
  convention as `idlog run`.

CLIENT OPTIONS:
  --retries <n>       retry budget for connection refusals and
                      \"overloaded\" responses (default 0: fail fast)
  --backoff-ms <n>    base of the exponential retry backoff; the actual
                      sleep doubles per attempt with deterministic jitter,
                      and an explicit retry_after_ms hint from the server
                      takes precedence (default 50)

LINT OPTIONS:
  --deny-warnings     treat warnings as fatal (for CI)
  --json              print diagnostics as a JSON array on stdout
                      (the human summary moves to stderr)
  --allow <CODE>      suppress a diagnostic code (repeatable); e.g.
                      --allow W010 for intentionally non-deterministic
                      sampling programs, --allow W020 for intentionally
                      value-generating recursion bounded at run time
";

/// Options of `idlog run` (also the payload of [`Command::Run`]).
#[derive(Debug, Clone)]
pub struct RunOpts {
    /// Program path.
    pub program: String,
    /// Optional facts path.
    pub facts: Option<String>,
    /// Output predicate.
    pub output: String,
    /// Seed for the random oracle (None = canonical).
    pub seed: Option<u64>,
    /// Enumerate all answers.
    pub all: bool,
    /// Print statistics.
    pub stats: bool,
    /// Model cap for --all.
    pub max_models: Option<u64>,
    /// Worker threads (None = auto: IDLOG_THREADS, else hardware).
    pub threads: Option<usize>,
    /// Print the per-rule profile table.
    pub profile: bool,
    /// Write the profile as JSON to this path (`-` = stdout).
    pub profile_json: Option<String>,
    /// Include wall time in profile output.
    pub profile_time: bool,
    /// Wall-clock budget for the evaluation.
    pub timeout: Option<Duration>,
    /// Cap on semi-naive fixpoint rounds.
    pub max_rounds: Option<u64>,
    /// Cap on newly derived tuples.
    pub max_tuples: Option<u64>,
    /// Storage backend (None = the engine default, hash).
    pub backend: Option<BackendKind>,
    /// Evaluation strategy (None = the engine default, seminaive).
    pub strategy: Option<Strategy>,
}

impl RunOpts {
    /// Options with every flag off — for tests and programmatic callers.
    pub fn new(program: impl Into<String>, output: impl Into<String>) -> RunOpts {
        RunOpts {
            program: program.into(),
            facts: None,
            output: output.into(),
            seed: None,
            all: false,
            stats: false,
            max_models: None,
            threads: None,
            profile: false,
            profile_json: None,
            profile_time: false,
            timeout: None,
            max_rounds: None,
            max_tuples: None,
            backend: None,
            strategy: None,
        }
    }
}

/// Parse a human duration: `500ms`, `2s`, `1m`, or a bare number of
/// seconds (fractions allowed: `0.5s`, `1.5`).
pub fn parse_duration(s: &str) -> Result<Duration, String> {
    let s = s.trim();
    let (digits, scale_ms) = if let Some(d) = s.strip_suffix("ms") {
        (d, 1.0)
    } else if let Some(d) = s.strip_suffix('s') {
        (d, 1_000.0)
    } else if let Some(d) = s.strip_suffix('m') {
        (d, 60_000.0)
    } else {
        (s, 1_000.0)
    };
    let n: f64 = digits
        .trim()
        .parse()
        .map_err(|_| format!("invalid duration {s:?} (try 500ms, 2s, or 1m)"))?;
    if !n.is_finite() || n < 0.0 {
        return Err(format!("invalid duration {s:?} (must be non-negative)"));
    }
    Ok(Duration::from_secs_f64(n * scale_ms / 1_000.0))
}

/// A parsed invocation.
#[derive(Debug, Clone)]
pub struct Args {
    /// What to do.
    pub command: Command,
}

/// Subcommands.
#[derive(Debug, Clone)]
pub enum Command {
    /// Print usage.
    Help,
    /// Validate a program.
    Check {
        /// Program path.
        program: String,
    },
    /// Print the evaluation plan, optionally annotated with measured
    /// counters.
    Explain {
        /// Program path.
        program: String,
        /// Optional facts path.
        facts: Option<String>,
        /// Evaluate and annotate clauses with measured counters.
        analyze: bool,
        /// Oracle seed for --analyze (None = canonical).
        seed: Option<u64>,
        /// Worker threads for --analyze (None = auto).
        threads: Option<usize>,
    },
    /// Run the full diagnostics/lint suite over one or more programs.
    Lint {
        /// Program paths (at least one).
        programs: Vec<String>,
        /// Treat warnings as fatal (for CI).
        deny_warnings: bool,
        /// Print diagnostics as a JSON array instead of rendered text.
        json: bool,
        /// Diagnostic codes to suppress (case-insensitive).
        allow: Vec<String>,
    },
    /// Print the Theorem 2 translation.
    TranslateChoice {
        /// Program path.
        program: String,
    },
    /// Interactive session.
    Repl,
    /// Print the §4 ID-rewrite.
    Optimize {
        /// Program path.
        program: String,
        /// Output predicate.
        output: String,
        /// Also run the bounded redundant-clause analysis.
        suggest_prune: bool,
    },
    /// Evaluate a query.
    Run(RunOpts),
    /// Run the multi-tenant query service.
    Serve {
        /// Bind address.
        listen: String,
        /// Connection worker threads.
        workers: usize,
        /// Durable tenant state root (None = in-memory only).
        data_dir: Option<String>,
        /// WAL fsync policy (`always`, `batch`, `never`).
        sync: idlog_server::SyncPolicy,
        /// WAL records between checkpoint snapshots.
        checkpoint_every: u64,
        /// Admission-queue bound before connections are shed.
        queue_depth: usize,
    },
    /// Send one raw protocol request line to a running service.
    Client {
        /// Service address (`host:port`).
        addr: String,
        /// The request line (JSON).
        request: String,
        /// Retry budget for refusals and `overloaded` responses.
        retries: u32,
        /// Base backoff in milliseconds (doubles per attempt).
        backoff_ms: u64,
    },
}

impl Args {
    /// Parse command-line words.
    pub fn parse(words: impl Iterator<Item = String>) -> Result<Args, String> {
        let words: Vec<String> = words.collect();
        let Some(cmd) = words.first() else {
            return Err("missing command".into());
        };
        let rest = &words[1..];
        let command = match cmd.as_str() {
            "help" | "--help" | "-h" => Command::Help,
            "repl" => {
                if !rest.is_empty() {
                    return Err("repl takes no arguments".into());
                }
                Command::Repl
            }
            "check" => Command::Check {
                program: one_path(rest, "check")?,
            },
            "explain" => {
                let (program, opts) = path_and_opts(rest, "explain")?;
                let mut facts = None;
                let mut analyze = false;
                let mut seed = None;
                let mut threads = None;
                let mut it = opts.iter();
                while let Some(flag) = it.next() {
                    match flag.as_str() {
                        "--facts" => facts = Some(value(&mut it, "--facts")?),
                        "--analyze" => analyze = true,
                        "--seed" => seed = Some(parse_num(&mut it, "--seed")?),
                        "--threads" => threads = Some(parse_threads(&mut it)?),
                        other => return Err(format!("unknown option {other}")),
                    }
                }
                Command::Explain {
                    program,
                    facts,
                    analyze,
                    seed,
                    threads,
                }
            }
            "lint" => {
                let mut programs = Vec::new();
                let mut deny_warnings = false;
                let mut json = false;
                let mut allow = Vec::new();
                let mut it = rest.iter();
                while let Some(word) = it.next() {
                    match word.as_str() {
                        "--deny-warnings" => deny_warnings = true,
                        "--json" => json = true,
                        "--allow" => allow.push(value(&mut it, "--allow")?),
                        other if other.starts_with('-') => {
                            return Err(format!("unknown option {other}"));
                        }
                        path => programs.push(path.to_string()),
                    }
                }
                if programs.is_empty() {
                    return Err("lint needs at least one program path".into());
                }
                Command::Lint {
                    programs,
                    deny_warnings,
                    json,
                    allow,
                }
            }
            "translate-choice" => Command::TranslateChoice {
                program: one_path(rest, "translate-choice")?,
            },
            "optimize" => {
                let (program, opts) = path_and_opts(rest, "optimize")?;
                let mut output = None;
                let mut suggest_prune = false;
                let mut it = opts.iter();
                while let Some(flag) = it.next() {
                    match flag.as_str() {
                        "--output" => output = Some(value(&mut it, "--output")?),
                        "--suggest-prune" => suggest_prune = true,
                        other => return Err(format!("unknown option {other}")),
                    }
                }
                Command::Optimize {
                    program,
                    output: output.ok_or("optimize requires --output <pred>")?,
                    suggest_prune,
                }
            }
            "run" => {
                let (program, opts) = path_and_opts(rest, "run")?;
                let mut run = RunOpts::new(program, String::new());
                let mut output = None;
                let mut it = opts.iter();
                while let Some(flag) = it.next() {
                    match flag.as_str() {
                        "--facts" => run.facts = Some(value(&mut it, "--facts")?),
                        "--output" => output = Some(value(&mut it, "--output")?),
                        "--seed" => run.seed = Some(parse_num(&mut it, "--seed")?),
                        "--max-models" => {
                            run.max_models = Some(parse_num(&mut it, "--max-models")?)
                        }
                        "--threads" => run.threads = Some(parse_threads(&mut it)?),
                        "--timeout" => {
                            run.timeout = Some(parse_duration(&value(&mut it, "--timeout")?)?)
                        }
                        "--max-rounds" => {
                            run.max_rounds = Some(parse_num(&mut it, "--max-rounds")?)
                        }
                        "--max-tuples" => {
                            run.max_tuples = Some(parse_num(&mut it, "--max-tuples")?)
                        }
                        "--backend" => run.backend = Some(parse_backend(&mut it)?),
                        "--strategy" => run.strategy = Some(parse_strategy(&mut it)?),
                        "--all" => run.all = true,
                        "--stats" => run.stats = true,
                        "--profile" => run.profile = true,
                        "--profile-json" => {
                            run.profile_json = Some(value(&mut it, "--profile-json")?)
                        }
                        "--profile-time" => run.profile_time = true,
                        other => return Err(format!("unknown option {other}")),
                    }
                }
                run.output = output.ok_or("run requires --output <pred>")?;
                Command::Run(run)
            }
            "serve" => {
                let mut listen = "127.0.0.1:7421".to_string();
                let mut workers = 16usize;
                let mut data_dir = None;
                let mut sync = idlog_server::SyncPolicy::default();
                let mut checkpoint_every = idlog_server::DEFAULT_CHECKPOINT_EVERY;
                let mut queue_depth = idlog_server::DEFAULT_QUEUE_DEPTH;
                let mut it = rest.iter();
                while let Some(flag) = it.next() {
                    match flag.as_str() {
                        "--listen" => listen = value(&mut it, "--listen")?,
                        "--workers" => {
                            workers = parse_num(&mut it, "--workers")?;
                            if workers == 0 {
                                return Err("--workers expects a positive number".into());
                            }
                        }
                        "--data-dir" => data_dir = Some(value(&mut it, "--data-dir")?),
                        "--sync" => {
                            let s = value(&mut it, "--sync")?;
                            sync = idlog_server::SyncPolicy::parse(&s).ok_or(format!(
                                "--sync expects always, batch, or never (got {s:?})"
                            ))?;
                        }
                        "--checkpoint-every" => {
                            checkpoint_every = parse_num(&mut it, "--checkpoint-every")?;
                            if checkpoint_every == 0 {
                                return Err("--checkpoint-every expects a positive number".into());
                            }
                        }
                        "--queue-depth" => {
                            queue_depth = parse_num(&mut it, "--queue-depth")?;
                            if queue_depth == 0 {
                                return Err("--queue-depth expects a positive number".into());
                            }
                        }
                        other => return Err(format!("unknown option {other}")),
                    }
                }
                Command::Serve {
                    listen,
                    workers,
                    data_dir,
                    sync,
                    checkpoint_every,
                    queue_depth,
                }
            }
            "client" => {
                let mut positional = Vec::new();
                let mut retries = 0u32;
                let mut backoff_ms = 50u64;
                let mut it = rest.iter();
                while let Some(word) = it.next() {
                    match word.as_str() {
                        "--retries" => retries = parse_num(&mut it, "--retries")?,
                        "--backoff-ms" => {
                            backoff_ms = parse_num(&mut it, "--backoff-ms")?;
                            if backoff_ms == 0 {
                                return Err("--backoff-ms expects a positive number".into());
                            }
                        }
                        _ => positional.push(word.clone()),
                    }
                }
                match positional.as_slice() {
                    [addr, request] => Command::Client {
                        addr: addr.clone(),
                        request: request.clone(),
                        retries,
                        backoff_ms,
                    },
                    _ => return Err("client takes an address and one request line".into()),
                }
            }
            other => return Err(format!("unknown command {other}")),
        };
        Ok(Args { command })
    }
}

fn one_path(rest: &[String], cmd: &str) -> Result<String, String> {
    match rest {
        [path] => Ok(path.clone()),
        _ => Err(format!("{cmd} takes exactly one program path")),
    }
}

fn path_and_opts(rest: &[String], cmd: &str) -> Result<(String, Vec<String>), String> {
    let Some(path) = rest.first() else {
        return Err(format!("{cmd} needs a program path"));
    };
    if path.starts_with('-') {
        return Err(format!("{cmd} needs a program path before options"));
    }
    Ok((path.clone(), rest[1..].to_vec()))
}

fn value<'a>(it: &mut impl Iterator<Item = &'a String>, flag: &str) -> Result<String, String> {
    it.next()
        .cloned()
        .ok_or_else(|| format!("{flag} expects a value"))
}

fn parse_num<'a, N: std::str::FromStr>(
    it: &mut impl Iterator<Item = &'a String>,
    flag: &str,
) -> Result<N, String> {
    value(it, flag)?
        .parse()
        .map_err(|_| format!("{flag} expects a number"))
}

fn parse_threads<'a>(it: &mut impl Iterator<Item = &'a String>) -> Result<usize, String> {
    let n: usize = parse_num(it, "--threads")?;
    if n == 0 {
        return Err("--threads expects a positive number".to_string());
    }
    Ok(n)
}

/// Parse and validate a `--backend` value (shared by `run` and the REPL).
pub fn parse_backend_name(name: &str) -> Result<BackendKind, String> {
    BackendKind::parse(name)
        .ok_or_else(|| format!("unknown backend {name:?} (expected hash or columnar)"))
}

fn parse_backend<'a>(it: &mut impl Iterator<Item = &'a String>) -> Result<BackendKind, String> {
    parse_backend_name(&value(it, "--backend")?)
}

/// Parse and validate a `--strategy` value (shared by `run` and the REPL).
pub fn parse_strategy_name(name: &str) -> Result<Strategy, String> {
    Strategy::parse(name)
        .ok_or_else(|| format!("unknown strategy {name:?} (expected seminaive, naive, or magic)"))
}

fn parse_strategy<'a>(it: &mut impl Iterator<Item = &'a String>) -> Result<Strategy, String> {
    parse_strategy_name(&value(it, "--strategy")?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(words: &[&str]) -> Result<Args, String> {
        Args::parse(words.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_run_with_options() {
        let args = parse(&[
            "run",
            "p.idl",
            "--facts",
            "f.idl",
            "--output",
            "q",
            "--seed",
            "7",
            "--all",
            "--stats",
            "--max-models",
            "100",
            "--threads",
            "4",
        ])
        .unwrap();
        let Command::Run(run) = args.command else {
            panic!("expected run");
        };
        assert_eq!(run.program, "p.idl");
        assert_eq!(run.facts.as_deref(), Some("f.idl"));
        assert_eq!(run.output, "q");
        assert_eq!(run.seed, Some(7));
        assert!(run.all && run.stats);
        assert_eq!(run.max_models, Some(100));
        assert_eq!(run.threads, Some(4));
        assert!(!run.profile && run.profile_json.is_none() && !run.profile_time);
    }

    #[test]
    fn parses_profile_flags() {
        let args = parse(&[
            "run",
            "p.idl",
            "--output",
            "q",
            "--profile",
            "--profile-json",
            "out.json",
            "--profile-time",
        ])
        .unwrap();
        let Command::Run(run) = args.command else {
            panic!("expected run");
        };
        assert!(run.profile && run.profile_time);
        assert_eq!(run.profile_json.as_deref(), Some("out.json"));
        assert!(parse(&["run", "p.idl", "--output", "q", "--profile-json"]).is_err());
    }

    #[test]
    fn parses_explain_command() {
        let args = parse(&[
            "explain",
            "p.idl",
            "--facts",
            "f.idl",
            "--analyze",
            "--seed",
            "3",
            "--threads",
            "2",
        ])
        .unwrap();
        let Command::Explain {
            program,
            facts,
            analyze,
            seed,
            threads,
        } = args.command
        else {
            panic!("expected explain");
        };
        assert_eq!(program, "p.idl");
        assert_eq!(facts.as_deref(), Some("f.idl"));
        assert!(analyze);
        assert_eq!(seed, Some(3));
        assert_eq!(threads, Some(2));
        assert!(parse(&["explain"]).is_err());
        assert!(parse(&["explain", "p.idl", "--nope"]).is_err());
    }

    #[test]
    fn parses_limit_flags() {
        let args = parse(&[
            "run",
            "p.idl",
            "--output",
            "q",
            "--timeout",
            "500ms",
            "--max-rounds",
            "16",
            "--max-tuples",
            "1000",
        ])
        .unwrap();
        let Command::Run(run) = args.command else {
            panic!("expected run");
        };
        assert_eq!(run.timeout, Some(Duration::from_millis(500)));
        assert_eq!(run.max_rounds, Some(16));
        assert_eq!(run.max_tuples, Some(1000));
        assert!(parse(&["run", "p.idl", "--output", "q", "--timeout", "soon"]).is_err());
        assert!(parse(&["run", "p.idl", "--output", "q", "--max-tuples", "-1"]).is_err());
    }

    #[test]
    fn duration_grammar() {
        assert_eq!(parse_duration("500ms").unwrap(), Duration::from_millis(500));
        assert_eq!(parse_duration("2s").unwrap(), Duration::from_secs(2));
        assert_eq!(parse_duration("1m").unwrap(), Duration::from_secs(60));
        assert_eq!(parse_duration("3").unwrap(), Duration::from_secs(3));
        assert_eq!(parse_duration("0.5s").unwrap(), Duration::from_millis(500));
        assert_eq!(parse_duration("1.5").unwrap(), Duration::from_millis(1500));
        assert!(parse_duration("").is_err());
        assert!(parse_duration("-1s").is_err());
        assert!(parse_duration("fast").is_err());
        assert!(parse_duration("nans").is_err());
    }

    #[test]
    fn usage_documents_exit_codes() {
        for needle in [
            "EXIT CODES",
            "--timeout",
            "--max-rounds",
            "--max-tuples",
            "--backend",
        ] {
            assert!(USAGE.contains(needle), "usage lost {needle}");
        }
    }

    #[test]
    fn parses_backend_flag() {
        let args = parse(&["run", "p.idl", "--output", "q", "--backend", "columnar"]).unwrap();
        let Command::Run(run) = args.command else {
            panic!("expected run");
        };
        assert_eq!(run.backend, Some(BackendKind::Columnar));
        let args = parse(&["run", "p.idl", "--output", "q", "--backend", "hash"]).unwrap();
        let Command::Run(run) = args.command else {
            panic!("expected run");
        };
        assert_eq!(run.backend, Some(BackendKind::Hash));
        assert!(parse(&["run", "p.idl", "--output", "q", "--backend", "btree"]).is_err());
        assert!(parse(&["run", "p.idl", "--output", "q", "--backend"]).is_err());
        let args = parse(&["run", "p.idl", "--output", "q"]).unwrap();
        let Command::Run(run) = args.command else {
            panic!("expected run");
        };
        assert_eq!(run.backend, None, "default is the engine's hash backend");
    }

    #[test]
    fn parses_strategy_flag() {
        let args = parse(&["run", "p.idl", "--output", "q", "--strategy", "magic"]).unwrap();
        let Command::Run(run) = args.command else {
            panic!("expected run");
        };
        assert_eq!(run.strategy, Some(Strategy::Magic));
        for (name, want) in [
            ("seminaive", Strategy::SemiNaive),
            ("naive", Strategy::Naive),
        ] {
            let args = parse(&["run", "p.idl", "--output", "q", "--strategy", name]).unwrap();
            let Command::Run(run) = args.command else {
                panic!("expected run");
            };
            assert_eq!(run.strategy, Some(want));
        }
        assert!(parse(&["run", "p.idl", "--output", "q", "--strategy", "earley"]).is_err());
        assert!(parse(&["run", "p.idl", "--output", "q", "--strategy"]).is_err());
        let args = parse(&["run", "p.idl", "--output", "q"]).unwrap();
        let Command::Run(run) = args.command else {
            panic!("expected run");
        };
        assert_eq!(run.strategy, None, "default is the engine's seminaive");
        assert!(USAGE.contains("--strategy"), "usage lost --strategy");
    }

    #[test]
    fn threads_must_be_positive() {
        assert!(parse(&["run", "p.idl", "--output", "q", "--threads", "0"]).is_err());
        assert!(parse(&["run", "p.idl", "--output", "q", "--threads", "x"]).is_err());
        let args = parse(&["run", "p.idl", "--output", "q"]).unwrap();
        let Command::Run(run) = args.command else {
            panic!("expected run");
        };
        assert_eq!(run.threads, None, "default is auto");
    }

    #[test]
    fn run_requires_output() {
        assert!(parse(&["run", "p.idl"]).is_err());
    }

    #[test]
    fn check_takes_one_path() {
        assert!(parse(&["check", "p.idl"]).is_ok());
        assert!(parse(&["check"]).is_err());
        assert!(parse(&["check", "a", "b"]).is_err());
    }

    #[test]
    fn lint_takes_many_paths_and_deny_flag() {
        let args = parse(&["lint", "a.idl", "b.idl", "--deny-warnings"]).unwrap();
        let Command::Lint {
            programs,
            deny_warnings,
            json,
            allow,
        } = args.command
        else {
            panic!("expected lint");
        };
        assert_eq!(programs, vec!["a.idl", "b.idl"]);
        assert!(deny_warnings);
        assert!(!json && allow.is_empty());
        assert!(parse(&["lint"]).is_err());
        assert!(parse(&["lint", "--deny-warnings"]).is_err());
        assert!(parse(&["lint", "a.idl", "--nope"]).is_err());
    }

    #[test]
    fn lint_json_and_allow_flags() {
        let args = parse(&[
            "lint", "a.idl", "--json", "--allow", "W010", "--allow", "w011",
        ])
        .unwrap();
        let Command::Lint { json, allow, .. } = args.command else {
            panic!("expected lint");
        };
        assert!(json);
        assert_eq!(allow, vec!["W010", "w011"]);
        assert!(parse(&["lint", "a.idl", "--allow"]).is_err());
    }

    #[test]
    fn unknown_bits_are_errors() {
        assert!(parse(&["frobnicate"]).is_err());
        assert!(parse(&["run", "p.idl", "--output", "q", "--nope"]).is_err());
        assert!(parse(&["run", "--output", "q"]).is_err());
    }

    #[test]
    fn parses_serve_and_client() {
        let args = parse(&["serve"]).unwrap();
        let Command::Serve {
            listen,
            workers,
            data_dir,
            sync,
            checkpoint_every,
            queue_depth,
        } = args.command
        else {
            panic!("expected serve");
        };
        assert_eq!(listen, "127.0.0.1:7421");
        assert_eq!(workers, 16);
        assert_eq!(data_dir, None);
        assert_eq!(sync, idlog_server::SyncPolicy::Batch);
        assert_eq!(checkpoint_every, idlog_server::DEFAULT_CHECKPOINT_EVERY);
        assert_eq!(queue_depth, idlog_server::DEFAULT_QUEUE_DEPTH);
        let args = parse(&["serve", "--listen", "0.0.0.0:9000", "--workers", "4"]).unwrap();
        let Command::Serve {
            listen, workers, ..
        } = args.command
        else {
            panic!("expected serve");
        };
        assert_eq!(listen, "0.0.0.0:9000");
        assert_eq!(workers, 4);
        assert!(parse(&["serve", "--workers", "0"]).is_err());
        assert!(parse(&["serve", "--nope"]).is_err());

        let args = parse(&["client", "127.0.0.1:7421", r#"{"op":"ping"}"#]).unwrap();
        let Command::Client {
            addr,
            request,
            retries,
            backoff_ms,
        } = args.command
        else {
            panic!("expected client");
        };
        assert_eq!(addr, "127.0.0.1:7421");
        assert_eq!(request, r#"{"op":"ping"}"#);
        assert_eq!(retries, 0, "retry is opt-in");
        assert_eq!(backoff_ms, 50);
        assert!(parse(&["client"]).is_err());
        assert!(parse(&["client", "addr"]).is_err());
    }

    #[test]
    fn parses_durability_and_admission_flags() {
        let args = parse(&[
            "serve",
            "--data-dir",
            "/var/lib/idlog",
            "--sync",
            "always",
            "--checkpoint-every",
            "256",
            "--queue-depth",
            "8",
        ])
        .unwrap();
        let Command::Serve {
            data_dir,
            sync,
            checkpoint_every,
            queue_depth,
            ..
        } = args.command
        else {
            panic!("expected serve");
        };
        assert_eq!(data_dir.as_deref(), Some("/var/lib/idlog"));
        assert_eq!(sync, idlog_server::SyncPolicy::Always);
        assert_eq!(checkpoint_every, 256);
        assert_eq!(queue_depth, 8);
        for policy in ["always", "batch", "never"] {
            assert!(parse(&["serve", "--sync", policy]).is_ok(), "{policy}");
        }
        assert!(parse(&["serve", "--sync", "sometimes"]).is_err());
        assert!(parse(&["serve", "--checkpoint-every", "0"]).is_err());
        assert!(parse(&["serve", "--queue-depth", "0"]).is_err());

        let args = parse(&[
            "client",
            "--retries",
            "5",
            "--backoff-ms",
            "20",
            "127.0.0.1:7421",
            r#"{"op":"ping"}"#,
        ])
        .unwrap();
        let Command::Client {
            retries,
            backoff_ms,
            ..
        } = args.command
        else {
            panic!("expected client");
        };
        assert_eq!(retries, 5);
        assert_eq!(backoff_ms, 20);
        assert!(parse(&["client", "--backoff-ms", "0", "a", "b"]).is_err());
    }

    #[test]
    fn usage_documents_the_service() {
        for needle in [
            "serve",
            "client",
            "--listen",
            "--workers",
            "--data-dir",
            "--sync",
            "--checkpoint-every",
            "--queue-depth",
            "--retries",
            "--backoff-ms",
            "idlog-service/2",
        ] {
            assert!(USAGE.contains(needle), "usage lost {needle}");
        }
    }

    #[test]
    fn help_variants() {
        for h in [["help"], ["--help"], ["-h"]] {
            assert!(matches!(parse(&h).unwrap().command, Command::Help));
        }
    }
}
