//! Subcommand implementations.

use std::sync::Arc;

use idlog_analyze::{analyze, render_all, render_json, Options};
use idlog_core::{EvalError, Interner, LimitKind, StopReason, ValidatedProgram};

use crate::args::RunOpts;
use crate::{default_budget, limits_for, load, options_for, oracle_for, signal, CliError};

/// `idlog check`: validate and report predicates, sorts, and strata.
///
/// Validation runs through the `idlog-analyze` collect-all driver, so a
/// broken program reports *every* error (with source excerpts) instead of
/// just the first one the engine happens to hit.
pub fn check(program_path: &str) -> Result<(), String> {
    let interner = Arc::new(Interner::new());
    let src = std::fs::read_to_string(program_path)
        .map_err(|e| format!("cannot read {program_path}: {e}"))?;
    let analysis = analyze(
        &src,
        &interner,
        &Options {
            lints: false,
            redundancy: false,
        },
    );
    if analysis.error_count() > 0 {
        eprint!("{}", render_all(&analysis.diagnostics, &src, program_path));
        return Err(format!(
            "{program_path}: {} error(s)",
            analysis.error_count()
        ));
    }
    if analysis.dialect == idlog_analyze::Dialect::Choice {
        println!("{program_path}: valid DATALOG^C program (C1/C2 hold)");
        println!("  translate it with: idlog translate-choice {program_path}");
        return Ok(());
    }
    let program = ValidatedProgram::parse(&src, Arc::clone(&interner))
        .map_err(|e| format!("{program_path}: {e}"))?;
    let strat = program.stratification();

    println!("{program_path}: valid IDLOG program");
    println!("  clauses: {}", program.ast().clauses.len());
    println!("  strata:  {}", strat.count());

    let mut idb: Vec<String> = program.idb().iter().map(|&p| interner.resolve(p)).collect();
    idb.sort();
    let mut inputs: Vec<String> = program
        .inputs()
        .iter()
        .map(|&p| interner.resolve(p))
        .collect();
    inputs.sort();
    println!("  inputs:  {}", inputs.join(", "));
    println!("  derived:");
    for name in idb {
        let Some(id) = interner.get(&name) else {
            continue;
        };
        let Some(rtype) = program.sorts().rel_type(id) else {
            continue;
        };
        println!(
            "    {name}/{arity} type {rtype} stratum {stratum}",
            arity = rtype.arity(),
            stratum = strat.stratum(id)
        );
    }
    println!("  determinism:");
    let taint = idlog_core::analyze_taint(program.ast());
    let mut derived: Vec<String> = program.idb().iter().map(|&p| interner.resolve(p)).collect();
    derived.sort();
    for name in &derived {
        let Some(id) = interner.get(name) else {
            continue;
        };
        if taint.deterministic(id) {
            println!("    {name}: certified deterministic");
        } else {
            println!("    {name}: possibly non-deterministic (depends on the ID-function)");
        }
    }
    println!("  termination:");
    let cert = idlog_core::analyze_termination(program.ast());
    if cert.bounded() {
        println!(
            "    certified bounded: derivation depth polynomial (degree <= {}) in EDB size",
            cert.degree()
        );
    } else if cert.growth_witness().is_some() {
        println!("    possibly diverging: value growth through arithmetic (see idlog lint, W020)");
    } else {
        println!("    not certified (outside the analyzed fragment)");
    }
    for name in &derived {
        let Some(id) = interner.get(name) else {
            continue;
        };
        let kind = cert.recursion_kind(id);
        if kind != idlog_core::RecursionKind::Nonrecursive {
            println!(
                "    {name}: {} recursion{}",
                kind.as_str(),
                if cert.pred_bounded(id) {
                    ""
                } else {
                    ", possibly unbounded"
                }
            );
        }
    }
    println!("  plan:");
    let plan = idlog_core::explain(&program).map_err(|e| e.to_string())?;
    for line in plan.lines() {
        println!("    {line}");
    }
    Ok(())
}

/// `idlog lint`: the full diagnostics suite (errors, warnings, hints) over
/// one or more programs. Fails on errors, and on warnings too when
/// `deny_warnings` is set. `allow` suppresses codes (case-insensitive);
/// `json` switches stdout to one machine-readable JSON array covering all
/// files (the human summary moves to stderr).
pub fn lint(
    program_paths: &[String],
    deny_warnings: bool,
    json: bool,
    allow: &[String],
) -> Result<(), String> {
    let allowed: Vec<String> = allow.iter().map(|c| c.to_ascii_uppercase()).collect();
    let mut errors = 0;
    let mut warnings = 0;
    let mut hints = 0;
    // In JSON mode, per-file arrays are merged into one top-level array.
    let mut json_items: Vec<String> = Vec::new();
    for path in program_paths {
        let src = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let interner = Arc::new(Interner::new());
        let mut analysis = analyze(&src, &interner, &Options::default());
        analysis
            .diagnostics
            .retain(|d| !allowed.iter().any(|a| a == d.code));
        if json {
            let rendered = render_json(&analysis.diagnostics, path);
            let inner = &rendered[1..rendered.len() - 1];
            if !inner.is_empty() {
                json_items.push(inner.to_string());
            }
        } else if !analysis.diagnostics.is_empty() {
            print!("{}", render_all(&analysis.diagnostics, &src, path));
        }
        errors += analysis.error_count();
        warnings += analysis.warning_count();
        hints += analysis.hint_count();
    }
    let summary = format!(
        "checked {} file(s): {errors} error(s), {warnings} warning(s), {hints} hint(s)",
        program_paths.len()
    );
    if json {
        println!("[{}]", json_items.join(","));
        eprintln!("{summary}");
    } else {
        println!("{summary}");
    }
    if errors > 0 {
        Err(format!("lint failed with {errors} error(s)"))
    } else if deny_warnings && warnings > 0 {
        Err(format!(
            "lint failed with {warnings} warning(s) (--deny-warnings)"
        ))
    } else {
        Ok(())
    }
}

/// `idlog translate-choice`: print the Theorem 2 translation.
pub fn translate_choice(program_path: &str) -> Result<(), String> {
    let interner = Arc::new(Interner::new());
    let src = std::fs::read_to_string(program_path)
        .map_err(|e| format!("cannot read {program_path}: {e}"))?;
    let ast =
        idlog_core::parse_program(&src, &interner).map_err(|e| format!("{program_path}: {e}"))?;
    let translated = idlog_choice::to_idlog_source(&ast, &interner)
        .map_err(|e| format!("{program_path}: {e}"))?;
    print!("{translated}");
    Ok(())
}

/// `idlog optimize`: print the paper's §4 ID-rewrite; with
/// `--suggest-prune`, also run the bounded redundant-clause analysis
/// (Example 8's footnote) on randomized test databases.
pub fn optimize(program_path: &str, output: &str, suggest_prune: bool) -> Result<(), String> {
    let interner = Arc::new(Interner::new());
    let src = std::fs::read_to_string(program_path)
        .map_err(|e| format!("cannot read {program_path}: {e}"))?;
    let ast =
        idlog_core::parse_program(&src, &interner).map_err(|e| format!("{program_path}: {e}"))?;
    let out = interner
        .get(output)
        .ok_or_else(|| format!("output predicate {output} does not occur in the program"))?;
    let rewritten = idlog_optimizer::to_id_program(&ast, out);
    print!("{}", rewritten.display(&interner));

    if suggest_prune {
        // Randomized schema-matching databases over the rewritten program's
        // elementary input predicates.
        let validated = idlog_core::ValidatedProgram::new(rewritten.clone(), Arc::clone(&interner))
            .map_err(|e| e.to_string())?;
        let mut schema: Vec<(String, usize)> = Vec::new();
        for &pred in validated.inputs() {
            let (Some(arity), Some(rtype)) =
                (validated.arity(pred), validated.sorts().rel_type(pred))
            else {
                continue;
            };
            if rtype.is_elementary() {
                schema.push((interner.resolve(pred), arity));
            }
        }
        let schema_refs: Vec<(&str, usize)> =
            schema.iter().map(|(n, a)| (n.as_str(), *a)).collect();
        let dbs = idlog_optimizer::random_databases(
            &interner,
            &schema_refs,
            &["d1", "d2", "d3"],
            8,
            0xD1CE,
        );
        let rep = idlog_optimizer::suggest_redundant_clauses(
            &rewritten,
            &interner,
            &dbs,
            output,
            &idlog_core::EnumBudget::default(),
        )
        .map_err(|e| e.to_string())?;
        if rep.removable.is_empty() {
            eprintln!(
                "% no clause looks redundant on {} test databases",
                rep.databases_checked
            );
        } else {
            for ci in rep.removable {
                eprintln!(
                    "% clause #{ci} `{}` looks redundant on {} test databases (bounded check)",
                    rewritten.clauses[ci].display(&interner),
                    rep.databases_checked
                );
            }
        }
    }
    Ok(())
}

/// `idlog explain`: print the evaluation plan for the *whole* program;
/// with `--analyze`, evaluate it first (profiling on) and annotate every
/// clause with measured counters.
pub fn explain(
    program_path: &str,
    facts_path: Option<&str>,
    analyze: bool,
    seed: Option<u64>,
    threads: Option<usize>,
) -> Result<(), String> {
    let interner = Arc::new(Interner::new());
    let src = std::fs::read_to_string(program_path)
        .map_err(|e| format!("cannot read {program_path}: {e}"))?;
    let program = ValidatedProgram::parse(&src, Arc::clone(&interner))
        .map_err(|e| format!("{program_path}: {e}"))?;

    if !analyze {
        let text = idlog_core::explain(&program).map_err(|e| e.to_string())?;
        print!("{text}");
        return Ok(());
    }

    let mut db = idlog_storage::Database::with_interner(Arc::clone(&interner));
    if let Some(path) = facts_path {
        let facts_src =
            std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        idlog_core::load_facts(&facts_src, &mut db).map_err(|e| format!("{path}: {e}"))?;
    }
    let mut oracle = oracle_for(seed);
    let options = options_for(threads).profile(true);
    let out = idlog_core::evaluate_with_options(&program, &db, oracle.as_mut(), &options)
        .map_err(|e| e.to_string())?;
    let profile = out
        .profile()
        .ok_or("internal error: profiling was enabled but produced no profile")?;
    let text = idlog_core::explain_analyze(&program, profile).map_err(|e| e.to_string())?;
    print!("{text}");

    // Determinism footer: which derived predicates are certified independent
    // of the chosen ID-function (the engine's enumeration fast path).
    let taint = idlog_core::analyze_taint(program.ast());
    let mut derived: Vec<String> = program.idb().iter().map(|&p| interner.resolve(p)).collect();
    derived.sort();
    let certified: Vec<&String> = derived
        .iter()
        .filter(|n| interner.get(n).is_some_and(|id| taint.deterministic(id)))
        .collect();
    println!(
        "-- determinism: {}/{} derived predicate(s) certified deterministic",
        certified.len(),
        derived.len()
    );
    let uncertified: Vec<String> = derived
        .iter()
        .filter(|n| !certified.contains(n))
        .cloned()
        .collect();
    if !uncertified.is_empty() {
        println!(
            "--   possibly non-deterministic: {}",
            uncertified.join(", ")
        );
    }
    // Termination footer: whether the run above was protected by an
    // automatic round ceiling derived from the certificate.
    let cert = idlog_core::analyze_termination(program.ast());
    if cert.bounded() {
        match cert.round_bound(&db) {
            Some(bound) => println!(
                "-- termination: certified bounded; automatic round ceiling {bound} for this database"
            ),
            None => println!("-- termination: certified bounded"),
        }
    } else if cert.growth_witness().is_some() {
        let unbounded: Vec<String> = cert
            .unbounded_predicates()
            .iter()
            .map(|&p| interner.resolve(p))
            .collect();
        println!(
            "-- termination: possibly diverging (W020); unbounded: {}",
            unbounded.join(", ")
        );
    } else {
        println!("-- termination: not certified (outside the analyzed fragment)");
    }
    // Relevance footer: which query roots the goal-directed strategy
    // (`idlog run --strategy magic`) would accept, and why the rest refuse.
    let bodies = program.ast().body_predicates();
    let mut seen = std::collections::HashSet::new();
    let mut lines: Vec<String> = Vec::new();
    for clause in &program.ast().clauses {
        for head in &clause.head {
            let root = head.atom.pred.base();
            if bodies.contains(&root) || !seen.insert(root) {
                continue;
            }
            let name = interner.resolve(root);
            let analysis = idlog_core::analyze_relevance(program.ast(), root);
            if let Some(r) = analysis.refusal() {
                let why = match r.reason {
                    idlog_core::RefusalReason::Floundering => {
                        "refused: flounders under the left-to-right SIPS (W030)"
                    }
                    idlog_core::RefusalReason::ChoiceSite => {
                        "refused: blocked by a choice site (W031)"
                    }
                };
                lines.push(format!("{name}: {why}"));
            } else if analysis.is_point_query() {
                let adorned: Vec<String> = analysis
                    .adorned()
                    .iter()
                    .map(|a| a.display(&interner))
                    .collect();
                let (guarded, total) = analysis.pruned_fraction();
                lines.push(format!(
                    "{name}: certified point query (H020); reaches {}; magic guards \
                     {guarded}/{total} derived predicate(s)",
                    adorned.join(", ")
                ));
            } else {
                lines.push(format!(
                    "{name}: no bound argument positions; goal-directed evaluation \
                     would not prune"
                ));
            }
        }
    }
    if !lines.is_empty() {
        println!("-- relevance (strategy=magic):");
        for line in lines {
            println!("--   {line}");
        }
    }
    Ok(())
}

/// `idlog run`: evaluate one answer or enumerate them all.
///
/// Resource governance: `--timeout`/`--max-rounds`/`--max-tuples` bound the
/// evaluation; a trip prints the partial result (up to the last completed
/// round barrier) and returns [`CliError::limit`] (exit 3). Ctrl-C returns
/// [`CliError::cancelled`] (exit 130). With `--all`, the enumeration
/// budgets (`--max-models`) merely truncate the walk — still exit 0 — while
/// governor ceilings exit 3.
pub fn run_query(opts: &RunOpts) -> Result<(), CliError> {
    let loaded = load(&opts.program, opts.facts.as_deref(), &opts.output)?;
    let interner = loaded.query.interner().clone();
    let want_profile = opts.profile || opts.profile_json.is_some() || opts.stats;
    let options = options_for(opts.threads)
        .backend(opts.backend.unwrap_or_default())
        .strategy(opts.strategy.unwrap_or_default())
        .budget(default_budget(opts.max_models))
        .profile(want_profile)
        .limits(limits_for(opts));
    // A stale Ctrl-C from a previous evaluation must not cancel this one.
    let token = signal::token();
    token.reset();

    if opts.all {
        if opts.profile || opts.profile_json.is_some() {
            eprintln!("-- profiling does not apply to --all enumeration; ignoring");
        }
        let answers = loaded
            .query
            .session(&loaded.db)
            .options(options)
            .cancel_token(token)
            .all_answers()
            .map_err(CliError::from)?;
        let note = match answers.stopped() {
            None => String::new(),
            Some(reason) => format!(" ({reason}; incomplete)"),
        };
        println!(
            "{} distinct answer(s) from {} perfect model(s){note}:",
            answers.len(),
            answers.models_explored(),
        );
        for (i, answer) in answers.to_sorted_strings(&interner).iter().enumerate() {
            println!("answer #{i}: {{{}}}", answer.join(", "));
        }
        // Enumeration budgets bound an intentionally bounded walk — exit 0.
        // Governor ceilings and Ctrl-C are real stops — exit 3 / 130.
        return match answers.stopped() {
            None | Some(StopReason::Limit(LimitKind::Models | LimitKind::Answers)) => Ok(()),
            Some(StopReason::Limit(kind)) => Err(CliError::limit(
                kind,
                format!("enumeration stopped: {kind} budget hit"),
            )),
            Some(StopReason::Cancelled) => Err(CliError::cancelled("interrupted")),
        };
    }

    let mut oracle = oracle_for(opts.seed);
    let result = loaded
        .query
        .session(&loaded.db)
        .options(options)
        .cancel_token(token)
        .try_run_with(oracle.as_mut());
    let (result, stop) = match result {
        Ok(result) => (result, None),
        Err(EvalError::Limit { limit, partial }) => {
            let partial = partial_result(&partial, &opts.output, want_profile);
            (
                partial,
                Some(CliError::limit(limit, format!("limit exceeded: {limit}"))),
            )
        }
        Err(EvalError::Cancelled { partial }) => {
            let partial = partial_result(&partial, &opts.output, want_profile);
            (partial, Some(CliError::cancelled("interrupted")))
        }
        Err(EvalError::Core(e)) => return Err(CliError::from(e)),
    };
    if let Some(stop) = &stop {
        eprintln!(
            "-- partial result up to the last completed round ({})",
            stop.message()
        );
    }
    let output = &opts.output;
    for t in result.relation.sorted_canonical(&interner) {
        println!("{output}{}", t.display(&interner));
    }
    if opts.profile {
        let profile = require_profile(&result)?;
        print!("{}", profile.render_table(opts.profile_time));
    }
    if let Some(path) = &opts.profile_json {
        let json = require_profile(&result)?.to_json(opts.profile_time);
        if path == "-" {
            println!("{json}");
        } else {
            std::fs::write(path, json.as_bytes())
                .map_err(|e| format!("cannot write {path}: {e}"))?;
        }
    }
    if opts.stats {
        eprintln!("-- {}", result.stats.display_with(result.profile.as_ref()));
    }
    match stop {
        Some(stop) => Err(stop),
        None => Ok(()),
    }
}

/// `idlog serve`: run the multi-tenant query service until a `shutdown`
/// request arrives.
pub fn serve(
    listen: &str,
    workers: usize,
    data_dir: Option<&str>,
    sync: idlog_server::SyncPolicy,
    checkpoint_every: u64,
    queue_depth: usize,
) -> Result<(), CliError> {
    let config = idlog_server::ServerConfig {
        data_dir: data_dir.map(std::path::PathBuf::from),
        sync,
        checkpoint_every,
        queue_depth,
    };
    let durable = config.data_dir.is_some();
    let server = idlog_server::Server::bind_with(listen, config).map_err(|e| {
        CliError::new(
            idlog_core::ErrorCode::Io,
            format!("cannot bind {listen}: {e}"),
        )
    })?;
    let addr = server
        .local_addr()
        .map_err(|e| CliError::new(idlog_core::ErrorCode::Io, e.to_string()))?;
    eprintln!(
        "idlog service ({}) listening on {addr} ({})",
        idlog_core::service::SERVICE_SCHEMA,
        if durable {
            format!("durable, fsync {}", sync.name())
        } else {
            "in-memory".to_string()
        }
    );
    server
        .run(workers)
        .map_err(|e| CliError::new(idlog_core::ErrorCode::Io, e.to_string()))
}

/// The sleep before retry attempt `attempt` (0-based): exponential in the
/// base with deterministic jitter, unless the server sent an explicit
/// `retry_after_ms` hint, which takes precedence.
///
/// The jitter is a pure function of the attempt number (a small LCG), so
/// retry schedules are reproducible run to run — this is a determinism-
/// first engine even in its failure handling — while still decorrelating
/// the exponential steps enough to avoid lockstep thundering herds.
fn retry_delay_ms(attempt: u32, backoff_ms: u64, hint: Option<u64>) -> u64 {
    if let Some(hint) = hint {
        return hint;
    }
    let base = backoff_ms.saturating_mul(1u64 << attempt.min(16));
    let jitter_seed = (attempt as u64)
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    base.saturating_add(jitter_seed % (base / 2 + 1))
}

/// `idlog client`: send one raw request line and print the response line.
///
/// The process exit code mirrors the response's `exit` field, so shell
/// scripts can treat a served failure exactly like a local `idlog run`
/// failure (same 0/1/2/3/130 convention). With `--retries`, connection
/// refusals and `overloaded` responses are retried with exponential
/// backoff (honouring the server's `retry_after_ms` hint); every other
/// outcome is final on the first attempt.
pub fn client(addr: &str, request: &str, retries: u32, backoff_ms: u64) -> Result<(), CliError> {
    let mut attempt = 0u32;
    loop {
        let outcome = client_once(addr, request);
        let transient = match &outcome {
            // A refused/unreachable connection: the server may be
            // restarting; worth a retry.
            Err(e) if e.code == idlog_core::ErrorCode::Io && e.message.contains("connect") => None,
            // Shed at admission: retry after the server's hint.
            Err(e) if e.code == idlog_core::ErrorCode::Overloaded => Some(e.retry_after_ms),
            _ => return outcome,
        };
        if attempt >= retries {
            return outcome;
        }
        let delay = retry_delay_ms(attempt, backoff_ms, transient.flatten());
        eprintln!(
            "idlog client: attempt {} failed; retrying in {delay}ms",
            attempt + 1
        );
        std::thread::sleep(std::time::Duration::from_millis(delay));
        attempt += 1;
    }
}

/// One request/response exchange against the service.
fn client_once(addr: &str, request: &str) -> Result<(), CliError> {
    let mut client = idlog_server::Client::connect(addr).map_err(|e| {
        CliError::new(
            idlog_core::ErrorCode::Io,
            format!("cannot connect to {addr}: {e}"),
        )
    })?;
    let line = client
        .request_raw(request)
        .map_err(|e| CliError::new(idlog_core::ErrorCode::Io, e.to_string()))?;
    println!("{line}");
    let response = idlog_core::service::Response::parse(&line)
        .map_err(|e| CliError::new(idlog_core::ErrorCode::Protocol, e))?;
    match response.code {
        Some(code) => Err(CliError::new(
            code,
            response
                .error
                .unwrap_or_else(|| "request failed".to_string()),
        )
        .with_retry_after(response.retry_after_ms)),
        None => Ok(()),
    }
}

/// Project the partial [`idlog_core::EvalOutput`] carried by a limit trip
/// onto the shape `run_query` prints.
fn partial_result(
    partial: &idlog_core::EvalOutput,
    output: &str,
    want_profile: bool,
) -> idlog_core::EvalResult {
    idlog_core::EvalResult {
        relation: partial
            .relation(output)
            .cloned()
            .unwrap_or_else(|| idlog_core::Relation::elementary(0)),
        stats: partial.stats(),
        profile: want_profile.then(|| partial.profile().cloned().unwrap_or_default()),
    }
}

fn require_profile(result: &idlog_core::EvalResult) -> Result<&idlog_core::Profile, CliError> {
    result.profile.as_ref().ok_or_else(|| {
        CliError::failure("internal error: profiling was enabled but produced no profile")
    })
}

#[cfg(test)]
mod tests {
    use super::retry_delay_ms;

    /// The retry schedule doubles from the base, the jitter stays within
    /// half the base step, and the whole schedule is deterministic.
    #[test]
    fn retry_backoff_grows_exponentially_with_bounded_jitter() {
        for attempt in 0..6u32 {
            let base = 50u64 << attempt;
            let d = retry_delay_ms(attempt, 50, None);
            assert!(
                (base..=base + base / 2).contains(&d),
                "attempt {attempt}: delay {d} outside [{base}, {}]",
                base + base / 2
            );
            // Deterministic: same inputs, same delay.
            assert_eq!(d, retry_delay_ms(attempt, 50, None));
        }
        // Consecutive attempts never shrink the wait.
        let delays: Vec<u64> = (0..6).map(|a| retry_delay_ms(a, 50, None)).collect();
        assert!(delays.windows(2).all(|w| w[0] <= w[1]), "{delays:?}");
    }

    /// A server `retry_after_ms` hint overrides the local schedule, and the
    /// exponent saturates instead of overflowing on absurd attempt counts.
    #[test]
    fn retry_hint_wins_and_the_exponent_saturates() {
        assert_eq!(retry_delay_ms(3, 50, Some(7)), 7);
        assert_eq!(retry_delay_ms(0, 50, Some(0)), 0);
        let huge = retry_delay_ms(u32::MAX, u64::MAX, None);
        assert_eq!(huge, u64::MAX); // saturated, not wrapped
    }
}
