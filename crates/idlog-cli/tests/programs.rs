//! The shipped example programs in `programs/` must keep working through
//! the CLI command layer.

use std::path::PathBuf;

fn programs_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../programs")
}

fn path(name: &str) -> String {
    programs_dir().join(name).to_string_lossy().into_owned()
}

#[test]
fn shipped_programs_validate() {
    for program in [
        "sampling.idl",
        "all_depts.idl",
        "coloring.idl",
        "parity.idl",
        "dept_sizes.idl",
    ] {
        idlog_cli::commands::check(&path(program)).unwrap_or_else(|e| panic!("{program}: {e}"));
    }
}

#[test]
fn sampling_program_runs() {
    let mut one = idlog_cli::RunOpts::new(path("sampling.idl"), "select_two_emp");
    one.facts = Some(path("company.facts"));
    idlog_cli::commands::run_query(&one).unwrap();
    let mut all = idlog_cli::RunOpts::new(path("sampling.idl"), "select_two_emp");
    all.facts = Some(path("company.facts"));
    all.all = true;
    all.max_models = Some(10_000);
    all.threads = Some(2);
    idlog_cli::commands::run_query(&all).unwrap();
}

#[test]
fn coloring_program_enumerates() {
    let loaded = idlog_cli::load(
        &path("coloring.idl"),
        Some(&path("cycle.facts")),
        "proper_color",
    )
    .unwrap();
    let answers = loaded.query.session(&loaded.db).all_answers().unwrap();
    // A 4-cycle: two proper 2-colorings plus the empty answer from improper
    // guesses.
    assert_eq!(answers.len(), 3);
    assert_eq!(answers.iter().filter(|rel| !rel.is_empty()).count(), 2);
}

#[test]
fn parity_program_is_deterministic() {
    let loaded = idlog_cli::load(
        &path("parity.idl"),
        Some(&path("people.facts")),
        "even_card",
    )
    .unwrap();
    let answers = loaded.query.session(&loaded.db).all_answers().unwrap();
    assert_eq!(answers.len(), 1, "parity is tid-independent");
    assert!(
        !answers.iter().next().unwrap().is_empty(),
        "4 people = even"
    );
}

#[test]
fn choice_program_translates() {
    idlog_cli::commands::translate_choice(&path("choice_select.idl")).unwrap();
}

/// The shipped programs exercise both sides of the determinism analysis:
/// the choice-free queries are certified (and skip enumeration on `--all`),
/// the genuinely non-deterministic ones are not.
#[test]
fn shipped_programs_certification() {
    for (program, facts, output, certified) in [
        ("all_depts.idl", "company.facts", "all_depts", true),
        ("dept_sizes.idl", "company.facts", "has_two", true),
        ("dept_sizes.idl", "company.facts", "singleton", true),
        ("sampling.idl", "company.facts", "select_two_emp", false),
        ("coloring.idl", "cycle.facts", "proper_color", false),
        // parity is deterministic by design but beyond the conservative
        // analysis (Theorem 3: certification is sound, not complete).
        ("parity.idl", "people.facts", "even_card", false),
    ] {
        let loaded = idlog_cli::load(&path(program), Some(&path(facts)), output).unwrap();
        assert_eq!(
            loaded.query.certified_deterministic(),
            certified,
            "{program} --output {output}"
        );
    }
}

#[test]
fn certified_programs_skip_enumeration() {
    let loaded = idlog_cli::load(
        &path("dept_sizes.idl"),
        Some(&path("company.facts")),
        "singleton",
    )
    .unwrap();
    let answers = loaded.query.session(&loaded.db).all_answers().unwrap();
    assert_eq!(answers.models_explored(), 1, "fast path: no enumeration");
    assert!(answers.complete());
    assert_eq!(answers.len(), 1, "certified: a single answer");
}

#[test]
fn diverge_program_lints_clean_and_trips_limits() {
    // The linter's redundancy pass evaluates candidate programs on test
    // databases; the diverging example must be skipped via the optimizer's
    // probe ceilings — terminating cleanly — not hang the lint sweep.
    idlog_cli::commands::lint(
        &[path("diverge.idl")],
        true,
        false,
        &["W010".into(), "W011".into(), "W020".into()],
    )
    .unwrap();
    // Without the W020 allowance the termination pass flags the growth
    // statically, so the deny-warnings sweep rejects the file.
    let lint_err = idlog_cli::commands::lint(
        &[path("diverge.idl")],
        true,
        false,
        &["W010".into(), "W011".into()],
    )
    .unwrap_err();
    assert!(lint_err.contains("warning"), "{lint_err}");
    // And `idlog run` on it under a round ceiling exits via the limit
    // class (exit code 3), carrying the partial result to stdout.
    let mut opts = idlog_cli::RunOpts::new(path("diverge.idl"), "count");
    opts.max_rounds = Some(50);
    let err = idlog_cli::commands::run_query(&opts).unwrap_err();
    assert_eq!(err.exit_code(), 3, "{err:?}");
    assert!(err.message().contains("max-rounds"), "{err:?}");
}
