//! Regression tests for REPL robustness: an evaluation error — a limit
//! trip, a builtin failure, a parse error — must never lose the session's
//! accumulated state (program, facts, `:seed`, `:threads`, `:profile`,
//! `:timeout`).

use idlog_cli::repl;

fn drive(script: &str) -> String {
    let mut input = std::io::Cursor::new(script.to_string());
    let mut out: Vec<u8> = Vec::new();
    repl::run(&mut input, &mut out).unwrap();
    String::from_utf8(out).unwrap()
}

#[test]
fn limit_trip_preserves_program_and_settings() {
    // Load a diverging rule next to a harmless one, trip a zero timeout on
    // the diverging query, then show the session still evaluates — with the
    // `:threads`/`:profile` settings chosen *before* the error still active.
    let out = drive(
        "seed(0).\n\
         count(N) :- seed(N).\n\
         count(M) :- count(N), plus(N, 1, M).\n\
         item(a).\n\
         item(b).\n\
         pick(X) :- item[](X, 0).\n\
         :threads 2\n\
         :profile on\n\
         :timeout 0ms\n\
         ?- count.\n\
         :timeout off\n\
         ?- pick.\n\
         :list\n\
         :quit\n",
    );
    // The zero-deadline query tripped the governor cleanly...
    assert!(out.contains("error: limit exceeded: timeout"), "{out}");
    // ...but the session survived: later query answers, with profiling (set
    // before the failure) still on, and the program/facts intact.
    assert!(out.contains("pick(a)"), "{out}");
    assert!(out.contains("evaluation profile"), "{out}");
    assert!(out.contains("% item: 2 fact(s)"), "{out}");
    assert!(
        out.contains("count(M) :- count(N), plus(N, 1, M)."),
        "{out}"
    );
}

#[test]
fn builtin_error_preserves_session_state() {
    // Arithmetic overflow in a builtin is an evaluation error, not a crash;
    // the next query still runs against the same program.
    let out = drive(
        "big(9223372036854775807).\n\
         boom(M) :- big(N), plus(N, 1, M).\n\
         item(a).\n\
         pick(X) :- item[](X, 0).\n\
         :seed 7\n\
         ?- boom.\n\
         ?- pick.\n\
         :list\n\
         :quit\n",
    );
    assert!(out.contains("error:"), "{out}");
    assert!(out.contains("pick(a)"), "{out}");
    assert!(out.contains("oracle: seeded(7)"), "{out}");
    assert!(out.contains("% big: 1 fact(s)"), "{out}");
}

#[test]
fn timeout_survives_across_queries_until_cleared() {
    // `:timeout` applies to every subsequent query until `:timeout off`;
    // a fast query under a generous timeout succeeds.
    let out = drive(
        "item(a).\n\
         pick(X) :- item[](X, 0).\n\
         :timeout 30s\n\
         ?- pick.\n\
         :all pick\n\
         :timeout off\n\
         ?- pick.\n\
         :quit\n",
    );
    assert!(out.contains("timeout: 30000ms"), "{out}");
    assert!(out.contains("pick(a)"), "{out}");
    assert!(out.contains("1 answer(s)"), "{out}");
    assert!(out.contains("timeout: off"), "{out}");
    assert!(!out.contains("incomplete"), "{out}");
}
