//! Integration tests for the CLI command layer, driving the library entry
//! points against real files in a temp directory.

use std::path::PathBuf;

use idlog_cli::{commands, load, Args, Command, RunOpts};

/// A per-test scratch directory (cleaned up on drop).
struct Scratch {
    dir: PathBuf,
}

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let dir = std::env::temp_dir().join(format!("idlog-cli-test-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        Scratch { dir }
    }

    fn file(&self, name: &str, content: &str) -> String {
        let path = self.dir.join(name);
        std::fs::write(&path, content).unwrap();
        path.to_string_lossy().into_owned()
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

#[test]
fn load_reads_program_and_facts() {
    let s = Scratch::new("load");
    let program = s.file("p.idl", "pick(N) :- emp[2](N, D, 0).");
    let facts = s.file("f.idl", "emp(ann, sales). emp(bob, sales).");
    let loaded = load(&program, Some(&facts), "pick").unwrap();
    assert_eq!(loaded.db.relation("emp").unwrap().len(), 2);
    let result = loaded.query.session(&loaded.db).run().unwrap();
    assert_eq!(result.relation.len(), 1);
}

#[test]
fn load_reports_missing_files_and_bad_programs() {
    let s = Scratch::new("errors");
    assert!(load("/nonexistent/x.idl", None, "p").is_err());
    let bad = s.file("bad.idl", "p(X, Y) :- q(X).");
    let err = match load(&bad, None, "p") {
        Err(e) => e,
        Ok(_) => panic!("unsafe program must be rejected"),
    };
    assert!(
        err.message().contains("unsafe") || err.message().contains("head variable"),
        "{err}"
    );
    assert_eq!(err.code(), idlog_core::ErrorCode::Safety, "{err:?}");
    let good = s.file("good.idl", "p(X) :- q(X).");
    assert!(
        load(&good, None, "nope").is_err(),
        "unknown output must fail"
    );
}

#[test]
fn check_command_accepts_valid_program() {
    let s = Scratch::new("check");
    let program = s.file("p.idl", "pick(N) :- emp[2](N, D, 0).");
    commands::check(&program).unwrap();
    assert!(commands::check("/nonexistent/x.idl").is_err());
}

#[test]
fn run_query_end_to_end() {
    let s = Scratch::new("run");
    let program = s.file("p.idl", "two(N) :- emp[2](N, D, T), T < 2.");
    let facts = s.file("f.idl", "emp(a, d). emp(b, d). emp(c, d).");
    // One answer, canonical, with statistics.
    let mut one = RunOpts::new(&program, "two");
    one.facts = Some(facts.clone());
    one.stats = true;
    commands::run_query(&one).unwrap();
    // All answers.
    let mut all = RunOpts::new(&program, "two");
    all.facts = Some(facts.clone());
    all.all = true;
    all.max_models = Some(100);
    all.threads = Some(2);
    commands::run_query(&all).unwrap();
    // Seeded, with the profile table.
    let mut seeded = RunOpts::new(&program, "two");
    seeded.facts = Some(facts.clone());
    seeded.seed = Some(7);
    seeded.threads = Some(1);
    seeded.profile = true;
    commands::run_query(&seeded).unwrap();
}

#[test]
fn run_query_limit_trip_maps_to_limit_exit_class() {
    let s = Scratch::new("limits");
    let program = s.file("p.idl", "count(0). count(M) :- count(N), plus(N, 1, M).");

    // A round ceiling on a diverging program: the error is classified as a
    // limit trip (exit 3), not an ordinary failure, and names the flag.
    let mut rounds = RunOpts::new(&program, "count");
    rounds.max_rounds = Some(5);
    let err = commands::run_query(&rounds).unwrap_err();
    assert_eq!(err.exit_code(), 3, "{err:?}");
    assert!(err.message().contains("max-rounds"), "{err:?}");

    // Same for a tuple ceiling.
    let mut tuples = RunOpts::new(&program, "count");
    tuples.max_tuples = Some(10);
    let err = commands::run_query(&tuples).unwrap_err();
    assert_eq!(err.exit_code(), 3, "{err:?}");
    assert!(err.message().contains("max-tuples"), "{err:?}");

    // A generous ceiling on a terminating program does not trip.
    let fine = s.file("ok.idl", "two(N) :- emp[2](N, D, T), T < 2.");
    let facts = s.file("f.idl", "emp(a, d). emp(b, d).");
    let mut ok = RunOpts::new(&fine, "two");
    ok.facts = Some(facts);
    ok.max_rounds = Some(1_000);
    ok.max_tuples = Some(1_000_000);
    ok.timeout = Some(std::time::Duration::from_secs(60));
    commands::run_query(&ok).unwrap();
}

#[test]
fn run_query_strategy_magic_succeeds_and_refuses() {
    let s = Scratch::new("magic");
    let program = s.file(
        "p.idl",
        "anc(X, Y) :- parent(X, Y).
         anc(X, Z) :- anc(X, Y), parent(Y, Z).
         q(Y) :- anc(ann, Y).",
    );
    let facts = s.file(
        "f.idl",
        "parent(ann, bob). parent(bob, cal). parent(eve, fay).",
    );

    // Certified point query: magic evaluates and agrees with direct.
    let mut opts = RunOpts::new(&program, "q");
    opts.facts = Some(facts.clone());
    opts.strategy = Some(idlog_core::Strategy::Magic);
    commands::run_query(&opts).unwrap();

    // A choice site in the related region refuses with a witness (exit 1).
    let blocked = s.file(
        "b.idl",
        "pick(X, Y) :- likes[1](X, Y, 0).
         q(Y) :- pick(ann, Y).",
    );
    let likes = s.file("l.idl", "likes(ann, tea).");
    let mut opts = RunOpts::new(&blocked, "q");
    opts.facts = Some(likes);
    opts.strategy = Some(idlog_core::Strategy::Magic);
    let err = commands::run_query(&opts).unwrap_err();
    assert_eq!(err.exit_code(), 1, "{err:?}");
    assert!(err.message().contains("choice site"), "{err:?}");
    assert!(err.message().contains("witness"), "{err:?}");

    // A governor trip under magic still maps to the limit exit class (3).
    let mut tripped = RunOpts::new(&program, "q");
    tripped.facts = Some(facts);
    tripped.strategy = Some(idlog_core::Strategy::Magic);
    tripped.max_rounds = Some(1);
    let err = commands::run_query(&tripped).unwrap_err();
    assert_eq!(err.exit_code(), 3, "{err:?}");
    assert!(err.message().contains("max-rounds"), "{err:?}");
}

#[test]
fn run_query_writes_profile_json() {
    let s = Scratch::new("profile-json");
    let program = s.file("p.idl", "two(N) :- emp[2](N, D, T), T < 2.");
    let facts = s.file("f.idl", "emp(a, d). emp(b, d). emp(c, d).");
    let json_path = s.dir.join("profile.json").to_string_lossy().into_owned();
    let mut opts = RunOpts::new(&program, "two");
    opts.facts = Some(facts);
    opts.profile_json = Some(json_path.clone());
    commands::run_query(&opts).unwrap();
    let json = std::fs::read_to_string(&json_path).unwrap();
    assert!(json.contains("\"schema\":\"idlog-profile/1\""), "{json}");
    assert!(json.contains("\"rules\":["), "{json}");
    assert!(json.contains("\"strata\":["), "{json}");
    assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
}

#[test]
fn explain_command_plain_and_analyze() {
    let s = Scratch::new("explain");
    let program = s.file(
        "p.idl",
        "reach(X) :- start(X).
         reach(Y) :- reach(X), e(X, Y).
         pick(X) :- reach[](X, 0).",
    );
    let facts = s.file("f.idl", "start(a). e(a, b).");
    commands::explain(&program, None, false, None, None).unwrap();
    commands::explain(&program, Some(&facts), true, None, Some(1)).unwrap();
    assert!(commands::explain("/nonexistent/x.idl", None, false, None, None).is_err());
}

#[test]
fn translate_and_optimize_commands() {
    let s = Scratch::new("xlate");
    let choice = s.file("c.idl", "s(N) :- emp(N, D), choice((D), (N)).");
    commands::translate_choice(&choice).unwrap();

    let plain = s.file("o.idl", "p(X) :- q(X, Z), z(Z, Y), y(W).");
    commands::optimize(&plain, "p", false).unwrap();
    assert!(commands::optimize(&plain, "zzz", false).is_err());
}

#[test]
fn lint_command_allow_and_json() {
    let s = Scratch::new("lint");
    // Partial grouping with a non-grouping base variable escaping to the
    // head: W010 (non-deterministic output) + W011 (tid-derived column).
    let warny = s.file("w.idl", "pick(N) :- emp[2](N, _D, T), T < 2.");
    let files = std::slice::from_ref(&warny);
    assert!(commands::lint(files, true, false, &[]).is_err());
    let allow = ["W010".to_string(), "w011".to_string()];
    commands::lint(files, true, false, &allow).unwrap();
    // JSON mode reports the same verdicts.
    assert!(commands::lint(files, true, true, &[]).is_err());
    commands::lint(files, true, true, &allow).unwrap();
    assert!(commands::lint(&["/nonexistent/x.idl".to_string()], false, false, &[]).is_err());
}

#[test]
fn full_arg_to_run_path() {
    let s = Scratch::new("args");
    let program = s.file("p.idl", "pick(N) :- emp[2](N, D, 0).");
    let facts = s.file("f.idl", "emp(ann, sales).");
    let args = Args::parse(
        ["run", &program, "--facts", &facts, "--output", "pick"]
            .iter()
            .map(|s| s.to_string()),
    )
    .unwrap();
    assert!(matches!(args.command, Command::Run { .. }));
    idlog_cli::run(args).unwrap();
}

#[test]
fn client_command_against_a_live_service() {
    let server = idlog_server::Server::bind("127.0.0.1:0").unwrap();
    let addr = server.local_addr().unwrap().to_string();
    let handle = std::thread::spawn(move || server.run(2).unwrap());

    // A ping succeeds and prints the response line.
    commands::client(&addr, r#"{"op":"ping"}"#, 0, 50).unwrap();

    // Inserts and a run round-trip through the raw client surface.
    commands::client(
        &addr,
        r#"{"op":"insert","tenant":"t","pred":"e","tuple":["a","b"]}"#,
        0,
        50,
    )
    .unwrap();
    commands::client(
        &addr,
        r#"{"op":"run","tenant":"t","program":"p(X, Y) :- e(X, Y).","output":"p"}"#,
        0,
        50,
    )
    .unwrap();

    // A served failure maps onto the CLI's stable exit-code convention.
    let err = commands::client(&addr, "not json", 0, 50).unwrap_err();
    assert_eq!(err.code(), idlog_core::ErrorCode::Protocol);
    assert_eq!(err.exit_code(), 1);
    let err = commands::client(
        &addr,
        r#"{"op":"run","tenant":"t","program":"p(X :-","output":"p"}"#,
        0,
        50,
    )
    .unwrap_err();
    assert_eq!(err.code(), idlog_core::ErrorCode::Parse);

    commands::client(&addr, r#"{"op":"shutdown"}"#, 0, 50).unwrap();
    handle.join().unwrap();

    // Connecting to a dead service is an I/O failure.
    let err = commands::client(&addr, r#"{"op":"ping"}"#, 0, 50).unwrap_err();
    assert_eq!(err.code(), idlog_core::ErrorCode::Io);
}

/// `--retries` turns a refused connection into a wait-and-retry: the
/// service comes up shortly after the first attempt, and the client's
/// bounded retry loop lands the request without surfacing the refusal.
#[test]
fn client_retries_until_the_service_appears() {
    // Reserve a port, then free it so the first connect is refused.
    let placeholder = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = placeholder.local_addr().unwrap().to_string();
    drop(placeholder);

    let server_addr = addr.clone();
    let handle = std::thread::spawn(move || {
        std::thread::sleep(std::time::Duration::from_millis(150));
        let server = idlog_server::Server::bind(&server_addr).unwrap();
        server.run(1).unwrap();
    });

    // Without retries the refusal is immediate and final.
    let err = commands::client(&addr, r#"{"op":"ping"}"#, 0, 10).unwrap_err();
    assert_eq!(err.code(), idlog_core::ErrorCode::Io);

    // With retries the client outlasts the startup gap.
    commands::client(&addr, r#"{"op":"ping"}"#, 8, 40).unwrap();
    commands::client(&addr, r#"{"op":"shutdown"}"#, 0, 10).unwrap();
    handle.join().unwrap();
}
