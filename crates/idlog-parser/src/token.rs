//! Tokens and source positions.

use std::fmt;

/// A position in the source text (1-based line and column).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Pos {
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Lexical tokens.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Token {
    /// Lowercase-initial identifier (predicate or constant), or quoted atom.
    Ident(String),
    /// Uppercase- or `_`-initial identifier.
    Var(String),
    /// Non-negative integer literal.
    Int(i64),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `:-`
    Implies,
    /// `&`
    Amp,
    /// `|` (disjunctive head separator, DATALOG∨)
    Pipe,
    /// `not`
    Not,
    /// `choice`
    Choice,
    /// `!` (top-down cut; only meaningful to the SLD evaluator)
    Cut,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// End of input.
    Eof,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "identifier `{s}`"),
            Token::Var(s) => write!(f, "variable `{s}`"),
            Token::Int(n) => write!(f, "integer `{n}`"),
            Token::LParen => write!(f, "`(`"),
            Token::RParen => write!(f, "`)`"),
            Token::LBracket => write!(f, "`[`"),
            Token::RBracket => write!(f, "`]`"),
            Token::Comma => write!(f, "`,`"),
            Token::Dot => write!(f, "`.`"),
            Token::Implies => write!(f, "`:-`"),
            Token::Amp => write!(f, "`&`"),
            Token::Pipe => write!(f, "`|`"),
            Token::Not => write!(f, "`not`"),
            Token::Choice => write!(f, "`choice`"),
            Token::Cut => write!(f, "`!`"),
            Token::Lt => write!(f, "`<`"),
            Token::Le => write!(f, "`<=`"),
            Token::Gt => write!(f, "`>`"),
            Token::Ge => write!(f, "`>=`"),
            Token::Eq => write!(f, "`=`"),
            Token::Ne => write!(f, "`!=`"),
            Token::Eof => write!(f, "end of input"),
        }
    }
}

/// A token with its source position.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Spanned {
    /// The token.
    pub token: Token,
    /// Where it starts.
    pub pos: Pos,
    /// One past where it ends (the position of the following character).
    pub end: Pos,
}
