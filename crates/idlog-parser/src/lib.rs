//! Surface syntax for the IDLOG family of languages.
//!
//! One lexer/parser/AST serves four languages from the paper:
//!
//! * **DATALOG(¬)** — ordinary clauses with stratified negation;
//! * **IDLOG** — adds ID-literals `p[s](…, Tid)` (\[She90b\]);
//! * **DATALOG^C** — adds `choice((X̄), (Ȳ))` literals (\[KN88\]);
//! * **DL / N-DATALOG** — conjunctive (and negated) heads under the
//!   non-deterministic inflationary semantics (\[AV88\], \[ASV90\]).
//!
//! Which constructs are *legal* is decided by each engine's validation pass,
//! not by the parser: the parser accepts the union.
//!
//! # Syntax
//!
//! ```text
//! % line comment
//! person(a).  person(b).                    % facts
//! man(X) :- sex_guess[1](X, male, 1).       % ID-literal, grouped by attr 1
//! two(N) :- emp[2](N, D, T), T < 2.         % comparisons are infix
//! all(D) :- emp(N, D), choice((D), (N)).    % choice operator
//! p(X)  :- q(X, Z), not r(Z).               % negation
//! p(X, N) :- q(X, N), plus(L, M, N).        % arithmetic predicates
//! a(X) & b(X) :- c(X).                      % DL conjunctive head
//! not a(X) :- c(X).                         % N-DATALOG deleting head
//! ```
//!
//! Identifiers starting lowercase are constants/predicates, ones starting
//! uppercase (or `_`) are variables, integer literals are sort-`i` constants.

#![warn(missing_docs)]

pub mod ast;
pub mod display;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod span;
pub mod token;

pub use ast::{Atom, Builtin, Clause, HeadAtom, Literal, PredicateRef, Program, Term};
pub use error::{ParseError, ParseResult};
pub use parser::{parse_clause, parse_program, parse_program_with_spans};
pub use span::{AtomSpans, ClauseSpans, LiteralSpans, Span, SpanMap};
pub use token::Pos;
