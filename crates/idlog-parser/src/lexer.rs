//! Hand-written lexer.

use crate::error::{ParseError, ParseResult};
use crate::token::{Pos, Spanned, Token};

/// Tokenize `src` completely, appending a final [`Token::Eof`].
pub fn lex(src: &str) -> ParseResult<Vec<Spanned>> {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    pos: Pos,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            chars: src.chars().peekable(),
            pos: Pos { line: 1, col: 1 },
        }
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.next()?;
        if c == '\n' {
            self.pos.line += 1;
            self.pos.col = 1;
        } else {
            self.pos.col += 1;
        }
        Some(c)
    }

    fn peek(&mut self) -> Option<char> {
        self.chars.peek().copied()
    }

    fn run(mut self) -> ParseResult<Vec<Spanned>> {
        let mut out = Vec::new();
        loop {
            // Skip whitespace and `%` line comments.
            match self.peek() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                    continue;
                }
                Some('%') => {
                    while let Some(c) = self.bump() {
                        if c == '\n' {
                            break;
                        }
                    }
                    continue;
                }
                _ => {}
            }
            let start = self.pos;
            let Some(c) = self.peek() else {
                out.push(Spanned {
                    token: Token::Eof,
                    pos: start,
                    end: start,
                });
                return Ok(out);
            };
            let token = match c {
                '(' => self.single(Token::LParen),
                ')' => self.single(Token::RParen),
                '[' => self.single(Token::LBracket),
                ']' => self.single(Token::RBracket),
                ',' => self.single(Token::Comma),
                '.' => self.single(Token::Dot),
                '&' => self.single(Token::Amp),
                '|' => self.single(Token::Pipe),
                '=' => self.single(Token::Eq),
                '<' => {
                    self.bump();
                    if self.peek() == Some('=') {
                        self.bump();
                        Token::Le
                    } else {
                        Token::Lt
                    }
                }
                '>' => {
                    self.bump();
                    if self.peek() == Some('=') {
                        self.bump();
                        Token::Ge
                    } else {
                        Token::Gt
                    }
                }
                '!' => {
                    self.bump();
                    if self.peek() == Some('=') {
                        self.bump();
                        Token::Ne
                    } else {
                        Token::Cut
                    }
                }
                ':' => {
                    self.bump();
                    if self.peek() == Some('-') {
                        self.bump();
                        Token::Implies
                    } else {
                        return Err(ParseError::new(start, "expected `:-`"));
                    }
                }
                '\'' => {
                    // Quoted atom: '...' may contain anything but a quote.
                    self.bump();
                    let mut s = String::new();
                    loop {
                        match self.bump() {
                            Some('\'') => break,
                            Some(ch) => s.push(ch),
                            None => return Err(ParseError::new(start, "unterminated quoted atom")),
                        }
                    }
                    Token::Ident(s)
                }
                c if c.is_ascii_digit() => {
                    let mut n: i64 = 0;
                    while let Some(d) = self.peek() {
                        let Some(digit) = d.to_digit(10) else { break };
                        self.bump();
                        n = n
                            .checked_mul(10)
                            .and_then(|n| n.checked_add(digit as i64))
                            .ok_or_else(|| ParseError::new(start, "integer literal overflows"))?;
                    }
                    Token::Int(n)
                }
                c if c.is_alphabetic() || c == '_' => {
                    let mut s = String::new();
                    while let Some(ch) = self.peek() {
                        if ch.is_alphanumeric() || ch == '_' {
                            s.push(ch);
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    let first = s.chars().next().expect("nonempty identifier");
                    if s == "not" {
                        Token::Not
                    } else if s == "choice" {
                        Token::Choice
                    } else if first.is_uppercase() || first == '_' {
                        Token::Var(s)
                    } else {
                        Token::Ident(s)
                    }
                }
                other => {
                    return Err(ParseError::new(
                        start,
                        format!("unexpected character {other:?}"),
                    ))
                }
            };
            out.push(Spanned {
                token,
                pos: start,
                end: self.pos,
            });
        }
    }

    fn single(&mut self, t: Token) -> Token {
        self.bump();
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tokens(src: &str) -> Vec<Token> {
        lex(src).unwrap().into_iter().map(|s| s.token).collect()
    }

    #[test]
    fn lexes_a_clause() {
        let ts = tokens("p(X) :- q(X, a), X < 2.");
        assert_eq!(
            ts,
            vec![
                Token::Ident("p".into()),
                Token::LParen,
                Token::Var("X".into()),
                Token::RParen,
                Token::Implies,
                Token::Ident("q".into()),
                Token::LParen,
                Token::Var("X".into()),
                Token::Comma,
                Token::Ident("a".into()),
                Token::RParen,
                Token::Comma,
                Token::Var("X".into()),
                Token::Lt,
                Token::Int(2),
                Token::Dot,
                Token::Eof,
            ]
        );
    }

    #[test]
    fn comments_and_whitespace_skipped() {
        let ts = tokens("% hello\n  p. % trailing\n");
        assert_eq!(ts, vec![Token::Ident("p".into()), Token::Dot, Token::Eof]);
    }

    #[test]
    fn keywords_not_and_choice() {
        let ts = tokens("not choice nothing Notvar");
        assert_eq!(
            ts,
            vec![
                Token::Not,
                Token::Choice,
                Token::Ident("nothing".into()),
                Token::Var("Notvar".into()),
                Token::Eof,
            ]
        );
    }

    #[test]
    fn comparison_operators() {
        let ts = tokens("< <= > >= = !=");
        assert_eq!(
            ts,
            vec![
                Token::Lt,
                Token::Le,
                Token::Gt,
                Token::Ge,
                Token::Eq,
                Token::Ne,
                Token::Eof
            ]
        );
    }

    #[test]
    fn underscore_variables_and_quoted_atoms() {
        let ts = tokens("_x 'Hello World'");
        assert_eq!(
            ts,
            vec![
                Token::Var("_x".into()),
                Token::Ident("Hello World".into()),
                Token::Eof
            ]
        );
    }

    #[test]
    fn error_positions_are_reported() {
        let err = lex("p :- q\n  @").unwrap_err();
        assert_eq!(err.pos.line, 2);
        assert_eq!(err.pos.col, 3);
    }

    #[test]
    fn lone_bang_is_cut() {
        let ts = tokens("p :- q, !.");
        assert!(ts.contains(&Token::Cut));
    }

    #[test]
    fn big_integer_overflow_is_error() {
        assert!(lex("99999999999999999999999999").is_err());
    }
}
