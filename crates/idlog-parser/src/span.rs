//! Source spans for parsed programs.
//!
//! The AST types in [`crate::ast`] derive `PartialEq`/`Eq`/`Hash` and are
//! compared *semantically* throughout the engines (e.g. the redundancy
//! checker treats two α-identical clauses as equal), so positions cannot
//! live inside the nodes themselves. Instead the parser records them in a
//! [`SpanMap`] side-table whose shape mirrors the program structurally:
//! clause *i* → head atom *j* / body literal *j* → term *k*. Consumers that
//! hold a `Program` and its `SpanMap` can look up the origin of any node by
//! the same indices they use to walk the AST.

use crate::token::Pos;

/// A contiguous region of source text: `[start, end)` in line/column terms,
/// with `end` pointing one past the last character (both 1-based).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Span {
    /// First character of the region.
    pub start: Pos,
    /// One past the last character of the region.
    pub end: Pos,
}

impl Span {
    /// A span covering exactly the region from `start` to `end`.
    pub fn new(start: Pos, end: Pos) -> Self {
        Span { start, end }
    }

    /// A zero-width span at `pos` (used for EOF-anchored diagnostics).
    pub fn point(pos: Pos) -> Self {
        Span {
            start: pos,
            end: pos,
        }
    }

    /// Whether this span carries a real position. The `Default` span (line 0)
    /// means "origin unknown" — e.g. a synthesized clause.
    pub fn is_known(&self) -> bool {
        self.start.line != 0
    }

    /// The smallest span covering both `self` and `other`.
    pub fn merge(self, other: Span) -> Span {
        if !self.is_known() {
            return other;
        }
        if !other.is_known() {
            return self;
        }
        let start = if (other.start.line, other.start.col) < (self.start.line, self.start.col) {
            other.start
        } else {
            self.start
        };
        let end = if (other.end.line, other.end.col) > (self.end.line, self.end.col) {
            other.end
        } else {
            self.end
        };
        Span { start, end }
    }
}

impl std::fmt::Display for Span {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.start)
    }
}

/// Spans for one atom (or atom-shaped literal such as a builtin call).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct AtomSpans {
    /// The whole atom, including its argument list (and, for a negated head
    /// atom, the leading `not`).
    pub span: Span,
    /// The predicate-name token alone (or the operator of a builtin, the
    /// `choice` keyword of a choice literal, the `!` of a cut).
    pub name: Span,
    /// One span per argument term, in order. For a choice literal this is
    /// the grouped terms followed by the chosen terms.
    pub terms: Vec<Span>,
}

impl AtomSpans {
    /// Span of term `idx`, if recorded.
    pub fn term(&self, idx: usize) -> Option<Span> {
        self.terms.get(idx).copied()
    }
}

/// Spans for one body literal.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct LiteralSpans {
    /// The whole literal, including any leading `not`.
    pub span: Span,
    /// The literal's atom shape: predicate/operator name plus term spans.
    pub atom: AtomSpans,
}

/// Spans for one clause.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct ClauseSpans {
    /// The whole clause, from the first head token through the final `.`.
    pub span: Span,
    /// One entry per head atom (parallel to `Clause::head`).
    pub head: Vec<AtomSpans>,
    /// One entry per body literal (parallel to `Clause::body`).
    pub body: Vec<LiteralSpans>,
}

impl ClauseSpans {
    /// Spans of head atom `idx`, if recorded.
    pub fn head_atom(&self, idx: usize) -> Option<&AtomSpans> {
        self.head.get(idx)
    }

    /// Spans of body literal `idx`, if recorded.
    pub fn literal(&self, idx: usize) -> Option<&LiteralSpans> {
        self.body.get(idx)
    }
}

/// Positions for every clause of a parsed program, parallel to
/// `Program::clauses`. Obtained from [`crate::parser::parse_program_with_spans`].
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct SpanMap {
    /// One entry per clause.
    pub clauses: Vec<ClauseSpans>,
}

impl SpanMap {
    /// Spans of clause `idx`, if recorded.
    pub fn clause(&self, idx: usize) -> Option<&ClauseSpans> {
        self.clauses.get(idx)
    }

    /// Span of clause `idx`, or the unknown span when unrecorded.
    pub fn clause_span(&self, idx: usize) -> Span {
        self.clause(idx).map(|c| c.span).unwrap_or_default()
    }

    /// Span of body literal `lit` of clause `idx`, falling back to the
    /// clause span, then to the unknown span.
    pub fn literal_span(&self, idx: usize, lit: usize) -> Span {
        match self.clause(idx) {
            Some(c) => c.literal(lit).map(|l| l.span).unwrap_or(c.span),
            None => Span::default(),
        }
    }

    /// Span of the head-atom predicate name of clause `idx` (first head
    /// atom), falling back to the clause span.
    pub fn head_name_span(&self, idx: usize) -> Span {
        match self.clause(idx) {
            Some(c) => c.head_atom(0).map(|a| a.name).unwrap_or(c.span),
            None => Span::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pos(line: u32, col: u32) -> Pos {
        Pos { line, col }
    }

    #[test]
    fn merge_orders_endpoints() {
        let a = Span::new(pos(1, 5), pos(1, 9));
        let b = Span::new(pos(1, 2), pos(1, 7));
        let m = a.merge(b);
        assert_eq!(m, Span::new(pos(1, 2), pos(1, 9)));
    }

    #[test]
    fn merge_ignores_unknown() {
        let a = Span::new(pos(2, 1), pos(2, 4));
        assert_eq!(a.merge(Span::default()), a);
        assert_eq!(Span::default().merge(a), a);
        assert!(!Span::default().is_known());
    }

    #[test]
    fn fallbacks_degrade_gracefully() {
        let map = SpanMap::default();
        assert!(!map.clause_span(3).is_known());
        assert!(!map.literal_span(0, 0).is_known());
        assert!(!map.head_name_span(9).is_known());
    }
}
