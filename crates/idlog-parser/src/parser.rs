//! Recursive-descent parser.

use idlog_common::Interner;

use crate::ast::{Atom, Builtin, Clause, HeadAtom, Literal, Program, Term};
use crate::error::{ParseError, ParseResult};
use crate::lexer::lex;
use crate::span::{AtomSpans, ClauseSpans, LiteralSpans, Span, SpanMap};
use crate::token::{Pos, Spanned, Token};

/// Parse a whole program. Constants are interned into `interner`.
pub fn parse_program(src: &str, interner: &Interner) -> ParseResult<Program> {
    parse_program_with_spans(src, interner).map(|(p, _)| p)
}

/// Parse a whole program, also returning a [`SpanMap`] that records where
/// every clause, atom, and term came from (for diagnostics).
pub fn parse_program_with_spans(src: &str, interner: &Interner) -> ParseResult<(Program, SpanMap)> {
    let mut p = Parser::new(src, interner)?;
    let mut clauses = Vec::new();
    let mut spans = SpanMap::default();
    while !p.at_eof() {
        let (clause, clause_spans) = p.clause()?;
        clauses.push(clause);
        spans.clauses.push(clause_spans);
    }
    Ok((Program { clauses }, spans))
}

/// Parse a single clause (must consume all input up to the final `.`).
pub fn parse_clause(src: &str, interner: &Interner) -> ParseResult<Clause> {
    let mut p = Parser::new(src, interner)?;
    let (c, _) = p.clause()?;
    if !p.at_eof() {
        return Err(p.unexpected("end of input"));
    }
    Ok(c)
}

struct Parser<'a> {
    tokens: Vec<Spanned>,
    at: usize,
    /// End position of the most recently consumed token.
    last_end: Pos,
    interner: &'a Interner,
}

impl<'a> Parser<'a> {
    fn new(src: &str, interner: &'a Interner) -> ParseResult<Parser<'a>> {
        Ok(Parser {
            tokens: lex(src)?,
            at: 0,
            last_end: Pos { line: 1, col: 1 },
            interner,
        })
    }

    fn peek(&self) -> &Token {
        &self.tokens[self.at].token
    }

    fn peek2(&self) -> &Token {
        let idx = (self.at + 1).min(self.tokens.len() - 1);
        &self.tokens[idx].token
    }

    fn pos(&self) -> Pos {
        self.tokens[self.at].pos
    }

    /// Span of the token about to be consumed.
    fn token_span(&self) -> Span {
        Span::new(self.tokens[self.at].pos, self.tokens[self.at].end)
    }

    /// End position of the last token consumed — the closing edge for a
    /// span whose node has just been fully parsed.
    fn prev_end(&self) -> Pos {
        self.last_end
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.at].token.clone();
        self.last_end = self.tokens[self.at].end;
        if self.at + 1 < self.tokens.len() {
            self.at += 1;
        }
        t
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek(), Token::Eof)
    }

    fn expect(&mut self, want: &Token) -> ParseResult<()> {
        if self.peek() == want {
            self.bump();
            Ok(())
        } else {
            Err(ParseError::new(
                self.pos(),
                format!("expected {want}, found {}", self.peek()),
            ))
        }
    }

    fn unexpected(&self, wanted: &str) -> ParseError {
        ParseError::new(
            self.pos(),
            format!("expected {wanted}, found {}", self.peek()),
        )
    }

    fn clause(&mut self) -> ParseResult<(Clause, ClauseSpans)> {
        let start = self.pos();
        let (first, first_spans) = self.head_atom()?;
        let mut head = vec![first];
        let mut head_spans = vec![first_spans];
        let mut disjunctive = false;
        if matches!(self.peek(), Token::Amp | Token::Pipe) {
            disjunctive = matches!(self.peek(), Token::Pipe);
            let sep = if disjunctive { Token::Pipe } else { Token::Amp };
            while self.peek() == &sep {
                self.bump();
                let (atom, spans) = self.head_atom()?;
                head.push(atom);
                head_spans.push(spans);
            }
            if matches!(self.peek(), Token::Amp | Token::Pipe) {
                return Err(ParseError::new(
                    self.pos(),
                    "cannot mix `&` and `|` in one head",
                ));
            }
        }
        let mut body_spans = Vec::new();
        let body = if matches!(self.peek(), Token::Implies) {
            self.bump();
            let (first, first_spans) = self.literal()?;
            let mut body = vec![first];
            body_spans.push(first_spans);
            while matches!(self.peek(), Token::Comma) {
                self.bump();
                let (lit, spans) = self.literal()?;
                body.push(lit);
                body_spans.push(spans);
            }
            body
        } else {
            Vec::new()
        };
        self.expect(&Token::Dot)?;
        Ok((
            Clause {
                head,
                body,
                disjunctive,
            },
            ClauseSpans {
                span: Span::new(start, self.prev_end()),
                head: head_spans,
                body: body_spans,
            },
        ))
    }

    fn head_atom(&mut self) -> ParseResult<(HeadAtom, AtomSpans)> {
        let start = self.pos();
        let negated = if matches!(self.peek(), Token::Not) {
            self.bump();
            true
        } else {
            false
        };
        let (atom, mut spans) = self.atom()?;
        spans.span.start = start; // include the `not`
        Ok((HeadAtom { negated, atom }, spans))
    }

    fn literal(&mut self) -> ParseResult<(Literal, LiteralSpans)> {
        match self.peek() {
            Token::Not => {
                let start = self.pos();
                self.bump();
                let pos = self.pos();
                let (atom, atom_spans) = self.atom()?;
                if Builtin::from_name(&self.name_of(&atom)).is_some() {
                    return Err(ParseError::new(
                        pos,
                        "cannot negate an arithmetic predicate",
                    ));
                }
                Ok((
                    Literal::Neg(atom),
                    LiteralSpans {
                        span: Span::new(start, self.prev_end()),
                        atom: atom_spans,
                    },
                ))
            }
            Token::Choice => {
                let start = self.pos();
                let name = self.token_span();
                self.bump();
                self.expect(&Token::LParen)?;
                self.expect(&Token::LParen)?;
                let (grouped, mut term_spans) = self.term_list(&Token::RParen)?;
                self.expect(&Token::RParen)?;
                self.expect(&Token::Comma)?;
                self.expect(&Token::LParen)?;
                let (chosen, chosen_spans) = self.term_list(&Token::RParen)?;
                self.expect(&Token::RParen)?;
                self.expect(&Token::RParen)?;
                term_spans.extend(chosen_spans);
                let span = Span::new(start, self.prev_end());
                Ok((
                    Literal::Choice { grouped, chosen },
                    LiteralSpans {
                        span,
                        atom: AtomSpans {
                            span,
                            name,
                            terms: term_spans,
                        },
                    },
                ))
            }
            Token::Cut => {
                let name = self.token_span();
                self.bump();
                Ok((
                    Literal::Cut,
                    LiteralSpans {
                        span: name,
                        atom: AtomSpans {
                            span: name,
                            name,
                            terms: Vec::new(),
                        },
                    },
                ))
            }
            Token::Var(_) | Token::Int(_) => self.comparison(),
            Token::Ident(_) => {
                // `a < X` (constant lhs) vs `p(…)` / `p[…](…)` / 0-ary `p`.
                if self.is_cmp(self.peek2()) {
                    self.comparison()
                } else {
                    let pos = self.pos();
                    let (atom, atom_spans) = self.atom()?;
                    let lit = self.classify_atom(atom, pos)?;
                    Ok((
                        lit,
                        LiteralSpans {
                            span: atom_spans.span,
                            atom: atom_spans,
                        },
                    ))
                }
            }
            _ => Err(self.unexpected("a body literal")),
        }
    }

    /// Turn atoms named after builtins into builtin literals.
    fn classify_atom(&self, atom: Atom, pos: Pos) -> ParseResult<Literal> {
        let name = self.name_of(&atom);
        if let Some(op) = Builtin::from_name(&name) {
            if atom.pred.is_id_version() {
                return Err(ParseError::new(
                    pos,
                    "arithmetic predicates have no ID-version",
                ));
            }
            if atom.terms.len() != op.arity() {
                return Err(ParseError::new(
                    pos,
                    format!(
                        "{name} takes {} arguments, got {}",
                        op.arity(),
                        atom.terms.len()
                    ),
                ));
            }
            Ok(Literal::Builtin {
                op,
                args: atom.terms,
            })
        } else {
            Ok(Literal::Pos(atom))
        }
    }

    fn name_of(&self, atom: &Atom) -> String {
        self.interner.resolve(atom.pred.base())
    }

    fn is_cmp(&self, t: &Token) -> bool {
        matches!(
            t,
            Token::Lt | Token::Le | Token::Gt | Token::Ge | Token::Eq | Token::Ne
        )
    }

    fn comparison(&mut self) -> ParseResult<(Literal, LiteralSpans)> {
        let (lhs, lhs_span) = self.term()?;
        let name = self.token_span();
        let op = match self.bump() {
            Token::Lt => Builtin::Lt,
            Token::Le => Builtin::Le,
            Token::Gt => Builtin::Gt,
            Token::Ge => Builtin::Ge,
            Token::Eq => Builtin::Eq,
            Token::Ne => Builtin::Ne,
            other => {
                return Err(ParseError::new(
                    self.pos(),
                    format!("expected comparison operator, found {other}"),
                ))
            }
        };
        let (rhs, rhs_span) = self.term()?;
        let span = lhs_span.merge(rhs_span);
        Ok((
            Literal::Builtin {
                op,
                args: vec![lhs, rhs],
            },
            LiteralSpans {
                span,
                atom: AtomSpans {
                    span,
                    name,
                    terms: vec![lhs_span, rhs_span],
                },
            },
        ))
    }

    fn atom(&mut self) -> ParseResult<(Atom, AtomSpans)> {
        let pos = self.pos();
        let name_span = self.token_span();
        let name = match self.bump() {
            Token::Ident(s) => s,
            other => {
                return Err(ParseError::new(
                    pos,
                    format!("expected predicate, found {other}"),
                ))
            }
        };
        let pred = self.interner.intern(&name);

        // Optional ID-version grouping `[2]`, `[1,2]`, `[]` (1-based in source).
        let grouping = if matches!(self.peek(), Token::LBracket) {
            self.bump();
            let mut grouping = Vec::new();
            if !matches!(self.peek(), Token::RBracket) {
                loop {
                    let gpos = self.pos();
                    match self.bump() {
                        Token::Int(n) if n >= 1 => grouping.push((n - 1) as usize),
                        Token::Int(n) => {
                            return Err(ParseError::new(
                                gpos,
                                format!("grouping attributes are 1-based, got {n}"),
                            ))
                        }
                        other => {
                            return Err(ParseError::new(
                                gpos,
                                format!("expected attribute position, found {other}"),
                            ))
                        }
                    }
                    if matches!(self.peek(), Token::Comma) {
                        self.bump();
                    } else {
                        break;
                    }
                }
            }
            self.expect(&Token::RBracket)?;
            Some(grouping)
        } else {
            None
        };

        let (terms, term_spans) = if matches!(self.peek(), Token::LParen) {
            self.bump();
            let (terms, spans) = self.term_list(&Token::RParen)?;
            self.expect(&Token::RParen)?;
            (terms, spans)
        } else {
            (Vec::new(), Vec::new())
        };

        let spans = AtomSpans {
            span: Span::new(pos, self.prev_end()),
            name: name_span,
            terms: term_spans,
        };
        match grouping {
            None => Ok((Atom::ordinary(pred, terms), spans)),
            Some(g) => {
                if terms.is_empty() {
                    return Err(ParseError::new(
                        pos,
                        "ID-atom needs at least a tid argument",
                    ));
                }
                // Grouping positions must index base-predicate columns.
                let base_arity = terms.len() - 1;
                if let Some(&bad) = g.iter().find(|&&p| p >= base_arity) {
                    return Err(ParseError::new(
                        pos,
                        format!(
                            "grouping attribute {} out of range for base arity {base_arity}",
                            bad + 1
                        ),
                    ));
                }
                Ok((Atom::id_version(pred, g, terms), spans))
            }
        }
    }

    fn term_list(&mut self, close: &Token) -> ParseResult<(Vec<Term>, Vec<Span>)> {
        let mut terms = Vec::new();
        let mut spans = Vec::new();
        if self.peek() == close {
            return Ok((terms, spans));
        }
        loop {
            let (term, span) = self.term()?;
            terms.push(term);
            spans.push(span);
            if matches!(self.peek(), Token::Comma) {
                self.bump();
            } else {
                break;
            }
        }
        Ok((terms, spans))
    }

    fn term(&mut self) -> ParseResult<(Term, Span)> {
        let pos = self.pos();
        let span = self.token_span();
        match self.bump() {
            Token::Var(v) => Ok((Term::Var(v), span)),
            Token::Ident(s) => Ok((Term::Sym(self.interner.intern(&s)), span)),
            Token::Int(n) => Ok((Term::Int(n), span)),
            other => Err(ParseError::new(
                pos,
                format!("expected a term, found {other}"),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::PredicateRef;

    #[test]
    fn parses_fact_and_rule() {
        let i = Interner::new();
        let p = parse_program("person(a). man(X) :- person(X), not woman(X).", &i).unwrap();
        assert_eq!(p.clauses.len(), 2);
        assert!(p.clauses[0].is_fact());
        let rule = &p.clauses[1];
        assert_eq!(rule.body.len(), 2);
        assert!(matches!(rule.body[1], Literal::Neg(_)));
    }

    #[test]
    fn parses_id_atom_with_paper_syntax() {
        // Paper: select_two_emp(Name) :- emp[2](Name, Dept, N), N < 2.
        let i = Interner::new();
        let c = parse_clause("select_two_emp(Name) :- emp[2](Name, Dept, N), N < 2.", &i).unwrap();
        let Literal::Pos(atom) = &c.body[0] else {
            panic!("expected positive atom")
        };
        match &atom.pred {
            PredicateRef::IdVersion { base, grouping } => {
                assert_eq!(i.resolve(*base), "emp");
                assert_eq!(grouping, &vec![1]); // 1-based `2` → 0-based 1
            }
            _ => panic!("expected ID-version"),
        }
        assert_eq!(atom.base_arity(), 2);
        assert!(matches!(
            &c.body[1],
            Literal::Builtin {
                op: Builtin::Lt,
                ..
            }
        ));
    }

    #[test]
    fn parses_empty_grouping() {
        let i = Interner::new();
        let c = parse_clause("p(X) :- q[](X, 0).", &i).unwrap();
        let Literal::Pos(atom) = &c.body[0] else {
            panic!()
        };
        match &atom.pred {
            PredicateRef::IdVersion { grouping, .. } => assert!(grouping.is_empty()),
            _ => panic!("expected ID-version"),
        }
    }

    #[test]
    fn parses_choice_literal() {
        let i = Interner::new();
        let c = parse_clause("select_emp(N) :- emp(N, D), choice((D), (N)).", &i).unwrap();
        let Literal::Choice { grouped, chosen } = &c.body[1] else {
            panic!("expected choice")
        };
        assert_eq!(grouped, &vec![Term::Var("D".into())]);
        assert_eq!(chosen, &vec![Term::Var("N".into())]);
    }

    #[test]
    fn parses_builtin_prefix_forms() {
        let i = Interner::new();
        let c = parse_clause("p(X, N) :- q(X, N), plus(L, M, N), succ(N, N2).", &i).unwrap();
        assert!(matches!(
            &c.body[1],
            Literal::Builtin {
                op: Builtin::Plus,
                ..
            }
        ));
        assert!(matches!(
            &c.body[2],
            Literal::Builtin {
                op: Builtin::Succ,
                ..
            }
        ));
    }

    #[test]
    fn parses_multi_head_and_negated_head() {
        let i = Interner::new();
        let c = parse_clause("a(X) & not b(X) :- c(X).", &i).unwrap();
        assert_eq!(c.head.len(), 2);
        assert!(!c.head[0].negated);
        assert!(c.head[1].negated);
    }

    #[test]
    fn parses_zero_ary_atoms() {
        let i = Interner::new();
        let c = parse_clause("q1 :- x(c).", &i).unwrap();
        assert_eq!(c.single_head().terms.len(), 0);
    }

    #[test]
    fn constant_lhs_comparison() {
        let i = Interner::new();
        let c = parse_clause("p(X) :- q(X), X != a.", &i).unwrap();
        let Literal::Builtin {
            op: Builtin::Ne,
            args,
        } = &c.body[1]
        else {
            panic!()
        };
        assert_eq!(args[0], Term::Var("X".into()));
        assert!(matches!(args[1], Term::Sym(_)));
    }

    #[test]
    fn rejects_zero_based_grouping() {
        let i = Interner::new();
        assert!(parse_clause("p(X) :- q[0](X, T).", &i).is_err());
    }

    #[test]
    fn rejects_grouping_out_of_range() {
        let i = Interner::new();
        // q[3] with base arity 2 (three terms incl. tid) is out of range.
        assert!(parse_clause("p(X) :- q[3](X, Y, T).", &i).is_err());
    }

    #[test]
    fn rejects_negated_builtin() {
        let i = Interner::new();
        assert!(parse_clause("p(X) :- q(X), not succ(X, Y).", &i).is_err());
    }

    #[test]
    fn rejects_wrong_builtin_arity() {
        let i = Interner::new();
        assert!(parse_clause("p(X) :- plus(X, Y).", &i).is_err());
    }

    #[test]
    fn rejects_trailing_garbage_in_parse_clause() {
        let i = Interner::new();
        assert!(parse_clause("p. q.", &i).is_err());
    }

    #[test]
    fn error_mentions_position() {
        let i = Interner::new();
        let err = parse_program("p(X) :- q(X)\nr(Y).", &i).unwrap_err();
        // Missing dot: error reported on line 2.
        assert_eq!(err.pos.line, 2);
    }

    #[test]
    fn spans_point_at_source_text() {
        let i = Interner::new();
        let src = "p(X) :- q(X, abc), not r(X), X < 2.\nfact(a).\n";
        let (prog, spans) = parse_program_with_spans(src, &i).unwrap();
        assert_eq!(prog.clauses.len(), 2);
        assert_eq!(spans.clauses.len(), 2);

        let c0 = spans.clause(0).unwrap();
        // Whole clause: col 1 through one past the final `.` (col 36).
        assert_eq!((c0.span.start.line, c0.span.start.col), (1, 1));
        assert_eq!((c0.span.end.line, c0.span.end.col), (1, 36));
        // Head atom `p(X)` and its name `p`.
        let head = c0.head_atom(0).unwrap();
        assert_eq!((head.name.start.col, head.name.end.col), (1, 2));
        assert_eq!((head.span.start.col, head.span.end.col), (1, 5));
        // `q(X, abc)`: name at col 9, term `abc` covering cols 14..17.
        let q = c0.literal(0).unwrap();
        assert_eq!((q.atom.name.start.col, q.atom.name.end.col), (9, 10));
        let abc = q.atom.term(1).unwrap();
        assert_eq!((abc.start.col, abc.end.col), (14, 17));
        // `not r(X)` literal span includes the `not`; its name is `r`.
        let r = c0.literal(1).unwrap();
        assert_eq!((r.span.start.col, r.span.end.col), (20, 28));
        assert_eq!((r.atom.name.start.col, r.atom.name.end.col), (24, 25));
        // `X < 2` comparison: name span on the operator.
        let cmp = c0.literal(2).unwrap();
        assert_eq!((cmp.atom.name.start.col, cmp.atom.name.end.col), (32, 33));
        assert_eq!((cmp.span.start.col, cmp.span.end.col), (30, 35));

        // Second clause sits on line 2.
        let c1 = spans.clause(1).unwrap();
        assert_eq!(c1.span.start.line, 2);
        assert_eq!((c1.span.start.col, c1.span.end.col), (1, 9));
    }

    #[test]
    fn spans_cover_choice_and_id_atoms() {
        let i = Interner::new();
        let src = "two(N) :- emp[2](N, D, T), choice((D), (N)).";
        let (_, spans) = parse_program_with_spans(src, &i).unwrap();
        let c = spans.clause(0).unwrap();
        // `emp[2](N, D, T)` — atom span covers brackets and args.
        let emp = c.literal(0).unwrap();
        assert_eq!((emp.span.start.col, emp.span.end.col), (11, 26));
        assert_eq!((emp.atom.name.start.col, emp.atom.name.end.col), (11, 14));
        assert_eq!(emp.atom.terms.len(), 3);
        // choice literal: name on the keyword, terms = grouped ++ chosen.
        let ch = c.literal(1).unwrap();
        assert_eq!((ch.atom.name.start.col, ch.atom.name.end.col), (28, 34));
        assert_eq!(ch.atom.terms.len(), 2);
        assert_eq!((ch.span.start.col, ch.span.end.col), (28, 44));
    }

    #[test]
    fn paper_example2_program_parses() {
        let i = Interner::new();
        let src = "
            sex_guess(X, male) :- person(X).
            sex_guess(X, female) :- person(X).
            man(X) :- sex_guess[1](X, male, 1).
            woman(X) :- sex_guess[1](X, female, 1).
        ";
        let p = parse_program(src, &i).unwrap();
        assert_eq!(p.clauses.len(), 4);
        let inputs = p.input_predicates();
        assert_eq!(inputs.len(), 1);
        assert!(inputs.contains(&i.intern("person")));
    }
}
