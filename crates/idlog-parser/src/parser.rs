//! Recursive-descent parser.

use idlog_common::Interner;

use crate::ast::{Atom, Builtin, Clause, HeadAtom, Literal, Program, Term};
use crate::error::{ParseError, ParseResult};
use crate::lexer::lex;
use crate::token::{Pos, Spanned, Token};

/// Parse a whole program. Constants are interned into `interner`.
pub fn parse_program(src: &str, interner: &Interner) -> ParseResult<Program> {
    let mut p = Parser::new(src, interner)?;
    let mut clauses = Vec::new();
    while !p.at_eof() {
        clauses.push(p.clause()?);
    }
    Ok(Program { clauses })
}

/// Parse a single clause (must consume all input up to the final `.`).
pub fn parse_clause(src: &str, interner: &Interner) -> ParseResult<Clause> {
    let mut p = Parser::new(src, interner)?;
    let c = p.clause()?;
    if !p.at_eof() {
        return Err(p.unexpected("end of input"));
    }
    Ok(c)
}

struct Parser<'a> {
    tokens: Vec<Spanned>,
    at: usize,
    interner: &'a Interner,
}

impl<'a> Parser<'a> {
    fn new(src: &str, interner: &'a Interner) -> ParseResult<Parser<'a>> {
        Ok(Parser {
            tokens: lex(src)?,
            at: 0,
            interner,
        })
    }

    fn peek(&self) -> &Token {
        &self.tokens[self.at].token
    }

    fn peek2(&self) -> &Token {
        let idx = (self.at + 1).min(self.tokens.len() - 1);
        &self.tokens[idx].token
    }

    fn pos(&self) -> Pos {
        self.tokens[self.at].pos
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.at].token.clone();
        if self.at + 1 < self.tokens.len() {
            self.at += 1;
        }
        t
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek(), Token::Eof)
    }

    fn expect(&mut self, want: &Token) -> ParseResult<()> {
        if self.peek() == want {
            self.bump();
            Ok(())
        } else {
            Err(ParseError::new(
                self.pos(),
                format!("expected {want}, found {}", self.peek()),
            ))
        }
    }

    fn unexpected(&self, wanted: &str) -> ParseError {
        ParseError::new(
            self.pos(),
            format!("expected {wanted}, found {}", self.peek()),
        )
    }

    fn clause(&mut self) -> ParseResult<Clause> {
        let mut head = vec![self.head_atom()?];
        let mut disjunctive = false;
        if matches!(self.peek(), Token::Amp | Token::Pipe) {
            disjunctive = matches!(self.peek(), Token::Pipe);
            let sep = if disjunctive { Token::Pipe } else { Token::Amp };
            while self.peek() == &sep {
                self.bump();
                head.push(self.head_atom()?);
            }
            if matches!(self.peek(), Token::Amp | Token::Pipe) {
                return Err(ParseError::new(
                    self.pos(),
                    "cannot mix `&` and `|` in one head",
                ));
            }
        }
        let body = if matches!(self.peek(), Token::Implies) {
            self.bump();
            let mut body = vec![self.literal()?];
            while matches!(self.peek(), Token::Comma) {
                self.bump();
                body.push(self.literal()?);
            }
            body
        } else {
            Vec::new()
        };
        self.expect(&Token::Dot)?;
        Ok(Clause {
            head,
            body,
            disjunctive,
        })
    }

    fn head_atom(&mut self) -> ParseResult<HeadAtom> {
        let negated = if matches!(self.peek(), Token::Not) {
            self.bump();
            true
        } else {
            false
        };
        let atom = self.atom()?;
        Ok(HeadAtom { negated, atom })
    }

    fn literal(&mut self) -> ParseResult<Literal> {
        match self.peek() {
            Token::Not => {
                self.bump();
                let pos = self.pos();
                let atom = self.atom()?;
                if Builtin::from_name(&self.name_of(&atom)).is_some() {
                    return Err(ParseError::new(
                        pos,
                        "cannot negate an arithmetic predicate",
                    ));
                }
                Ok(Literal::Neg(atom))
            }
            Token::Choice => {
                self.bump();
                self.expect(&Token::LParen)?;
                self.expect(&Token::LParen)?;
                let grouped = self.term_list(&Token::RParen)?;
                self.expect(&Token::RParen)?;
                self.expect(&Token::Comma)?;
                self.expect(&Token::LParen)?;
                let chosen = self.term_list(&Token::RParen)?;
                self.expect(&Token::RParen)?;
                self.expect(&Token::RParen)?;
                Ok(Literal::Choice { grouped, chosen })
            }
            Token::Cut => {
                self.bump();
                Ok(Literal::Cut)
            }
            Token::Var(_) | Token::Int(_) => self.comparison(),
            Token::Ident(_) => {
                // `a < X` (constant lhs) vs `p(…)` / `p[…](…)` / 0-ary `p`.
                if self.is_cmp(self.peek2()) {
                    self.comparison()
                } else {
                    let pos = self.pos();
                    let atom = self.atom()?;
                    self.classify_atom(atom, pos)
                }
            }
            _ => Err(self.unexpected("a body literal")),
        }
    }

    /// Turn atoms named after builtins into builtin literals.
    fn classify_atom(&self, atom: Atom, pos: Pos) -> ParseResult<Literal> {
        let name = self.name_of(&atom);
        if let Some(op) = Builtin::from_name(&name) {
            if atom.pred.is_id_version() {
                return Err(ParseError::new(
                    pos,
                    "arithmetic predicates have no ID-version",
                ));
            }
            if atom.terms.len() != op.arity() {
                return Err(ParseError::new(
                    pos,
                    format!(
                        "{name} takes {} arguments, got {}",
                        op.arity(),
                        atom.terms.len()
                    ),
                ));
            }
            Ok(Literal::Builtin {
                op,
                args: atom.terms,
            })
        } else {
            Ok(Literal::Pos(atom))
        }
    }

    fn name_of(&self, atom: &Atom) -> String {
        self.interner.resolve(atom.pred.base())
    }

    fn is_cmp(&self, t: &Token) -> bool {
        matches!(
            t,
            Token::Lt | Token::Le | Token::Gt | Token::Ge | Token::Eq | Token::Ne
        )
    }

    fn comparison(&mut self) -> ParseResult<Literal> {
        let lhs = self.term()?;
        let op = match self.bump() {
            Token::Lt => Builtin::Lt,
            Token::Le => Builtin::Le,
            Token::Gt => Builtin::Gt,
            Token::Ge => Builtin::Ge,
            Token::Eq => Builtin::Eq,
            Token::Ne => Builtin::Ne,
            other => {
                return Err(ParseError::new(
                    self.pos(),
                    format!("expected comparison operator, found {other}"),
                ))
            }
        };
        let rhs = self.term()?;
        Ok(Literal::Builtin {
            op,
            args: vec![lhs, rhs],
        })
    }

    fn atom(&mut self) -> ParseResult<Atom> {
        let pos = self.pos();
        let name = match self.bump() {
            Token::Ident(s) => s,
            other => {
                return Err(ParseError::new(
                    pos,
                    format!("expected predicate, found {other}"),
                ))
            }
        };
        let pred = self.interner.intern(&name);

        // Optional ID-version grouping `[2]`, `[1,2]`, `[]` (1-based in source).
        let grouping = if matches!(self.peek(), Token::LBracket) {
            self.bump();
            let mut grouping = Vec::new();
            if !matches!(self.peek(), Token::RBracket) {
                loop {
                    let gpos = self.pos();
                    match self.bump() {
                        Token::Int(n) if n >= 1 => grouping.push((n - 1) as usize),
                        Token::Int(n) => {
                            return Err(ParseError::new(
                                gpos,
                                format!("grouping attributes are 1-based, got {n}"),
                            ))
                        }
                        other => {
                            return Err(ParseError::new(
                                gpos,
                                format!("expected attribute position, found {other}"),
                            ))
                        }
                    }
                    if matches!(self.peek(), Token::Comma) {
                        self.bump();
                    } else {
                        break;
                    }
                }
            }
            self.expect(&Token::RBracket)?;
            Some(grouping)
        } else {
            None
        };

        let terms = if matches!(self.peek(), Token::LParen) {
            self.bump();
            let terms = self.term_list(&Token::RParen)?;
            self.expect(&Token::RParen)?;
            terms
        } else {
            Vec::new()
        };

        match grouping {
            None => Ok(Atom::ordinary(pred, terms)),
            Some(g) => {
                if terms.is_empty() {
                    return Err(ParseError::new(
                        pos,
                        "ID-atom needs at least a tid argument",
                    ));
                }
                // Grouping positions must index base-predicate columns.
                let base_arity = terms.len() - 1;
                if let Some(&bad) = g.iter().find(|&&p| p >= base_arity) {
                    return Err(ParseError::new(
                        pos,
                        format!(
                            "grouping attribute {} out of range for base arity {base_arity}",
                            bad + 1
                        ),
                    ));
                }
                Ok(Atom::id_version(pred, g, terms))
            }
        }
    }

    fn term_list(&mut self, close: &Token) -> ParseResult<Vec<Term>> {
        let mut terms = Vec::new();
        if self.peek() == close {
            return Ok(terms);
        }
        loop {
            terms.push(self.term()?);
            if matches!(self.peek(), Token::Comma) {
                self.bump();
            } else {
                break;
            }
        }
        Ok(terms)
    }

    fn term(&mut self) -> ParseResult<Term> {
        let pos = self.pos();
        match self.bump() {
            Token::Var(v) => Ok(Term::Var(v)),
            Token::Ident(s) => Ok(Term::Sym(self.interner.intern(&s))),
            Token::Int(n) => Ok(Term::Int(n)),
            other => Err(ParseError::new(
                pos,
                format!("expected a term, found {other}"),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::PredicateRef;

    #[test]
    fn parses_fact_and_rule() {
        let i = Interner::new();
        let p = parse_program("person(a). man(X) :- person(X), not woman(X).", &i).unwrap();
        assert_eq!(p.clauses.len(), 2);
        assert!(p.clauses[0].is_fact());
        let rule = &p.clauses[1];
        assert_eq!(rule.body.len(), 2);
        assert!(matches!(rule.body[1], Literal::Neg(_)));
    }

    #[test]
    fn parses_id_atom_with_paper_syntax() {
        // Paper: select_two_emp(Name) :- emp[2](Name, Dept, N), N < 2.
        let i = Interner::new();
        let c = parse_clause("select_two_emp(Name) :- emp[2](Name, Dept, N), N < 2.", &i).unwrap();
        let Literal::Pos(atom) = &c.body[0] else {
            panic!("expected positive atom")
        };
        match &atom.pred {
            PredicateRef::IdVersion { base, grouping } => {
                assert_eq!(i.resolve(*base), "emp");
                assert_eq!(grouping, &vec![1]); // 1-based `2` → 0-based 1
            }
            _ => panic!("expected ID-version"),
        }
        assert_eq!(atom.base_arity(), 2);
        assert!(matches!(
            &c.body[1],
            Literal::Builtin {
                op: Builtin::Lt,
                ..
            }
        ));
    }

    #[test]
    fn parses_empty_grouping() {
        let i = Interner::new();
        let c = parse_clause("p(X) :- q[](X, 0).", &i).unwrap();
        let Literal::Pos(atom) = &c.body[0] else {
            panic!()
        };
        match &atom.pred {
            PredicateRef::IdVersion { grouping, .. } => assert!(grouping.is_empty()),
            _ => panic!("expected ID-version"),
        }
    }

    #[test]
    fn parses_choice_literal() {
        let i = Interner::new();
        let c = parse_clause("select_emp(N) :- emp(N, D), choice((D), (N)).", &i).unwrap();
        let Literal::Choice { grouped, chosen } = &c.body[1] else {
            panic!("expected choice")
        };
        assert_eq!(grouped, &vec![Term::Var("D".into())]);
        assert_eq!(chosen, &vec![Term::Var("N".into())]);
    }

    #[test]
    fn parses_builtin_prefix_forms() {
        let i = Interner::new();
        let c = parse_clause("p(X, N) :- q(X, N), plus(L, M, N), succ(N, N2).", &i).unwrap();
        assert!(matches!(
            &c.body[1],
            Literal::Builtin {
                op: Builtin::Plus,
                ..
            }
        ));
        assert!(matches!(
            &c.body[2],
            Literal::Builtin {
                op: Builtin::Succ,
                ..
            }
        ));
    }

    #[test]
    fn parses_multi_head_and_negated_head() {
        let i = Interner::new();
        let c = parse_clause("a(X) & not b(X) :- c(X).", &i).unwrap();
        assert_eq!(c.head.len(), 2);
        assert!(!c.head[0].negated);
        assert!(c.head[1].negated);
    }

    #[test]
    fn parses_zero_ary_atoms() {
        let i = Interner::new();
        let c = parse_clause("q1 :- x(c).", &i).unwrap();
        assert_eq!(c.single_head().terms.len(), 0);
    }

    #[test]
    fn constant_lhs_comparison() {
        let i = Interner::new();
        let c = parse_clause("p(X) :- q(X), X != a.", &i).unwrap();
        let Literal::Builtin {
            op: Builtin::Ne,
            args,
        } = &c.body[1]
        else {
            panic!()
        };
        assert_eq!(args[0], Term::Var("X".into()));
        assert!(matches!(args[1], Term::Sym(_)));
    }

    #[test]
    fn rejects_zero_based_grouping() {
        let i = Interner::new();
        assert!(parse_clause("p(X) :- q[0](X, T).", &i).is_err());
    }

    #[test]
    fn rejects_grouping_out_of_range() {
        let i = Interner::new();
        // q[3] with base arity 2 (three terms incl. tid) is out of range.
        assert!(parse_clause("p(X) :- q[3](X, Y, T).", &i).is_err());
    }

    #[test]
    fn rejects_negated_builtin() {
        let i = Interner::new();
        assert!(parse_clause("p(X) :- q(X), not succ(X, Y).", &i).is_err());
    }

    #[test]
    fn rejects_wrong_builtin_arity() {
        let i = Interner::new();
        assert!(parse_clause("p(X) :- plus(X, Y).", &i).is_err());
    }

    #[test]
    fn rejects_trailing_garbage_in_parse_clause() {
        let i = Interner::new();
        assert!(parse_clause("p. q.", &i).is_err());
    }

    #[test]
    fn error_mentions_position() {
        let i = Interner::new();
        let err = parse_program("p(X) :- q(X)\nr(Y).", &i).unwrap_err();
        // Missing dot: error reported on line 2.
        assert_eq!(err.pos.line, 2);
    }

    #[test]
    fn paper_example2_program_parses() {
        let i = Interner::new();
        let src = "
            sex_guess(X, male) :- person(X).
            sex_guess(X, female) :- person(X).
            man(X) :- sex_guess[1](X, male, 1).
            woman(X) :- sex_guess[1](X, female, 1).
        ";
        let p = parse_program(src, &i).unwrap();
        assert_eq!(p.clauses.len(), 4);
        let inputs = p.input_predicates();
        assert_eq!(inputs.len(), 1);
        assert!(inputs.contains(&i.intern("person")));
    }
}
