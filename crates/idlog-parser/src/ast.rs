//! Abstract syntax shared by the language family.

use idlog_common::{FxHashSet, SymbolId};

/// A term: a variable or a ground constant of either sort.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Term {
    /// A variable, by source name (`X`, `Dept`, `_t`).
    Var(String),
    /// An uninterpreted constant (sort `u`), interned.
    Sym(SymbolId),
    /// A natural number constant (sort `i`).
    Int(i64),
}

impl Term {
    /// The variable name, if this is a variable.
    pub fn as_var(&self) -> Option<&str> {
        match self {
            Term::Var(v) => Some(v),
            _ => None,
        }
    }

    /// True for non-variable terms.
    pub fn is_ground(&self) -> bool {
        !matches!(self, Term::Var(_))
    }
}

/// Arithmetic and comparison built-ins (paper §2.2: `succ` is primitive;
/// `+ − * /` and `<` are definable but we provide them natively, with the
/// same safety discipline).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Builtin {
    /// `succ(A, B)` ⇔ B = A + 1.
    Succ,
    /// `plus(A, B, C)` ⇔ A + B = C.
    Plus,
    /// `minus(A, B, C)` ⇔ A − B = C (partial over ℕ).
    Minus,
    /// `times(A, B, C)` ⇔ A · B = C.
    Times,
    /// `div(A, B, C)` ⇔ A / B = C exactly (B ≠ 0, B·C = A).
    Div,
    /// `A < B` (sort i).
    Lt,
    /// `A <= B` (sort i).
    Le,
    /// `A > B` (sort i).
    Gt,
    /// `A >= B` (sort i).
    Ge,
    /// `A = B` (either sort).
    Eq,
    /// `A != B` (either sort).
    Ne,
}

impl Builtin {
    /// Number of arguments.
    pub fn arity(self) -> usize {
        match self {
            Builtin::Succ => 2,
            Builtin::Plus | Builtin::Minus | Builtin::Times | Builtin::Div => 3,
            Builtin::Lt | Builtin::Le | Builtin::Gt | Builtin::Ge | Builtin::Eq | Builtin::Ne => 2,
        }
    }

    /// Parse a prefix-form builtin name (the infix comparisons have no name).
    pub fn from_name(name: &str) -> Option<Builtin> {
        match name {
            "succ" => Some(Builtin::Succ),
            "plus" => Some(Builtin::Plus),
            "minus" => Some(Builtin::Minus),
            "times" => Some(Builtin::Times),
            "div" => Some(Builtin::Div),
            _ => None,
        }
    }

    /// Canonical rendering.
    pub fn name(self) -> &'static str {
        match self {
            Builtin::Succ => "succ",
            Builtin::Plus => "plus",
            Builtin::Minus => "minus",
            Builtin::Times => "times",
            Builtin::Div => "div",
            Builtin::Lt => "<",
            Builtin::Le => "<=",
            Builtin::Gt => ">",
            Builtin::Ge => ">=",
            Builtin::Eq => "=",
            Builtin::Ne => "!=",
        }
    }

    /// True for the infix comparison operators.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            Builtin::Lt | Builtin::Le | Builtin::Gt | Builtin::Ge | Builtin::Eq | Builtin::Ne
        )
    }
}

/// Reference to a predicate occurrence: either the ordinary predicate or its
/// ID-version on a grouping attribute set.
///
/// Grouping attributes are stored 0-based and sorted; the surface syntax
/// `emp[2](…)` (1-based, as in the paper) becomes `grouping = [1]`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum PredicateRef {
    /// `p(…)`.
    Ordinary(SymbolId),
    /// `p[s](…, Tid)` — the ID-version of `p` on grouping set `s`.
    IdVersion {
        /// The base predicate.
        base: SymbolId,
        /// 0-based grouping attribute positions of the base predicate,
        /// ascending, deduplicated.
        grouping: Vec<usize>,
    },
}

impl PredicateRef {
    /// The underlying predicate symbol.
    pub fn base(&self) -> SymbolId {
        match self {
            PredicateRef::Ordinary(p) => *p,
            PredicateRef::IdVersion { base, .. } => *base,
        }
    }

    /// True for ID-versions.
    pub fn is_id_version(&self) -> bool {
        matches!(self, PredicateRef::IdVersion { .. })
    }
}

/// An atom: predicate reference applied to terms.
///
/// For an ID-atom, `terms` has the base predicate's arity plus one: the last
/// term is the tid.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Atom {
    /// Predicate (ordinary or ID-version).
    pub pred: PredicateRef,
    /// Argument terms.
    pub terms: Vec<Term>,
}

impl Atom {
    /// Build an ordinary atom.
    pub fn ordinary(pred: SymbolId, terms: Vec<Term>) -> Self {
        Atom {
            pred: PredicateRef::Ordinary(pred),
            terms,
        }
    }

    /// Build an ID-atom; `grouping` is 0-based.
    pub fn id_version(base: SymbolId, mut grouping: Vec<usize>, terms: Vec<Term>) -> Self {
        grouping.sort_unstable();
        grouping.dedup();
        Atom {
            pred: PredicateRef::IdVersion { base, grouping },
            terms,
        }
    }

    /// Arity of the *base* predicate (ID-atoms have one extra tid term).
    pub fn base_arity(&self) -> usize {
        match &self.pred {
            PredicateRef::Ordinary(_) => self.terms.len(),
            PredicateRef::IdVersion { .. } => self.terms.len().saturating_sub(1),
        }
    }

    /// Variables occurring in this atom, in order of first occurrence.
    pub fn variables(&self) -> Vec<&str> {
        let mut seen = FxHashSet::default();
        let mut out = Vec::new();
        for t in &self.terms {
            if let Term::Var(v) = t {
                if seen.insert(v.as_str()) {
                    out.push(v.as_str());
                }
            }
        }
        out
    }
}

/// A body literal.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Literal {
    /// Positive atom (ordinary or ID-version).
    Pos(Atom),
    /// Negated atom.
    Neg(Atom),
    /// Arithmetic/comparison builtin.
    Builtin {
        /// Which builtin.
        op: Builtin,
        /// Its arguments (`op.arity()` of them).
        args: Vec<Term>,
    },
    /// `choice((grouped…), (chosen…))` — DATALOG^C only.
    Choice {
        /// The FD's left-hand side (paper: `X̄`).
        grouped: Vec<Term>,
        /// The FD's right-hand side (paper: `Ȳ`).
        chosen: Vec<Term>,
    },
    /// `!` — Prolog-style cut; only the top-down SLD evaluator
    /// (`idlog_choice::cut`) gives it meaning, every other engine rejects it.
    Cut,
}

impl Literal {
    /// The atom inside, for `Pos`/`Neg` literals.
    pub fn atom(&self) -> Option<&Atom> {
        match self {
            Literal::Pos(a) | Literal::Neg(a) => Some(a),
            _ => None,
        }
    }

    /// Variables occurring in this literal, in order of first occurrence.
    pub fn variables(&self) -> Vec<&str> {
        let mut seen = FxHashSet::default();
        let mut out = Vec::new();
        let terms: Vec<&Term> = match self {
            Literal::Pos(a) | Literal::Neg(a) => a.terms.iter().collect(),
            Literal::Builtin { args, .. } => args.iter().collect(),
            Literal::Choice { grouped, chosen } => grouped.iter().chain(chosen.iter()).collect(),
            Literal::Cut => Vec::new(),
        };
        for t in terms {
            if let Term::Var(v) = t {
                if seen.insert(v.as_str()) {
                    out.push(v.as_str());
                }
            }
        }
        out
    }

    /// True for positive non-builtin, non-choice atoms (the literals that
    /// positively bind variables per the paper's safety condition).
    pub fn is_positive_atom(&self) -> bool {
        matches!(self, Literal::Pos(_))
    }
}

/// A head atom: an ordinary atom, possibly negated (negation in heads is
/// only meaningful for N-DATALOG, where it is a deletion).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct HeadAtom {
    /// True for `not p(…)` heads (N-DATALOG deletions).
    pub negated: bool,
    /// The atom. IDLOG requires this to be an ordinary predicate.
    pub atom: Atom,
}

/// A clause `H₁ & … & H_m :- B₁, …, B_n.` (conjunctive heads, DL) or
/// `H₁ | … | H_m :- B₁, …, B_n.` (disjunctive heads, DATALOG∨); facts have
/// an empty body, and ordinary languages have a single positive head.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Clause {
    /// One or more head atoms (more than one only in DL / DATALOG∨).
    pub head: Vec<HeadAtom>,
    /// Body literals (empty for facts).
    pub body: Vec<Literal>,
    /// True when a multi-atom head is a disjunction (`|`) rather than a
    /// conjunction (`&`). Irrelevant for single-atom heads.
    pub disjunctive: bool,
}

impl Clause {
    /// A single-headed clause.
    pub fn new(head: Atom, body: Vec<Literal>) -> Self {
        Clause {
            head: vec![HeadAtom {
                negated: false,
                atom: head,
            }],
            body,
            disjunctive: false,
        }
    }

    /// True when the body is empty.
    pub fn is_fact(&self) -> bool {
        self.body.is_empty()
    }

    /// The single head atom; panics if the clause is multi-headed (callers
    /// validate single-headedness first).
    pub fn single_head(&self) -> &Atom {
        assert_eq!(self.head.len(), 1, "clause has multiple heads");
        &self.head[0].atom
    }

    /// All variables in the clause, in order of first occurrence
    /// (head first, then body).
    pub fn variables(&self) -> Vec<&str> {
        let mut seen = FxHashSet::default();
        let mut out = Vec::new();
        for h in &self.head {
            for v in h.atom.variables() {
                if seen.insert(v) {
                    out.push(v);
                }
            }
        }
        for l in &self.body {
            for v in l.variables() {
                if seen.insert(v) {
                    out.push(v);
                }
            }
        }
        out
    }
}

/// A parsed program: a list of clauses (facts included).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Program {
    /// Clauses in source order.
    pub clauses: Vec<Clause>,
}

impl Program {
    /// Predicates appearing in any head.
    pub fn head_predicates(&self) -> FxHashSet<SymbolId> {
        let mut out = FxHashSet::default();
        for c in &self.clauses {
            for h in &c.head {
                out.insert(h.atom.pred.base());
            }
        }
        out
    }

    /// Predicates whose ordinary or ID-version occurs in any body.
    pub fn body_predicates(&self) -> FxHashSet<SymbolId> {
        let mut out = FxHashSet::default();
        for c in &self.clauses {
            for l in &c.body {
                if let Some(a) = l.atom() {
                    out.insert(a.pred.base());
                }
            }
        }
        out
    }

    /// Input predicates: occur in a body (ordinary or ID-version) but never
    /// in a head (paper §3.1). Builtins are excluded by construction.
    pub fn input_predicates(&self) -> FxHashSet<SymbolId> {
        let heads = self.head_predicates();
        self.body_predicates()
            .into_iter()
            .filter(|p| !heads.contains(p))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idlog_common::Interner;

    fn atom(i: &Interner, pred: &str, vars: &[&str]) -> Atom {
        Atom::ordinary(
            i.intern(pred),
            vars.iter().map(|v| Term::Var(v.to_string())).collect(),
        )
    }

    #[test]
    fn builtin_arities() {
        assert_eq!(Builtin::Succ.arity(), 2);
        assert_eq!(Builtin::Plus.arity(), 3);
        assert_eq!(Builtin::Lt.arity(), 2);
        assert_eq!(Builtin::from_name("times"), Some(Builtin::Times));
        assert_eq!(Builtin::from_name("nope"), None);
    }

    #[test]
    fn id_atom_normalizes_grouping() {
        let i = Interner::new();
        let a = Atom::id_version(
            i.intern("emp"),
            vec![1, 0, 1],
            vec![
                Term::Var("X".into()),
                Term::Var("Y".into()),
                Term::Var("T".into()),
            ],
        );
        match &a.pred {
            PredicateRef::IdVersion { grouping, .. } => assert_eq!(grouping, &vec![0, 1]),
            _ => panic!("expected id version"),
        }
        assert_eq!(a.base_arity(), 2);
    }

    #[test]
    fn clause_variables_in_order() {
        let i = Interner::new();
        let c = Clause::new(
            atom(&i, "p", &["X"]),
            vec![
                Literal::Pos(atom(&i, "q", &["X", "Z"])),
                Literal::Neg(atom(&i, "r", &["Z", "Y"])),
            ],
        );
        assert_eq!(c.variables(), vec!["X", "Z", "Y"]);
        assert!(!c.is_fact());
    }

    #[test]
    fn input_predicates_excludes_heads() {
        let i = Interner::new();
        let p = Program {
            clauses: vec![
                Clause::new(
                    atom(&i, "p", &["X"]),
                    vec![Literal::Pos(atom(&i, "q", &["X"]))],
                ),
                Clause::new(
                    atom(&i, "q2", &["X"]),
                    vec![Literal::Pos(atom(&i, "p", &["X"]))],
                ),
            ],
        };
        let inputs = p.input_predicates();
        assert_eq!(inputs.len(), 1);
        assert!(inputs.contains(&i.intern("q")));
    }

    #[test]
    fn choice_literal_variables() {
        let l = Literal::Choice {
            grouped: vec![Term::Var("D".into())],
            chosen: vec![Term::Var("N".into())],
        };
        assert_eq!(l.variables(), vec!["D", "N"]);
    }
}
