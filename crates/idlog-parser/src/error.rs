//! Parse errors.

use std::fmt;

use crate::token::Pos;

/// A lexing or parsing error with source position.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    /// Where the error was detected.
    pub pos: Pos,
    /// What went wrong.
    pub message: String,
}

impl ParseError {
    /// Build an error at `pos`.
    pub fn new(pos: Pos, message: impl Into<String>) -> Self {
        ParseError {
            pos,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Result alias for parsing.
pub type ParseResult<T> = Result<T, ParseError>;
