//! Pretty-printing of AST nodes back to the surface syntax.
//!
//! Printing requires the interner (predicate and constant names live there),
//! so each node gets a `display(&Interner)` adaptor rather than a bare
//! `Display` impl. Output re-parses to an equal AST (round-trip property is
//! tested in the crate's proptest suite).

use std::fmt;

use idlog_common::Interner;

use crate::ast::{Atom, Clause, HeadAtom, Literal, PredicateRef, Program, Term};

/// Wraps a node with its interner for display.
pub struct WithInterner<'a, T> {
    node: &'a T,
    interner: &'a Interner,
}

macro_rules! displayable {
    ($ty:ty, $fn_name:ident) => {
        impl $ty {
            /// Render with names resolved through `interner`.
            pub fn display<'a>(&'a self, interner: &'a Interner) -> WithInterner<'a, $ty> {
                WithInterner {
                    node: self,
                    interner,
                }
            }
        }
    };
}

displayable!(Term, term);
displayable!(Atom, atom);
displayable!(Literal, literal);
displayable!(Clause, clause);
displayable!(Program, program);

impl fmt::Display for WithInterner<'_, Term> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.node {
            Term::Var(v) => write!(f, "{v}"),
            Term::Int(n) => write!(f, "{n}"),
            Term::Sym(s) => self.interner.with_resolved(*s, |name| {
                if is_plain_ident(name) {
                    write!(f, "{name}")
                } else {
                    write!(f, "'{name}'")
                }
            }),
        }
    }
}

/// True when `name` lexes as a lowercase-initial identifier (no quoting).
fn is_plain_ident(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_lowercase() => {}
        _ => return false,
    }
    name.chars().all(|c| c.is_alphanumeric() || c == '_') && !matches!(name, "not" | "choice")
}

impl fmt::Display for WithInterner<'_, Atom> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let atom = self.node;
        match &atom.pred {
            PredicateRef::Ordinary(p) => {
                self.interner.with_resolved(*p, |n| write!(f, "{n}"))?;
            }
            PredicateRef::IdVersion { base, grouping } => {
                self.interner.with_resolved(*base, |n| write!(f, "{n}"))?;
                write!(f, "[")?;
                for (i, g) in grouping.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{}", g + 1)?; // back to 1-based
                }
                write!(f, "]")?;
            }
        }
        if !atom.terms.is_empty() {
            write!(f, "(")?;
            for (i, t) in atom.terms.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}", t.display(self.interner))?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

impl fmt::Display for WithInterner<'_, Literal> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.node {
            Literal::Pos(a) => write!(f, "{}", a.display(self.interner)),
            Literal::Neg(a) => write!(f, "not {}", a.display(self.interner)),
            Literal::Builtin { op, args } => {
                if op.is_comparison() {
                    write!(
                        f,
                        "{} {} {}",
                        args[0].display(self.interner),
                        op.name(),
                        args[1].display(self.interner)
                    )
                } else {
                    write!(f, "{}(", op.name())?;
                    for (i, a) in args.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{}", a.display(self.interner))?;
                    }
                    write!(f, ")")
                }
            }
            Literal::Cut => write!(f, "!"),
            Literal::Choice { grouped, chosen } => {
                let list = |f: &mut fmt::Formatter<'_>, terms: &[Term]| -> fmt::Result {
                    write!(f, "(")?;
                    for (i, t) in terms.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{}", t.display(self.interner))?;
                    }
                    write!(f, ")")
                };
                write!(f, "choice(")?;
                list(f, grouped)?;
                write!(f, ", ")?;
                list(f, chosen)?;
                write!(f, ")")
            }
        }
    }
}

impl fmt::Display for WithInterner<'_, Clause> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, HeadAtom { negated, atom }) in self.node.head.iter().enumerate() {
            if i > 0 {
                write!(f, "{}", if self.node.disjunctive { " | " } else { " & " })?;
            }
            if *negated {
                write!(f, "not ")?;
            }
            write!(f, "{}", atom.display(self.interner))?;
        }
        if !self.node.body.is_empty() {
            write!(f, " :- ")?;
            for (i, l) in self.node.body.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}", l.display(self.interner))?;
            }
        }
        write!(f, ".")
    }
}

impl fmt::Display for WithInterner<'_, Program> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for c in &self.node.clauses {
            writeln!(f, "{}", c.display(self.interner))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_clause, parse_program};

    fn roundtrip(src: &str) {
        let i = Interner::new();
        let c = parse_clause(src, &i).unwrap();
        let printed = c.display(&i).to_string();
        let reparsed = parse_clause(&printed, &i).unwrap();
        assert_eq!(c, reparsed, "print/reparse changed the clause: {printed}");
    }

    #[test]
    fn roundtrips_basic_clause() {
        roundtrip("p(X) :- q(X, a), not r(X).");
    }

    #[test]
    fn roundtrips_id_atom() {
        roundtrip("select_two_emp(N) :- emp[2](N, D, T), T < 2.");
    }

    #[test]
    fn roundtrips_choice_and_builtins() {
        roundtrip("s(N) :- emp(N, D), choice((D), (N)), plus(N, N, M), M >= 0.");
    }

    #[test]
    fn roundtrips_multi_head() {
        roundtrip("a(X) & not b(X) :- c(X).");
    }

    #[test]
    fn roundtrips_zero_ary_and_empty_grouping() {
        roundtrip("q1 :- x[](Y, 0).");
    }

    #[test]
    fn quoted_atom_printing() {
        let i = Interner::new();
        let c = parse_clause("p('Hello World').", &i).unwrap();
        assert_eq!(c.display(&i).to_string(), "p('Hello World').");
    }

    #[test]
    fn program_display_one_clause_per_line() {
        let i = Interner::new();
        let p = parse_program("a. b :- a.", &i).unwrap();
        assert_eq!(p.display(&i).to_string(), "a.\nb :- a.\n");
    }
}
