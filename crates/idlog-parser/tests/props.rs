//! Property-based tests: printing a generated AST and re-parsing it yields
//! the same AST (the printer and parser are mutually inverse on the AST's
//! image), across all language constructs.

use proptest::prelude::*;

use idlog_common::Interner;
use idlog_parser::{parse_clause, Atom, Builtin, Clause, HeadAtom, Literal, Term};

/// Variable names V0..V5, constants c0..c5, small ints.
fn arb_term() -> impl Strategy<Value = TermSpec> {
    prop_oneof![
        (0usize..6).prop_map(TermSpec::Var),
        (0usize..6).prop_map(TermSpec::Sym),
        (0i64..10).prop_map(TermSpec::Int),
    ]
}

/// Terms are generated as specs and reified against one interner per case.
#[derive(Clone, Debug)]
enum TermSpec {
    Var(usize),
    Sym(usize),
    Int(i64),
}

impl TermSpec {
    fn reify(&self, interner: &Interner) -> Term {
        match self {
            TermSpec::Var(v) => Term::Var(format!("V{v}")),
            TermSpec::Sym(s) => Term::Sym(interner.intern(&format!("c{s}"))),
            TermSpec::Int(n) => Term::Int(*n),
        }
    }
}

#[derive(Clone, Debug)]
enum LitSpec {
    Pos {
        pred: usize,
        terms: Vec<TermSpec>,
        grouping: Option<Vec<bool>>,
    },
    Neg {
        pred: usize,
        terms: Vec<TermSpec>,
    },
    Cmp {
        op: u8,
        lhs: TermSpec,
        rhs: TermSpec,
    },
    Arith {
        op: u8,
        args: Vec<TermSpec>,
    },
}

fn arb_literal() -> impl Strategy<Value = LitSpec> {
    prop_oneof![
        (
            0usize..4,
            proptest::collection::vec(arb_term(), 1..4),
            proptest::option::of(proptest::collection::vec(any::<bool>(), 1..3)),
        )
            .prop_map(|(pred, terms, grouping)| LitSpec::Pos {
                pred,
                terms,
                grouping
            }),
        (0usize..4, proptest::collection::vec(arb_term(), 1..4))
            .prop_map(|(pred, terms)| LitSpec::Neg { pred, terms }),
        (0u8..6, arb_term(), arb_term()).prop_map(|(op, lhs, rhs)| LitSpec::Cmp { op, lhs, rhs }),
        (0u8..5, proptest::collection::vec(arb_term(), 3..4))
            .prop_map(|(op, args)| LitSpec::Arith { op, args }),
    ]
}

impl LitSpec {
    fn reify(&self, interner: &Interner) -> Literal {
        match self {
            LitSpec::Pos {
                pred,
                terms,
                grouping,
            } => {
                let name = format!("p{pred}");
                let sym = interner.intern(&name);
                let mut ts: Vec<Term> = terms.iter().map(|t| t.reify(interner)).collect();
                match grouping {
                    None => Literal::Pos(Atom::ordinary(sym, ts)),
                    Some(bits) => {
                        // ID-atom: grouping positions from bits, tid appended.
                        let base_arity = ts.len();
                        let grouping: Vec<usize> = bits
                            .iter()
                            .enumerate()
                            .filter(|(i, &b)| b && *i < base_arity)
                            .map(|(i, _)| i)
                            .collect();
                        ts.push(Term::Var("Tid".into()));
                        Literal::Pos(Atom::id_version(sym, grouping, ts))
                    }
                }
            }
            LitSpec::Neg { pred, terms } => {
                let sym = interner.intern(&format!("p{pred}"));
                Literal::Neg(Atom::ordinary(
                    sym,
                    terms.iter().map(|t| t.reify(interner)).collect(),
                ))
            }
            LitSpec::Cmp { op, lhs, rhs } => {
                let ops = [
                    Builtin::Lt,
                    Builtin::Le,
                    Builtin::Gt,
                    Builtin::Ge,
                    Builtin::Eq,
                    Builtin::Ne,
                ];
                Literal::Builtin {
                    op: ops[*op as usize % ops.len()],
                    args: vec![lhs.reify(interner), rhs.reify(interner)],
                }
            }
            LitSpec::Arith { op, args } => {
                let ops = [Builtin::Plus, Builtin::Minus, Builtin::Times, Builtin::Div];
                let op = ops[*op as usize % ops.len()];
                let mut ts: Vec<Term> = args.iter().map(|t| t.reify(interner)).collect();
                ts.truncate(op.arity());
                Literal::Builtin { op, args: ts }
            }
        }
    }
}

proptest! {
    /// Display ∘ parse = identity on generated clauses.
    #[test]
    fn print_parse_roundtrip(
        head_terms in proptest::collection::vec(arb_term(), 0..4),
        body in proptest::collection::vec(arb_literal(), 0..5),
        negated_head in any::<bool>(),
    ) {
        let interner = Interner::new();
        let head_atom = Atom::ordinary(
            interner.intern("out"),
            head_terms.iter().map(|t| t.reify(&interner)).collect(),
        );
        let clause = Clause {
            head: vec![HeadAtom { negated: negated_head, atom: head_atom }],
            body: body.iter().map(|l| l.reify(&interner)).collect(),
            disjunctive: false,
        };
        let printed = clause.display(&interner).to_string();
        let reparsed = parse_clause(&printed, &interner)
            .unwrap_or_else(|e| panic!("printed clause failed to parse: {e}\n{printed}"));
        prop_assert_eq!(clause, reparsed, "roundtrip changed: {}", printed);
    }

    /// The parser never panics: any ASCII input either parses or returns a
    /// positioned error.
    #[test]
    fn parser_never_panics(src in "[ -~\n]{0,200}") {
        let interner = Interner::new();
        let _ = idlog_parser::parse_program(&src, &interner);
    }

    /// Multi-head DL clauses roundtrip too.
    #[test]
    fn multi_head_roundtrip(
        n_heads in 1usize..4,
        body in proptest::collection::vec(arb_literal(), 0..3),
    ) {
        let interner = Interner::new();
        let head = (0..n_heads)
            .map(|k| HeadAtom {
                negated: k % 2 == 1,
                atom: Atom::ordinary(
                    interner.intern(&format!("h{k}")),
                    vec![Term::Var("X".into())],
                ),
            })
            .collect();
        let clause = Clause {
            head,
            body: body.iter().map(|l| l.reify(&interner)).collect(),
            disjunctive: false,
        };
        let printed = clause.display(&interner).to_string();
        let reparsed = parse_clause(&printed, &interner).unwrap();
        prop_assert_eq!(clause, reparsed);
    }
}
