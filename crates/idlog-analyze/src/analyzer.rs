//! The collect-all analysis driver.
//!
//! [`analyze`] parses a program once (keeping the parser's [`SpanMap`]) and
//! then runs every check the engine performs at validation time — head
//! shape, arity consistency, grouping ranges, sort inference, safety,
//! stratification, and (for DATALOG^C programs) the paper's choice
//! conditions C1/C2 — *without stopping at the first failure*. Each finding
//! becomes a [`Diagnostic`] anchored to the clause, literal, or term that
//! caused it. When the program is error-free the lint passes from
//! [`crate::lints`] run as well.

use std::sync::Arc;

use idlog_choice::{collect_violations, ChoiceViolation};
use idlog_common::{FxHashMap, Interner, SymbolId};
use idlog_core::{safety, stratify};
use idlog_parser::{
    parse_program_with_spans, Builtin, Literal, PredicateRef, Program, Span, SpanMap, Term,
};

use crate::dataflow::Dataflow;
use crate::diagnostic::Diagnostic;
use crate::{determinism, lints, relevance, sorts, termination};

/// Which language the program appears to be written in.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Dialect {
    /// Plain IDLOG (possibly with negation and ID-literals).
    Idlog,
    /// DATALOG^C: at least one `choice((X̄), (Ȳ))` literal occurs, so the
    /// paper's conditions C1/C2 apply instead of the engine's "translate
    /// choice first" rejection.
    Choice,
}

/// Knobs for [`analyze`].
#[derive(Clone, Copy, Debug)]
pub struct Options {
    /// Run the warning/hint lint passes (W…/H… codes).
    pub lints: bool,
    /// Run the bounded redundant-clause suggestion (W005). This evaluates
    /// the program on randomized test databases, so it is the one pass with
    /// non-trivial cost; `idlog check` turns it off.
    pub redundancy: bool,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            lints: true,
            redundancy: true,
        }
    }
}

/// The result of analyzing one program.
#[derive(Clone, Debug)]
pub struct Analysis {
    /// Detected dialect.
    pub dialect: Dialect,
    /// All diagnostics, sorted by source position.
    pub diagnostics: Vec<Diagnostic>,
}

impl Analysis {
    /// Number of diagnostics at [`crate::Severity::Error`].
    pub fn error_count(&self) -> usize {
        self.count(crate::Severity::Error)
    }

    /// Number of diagnostics at [`crate::Severity::Warning`].
    pub fn warning_count(&self) -> usize {
        self.count(crate::Severity::Warning)
    }

    /// Number of diagnostics at [`crate::Severity::Hint`].
    pub fn hint_count(&self) -> usize {
        self.count(crate::Severity::Hint)
    }

    fn count(&self, severity: crate::Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }
}

/// Analyze `src`, collecting every diagnostic (never fail-fast).
pub fn analyze(src: &str, interner: &Arc<Interner>, options: &Options) -> Analysis {
    let (program, spans) = match parse_program_with_spans(src, interner) {
        Ok(parsed) => parsed,
        Err(e) => {
            return Analysis {
                dialect: Dialect::Idlog,
                diagnostics: vec![Diagnostic::error(
                    "E001",
                    Span::point(e.pos),
                    format!("parse error: {}", e.message),
                )],
            };
        }
    };

    let dialect = if program
        .clauses
        .iter()
        .any(|c| c.body.iter().any(|l| matches!(l, Literal::Choice { .. })))
    {
        Dialect::Choice
    } else {
        Dialect::Idlog
    };

    let mut diags = Vec::new();
    check_structure(&program, &spans, interner, dialect, &mut diags);
    let arities = check_arities(&program, &spans, interner, &mut diags);
    check_grouping(&program, &spans, &arities, interner, &mut diags);
    sorts::check(&program, &spans, &arities, interner, &mut diags);
    check_safety(&program, &spans, &mut diags);
    check_stratification(&program, &spans, interner, &mut diags);
    if dialect == Dialect::Choice {
        check_choice(&program, &spans, interner, &mut diags);
    }

    let has_errors = diags.iter().any(|d| d.severity == crate::Severity::Error);
    if options.lints {
        lints::unused_predicates(&program, &spans, interner, &mut diags);
        lints::underivable_predicates(&program, &spans, interner, &mut diags);
        lints::singleton_variables(&program, &spans, &mut diags);
        lints::degenerate_id_groups(&program, &spans, interner, &mut diags);
        if !has_errors && dialect == Dialect::Idlog {
            let flow = Dataflow::of(&program, interner);
            determinism::possibly_nondeterministic_outputs(
                &program, &spans, &flow, interner, &mut diags,
            );
            determinism::tid_value_columns(&program, &spans, &flow, interner, &mut diags);
            lints::tid_bound_hints(&program, &spans, interner, &mut diags);
            termination::termination_lints(&program, &spans, interner, &mut diags);
            relevance::relevance_lints(&program, &spans, interner, &mut diags);
            if options.redundancy {
                lints::redundant_clauses(&program, &spans, interner, &mut diags);
            }
        }
    }

    // Stable, reader-friendly order: by position, then code; diagnostics
    // without a position sink to the end.
    diags.sort_by_key(|d| {
        let known = d.span.is_known();
        (
            !known,
            d.span.start.line,
            d.span.start.col,
            d.span.end.line,
            d.span.end.col,
            d.code,
        )
    });
    Analysis {
        dialect,
        diagnostics: diags,
    }
}

/// Span of the atom shape of body literal `(ci, li)`.
fn literal_span(spans: &SpanMap, ci: usize, li: usize) -> Span {
    spans.literal_span(ci, li)
}

/// Span of the predicate-name token of body literal `(ci, li)`.
fn literal_name_span(spans: &SpanMap, ci: usize, li: usize) -> Span {
    spans
        .clause(ci)
        .and_then(|c| c.literal(li))
        .map(|l| l.atom.name)
        .filter(Span::is_known)
        .unwrap_or_else(|| spans.literal_span(ci, li))
}

/// Head shape and dialect checks: E002–E005 and E015, collect-all.
fn check_structure(
    program: &Program,
    spans: &SpanMap,
    interner: &Interner,
    dialect: Dialect,
    diags: &mut Vec<Diagnostic>,
) {
    for (ci, clause) in program.clauses.iter().enumerate() {
        if clause.head.len() != 1 {
            let span = spans
                .clause(ci)
                .and_then(|c| c.head_atom(1))
                .map(|a| a.span)
                .unwrap_or_else(|| spans.clause_span(ci));
            diags.push(Diagnostic::error(
                "E002",
                span,
                "IDLOG clauses have exactly one head atom (multi-head clauses belong to DL)",
            ));
        }
        for (hi, h) in clause.head.iter().enumerate() {
            let name_span = spans
                .clause(ci)
                .and_then(|c| c.head_atom(hi))
                .map(|a| a.name)
                .unwrap_or_else(|| spans.head_name_span(ci));
            if h.negated {
                diags.push(Diagnostic::error(
                    "E003",
                    name_span,
                    "negated heads belong to N-DATALOG, not IDLOG",
                ));
            }
            if h.atom.pred.is_id_version() {
                diags.push(Diagnostic::error(
                    "E004",
                    name_span,
                    "the head must be a non-ID-atom ([She90b] clause shape)",
                ));
            }
            let head_name = interner.resolve(h.atom.pred.base());
            if Builtin::from_name(&head_name).is_some() {
                diags.push(Diagnostic::error(
                    "E005",
                    name_span,
                    format!("cannot define arithmetic predicate {head_name}"),
                ));
            }
        }
        for (li, lit) in clause.body.iter().enumerate() {
            if matches!(lit, Literal::Cut) {
                diags.push(Diagnostic::error(
                    "E015",
                    literal_span(spans, ci, li),
                    "cut is a top-down construct; only the SLD evaluator \
                     (idlog-choice::cut) supports it",
                ));
            }
        }
    }
    // A choice literal is not an error in the choice dialect — the C1/C2
    // checks handle it — and the dialect is defined by its presence, so
    // there is nothing to flag in the IDLOG dialect either.
    let _ = dialect;
}

/// Arity consistency across all occurrences (E006). Returns the first-wins
/// arity table for the later passes.
fn check_arities(
    program: &Program,
    spans: &SpanMap,
    interner: &Interner,
    diags: &mut Vec<Diagnostic>,
) -> FxHashMap<SymbolId, usize> {
    let mut first_seen: FxHashMap<SymbolId, (usize, Span)> = FxHashMap::default();
    let mut check =
        |pred: SymbolId, arity: usize, span: Span, diags: &mut Vec<Diagnostic>| match first_seen
            .get(&pred)
        {
            Some(&(a, first_span)) if a != arity => {
                diags.push(
                    Diagnostic::error(
                        "E006",
                        span,
                        format!(
                            "predicate {} used with arity {arity} but previously {a}",
                            interner.resolve(pred)
                        ),
                    )
                    .with_note_at(first_span, format!("first used with arity {a} here")),
                );
            }
            Some(_) => {}
            None => {
                first_seen.insert(pred, (arity, span));
            }
        };
    for (ci, clause) in program.clauses.iter().enumerate() {
        for (hi, h) in clause.head.iter().enumerate() {
            let span = spans
                .clause(ci)
                .and_then(|c| c.head_atom(hi))
                .map(|a| a.span)
                .unwrap_or_else(|| spans.clause_span(ci));
            check(h.atom.pred.base(), h.atom.base_arity(), span, diags);
        }
        for (li, lit) in clause.body.iter().enumerate() {
            if let Some(a) = lit.atom() {
                check(
                    a.pred.base(),
                    a.base_arity(),
                    literal_span(spans, ci, li),
                    diags,
                );
            }
        }
    }
    first_seen.into_iter().map(|(p, (a, _))| (p, a)).collect()
}

/// Grouping attributes must fall inside the base predicate's arity (E007).
fn check_grouping(
    program: &Program,
    spans: &SpanMap,
    arities: &FxHashMap<SymbolId, usize>,
    interner: &Interner,
    diags: &mut Vec<Diagnostic>,
) {
    for (ci, clause) in program.clauses.iter().enumerate() {
        for (li, lit) in clause.body.iter().enumerate() {
            let Some(a) = lit.atom() else { continue };
            let PredicateRef::IdVersion { base, grouping } = &a.pred else {
                continue;
            };
            let arity = arities.get(base).copied().unwrap_or(a.base_arity());
            if let Some(&bad) = grouping.iter().find(|&&g| g >= arity) {
                diags.push(Diagnostic::error(
                    "E007",
                    literal_name_span(spans, ci, li),
                    format!(
                        "grouping attribute {} exceeds arity {arity} of {}",
                        bad + 1,
                        interner.resolve(*base)
                    ),
                ));
            }
        }
    }
}

/// Safety per clause (E009 no safe order, E010 unbound head variable).
fn check_safety(program: &Program, spans: &SpanMap, diags: &mut Vec<Diagnostic>) {
    for (ci, clause) in program.clauses.iter().enumerate() {
        let Err(violations) = safety::analyze_clause(clause) else {
            continue;
        };
        for v in violations {
            match v {
                safety::SafetyViolation::NoSafeOrder { stuck } => {
                    let primary = stuck
                        .first()
                        .map(|&(li, _)| literal_span(spans, ci, li))
                        .unwrap_or_else(|| spans.clause_span(ci));
                    let mut d = Diagnostic::error(
                        "E009",
                        primary,
                        "no safe evaluation order exists for this clause body",
                    );
                    for (li, reason) in stuck {
                        d = d.with_note_at(literal_span(spans, ci, li), reason.message());
                    }
                    diags.push(d);
                }
                safety::SafetyViolation::UnboundHeadVar { head, var } => {
                    let span = head_var_span(spans, ci, head, clause, &var);
                    diags.push(Diagnostic::error(
                        "E010",
                        span,
                        format!("head variable {var} is not bound by the body"),
                    ));
                }
            }
        }
    }
}

/// Span of the first occurrence of `var` in head atom `hi` of clause `ci`.
fn head_var_span(
    spans: &SpanMap,
    ci: usize,
    hi: usize,
    clause: &idlog_parser::Clause,
    var: &str,
) -> Span {
    let atom_spans = spans.clause(ci).and_then(|c| c.head_atom(hi));
    if let (Some(h), Some(atom_spans)) = (clause.head.get(hi), atom_spans) {
        for (k, term) in h.atom.terms.iter().enumerate() {
            if term.as_var() == Some(var) {
                if let Some(s) = atom_spans.term(k) {
                    return s;
                }
            }
        }
    }
    spans.head_name_span(ci)
}

/// Stratification (E011): report the actual cycle, edge by edge.
fn check_stratification(
    program: &Program,
    spans: &SpanMap,
    interner: &Interner,
    diags: &mut Vec<Diagnostic>,
) {
    let Err(cycle) = stratify::stratify_check(program) else {
        return;
    };
    let names = stratify::cycle_names(&cycle, interner);
    let Some(strict) = cycle.first() else {
        diags.push(Diagnostic::error(
            "E011",
            Span::default(),
            "program is not stratifiable",
        ));
        return;
    };
    let mut d = Diagnostic::error(
        "E011",
        literal_span(spans, strict.clause, strict.literal),
        format!("program is not stratifiable: cycle {}", names.join(" -> ")),
    );
    for e in &cycle {
        let kind = if e.strict {
            "strictly (negation or ID-literal)"
        } else {
            "positively"
        };
        d = d.with_note_at(
            literal_span(spans, e.clause, e.literal),
            format!(
                "`{}` depends {kind} on `{}` here",
                interner.resolve(e.to),
                interner.resolve(e.from)
            ),
        );
    }
    diags.push(d);
}

/// The paper's choice conditions (E012 C1, E013 C2, E014 recursion).
fn check_choice(
    program: &Program,
    spans: &SpanMap,
    interner: &Interner,
    diags: &mut Vec<Diagnostic>,
) {
    for v in collect_violations(program) {
        match v {
            ChoiceViolation::C1 { clause, literals } => {
                let primary = literals
                    .get(1)
                    .map(|&li| literal_span(spans, clause, li))
                    .unwrap_or_else(|| spans.clause_span(clause));
                let mut d = Diagnostic::error(
                    "E012",
                    primary,
                    "a clause may contain at most one choice operator (condition C1)",
                );
                for li in literals {
                    d = d.with_note_at(literal_span(spans, clause, li), "choice operator here");
                }
                diags.push(d);
            }
            ChoiceViolation::C2 {
                first: (ci, pi),
                second: (cj, pj),
            } => {
                diags.push(
                    Diagnostic::error(
                        "E013",
                        spans.head_name_span(cj),
                        format!(
                            "choice clause for `{}` is related to the choice clause for `{}` \
                             (condition C2)",
                            interner.resolve(pj),
                            interner.resolve(pi)
                        ),
                    )
                    .with_note_at(
                        spans.head_name_span(ci),
                        format!(
                            "`{}` is defined with choice here and contributes to `{}`",
                            interner.resolve(pi),
                            interner.resolve(pj)
                        ),
                    ),
                );
            }
            ChoiceViolation::Recursion {
                clause,
                pred,
                literal,
            } => {
                diags.push(Diagnostic::error(
                    "E014",
                    literal_span(spans, clause, literal),
                    format!(
                        "choice clause for `{}` is recursive through its own head \
                         (the [KN88] semantics excludes this)",
                        interner.resolve(pred)
                    ),
                ));
            }
        }
    }
}

/// Best-effort span of the first occurrence of `var` among the terms of a
/// body literal (used by the lints as well).
pub(crate) fn body_term_spans<'a>(
    clause: &'a idlog_parser::Clause,
    spans: &'a SpanMap,
    ci: usize,
) -> impl Iterator<Item = (String, Span)> + 'a {
    clause.body.iter().enumerate().flat_map(move |(li, lit)| {
        let atom_spans = spans
            .clause(ci)
            .and_then(|c| c.literal(li))
            .map(|l| &l.atom);
        let terms: Vec<&Term> = match lit {
            Literal::Pos(a) | Literal::Neg(a) => a.terms.iter().collect(),
            Literal::Builtin { args, .. } => args.iter().collect(),
            Literal::Choice { grouped, chosen } => grouped.iter().chain(chosen.iter()).collect(),
            Literal::Cut => Vec::new(),
        };
        terms
            .into_iter()
            .enumerate()
            .filter_map(move |(k, t)| {
                let v = t.as_var()?;
                let span = atom_spans
                    .and_then(|a| a.term(k))
                    .filter(Span::is_known)
                    .unwrap_or_else(|| spans.literal_span(ci, li));
                Some((v.to_string(), span))
            })
            .collect::<Vec<_>>()
    })
}
