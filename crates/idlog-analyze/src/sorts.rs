//! Span-precise sort-conflict diagnostics (E020–E022).
//!
//! PR 1 surfaced the engine's sort errors as a single clause-level E008.
//! The solver in [`idlog_core::sorts`] now records the *occurrence* behind
//! every demand (a [`SortSite`]), so each conflict kind gets its own code
//! anchored at the offending term, with a note pointing at the earlier
//! occurrence that pinned the other sort:
//!
//! * **E020** — a predicate column used both as sort `u` and sort `i`
//! * **E021** — a clause variable used both as sort `u` and sort `i`
//! * **E022** — a constant of the wrong sort (ground (dis)equality between
//!   different sorts, or a `u`-constant in an arithmetic/tid position)

use idlog_common::{FxHashMap, Interner, SymbolId};
use idlog_core::sorts::{infer_collect, SortConflictKind, SortSite};
use idlog_parser::{Program, Span, SpanMap};

use crate::diagnostic::Diagnostic;

/// The source span of one solver occurrence, when the parser recorded it.
fn site_span(spans: &SpanMap, site: SortSite) -> Option<Span> {
    let span = match site {
        SortSite::Head { clause, atom, term } => {
            spans.clause(clause)?.head_atom(atom)?.term(term)?
        }
        SortSite::Body {
            clause,
            literal,
            term,
        } => spans.clause(clause)?.literal(literal)?.atom.term(term)?,
    };
    Some(span).filter(Span::is_known)
}

/// Run sort inference and report every conflict (E020–E022).
pub(crate) fn check(
    program: &Program,
    spans: &SpanMap,
    arities: &FxHashMap<SymbolId, usize>,
    interner: &Interner,
    diags: &mut Vec<Diagnostic>,
) {
    let (_, conflicts) = infer_collect(program, arities, &[]);
    for c in conflicts {
        let anchor =
            c.at.and_then(|site| site_span(spans, site))
                .or_else(|| c.clause.map(|ci| spans.clause_span(ci)))
                .unwrap_or_default();
        let mut d = match &c.kind {
            SortConflictKind::Column {
                pred,
                col,
                sorts: (a, b),
            } => Diagnostic::error(
                "E020",
                anchor,
                format!(
                    "column {} of `{}` is used both as sort {a} and sort {b}",
                    col + 1,
                    interner.resolve(*pred)
                ),
            ),
            SortConflictKind::Variable { var, sorts: (a, b) } => Diagnostic::error(
                "E021",
                anchor,
                format!("variable {var} is used both as sort {a} and sort {b}"),
            ),
            SortConflictKind::GroundMismatch => Diagnostic::error(
                "E022",
                anchor,
                "(dis)equality between constants of different sorts can never hold",
            ),
            SortConflictKind::ConstantPosition { sort } => Diagnostic::error(
                "E022",
                anchor,
                format!("constant of the wrong sort in a position demanding sort {sort}"),
            ),
        };
        if let Some(first) = c.first.and_then(|site| site_span(spans, site)) {
            if first != anchor {
                d = d.with_note_at(first, "the conflicting use is here");
            }
        }
        diags.push(d);
    }
}
