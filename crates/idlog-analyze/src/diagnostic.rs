//! The diagnostic data model.
//!
//! A [`Diagnostic`] ties a stable code (`E…`/`W…`/`H…`), a severity, a
//! source [`Span`], a one-line message, and any number of secondary
//! [`Note`]s together. The driver in [`crate::analyzer`] *collects* them —
//! it never stops at the first problem — so a program with three
//! independent errors reports all three.

use idlog_parser::Span;

/// How serious a diagnostic is.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Severity {
    /// A hint: the program is fine, but an optimization or cleanup applies.
    Hint,
    /// A warning: suspicious but not invalid; `--deny-warnings` rejects it.
    Warning,
    /// An error: the program is not a valid program of its dialect.
    Error,
}

impl Severity {
    /// The renderer's label for this severity.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Hint => "hint",
        }
    }
}

/// A secondary annotation attached to a diagnostic. With a span it renders
/// as its own source excerpt; without one it renders as `= note: …`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Note {
    /// Where the note points, if anywhere.
    pub span: Option<Span>,
    /// The note text.
    pub message: String,
}

/// One diagnostic: code, severity, primary span, message, notes.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Diagnostic {
    /// Stable code, e.g. `E009` (documented in LANGUAGE.md).
    pub code: &'static str,
    /// Error, warning, or hint.
    pub severity: Severity,
    /// The primary source location (may be the unknown span).
    pub span: Span,
    /// One-line description of the problem.
    pub message: String,
    /// Secondary annotations.
    pub notes: Vec<Note>,
}

impl Diagnostic {
    /// Build an error diagnostic.
    pub fn error(code: &'static str, span: Span, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: Severity::Error,
            span,
            message: message.into(),
            notes: Vec::new(),
        }
    }

    /// Build a warning diagnostic.
    pub fn warning(code: &'static str, span: Span, message: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Warning,
            ..Diagnostic::error(code, span, message)
        }
    }

    /// Build a hint diagnostic.
    pub fn hint(code: &'static str, span: Span, message: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Hint,
            ..Diagnostic::error(code, span, message)
        }
    }

    /// Attach a spanned note (builder style).
    pub fn with_note_at(mut self, span: Span, message: impl Into<String>) -> Self {
        self.notes.push(Note {
            span: Some(span),
            message: message.into(),
        });
        self
    }

    /// Attach a spanless note (builder style).
    pub fn with_note(mut self, message: impl Into<String>) -> Self {
        self.notes.push(Note {
            span: None,
            message: message.into(),
        });
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_set_severity_and_notes() {
        let d = Diagnostic::warning("W003", Span::default(), "singleton")
            .with_note("prefix with `_`")
            .with_note_at(Span::default(), "used here");
        assert_eq!(d.severity, Severity::Warning);
        assert_eq!(d.notes.len(), 2);
        assert!(d.notes[0].span.is_none());
        assert!(d.notes[1].span.is_some());
        assert_eq!(Severity::Error.label(), "error");
        assert!(Severity::Hint < Severity::Warning && Severity::Warning < Severity::Error);
    }
}
