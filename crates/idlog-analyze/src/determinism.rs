//! Determinism certification lints (W010, W011).
//!
//! Theorem 3 makes exact determinism undecidable, so these are
//! *possibly*-non-deterministic warnings: W010 silence is a certificate
//! (the engine then skips ID-function enumeration for that output — see
//! [`idlog_core::Query::certified_deterministic`]), W010 presence is not a
//! conviction. Intentionally non-deterministic programs (the paper's
//! sampling queries) should suppress it with `idlog lint --allow W010`.

use idlog_common::Interner;
use idlog_core::taint::TaintStep;
use idlog_parser::{Program, SpanMap, Term};

use crate::dataflow::Dataflow;
use crate::diagnostic::Diagnostic;

/// W010: an output (sink) predicate the analysis cannot certify
/// deterministic — its contents can vary with the chosen ID-function. The
/// notes walk the taint witness down to the literal that introduces the
/// choice.
pub(crate) fn possibly_nondeterministic_outputs(
    program: &Program,
    spans: &SpanMap,
    flow: &Dataflow,
    interner: &Interner,
    diags: &mut Vec<Diagnostic>,
) {
    for &sink in &flow.sinks {
        if flow.taint.deterministic(sink) {
            continue;
        }
        let name = interner.resolve(sink);
        let defining = program
            .clauses
            .iter()
            .position(|c| c.head.iter().any(|h| h.atom.pred.base() == sink));
        let anchor = defining
            .map(|ci| spans.head_name_span(ci))
            .unwrap_or_default();
        let mut d = Diagnostic::warning(
            "W010",
            anchor,
            format!(
                "output predicate `{name}` is possibly non-deterministic: its contents \
                 can vary with the chosen ID-function"
            ),
        );
        for step in flow.taint.witness(sink) {
            d = match step {
                TaintStep::Choice { clause, literal } => d.with_note_at(
                    spans.literal_span(clause, literal),
                    "the choice is introduced here",
                ),
                TaintStep::Via {
                    clause,
                    literal,
                    from,
                } => d.with_note_at(
                    spans.literal_span(clause, literal),
                    format!(
                        "depends on possibly non-deterministic `{}` here",
                        interner.resolve(from)
                    ),
                ),
            };
        }
        d = d.with_note(
            "the analysis is conservative (Theorem 3: exact determinism is undecidable); \
             if the non-determinism is intentional, suppress with --allow W010",
        );
        diags.push(d);
    }
}

/// W011: a head column receives a tid-derived value. Even when reaching
/// the clause is deterministic, the stored value is an artifact of the
/// enumerated ID-function; joins on such a column differ across perfect
/// models. Reported once per (predicate, column).
pub(crate) fn tid_value_columns(
    program: &Program,
    spans: &SpanMap,
    flow: &Dataflow,
    interner: &Interner,
    diags: &mut Vec<Diagnostic>,
) {
    let mut reported: Vec<(idlog_common::SymbolId, usize)> = Vec::new();
    for (ci, clause) in program.clauses.iter().enumerate() {
        let tainted = flow.taint.value_tainted_vars(clause);
        if tainted.is_empty() {
            continue;
        }
        for (hi, h) in clause.head.iter().enumerate() {
            let pred = h.atom.pred.base();
            for (k, term) in h.atom.terms.iter().enumerate() {
                let Term::Var(v) = term else { continue };
                if !tainted.contains(v.as_str()) || reported.contains(&(pred, k)) {
                    continue;
                }
                reported.push((pred, k));
                let anchor = spans
                    .clause(ci)
                    .and_then(|c| c.head_atom(hi))
                    .and_then(|a| a.term(k))
                    .unwrap_or_else(|| spans.head_name_span(ci));
                diags.push(
                    Diagnostic::warning(
                        "W011",
                        anchor,
                        format!(
                            "column {} of `{}` stores a tid-derived value",
                            k + 1,
                            interner.resolve(pred)
                        ),
                    )
                    .with_note(
                        "tids are assigned by the enumerated ID-function; values derived \
                         from them differ across perfect models",
                    ),
                );
            }
        }
    }
}
