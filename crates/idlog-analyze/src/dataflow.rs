//! Predicate-level dataflow context for the determinism lints.
//!
//! The ID-taint fixpoint itself lives in [`idlog_core::taint`] — the
//! evaluator consults the same analysis for its enumeration fast path, so
//! what the lints report and what the engine exploits can never drift
//! apart. This module packages the fixpoint result with the program's
//! *sinks* (the output predicates: heads no body literal reads), which is
//! where non-determinism becomes observable.

use idlog_common::{FxHashSet, Interner, SymbolId};
use idlog_core::taint::{analyze_taint, TaintAnalysis};
use idlog_parser::Program;

/// The taint fixpoint plus the derived facts the lint surface needs.
pub(crate) struct Dataflow {
    /// The ID-taint / determinism fixpoint over the whole program.
    pub taint: TaintAnalysis,
    /// Head predicates no body literal reads, sorted by name for stable
    /// diagnostic order.
    pub sinks: Vec<SymbolId>,
}

impl Dataflow {
    /// Run the fixpoint and collect the program's sinks.
    pub fn of(program: &Program, interner: &Interner) -> Dataflow {
        let taint = analyze_taint(program);
        let read: FxHashSet<SymbolId> = program.body_predicates();
        let mut sinks: Vec<SymbolId> = program
            .head_predicates()
            .into_iter()
            .filter(|p| !read.contains(p))
            .collect();
        sinks.sort_by_key(|p| interner.resolve(*p));
        Dataflow { taint, sinks }
    }
}
