//! Rustc-style plain-text rendering of diagnostics.
//!
//! ```text
//! error[E010]: head variable Y is not bound by the body
//!  --> demo.idl:1:6
//!   |
//! 1 | p(X, Y) :- q(X).
//!   |      ^
//! ```
//!
//! Notes with a span render as their own excerpt under a `note:` header;
//! spanless notes render as `= note:` lines after the primary excerpt.
//! Diagnostics whose span is unknown (synthesized clauses) degrade to the
//! header line alone.

use idlog_parser::Span;

use crate::diagnostic::Diagnostic;

/// Render one diagnostic against its source text. `filename` is used only
/// for the `-->` location lines.
pub fn render(diag: &Diagnostic, src: &str, filename: &str) -> String {
    let lines: Vec<&str> = src.lines().collect();
    let gutter = gutter_width(diag, &lines);
    let mut out = String::new();

    out.push_str(&format!(
        "{}[{}]: {}\n",
        diag.severity.label(),
        diag.code,
        diag.message
    ));
    excerpt(&mut out, diag.span, &lines, filename, gutter);

    for note in &diag.notes {
        match note.span {
            Some(span) if span.is_known() => {
                out.push_str(&format!("note: {}\n", note.message));
                excerpt(&mut out, span, &lines, filename, gutter);
            }
            _ => {
                out.push_str(&format!(
                    "{} = note: {}\n",
                    " ".repeat(gutter + 1),
                    note.message
                ));
            }
        }
    }
    out
}

/// Width of the line-number gutter: enough for the largest line referenced.
fn gutter_width(diag: &Diagnostic, lines: &[&str]) -> usize {
    let mut max_line = diag.span.start.line;
    for note in &diag.notes {
        if let Some(s) = note.span {
            max_line = max_line.max(s.start.line);
        }
    }
    let max_line = (max_line as usize).min(lines.len().max(1));
    max_line.max(1).to_string().len()
}

/// Append the `--> file:line:col` pointer and caret-underlined source line.
fn excerpt(out: &mut String, span: Span, lines: &[&str], filename: &str, gutter: usize) {
    if !span.is_known() {
        return;
    }
    let pad = " ".repeat(gutter);
    out.push_str(&format!(
        "{pad}--> {filename}:{}:{}\n",
        span.start.line, span.start.col
    ));
    let Some(line) = lines.get(span.start.line as usize - 1) else {
        return;
    };
    out.push_str(&format!("{pad} |\n"));
    out.push_str(&format!("{:>gutter$} | {line}\n", span.start.line,));
    // Caret width: to the span end on the same line, else to end of line;
    // always at least one caret.
    let start = span.start.col as usize;
    let end = if span.end.line == span.start.line && span.end.col > span.start.col {
        span.end.col as usize
    } else {
        line.chars().count() + 1
    };
    let width = end.saturating_sub(start).max(1);
    out.push_str(&format!(
        "{pad} | {}{}\n",
        " ".repeat(start.saturating_sub(1)),
        "^".repeat(width)
    ));
}

/// Render a whole batch of diagnostics, separated by blank lines.
pub fn render_all(diags: &[Diagnostic], src: &str, filename: &str) -> String {
    diags
        .iter()
        .map(|d| render(d, src, filename))
        .collect::<Vec<_>>()
        .join("\n")
}

/// Render a batch of diagnostics as a JSON array (machine-readable lint
/// output for CI and editor integration). Each element carries `code`,
/// `severity`, `file`, `message`, a `span` object (`null` when unknown,
/// 1-based lines and columns otherwise), and its `notes`.
pub fn render_json(diags: &[Diagnostic], filename: &str) -> String {
    let mut out = String::from("[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"file\":{},\"code\":{},\"severity\":{},\"message\":{},\"span\":{},\"notes\":[",
            json_str(filename),
            json_str(d.code),
            json_str(d.severity.label()),
            json_str(&d.message),
            json_span(Some(d.span)),
        ));
        for (k, note) in d.notes.iter().enumerate() {
            if k > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"message\":{},\"span\":{}}}",
                json_str(&note.message),
                json_span(note.span),
            ));
        }
        out.push_str("]}");
    }
    out.push(']');
    out
}

fn json_span(span: Option<Span>) -> String {
    match span.filter(Span::is_known) {
        None => "null".to_string(),
        Some(s) => format!(
            "{{\"line\":{},\"col\":{},\"end_line\":{},\"end_col\":{}}}",
            s.start.line, s.start.col, s.end.line, s.end.col
        ),
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control characters).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use idlog_parser::Pos;

    fn span(line: u32, col: u32, end_col: u32) -> Span {
        Span::new(Pos { line, col }, Pos { line, col: end_col })
    }

    #[test]
    fn primary_excerpt_has_caret_under_span() {
        let src = "p(X, Y) :- q(X).\n";
        let d = Diagnostic::error("E010", span(1, 6, 7), "head variable Y is not bound");
        let r = render(&d, src, "demo.idl");
        assert_eq!(
            r,
            "error[E010]: head variable Y is not bound\n\
             \x20--> demo.idl:1:6\n\
             \x20 |\n\
             1 | p(X, Y) :- q(X).\n\
             \x20 |      ^\n"
        );
    }

    #[test]
    fn notes_render_with_and_without_spans() {
        let src = "p(X) :- q(X).\nr(X) :- q(X, X).\n";
        let d = Diagnostic::error("E006", span(2, 9, 16), "arity conflict")
            .with_note_at(span(1, 9, 13), "previously used here")
            .with_note("declared arity wins");
        let r = render(&d, src, "f.idl");
        assert!(r.contains("note: previously used here\n"), "{r}");
        assert!(r.contains("--> f.idl:1:9\n"), "{r}");
        assert!(r.contains("= note: declared arity wins\n"), "{r}");
        assert!(r.contains("^^^^^^^"), "{r}");
    }

    #[test]
    fn unknown_span_degrades_to_header() {
        let d = Diagnostic::warning("W001", Span::default(), "unused");
        assert_eq!(render(&d, "", "f.idl"), "warning[W001]: unused\n");
    }

    #[test]
    fn json_rendering_escapes_and_nulls() {
        let d = Diagnostic::error("E010", span(1, 6, 7), "head variable \"Y\"\nnot bound")
            .with_note("spanless note");
        let j = render_json(
            &[d, Diagnostic::warning("W001", Span::default(), "unused")],
            "f.idl",
        );
        assert!(j.starts_with('[') && j.ends_with(']'), "{j}");
        assert!(j.contains("\"code\":\"E010\""), "{j}");
        assert!(j.contains("\\\"Y\\\"\\nnot bound"), "{j}");
        assert!(
            j.contains("\"span\":{\"line\":1,\"col\":6,\"end_line\":1,\"end_col\":7}"),
            "{j}"
        );
        assert!(
            j.contains("\"severity\":\"warning\",\"message\":\"unused\",\"span\":null"),
            "{j}"
        );
        assert!(
            j.contains("{\"message\":\"spanless note\",\"span\":null}"),
            "{j}"
        );
    }

    #[test]
    fn multi_line_span_clamps_to_first_line() {
        let src = "p(X) :-\n  q(X).\n";
        let d = Diagnostic::error(
            "E999",
            Span::new(Pos { line: 1, col: 1 }, Pos { line: 2, col: 8 }),
            "whole clause",
        );
        let r = render(&d, src, "f.idl");
        assert!(r.contains("1 | p(X) :-\n"), "{r}");
        assert!(r.contains("| ^^^^^^^\n"), "{r}");
    }
}
