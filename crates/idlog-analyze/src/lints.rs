//! The warning/hint lint passes (`W…`/`H…` codes).
//!
//! These run only when requested (and the expensive ones only on programs
//! that already pass every error check): they flag *suspicious* or
//! *improvable* programs, never invalid ones.

use std::sync::Arc;

use idlog_common::{FxHashMap, FxHashSet, Interner, SymbolId};
use idlog_core::{tidbound, EnumBudget, ValidatedProgram};
use idlog_parser::{Literal, PredicateRef, Program, Span, SpanMap, Term};
use idlog_storage::Database;

use crate::analyzer::body_term_spans;
use crate::diagnostic::Diagnostic;

/// Predicates that (transitively) contribute to some sink — a sink being a
/// head predicate no body ever reads, i.e. an output of the program.
fn contributing(program: &Program) -> FxHashSet<SymbolId> {
    let heads = program.head_predicates();
    let bodies = program.body_predicates();
    let mut wanted: FxHashSet<SymbolId> = heads
        .iter()
        .copied()
        .filter(|p| !bodies.contains(p))
        .collect();
    loop {
        let mut changed = false;
        for clause in &program.clauses {
            if clause
                .head
                .iter()
                .any(|h| wanted.contains(&h.atom.pred.base()))
            {
                for lit in &clause.body {
                    if let Some(a) = lit.atom() {
                        changed |= wanted.insert(a.pred.base());
                    }
                }
            }
        }
        if !changed {
            return wanted;
        }
    }
}

/// W001: a defined predicate that contributes to no output.
pub fn unused_predicates(
    program: &Program,
    spans: &SpanMap,
    interner: &Interner,
    diags: &mut Vec<Diagnostic>,
) {
    let cone = contributing(program);
    let mut reported: FxHashSet<SymbolId> = FxHashSet::default();
    for (ci, clause) in program.clauses.iter().enumerate() {
        for (hi, h) in clause.head.iter().enumerate() {
            let pred = h.atom.pred.base();
            if !cone.contains(&pred) && reported.insert(pred) {
                let span = spans
                    .clause(ci)
                    .and_then(|c| c.head_atom(hi))
                    .map(|a| a.name)
                    .unwrap_or_else(|| spans.head_name_span(ci));
                diags.push(Diagnostic::warning(
                    "W001",
                    span,
                    format!(
                        "predicate `{}` is defined but contributes to no output",
                        interner.resolve(pred)
                    ),
                ));
            }
        }
    }
}

/// W002: in a program that carries its own facts, a positive body literal
/// over a predicate with no clauses and no facts can never hold.
pub fn underivable_predicates(
    program: &Program,
    spans: &SpanMap,
    interner: &Interner,
    diags: &mut Vec<Diagnostic>,
) {
    if !program.clauses.iter().any(|c| c.is_fact()) {
        return; // inputs presumably come from a separate facts file
    }
    let defined = program.head_predicates();
    let mut reported: FxHashSet<SymbolId> = FxHashSet::default();
    for (ci, clause) in program.clauses.iter().enumerate() {
        for (li, lit) in clause.body.iter().enumerate() {
            let Literal::Pos(a) = lit else { continue };
            let pred = a.pred.base();
            if !defined.contains(&pred) && reported.insert(pred) {
                diags.push(
                    Diagnostic::warning(
                        "W002",
                        spans.literal_span(ci, li),
                        format!(
                            "predicate `{}` is underivable: the program defines its own facts \
                             but has no clause or fact for it",
                            interner.resolve(pred)
                        ),
                    )
                    .with_note("this literal can never hold, so the clause derives nothing"),
                );
            }
        }
    }
}

/// W003: a named variable occurring exactly once in its clause.
pub fn singleton_variables(program: &Program, spans: &SpanMap, diags: &mut Vec<Diagnostic>) {
    for (ci, clause) in program.clauses.iter().enumerate() {
        let mut occurrences: Vec<(String, Span)> = Vec::new();
        for (hi, h) in clause.head.iter().enumerate() {
            let atom_spans = spans.clause(ci).and_then(|c| c.head_atom(hi));
            for (k, t) in h.atom.terms.iter().enumerate() {
                if let Term::Var(v) = t {
                    let span = atom_spans
                        .and_then(|a| a.term(k))
                        .filter(Span::is_known)
                        .unwrap_or_else(|| spans.head_name_span(ci));
                    occurrences.push((v.clone(), span));
                }
            }
        }
        occurrences.extend(body_term_spans(clause, spans, ci));

        let mut counts: FxHashMap<&str, usize> = FxHashMap::default();
        for (v, _) in &occurrences {
            *counts.entry(v.as_str()).or_insert(0) += 1;
        }
        let mut flagged: Vec<&str> = Vec::new();
        for (v, span) in &occurrences {
            if counts[v.as_str()] == 1 && !v.starts_with('_') {
                diags.push(
                    Diagnostic::warning(
                        "W003",
                        *span,
                        format!("variable {v} occurs only once in this clause"),
                    )
                    .with_note(format!(
                        "rename it to _{v} if the single occurrence is intentional"
                    )),
                );
            }
            // The inverse (SWI-Prolog's singleton-marked warning): an
            // underscore prefix promises a singleton, so a repeated use is
            // probably a typo'd join.
            if counts[v.as_str()] > 1 && v.starts_with('_') && !flagged.contains(&v.as_str()) {
                flagged.push(v.as_str());
                diags.push(
                    Diagnostic::warning(
                        "W003",
                        *span,
                        format!(
                            "variable {v} occurs {} times but its name marks it as an \
                             intentional singleton",
                            counts[v.as_str()]
                        ),
                    )
                    .with_note(if v.trim_start_matches('_').is_empty() {
                        // There is no anonymous wildcard: every `_` in a
                        // clause is the *same* variable and joins.
                        format!("every occurrence of {v} names the same variable and joins")
                    } else {
                        format!(
                            "drop the underscore if the join is intentional: {}",
                            v.trim_start_matches('_')
                        )
                    }),
                );
            }
        }
    }
}

/// W004: an ID-literal whose grouping covers every column of the base
/// predicate — each group then holds exactly one tuple, so the only tid is 0.
pub fn degenerate_id_groups(
    program: &Program,
    spans: &SpanMap,
    interner: &Interner,
    diags: &mut Vec<Diagnostic>,
) {
    for (ci, clause) in program.clauses.iter().enumerate() {
        for (li, lit) in clause.body.iter().enumerate() {
            let Some(a) = lit.atom() else { continue };
            let PredicateRef::IdVersion { base, grouping } = &a.pred else {
                continue;
            };
            if grouping.len() != a.base_arity() {
                continue;
            }
            let name = interner.resolve(*base);
            let mut d = Diagnostic::warning(
                "W004",
                spans.literal_span(ci, li),
                format!(
                    "grouping covers every column of `{name}`, so each group holds \
                     exactly one tuple and the only tid is 0"
                ),
            );
            if let Some(Term::Int(k)) = a.terms.last() {
                if *k >= 1 {
                    d = d.with_note(format!(
                        "tid {k} can never match — this literal is always false"
                    ));
                }
            }
            diags.push(d);
        }
    }
}

/// H001: every occurrence of an ID-use bounds its tid below `k` (paper
/// footnotes 6–7), so enumeration may walk `k`-prefix arrangements only.
pub fn tid_bound_hints(
    program: &Program,
    spans: &SpanMap,
    interner: &Interner,
    diags: &mut Vec<Diagnostic>,
) {
    let bounds = tidbound::tid_bounds_ast(program);
    let mut reported: FxHashSet<(SymbolId, Vec<usize>)> = FxHashSet::default();
    for (ci, clause) in program.clauses.iter().enumerate() {
        for (li, lit) in clause.body.iter().enumerate() {
            let Some(a) = lit.atom() else { continue };
            let PredicateRef::IdVersion { base, grouping } = &a.pred else {
                continue;
            };
            let key = (*base, grouping.clone());
            let Some(&k) = bounds.get(&key) else { continue };
            if !reported.insert(key) {
                continue;
            }
            let shown: Vec<String> = grouping.iter().map(|g| (g + 1).to_string()).collect();
            diags.push(
                Diagnostic::hint(
                    "H001",
                    spans.literal_span(ci, li),
                    format!(
                        "tid of `{}[{}]` is bounded below {k} in every occurrence",
                        interner.resolve(*base),
                        shown.join(","),
                    ),
                )
                .with_note(format!(
                    "evaluation only needs the first {k} tuple(s) of each group \
                     (k-prefix enumeration, paper footnotes 6-7)"
                )),
            );
        }
    }
}

/// Every `arity`-tuple over `domain`, for building the full test database.
fn combos<'a>(domain: &[&'a str], arity: usize) -> Vec<Vec<&'a str>> {
    let mut acc = vec![Vec::new()];
    for _ in 0..arity {
        acc = acc
            .into_iter()
            .flat_map(|c: Vec<&str>| {
                domain.iter().map(move |d| {
                    let mut next = c.clone();
                    next.push(*d);
                    next
                })
            })
            .collect();
    }
    acc
}

/// W005: the bounded Example-8 redundancy suggestion — a clause whose
/// removal preserves every output on a family of test databases
/// (deterministic empty + full, plus a randomized family).
pub fn redundant_clauses(
    program: &Program,
    spans: &SpanMap,
    interner: &Arc<Interner>,
    diags: &mut Vec<Diagnostic>,
) {
    let Ok(validated) = ValidatedProgram::new(program.clone(), Arc::clone(interner)) else {
        return;
    };
    let heads = program.head_predicates();
    let bodies = program.body_predicates();
    let mut sinks: Vec<String> = heads
        .iter()
        .filter(|p| !bodies.contains(p))
        .map(|&p| interner.resolve(p))
        .collect();
    sinks.sort();
    if sinks.is_empty() {
        return;
    }

    // Databases over the program's elementary input predicates, with a
    // fixed seed so lint output is reproducible. A deterministic empty and
    // full database bracket the random family: clauses that only matter on
    // no-input or all-input databases are otherwise easy to miss, because a
    // probability-½ random family rarely hits those extremes.
    let mut schema: Vec<(String, usize)> = Vec::new();
    for &pred in validated.inputs() {
        let (Some(arity), Some(rtype)) = (validated.arity(pred), validated.sorts().rel_type(pred))
        else {
            continue;
        };
        if rtype.is_elementary() {
            schema.push((interner.resolve(pred), arity));
        }
    }
    schema.sort();
    let schema_refs: Vec<(&str, usize)> = schema.iter().map(|(n, a)| (n.as_str(), *a)).collect();
    // The domain must include the program's own symbolic constants: a point
    // query like `q(Y) :- anc(ann, Y)` is empty on every database whose
    // domain misses `ann`, which would make every upstream clause look
    // removable. Capped so the full database stays small.
    let mut domain: Vec<String> = program
        .clauses
        .iter()
        .flat_map(|c| {
            c.head
                .iter()
                .flat_map(|h| h.atom.terms.iter())
                .chain(c.body.iter().flat_map(|l| match l {
                    idlog_parser::Literal::Pos(a) | idlog_parser::Literal::Neg(a) => a.terms.iter(),
                    idlog_parser::Literal::Builtin { args, .. } => args.iter(),
                    _ => [].iter(),
                }))
        })
        .filter_map(|t| match t {
            idlog_parser::Term::Sym(s) => Some(interner.resolve(*s)),
            _ => None,
        })
        .collect();
    domain.sort();
    domain.dedup();
    domain.truncate(3);
    domain.extend(["d1", "d2", "d3", "d4"].map(str::to_string));
    let domain: Vec<&str> = domain.iter().map(String::as_str).collect();
    let mut empty_db = Database::with_interner(Arc::clone(interner));
    let mut full_db = Database::with_interner(Arc::clone(interner));
    for (name, arity) in &schema {
        let rtype = idlog_common::RelType::elementary(*arity);
        if empty_db.declare(name, rtype.clone()).is_err() || full_db.declare(name, rtype).is_err() {
            return;
        }
        for combo in combos(&domain, *arity) {
            if full_db.insert_syms(name, &combo).is_err() {
                return;
            }
        }
    }
    let mut dbs = vec![empty_db, full_db];
    dbs.extend(idlog_optimizer::random_databases(
        interner,
        &schema_refs,
        &domain,
        8,
        0xD1CE,
    ));

    let cone = contributing(program);
    let budget = EnumBudget::default();
    let mut removable: Option<FxHashSet<usize>> = None;
    for sink in &sinks {
        let Ok(rep) =
            idlog_optimizer::suggest_redundant_clauses(program, interner, &dbs, sink, &budget)
        else {
            return; // sort mismatch with random databases, budget, … — no suggestion
        };
        let this: FxHashSet<usize> = rep.removable.into_iter().collect();
        removable = Some(match removable {
            None => this,
            Some(prev) => prev.intersection(&this).copied().collect(),
        });
    }
    let mut removable: Vec<usize> = removable.unwrap_or_default().into_iter().collect();
    removable.sort_unstable();
    for ci in removable {
        // Clauses for predicates outside every output's cone are already
        // W001 territory; suggesting their removal again is noise.
        let head = program.clauses[ci].head[0].atom.pred.base();
        if !cone.contains(&head) {
            continue;
        }
        diags.push(
            Diagnostic::warning(
                "W005",
                spans.clause_span(ci),
                format!(
                    "clause looks redundant: removing it preserves {} on {} test \
                     databases (empty, full, and randomized; bounded check, Example 8)",
                    sinks
                        .iter()
                        .map(|s| format!("`{s}`"))
                        .collect::<Vec<_>>()
                        .join(", "),
                    dbs.len()
                ),
            )
            .with_note(
                "the check is sound only up to the tested databases; review before deleting",
            ),
        );
    }
}
