//! Goal-directed relevance lints (W030, W031, H020).
//!
//! Backed by [`idlog_core::relevance::analyze_relevance`]. Each *sink*
//! predicate (an IDB head no body reads — the program's query outputs) is
//! analyzed as a query root. When the left-to-right SIPS reaches at least
//! one derived predicate with a bound argument position, the program has a
//! *point-query shape* and the verdict is worth reporting:
//!
//! * **H020** — certified: magic-sets evaluation (`--strategy magic`) is
//!   semantics-preserving, with the adorned predicates and the statically
//!   pruned fraction of the dependency graph listed;
//! * **W030** — a goal flounders (negation or a builtin reached with
//!   required positions unbound), with the witness walk from the root;
//! * **W031** — the reachable region contains a choice site (ID-literal,
//!   `choice`, `!`): magic guards must not duplicate or split a choice
//!   point, mirroring the ID-taint witnesses of `W010`.
//!
//! Programs without point-query shape stay silent — all-free queries gain
//! nothing from magic sets, so neither a cert nor a refusal is news.

use idlog_common::{FxHashSet, Interner, SymbolId};
use idlog_core::relevance::{
    analyze_relevance, pattern_string, RefusalReason, RelevanceAnalysis, RelevanceStep,
};
use idlog_parser::{Program, SpanMap};

use crate::diagnostic::Diagnostic;

/// Run the relevance analysis per sink predicate and emit W030/W031/H020.
pub(crate) fn relevance_lints(
    program: &Program,
    spans: &SpanMap,
    interner: &Interner,
    diags: &mut Vec<Diagnostic>,
) {
    let bodies = program.body_predicates();
    let mut seen_roots: FxHashSet<SymbolId> = FxHashSet::default();
    let mut reported: FxHashSet<(&'static str, usize, usize)> = FxHashSet::default();
    for (ci, clause) in program.clauses.iter().enumerate() {
        let root = clause.head[0].atom.pred.base();
        if bodies.contains(&root) || !seen_roots.insert(root) {
            continue;
        }
        let analysis = analyze_relevance(program, root);
        // Only point-query shapes are worth a verdict: the walk must have
        // entered some derived predicate with a bound position.
        if analysis.adorned().is_empty() {
            continue;
        }
        match analysis.refusal() {
            None => certified_hint(root, ci, &analysis, spans, interner, diags),
            Some(_) => refusal_warning(root, &analysis, spans, interner, diags, &mut reported),
        }
    }
}

/// H020: the point query is certified for goal-directed evaluation.
fn certified_hint(
    root: SymbolId,
    root_clause: usize,
    analysis: &RelevanceAnalysis,
    spans: &SpanMap,
    interner: &Interner,
    diags: &mut Vec<Diagnostic>,
) {
    let adorned: Vec<String> = analysis
        .adorned()
        .iter()
        .map(|a| a.display(interner))
        .collect();
    let (guarded, total) = analysis.pruned_fraction();
    diags.push(
        Diagnostic::hint(
            "H020",
            spans.head_name_span(root_clause),
            format!(
                "`{}` is a certified point query: goal-directed evaluation \
                 reaches {}",
                interner.resolve(root),
                adorned.join(", ")
            ),
        )
        .with_note(format!(
            "magic sets guard {guarded} of {total} derived predicate(s) with \
             query-constant seeds; run with --strategy magic to derive only \
             relevant facts"
        )),
    );
}

/// W030/W031: the refusal, rendered as a rustc-style witness walk — one
/// note per SIPS hop, anchored at the literal that passes the bindings.
fn refusal_warning(
    root: SymbolId,
    analysis: &RelevanceAnalysis,
    spans: &SpanMap,
    interner: &Interner,
    diags: &mut Vec<Diagnostic>,
    reported: &mut FxHashSet<(&'static str, usize, usize)>,
) {
    let refusal = analysis.refusal().expect("caller checked");
    let (code, headline) = match refusal.reason {
        RefusalReason::Floundering => ("W030", "floundering walk under the left-to-right SIPS"),
        RefusalReason::ChoiceSite => (
            "W031",
            "reaches a choice site, so magic-sets must not prune it",
        ),
    };
    let (site_clause, site_literal) = refusal.site();
    if !reported.insert((code, site_clause, site_literal)) {
        return;
    }
    let mut d = Diagnostic::warning(
        code,
        spans.literal_span(site_clause, site_literal),
        format!(
            "point query `{}` cannot be made goal-directed: {headline}",
            interner.resolve(root)
        ),
    );
    for step in &refusal.walk {
        d = match step {
            RelevanceStep::Goal {
                clause,
                literal,
                to,
                pattern,
            } => d.with_note_at(
                spans.literal_span(*clause, *literal),
                format!(
                    "bindings flow into `{}` with pattern {} here",
                    interner.resolve(*to),
                    pattern_string(pattern)
                ),
            ),
            RelevanceStep::Flounder {
                clause,
                literal,
                message,
            } => d.with_note_at(spans.literal_span(*clause, *literal), message.clone()),
            RelevanceStep::Choice { clause, literal } => d.with_note_at(
                spans.literal_span(*clause, *literal),
                "non-deterministic choice happens here; a magic guard would \
                 prune the relation it draws from, duplicating or splitting \
                 the choice point (the same sites the W010 taint walk tracks)",
            ),
        };
    }
    d = d.with_note(match refusal.reason {
        RefusalReason::Floundering => {
            "bind the offending positions earlier in the body (the SIPS is \
             textual left-to-right), or suppress with --allow W030 and use \
             the default strategy"
        }
        RefusalReason::ChoiceSite => {
            "goal-directed evaluation stays off for this query; suppress \
             with --allow W031 if the full evaluation is intentional"
        }
    });
    diags.push(d);
}
