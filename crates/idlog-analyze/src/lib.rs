//! `idlog-analyze` — span-carrying diagnostics and lints for IDLOG programs.
//!
//! The engine crates (`idlog-core`, `idlog-choice`) validate fail-fast:
//! the first problem aborts evaluation, which is right for execution but
//! wrong for authoring. This crate re-runs the same checks through their
//! structured collect-all entry points — [`idlog_core::safety::analyze_clause`],
//! [`idlog_core::sorts::infer_collect`], [`idlog_core::stratify::stratify_check`],
//! [`idlog_choice::collect_violations`] — and anchors every finding to the
//! source text via the parser's [`idlog_parser::SpanMap`] side-table, so a
//! program with three independent mistakes reports all three, each with a
//! rustc-style caret excerpt.
//!
//! ```
//! use std::sync::Arc;
//! use idlog_analyze::{analyze, Options, Severity};
//!
//! let interner = Arc::new(idlog_common::Interner::new());
//! let analysis = analyze("p(X, Y) :- q(X).", &interner, &Options::default());
//! assert_eq!(analysis.error_count(), 1); // E010: Y unbound
//! assert_eq!(analysis.diagnostics[0].code, "E010");
//! assert_eq!(analysis.diagnostics[0].severity, Severity::Error);
//! ```
//!
//! Diagnostic codes are stable and documented in the repository's
//! `LANGUAGE.md` (section *Diagnostics*): `E001`–`E007` and `E009`–`E015`
//! are structural errors, `E020`–`E022` sort conflicts (splitting the
//! retired clause-level `E008`), `W001`–`W005` syntactic warnings,
//! `W010`/`W011` determinism warnings backed by the ID-taint dataflow in
//! [`idlog_core::taint`], `W020`/`W021` termination warnings backed by the
//! argument-flow analysis in [`idlog_core::termination`],
//! `W030`/`W031` goal-directed-relevance refusals backed by the
//! binding-pattern adornment analysis in [`idlog_core::relevance`], and
//! `H001`/`H010`/`H020` optimization, bounded-depth, and point-query hints.

#![warn(missing_docs)]

pub mod analyzer;
mod dataflow;
mod determinism;
pub mod diagnostic;
pub mod lints;
mod relevance;
pub mod render;
mod sorts;
mod termination;

pub use analyzer::{analyze, Analysis, Dialect, Options};
pub use diagnostic::{Diagnostic, Note, Severity};
pub use render::{render, render_all, render_json};

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use idlog_common::Interner;

    fn run(src: &str) -> Analysis {
        analyze(src, &Arc::new(Interner::new()), &Options::default())
    }

    fn codes(a: &Analysis) -> Vec<&'static str> {
        a.diagnostics.iter().map(|d| d.code).collect()
    }

    #[test]
    fn three_independent_errors_all_reported() {
        // Clause 1: unbound head variable (E010).
        // Clause 2: sort conflict — u-constant in an i position (E022).
        // Clauses 3-4: stratification cycle through negation (E011).
        let a = run("p(X, Y) :- q(X).
                     r(Z) :- q(Z), plus(Z, one, Z).
                     s(X) :- q(X), not t(X).
                     t(X) :- q(X), not s(X).");
        let cs = codes(&a);
        assert!(cs.contains(&"E010"), "{cs:?}");
        assert!(cs.contains(&"E022"), "{cs:?}");
        assert!(cs.contains(&"E011"), "{cs:?}");
        assert!(a.error_count() >= 3, "{cs:?}");
    }

    #[test]
    fn sort_conflicts_get_specific_codes_and_sites() {
        // Column conflict: q's column is u (constant a) then i (via succ).
        let a = run("q(a). p(X) :- q(X), succ(X, Y).");
        let e020 = a.diagnostics.iter().find(|d| d.code == "E020").unwrap();
        assert!(e020.message.contains("column 1 of `q`"), "{e020:?}");
        assert!(e020.span.is_known());

        // Variable conflict: M is i via succ, u via `= a`.
        let b = run("p(N) :- succ(N, M), q(M), M = a.");
        let cs: Vec<_> = b.diagnostics.iter().map(|d| d.code).collect();
        assert!(cs.contains(&"E021") || cs.contains(&"E020"), "{cs:?}");

        // Ground mismatch.
        let c = run("p(X) :- q(X), a != 3.");
        assert!(
            c.diagnostics.iter().any(|d| d.code == "E022"),
            "{:?}",
            codes(&c)
        );
    }

    #[test]
    fn nondeterministic_output_warns_with_witness() {
        // N escapes the ID-literal into the head: classic sampling query.
        let a = run("pick(N) :- emp[2](N, D, 0).");
        let w010 = a.diagnostics.iter().find(|d| d.code == "W010").unwrap();
        assert!(w010.message.contains("`pick`"), "{w010:?}");
        assert!(
            w010.notes
                .iter()
                .any(|n| n.message.contains("choice is introduced here")),
            "{w010:?}"
        );
        // The tainted head column also gets W011.
        assert!(
            a.diagnostics.iter().any(|d| d.code == "W011"),
            "{:?}",
            codes(&a)
        );
        // Taint is transitive: the witness path names the intermediate.
        let b = run("picked(N) :- emp[2](N, D, 0).
                     out(X) :- picked(X).");
        let w010 = b.diagnostics.iter().find(|d| d.code == "W010").unwrap();
        assert!(w010.message.contains("`out`"), "{w010:?}");
        assert!(
            w010.notes.iter().any(|n| n.message.contains("`picked`")),
            "{w010:?}"
        );
    }

    #[test]
    fn certified_deterministic_output_is_clean() {
        // Pure existential member variable + constant tid: certified.
        let a = run("all_depts(D) :- emp[2](N, D, 0).");
        let cs = codes(&a);
        assert!(!cs.contains(&"W010"), "{cs:?}");
        assert!(!cs.contains(&"W011"), "{cs:?}");
        // Group-size test through a comparison stays certified.
        let b = run("has_two(D) :- emp[2](N, D, T), T = 1.");
        assert!(!codes(&b).contains(&"W010"), "{:?}", codes(&b));
    }

    #[test]
    fn parse_error_is_fatal_and_sole() {
        let a = run("p(X :- q(X).");
        assert_eq!(codes(&a), vec!["E001"]);
        assert!(a.diagnostics[0].span.is_known());
    }

    #[test]
    fn every_diagnostic_carries_a_span() {
        let a = run("p(X, Y) :- q(X).
                     r(X) :- q(X, X).
                     s(X) :- s[](X, 0).");
        assert!(a.error_count() >= 3);
        for d in &a.diagnostics {
            assert!(d.span.is_known(), "{} has no span", d.code);
        }
    }

    #[test]
    fn arity_conflict_points_at_both_occurrences() {
        let a = run("p(X) :- q(X). r(X) :- q(X, X).");
        let e006 = a.diagnostics.iter().find(|d| d.code == "E006").unwrap();
        assert!(e006.message.contains("arity 2 but previously 1"));
        assert_eq!(e006.notes.len(), 1);
        assert!(e006.notes[0].span.unwrap().is_known());
    }

    #[test]
    fn safety_notes_show_mode_table_rows() {
        let a = run("p(X, N) :- q(X, N), plus(N, L, M).");
        let e009 = a.diagnostics.iter().find(|d| d.code == "E009").unwrap();
        let note = &e009.notes[0];
        assert!(note.message.contains("mode table allows only"), "{note:?}");
        assert!(note.message.contains("bnn"), "{note:?}");
    }

    #[test]
    fn stratification_cycle_is_spelled_out() {
        let a = run("p(X) :- q(X), not p(X).");
        let e011 = a.diagnostics.iter().find(|d| d.code == "E011").unwrap();
        assert!(e011.message.contains("cycle p -> p"), "{}", e011.message);
        assert!(!e011.notes.is_empty());
    }

    #[test]
    fn choice_dialect_gets_c1_c2_not_rejection() {
        let a = run("s(N) :- emp(N, D), choice((D), (N)), choice((N), (D)).
                     p(X) :- a(X, Y), choice((X), (Y)).
                     p(X) :- b(X, Y), choice((X), (Y)).");
        assert_eq!(a.dialect, Dialect::Choice);
        let cs = codes(&a);
        assert!(cs.contains(&"E012"), "{cs:?}");
        assert!(cs.contains(&"E013"), "{cs:?}");
    }

    #[test]
    fn clean_choice_program_is_clean() {
        let a = run("select_emp(Name) :- emp(Name, Dept), choice((Dept), (Name)).");
        assert_eq!(a.dialect, Dialect::Choice);
        assert_eq!(a.error_count(), 0, "{:?}", codes(&a));
        assert_eq!(a.warning_count(), 0, "{:?}", codes(&a));
    }

    #[test]
    fn singleton_and_unused_warnings() {
        // `orphan`/`orphan2` feed only each other, so neither is an output
        // (a sink) nor reaches one — both are unused.
        let a = run("out(D) :- emp(N, D, Junk).
                     orphan(X) :- orphan2(X).
                     orphan2(X) :- orphan(X).");
        let cs = codes(&a);
        assert!(cs.iter().filter(|c| **c == "W003").count() >= 2, "{cs:?}");
        assert!(cs.iter().filter(|c| **c == "W001").count() == 2, "{cs:?}");
        assert_eq!(a.error_count(), 0, "{cs:?}");
    }

    #[test]
    fn underscore_prefix_suppresses_and_inverts_w003() {
        // Underscore-prefixed singletons are intentional: no warning.
        let a = run("all_depts(D) :- emp(_Name, D).");
        assert!(!codes(&a).contains(&"W003"), "{:?}", codes(&a));
        // The inverse: an underscore-marked variable used as a join.
        let b = run("out(D) :- emp(_N, D), male(_N).");
        let w003: Vec<_> = b.diagnostics.iter().filter(|d| d.code == "W003").collect();
        assert_eq!(w003.len(), 1, "{:?}", codes(&b));
        assert!(
            w003[0]
                .message
                .contains("marks it as an intentional singleton"),
            "{:?}",
            w003[0]
        );
    }

    #[test]
    fn underivable_only_fires_with_inline_facts() {
        let with_facts = run("emp(ann, sales).
                              out(N) :- emp(N, N), ghost(N).");
        assert!(
            codes(&with_facts).contains(&"W002"),
            "{:?}",
            codes(&with_facts)
        );
        let without = run("out(N) :- emp(N, N), ghost(N).");
        assert!(!codes(&without).contains(&"W002"), "{:?}", codes(&without));
    }

    #[test]
    fn degenerate_grouping_and_tid_hint() {
        let a = run("pick(N) :- emp[1,2](N, D, 1), d(D).");
        let cs = codes(&a);
        assert!(cs.contains(&"W004"), "{cs:?}");
        let w004 = a.diagnostics.iter().find(|d| d.code == "W004").unwrap();
        assert!(w004.notes[0].message.contains("never match"), "{w004:?}");

        let b = run("two(N) :- emp[2](N, D, T), T < 2, d(D).");
        assert!(codes(&b).contains(&"H001"), "{:?}", codes(&b));
        // H001 stays a hint; the nondeterministic sampling shape now also
        // draws the W010/W011 determinism warnings (N escapes to the head).
        assert!(codes(&b).contains(&"W010"), "{:?}", codes(&b));
        let hints: Vec<_> = b
            .diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Hint)
            .collect();
        // H010 (bounded depth) also fires: the program is nonrecursive.
        assert!(
            hints.iter().all(|d| d.code == "H001" || d.code == "H010"),
            "{:?}",
            codes(&b)
        );
        assert!(codes(&b).contains(&"H001"), "{:?}", codes(&b));
    }

    #[test]
    fn example8_redundancy_is_suggested() {
        // q = a ∪ (a ∩ b) = a: the second clause is removable.
        let a = run("q(X) :- a(X). q(X) :- a(X), b(X).");
        let w005: Vec<_> = a.diagnostics.iter().filter(|d| d.code == "W005").collect();
        assert_eq!(w005.len(), 1, "{:?}", codes(&a));
        assert_eq!(w005[0].span.start.line, 1);
        assert!(w005[0].span.start.col > 10, "points at the second clause");
    }

    #[test]
    fn check_options_skip_lints() {
        let opts = Options {
            lints: false,
            redundancy: false,
        };
        let a = analyze(
            "q(X) :- a(X). q(X) :- a(X), b(X), junk(J).",
            &Arc::new(Interner::new()),
            &opts,
        );
        assert!(a.diagnostics.is_empty(), "{:?}", codes(&a));
    }

    #[test]
    fn growing_recursion_draws_w020_with_witness_walk() {
        let a = run("count(0).
                     count(M) :- count(N), succ(N, M).
                     out(N) :- count(N).");
        let w020 = a.diagnostics.iter().find(|d| d.code == "W020").unwrap();
        assert!(w020.message.contains("`count`"), "{w020:?}");
        assert!(w020.message.contains("succ"), "{w020:?}");
        // Witness walk: at least the expanding edge plus the closing note.
        assert!(w020.notes.len() >= 2, "{w020:?}");
        assert!(
            w020.notes.iter().any(|n| n.message.contains("grows")),
            "{w020:?}"
        );
        assert!(
            w020.notes
                .iter()
                .any(|n| n.message.contains("--allow W020")),
            "{w020:?}"
        );
        // A diverging program is not certified bounded.
        assert!(!codes(&a).contains(&"H010"), "{:?}", codes(&a));
    }

    #[test]
    fn recursive_choice_over_growing_base_draws_w021() {
        let a = run("n(0).
                     n(M) :- n(N), plus(N, 1, M).
                     pick(N) :- n[1](N, T).");
        let cs = codes(&a);
        assert!(cs.contains(&"W020"), "{cs:?}");
        let w021 = a.diagnostics.iter().find(|d| d.code == "W021").unwrap();
        assert!(w021.message.contains("`n`"), "{w021:?}");
        assert!(
            w021.notes
                .iter()
                .any(|n| n.message.contains("never completes")),
            "{w021:?}"
        );
    }

    #[test]
    fn bounded_recursion_earns_h010_certificate() {
        let a = run("tc(X, Y) :- edge(X, Y).
                     tc(X, Z) :- tc(X, Y), edge(Y, Z).");
        let h010 = a.diagnostics.iter().find(|d| d.code == "H010").unwrap();
        assert!(h010.message.contains("statically bounded"), "{h010:?}");
        assert!(h010.message.contains("degree <= 2"), "{h010:?}");
        assert!(
            h010.notes.iter().any(|n| n.message.contains("1 recursive")),
            "{h010:?}"
        );
        assert!(!codes(&a).contains(&"W020"), "{:?}", codes(&a));
    }

    #[test]
    fn termination_lints_respect_error_gate_and_dialect() {
        // Errors suppress the termination pass entirely.
        let a = run("count(M) :- count(N), succ(N, M). p(X :- q(X).");
        assert!(!codes(&a).contains(&"W020"), "{:?}", codes(&a));
        // Choice dialect is outside the certified fragment: no H010.
        let b = run("s(N) :- emp(N, D), choice((D), (N)).");
        assert_eq!(b.dialect, Dialect::Choice);
        assert!(!codes(&b).contains(&"H010"), "{:?}", codes(&b));
    }

    #[test]
    fn point_query_earns_h020_certificate() {
        let a = run("ancestor(X, Y) :- parent(X, Y).
                     ancestor(X, Z) :- ancestor(X, Y), parent(Y, Z).
                     query(Y) :- ancestor(ann, Y).");
        let h020 = a.diagnostics.iter().find(|d| d.code == "H020").unwrap();
        assert!(h020.message.contains("ancestor^bf"), "{h020:?}");
        assert!(h020.message.contains("`query`"), "{h020:?}");
        assert!(
            h020.notes
                .iter()
                .any(|n| n.message.contains("--strategy magic")),
            "{h020:?}"
        );
        assert!(!codes(&a).contains(&"W030"), "{:?}", codes(&a));
    }

    #[test]
    fn floundering_point_query_draws_w030_with_walk() {
        // Safe (the planner reorders `node(Y)` before the negation), but
        // floundering under the textual left-to-right SIPS.
        let a = run("reach(X, Y) :- edge(X, Y).
                     reach(X, Z) :- reach(X, Y), edge(Y, Z).
                     unreached(X, Y) :- node(X), not reach(X, Y), node(Y).
                     q(Y) :- unreached(a, Y).");
        let w030 = a.diagnostics.iter().find(|d| d.code == "W030").unwrap();
        assert!(w030.message.contains("`q`"), "{w030:?}");
        assert!(w030.span.is_known());
        // Witness walk: the SIPS hop into unreached^bf plus the flounder.
        assert!(
            w030.notes
                .iter()
                .any(|n| n.message.contains("`unreached`") && n.message.contains("bf")),
            "{w030:?}"
        );
        assert!(
            w030.notes.iter().any(|n| n.message.contains("unbound")),
            "{w030:?}"
        );
        assert!(
            w030.notes
                .iter()
                .any(|n| n.message.contains("--allow W030")),
            "{w030:?}"
        );
        assert!(!codes(&a).contains(&"H020"), "{:?}", codes(&a));
    }

    #[test]
    fn choice_blocked_point_query_draws_w031() {
        let a = run("picked(X, Y) :- pref[2](X, Y, 0).
                     pref(X, Y) :- likes(X, Y).
                     q(Y) :- picked(ann, Y).");
        let w031 = a.diagnostics.iter().find(|d| d.code == "W031").unwrap();
        assert!(w031.message.contains("choice site"), "{w031:?}");
        assert!(
            w031.notes
                .iter()
                .any(|n| n.message.contains("choice point")),
            "{w031:?}"
        );
        assert!(!codes(&a).contains(&"H020"), "{:?}", codes(&a));
    }

    #[test]
    fn all_free_queries_stay_silent_on_relevance() {
        // No bound position anywhere: magic gains nothing, so neither a
        // cert nor a refusal is reported.
        let a = run("tc(X, Y) :- edge(X, Y).
                     out(X, Y) :- tc(X, Y).");
        let cs = codes(&a);
        for code in ["W030", "W031", "H020"] {
            assert!(!cs.contains(&code), "{cs:?}");
        }
    }

    #[test]
    fn diagnostics_sorted_by_position() {
        let a = run("p(X, Y) :- q(X).
                     r(Z, W) :- q(Z).");
        let positions: Vec<(u32, u32)> = a
            .diagnostics
            .iter()
            .map(|d| (d.span.start.line, d.span.start.col))
            .collect();
        let mut sorted = positions.clone();
        sorted.sort();
        assert_eq!(positions, sorted);
    }
}
