//! Termination certification lints (W020, W021, H010).
//!
//! Backed by [`idlog_core::termination::analyze_termination`]. Theorem 3
//! makes exact termination undecidable, so W020 is a *possibly*-diverging
//! warning — its absence on a choice-free stratified program is a
//! certificate (H010), its presence is not a conviction. Intentionally
//! value-generating programs should bound evaluation with
//! `--timeout`/`--max-rounds` or suppress with `idlog lint --allow W020`.

use idlog_common::{FxHashSet, Interner, SymbolId};
use idlog_core::termination::{FlowNode, TerminationCert};
use idlog_parser::{Program, SpanMap};

use crate::diagnostic::Diagnostic;

/// Describe a flow node for witness notes.
fn node_name(node: FlowNode, interner: &Interner) -> String {
    match node {
        FlowNode::Col(p, k) => format!("column {} of `{}`", k + 1, interner.resolve(p)),
        FlowNode::Card(p) => format!("the tids of `{}`", interner.resolve(p)),
    }
}

/// Run the termination analysis and emit W020 (possibly-diverging
/// recursion, with a witness walk along the growing cycle), W021
/// (ID-materialization of a cardinality-unbounded predicate), and H010
/// (bounded-depth certificate) as applicable.
pub(crate) fn termination_lints(
    program: &Program,
    spans: &SpanMap,
    interner: &Interner,
    diags: &mut Vec<Diagnostic>,
) {
    let cert = idlog_core::termination::analyze_termination(program);
    possibly_diverging_recursion(&cert, spans, interner, diags);
    unbounded_id_materialization(&cert, spans, interner, diags);
    bounded_depth_hint(program, &cert, spans, diags);
}

/// W020: an expanding cycle in the argument-flow graph — the fixpoint can
/// derive ever-larger naturals and may never terminate. The notes walk the
/// witness cycle edge by edge down to the growing builtin.
fn possibly_diverging_recursion(
    cert: &TerminationCert,
    spans: &SpanMap,
    interner: &Interner,
    diags: &mut Vec<Diagnostic>,
) {
    let Some(witness) = cert.growth_witness() else {
        return;
    };
    let grower = witness[0];
    let pred = grower.to.pred();
    let op = grower.op.map(|o| o.name()).unwrap_or("arithmetic");
    let anchor = spans.head_name_span(grower.clause);
    let mut d = Diagnostic::warning(
        "W020",
        anchor,
        format!(
            "recursion of `{}` may diverge: each round can derive a strictly \
             larger value through `{op}`",
            interner.resolve(pred)
        ),
    );
    for e in witness {
        d = match e.grew_at {
            Some(grew_at) => d.with_note_at(
                spans.literal_span(e.clause, grew_at),
                format!(
                    "the value read from {} grows through `{}` here and reaches {}",
                    node_name(e.from, interner),
                    e.op.map(|o| o.name()).unwrap_or("arithmetic"),
                    node_name(e.to, interner),
                ),
            ),
            None => d.with_note_at(
                spans.literal_span(e.clause, e.literal),
                format!(
                    "{} flows back into {} here, closing the cycle",
                    node_name(e.from, interner),
                    node_name(e.to, interner),
                ),
            ),
        };
    }
    d = d.with_note(
        "the analysis is conservative (Theorem 3: exact termination is undecidable); \
         bound evaluation with --timeout/--max-rounds, or suppress with --allow W020 \
         if the growth is intentional",
    );
    diags.push(d);
}

/// W021: an ID-literal over a predicate whose cardinality the analysis
/// cannot bound. Tids are assigned per *complete* sub-relation, so
/// materializing the ID-relation of a growing predicate can never finish.
fn unbounded_id_materialization(
    cert: &TerminationCert,
    spans: &SpanMap,
    interner: &Interner,
    diags: &mut Vec<Diagnostic>,
) {
    let mut reported: FxHashSet<SymbolId> = FxHashSet::default();
    for site in cert.unbounded_id_sites() {
        if !reported.insert(site.base) {
            continue;
        }
        let name = interner.resolve(site.base);
        let mut d = Diagnostic::warning(
            "W021",
            spans.literal_span(site.clause, site.literal),
            format!(
                "ID-relation of `{name}` is materialized here, but `{name}` is \
                 not certified to have bounded cardinality"
            ),
        )
        .with_note(
            "tuple identifiers are assigned once the sub-relation is complete; \
             a possibly unbounded relation never completes, so this \
             materialization may never happen",
        );
        if let Some(witness) = cert.growth_witness() {
            d = d.with_note_at(
                spans.literal_span(witness[0].clause, witness[0].grew_at.unwrap_or(0)),
                "the growth originates here (see W020)",
            );
        }
        diags.push(d);
    }
}

/// H010: the program is certified bounded — every fixpoint terminates on
/// its own, with a per-database round bound the engine installs
/// automatically (see `idlog_core::Query::termination_cert`).
fn bounded_depth_hint(
    program: &Program,
    cert: &TerminationCert,
    spans: &SpanMap,
    diags: &mut Vec<Diagnostic>,
) {
    if !cert.bounded() || program.clauses.is_empty() {
        return;
    }
    let recursive = cert
        .recursion()
        .iter()
        .filter(|s| s.kind != idlog_core::termination::RecursionKind::Nonrecursive)
        .count();
    diags.push(
        Diagnostic::hint(
            "H010",
            spans.head_name_span(0),
            format!(
                "derivation depth is statically bounded: every derived relation's \
                 cardinality is polynomial (degree <= {}) in the active domain",
                cert.degree()
            ),
        )
        .with_note(format!(
            "{} recursive component(s); the engine derives a concrete per-database \
             round bound from this certificate and installs it as an automatic \
             max-rounds ceiling",
            recursive
        )),
    );
}
