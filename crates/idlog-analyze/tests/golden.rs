//! Golden tests over the `programs/bad/` corpus: every `.idl` file there is
//! analyzed with the full lint suite and its rendered output compared
//! byte-for-byte against the `.expected` sidecar.
//!
//! Regenerate the sidecars after an intentional output change with
//! `UPDATE_GOLDEN=1 cargo test -p idlog-analyze --test golden`.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use idlog_analyze::{analyze, render_all, Options};
use idlog_common::Interner;

fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../programs/bad")
}

/// The diagnostic codes named by a corpus file's name (`e002_e003_heads.idl`
/// names E002 and E003): each must appear in the rendered output.
fn codes_in_name(stem: &str) -> Vec<String> {
    stem.split('_')
        .filter(|w| {
            w.len() == 4
                && w.starts_with(['e', 'w', 'h'])
                && w[1..].chars().all(|c| c.is_ascii_digit())
        })
        .map(str::to_uppercase)
        .collect()
}

#[test]
fn corpus_matches_goldens() {
    let dir = corpus_dir();
    let mut programs: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("programs/bad exists")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "idl"))
        .collect();
    programs.sort();
    assert!(
        programs.len() >= 20,
        "corpus shrank: {} files",
        programs.len()
    );

    let update = std::env::var_os("UPDATE_GOLDEN").is_some();
    let mut failures = Vec::new();
    for path in &programs {
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let stem = path.file_stem().unwrap().to_string_lossy().into_owned();
        let src = std::fs::read_to_string(path).expect("readable program");
        let interner = Arc::new(Interner::new());
        let analysis = analyze(&src, &interner, &Options::default());
        let rendered = render_all(&analysis.diagnostics, &src, &format!("programs/bad/{name}"));

        for code in codes_in_name(&stem) {
            assert!(
                rendered.contains(&format!("[{code}]")),
                "{name}: expected {code} to fire, got:\n{rendered}"
            );
        }

        let golden_path = path.with_extension("expected");
        if update {
            std::fs::write(&golden_path, &rendered).expect("write golden");
            continue;
        }
        let golden = std::fs::read_to_string(&golden_path)
            .unwrap_or_else(|_| panic!("{name}: missing golden {golden_path:?}"));
        if rendered != golden {
            failures.push(format!(
                "== {name} ==\n--- expected ---\n{golden}\n--- got ---\n{rendered}"
            ));
        }
    }
    assert!(failures.is_empty(), "\n{}", failures.join("\n"));
}

#[test]
fn multi_error_file_reports_three_independent_errors() {
    let path = corpus_dir().join("multi_errors.idl");
    let src = std::fs::read_to_string(path).expect("readable program");
    let interner = Arc::new(Interner::new());
    let analysis = analyze(&src, &interner, &Options::default());
    assert!(
        analysis.error_count() >= 3,
        "want >= 3 errors, got {}",
        analysis.error_count()
    );
    let codes: Vec<&str> = analysis.diagnostics.iter().map(|d| d.code).collect();
    for code in ["E010", "E022", "E011"] {
        assert!(codes.contains(&code), "{code} missing from {codes:?}");
    }
}
