//! Randomized whole-engine soundness harness.
//!
//! Generates random *safe, stratified* IDLOG programs over a three-level
//! predicate hierarchy (inputs → middle → top) with negation and ID-literals
//! only across strictly lower levels, then checks engine invariants:
//!
//! 1. evaluation terminates and the result passes the model checker
//!    (`verify_model`: the fixpoint is closed under the rules);
//! 2. naive and semi-naive strategies produce identical relations;
//! 3. every seeded-oracle answer is contained in the enumerated answer set;
//! 4. enumeration is deterministic (two walks agree).

use std::sync::Arc;

use proptest::prelude::*;

use idlog_core::{
    enumerate_with_options, evaluate_with_options, verify_model, CanonicalOracle, EnumBudget,
    EvalOptions, Interner, SeededOracle, Strategy as EvalStrategy, ValidatedProgram,
};
use idlog_storage::Database;

/// Pool of variable names used by generated clauses.
const VARS: [&str; 4] = ["X", "Y", "Z", "W"];

/// Specification of one generated body literal.
#[derive(Clone, Debug)]
enum LitSpec {
    /// Positive atom on a predicate of the given level (0 = input).
    Pos {
        level: usize,
        pred: usize,
        vars: Vec<usize>,
    },
    /// Negated atom on a strictly lower level (vars must be bound).
    Neg {
        level: usize,
        pred: usize,
        vars: Vec<usize>,
    },
    /// ID-literal on a strictly lower level with constant tid 0, grouped by
    /// the first column.
    Id {
        level: usize,
        pred: usize,
        vars: Vec<usize>,
    },
}

/// Specification of one clause for a level-`level` head predicate.
#[derive(Clone, Debug)]
struct ClauseSpec {
    head_pred: usize,
    head_vars: Vec<usize>,
    body: Vec<LitSpec>,
}

/// Everything needed to materialize a program + database.
#[derive(Clone, Debug)]
struct ProgramSpec {
    /// clauses[level-1] = clauses whose head lives at that level (1 or 2).
    clauses: Vec<Vec<ClauseSpec>>,
    /// Facts for the two input predicates (pairs over a 3-symbol domain).
    facts: Vec<(usize, usize, usize)>, // (input pred, col1 symbol, col2 symbol)
}

/// All generated predicates are binary; two predicates per level.
fn pred_name(level: usize, pred: usize) -> String {
    format!("l{level}p{pred}")
}

fn arb_lit(level: usize) -> impl Strategy<Value = LitSpec> {
    // A literal in a level-`level` clause body.
    let pos = (
        0..level + 1,
        0usize..2,
        proptest::collection::vec(0usize..4, 2),
    )
        .prop_map(|(l, p, v)| LitSpec::Pos {
            level: l,
            pred: p,
            vars: v,
        });
    let neg =
        (0..level, 0usize..2, proptest::collection::vec(0usize..4, 2)).prop_map(|(l, p, v)| {
            LitSpec::Neg {
                level: l,
                pred: p,
                vars: v,
            }
        });
    let id =
        (0..level, 0usize..2, proptest::collection::vec(0usize..4, 2)).prop_map(|(l, p, v)| {
            LitSpec::Id {
                level: l,
                pred: p,
                vars: v,
            }
        });
    prop_oneof![3 => pos, 1 => neg, 1 => id]
}

fn arb_clause(level: usize) -> impl Strategy<Value = ClauseSpec> {
    (
        0usize..2,
        proptest::collection::vec(0usize..4, 2),
        proptest::collection::vec(arb_lit(level), 1..4),
    )
        .prop_map(move |(head_pred, head_vars, body)| ClauseSpec {
            head_pred,
            head_vars,
            body,
        })
}

fn arb_program() -> impl Strategy<Value = ProgramSpec> {
    (
        proptest::collection::vec(arb_clause(1), 1..4),
        proptest::collection::vec(arb_clause(2), 1..4),
        proptest::collection::vec((0usize..2, 0usize..3, 0usize..3), 0..8),
    )
        .prop_map(|(l1, l2, facts)| ProgramSpec {
            clauses: vec![l1, l2],
            facts,
        })
}

/// Render the spec to source, repairing safety: head variables not bound by
/// a positive body literal are replaced by a bound variable (or the clause
/// gets a domain atom prepended when nothing binds at all); negated and
/// ID-literal variables are likewise forced to bound ones.
fn render(spec: &ProgramSpec) -> String {
    let mut src = String::new();
    for (li, level_clauses) in spec.clauses.iter().enumerate() {
        let level = li + 1;
        for c in level_clauses {
            // Variables positively bound by ordinary atoms.
            let mut bound: Vec<usize> = c
                .body
                .iter()
                .filter_map(|l| match l {
                    LitSpec::Pos { vars, .. } => Some(vars.clone()),
                    _ => None,
                })
                .flatten()
                .collect();
            bound.sort_unstable();
            bound.dedup();
            let mut body_parts: Vec<String> = Vec::new();
            if bound.is_empty() {
                // Prepend a binder so the clause is safe.
                body_parts.push(format!("{}(X, Y)", pred_name(0, 0)));
                bound = vec![0, 1];
            }
            let fix = |v: usize| -> usize {
                if bound.contains(&v) {
                    v
                } else {
                    bound[v % bound.len()]
                }
            };
            for l in &c.body {
                match l {
                    LitSpec::Pos { level, pred, vars } => {
                        body_parts.push(format!(
                            "{}({}, {})",
                            pred_name(*level, *pred),
                            VARS[vars[0]],
                            VARS[vars[1]]
                        ));
                    }
                    LitSpec::Neg { level, pred, vars } => {
                        body_parts.push(format!(
                            "not {}({}, {})",
                            pred_name(*level, *pred),
                            VARS[fix(vars[0])],
                            VARS[fix(vars[1])]
                        ));
                    }
                    LitSpec::Id { level, pred, vars } => {
                        body_parts.push(format!(
                            "{}[1]({}, {}, 0)",
                            pred_name(*level, *pred),
                            VARS[fix(vars[0])],
                            VARS[fix(vars[1])]
                        ));
                    }
                }
            }
            let head = format!(
                "{}({}, {})",
                pred_name(level, c.head_pred),
                VARS[fix(c.head_vars[0])],
                VARS[fix(c.head_vars[1])]
            );
            src.push_str(&format!("{head} :- {}.\n", body_parts.join(", ")));
        }
    }
    src
}

/// The ID-literal in a generated body *binds* its variables too — but our
/// renderer conservatively forces them to already-bound ones, so every
/// rendered program is safe by construction. Some renders may still fail
/// stratification-by-level if a positive same-level atom also appears under
/// an ID at a lower level — impossible here because ID-levels are strictly
/// lower. Hence: every rendered program validates.
fn build(spec: &ProgramSpec) -> (ValidatedProgram, Database) {
    let src = render(spec);
    let interner = Arc::new(Interner::new());
    let program = ValidatedProgram::parse(&src, Arc::clone(&interner))
        .unwrap_or_else(|e| panic!("generated program failed to validate: {e}\n{src}"));
    let mut db = Database::with_interner(interner);
    // Input relations always exist (binder clauses reference l0p0).
    for p in 0..2 {
        db.declare(&pred_name(0, p), idlog_core::RelType::elementary(2))
            .unwrap();
    }
    for &(p, a, b) in &spec.facts {
        db.insert_syms(&pred_name(0, p), &[&format!("c{a}"), &format!("c{b}")])
            .unwrap();
    }
    (program, db)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(160))]

    /// Invariants 1 and 2: the fixpoint is a model, and strategies agree.
    #[test]
    fn fixpoints_are_models_and_strategies_agree(spec in arb_program()) {
        let (program, db) = build(&spec);
        let semi =
            evaluate_with_options(&program, &db, &mut CanonicalOracle, &EvalOptions::new()).unwrap();
        let violations = verify_model(&program, &db, &semi).unwrap();
        prop_assert!(violations.is_empty(), "not a model: {violations:?}\n{}", render(&spec));

        let naive = evaluate_with_options(
            &program, &db, &mut CanonicalOracle,
            &EvalOptions::new().strategy(EvalStrategy::Naive),
        ).unwrap();
        for level in 1..=2usize {
            for pred in 0..2 {
                let name = pred_name(level, pred);
                match (semi.relation(&name), naive.relation(&name)) {
                    (Some(a), Some(b)) => prop_assert!(a.set_eq(b), "strategy mismatch on {name}"),
                    (None, None) => {}
                    _ => prop_assert!(false, "presence mismatch on {name}"),
                }
            }
        }
    }

    /// Parallel and serial evaluation agree — relations *and* statistics —
    /// on random stratified programs, for both fixpoint strategies.
    #[test]
    fn parallel_and_serial_evaluation_agree(spec in arb_program(), seed in any::<u64>()) {
        let (program, db) = build(&spec);
        for strategy in [EvalStrategy::SemiNaive, EvalStrategy::Naive] {
            let serial = evaluate_with_options(
                &program, &db, &mut SeededOracle::new(seed),
                &EvalOptions::serial().strategy(strategy).profile(true),
            ).unwrap();
            for threads in [2usize, 8] {
                let par = evaluate_with_options(
                    &program, &db, &mut SeededOracle::new(seed),
                    &EvalOptions::new().threads(threads).strategy(strategy).profile(true),
                ).unwrap();
                prop_assert_eq!(
                    serial.stats(), par.stats(),
                    "stats differ at {} threads ({:?})\n{}", threads, strategy, render(&spec)
                );
                prop_assert_eq!(
                    serial.profile().unwrap().to_json(false),
                    par.profile().unwrap().to_json(false),
                    "profile differs at {} threads ({:?})\n{}", threads, strategy, render(&spec)
                );
                for level in 1..=2usize {
                    for pred in 0..2 {
                        let name = pred_name(level, pred);
                        match (serial.relation(&name), par.relation(&name)) {
                            (Some(a), Some(b)) => prop_assert!(
                                a.set_eq(b),
                                "relation {} differs at {} threads\n{}",
                                name, threads, render(&spec)
                            ),
                            (None, None) => {}
                            _ => prop_assert!(false, "presence mismatch on {}", name),
                        }
                    }
                }
            }
        }
    }

    /// Invariants 3 and 4: oracle answers are enumerated; enumeration is
    /// deterministic.
    #[test]
    fn oracle_answers_are_enumerated(spec in arb_program(), seed in any::<u64>()) {
        let (program, db) = build(&spec);
        // Query the first level-2 head predicate that actually has clauses.
        let output = pred_name(2, spec.clauses[1][0].head_pred);
        let budget = EnumBudget { max_models: 50_000, max_answers: 50_000 };
        let opts = EvalOptions::serial().budget(budget);
        let all = enumerate_with_options(&program, &db, &output, &opts).unwrap();
        prop_assume!(all.complete()); // skip the rare factorial blowups

        let again = enumerate_with_options(&program, &db, &output, &opts).unwrap();
        prop_assert!(all.same_answers(&again, program.interner()));

        let out =
            evaluate_with_options(&program, &db, &mut SeededOracle::new(seed), &EvalOptions::new())
                .unwrap();
        let rel = out.relation(&output).unwrap();
        let tuples: Vec<_> = rel.iter().cloned().collect();
        prop_assert!(
            all.contains_answer(&tuples),
            "oracle answer not enumerated for {output}\n{}",
            render(&spec)
        );
    }
}
