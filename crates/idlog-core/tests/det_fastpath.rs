//! Soundness harness for the determinism fast path.
//!
//! Generates random safe, stratified programs whose ID-literals are all
//! *choice-free occurrences* (fresh non-grouping variables, constant tids),
//! so the taint analysis must certify every query over them. For a
//! certified query the engine answers `all_answers` with one canonical
//! evaluation instead of enumerating ID-functions; this harness checks the
//! certification claim behind that shortcut:
//!
//! 1. the full enumeration (fast path disabled) finds exactly one answer;
//! 2. the fast path reproduces it byte-identically at every thread count;
//! 3. every seeded-oracle evaluation lands on that same answer.

use std::sync::Arc;

use proptest::prelude::*;

use idlog_core::{EnumBudget, EvalOptions, Interner, Query, SeededOracle, ValidatedProgram};
use idlog_storage::Database;

/// Pool of variable names used by generated clauses.
const VARS: [&str; 4] = ["X", "Y", "Z", "W"];

/// One generated body literal.
#[derive(Clone, Debug)]
enum LitSpec {
    /// Positive atom on a predicate of the given level (0 = input).
    Pos {
        level: usize,
        pred: usize,
        vars: Vec<usize>,
    },
    /// Negated atom on a strictly lower level (vars forced to bound ones).
    Neg {
        level: usize,
        pred: usize,
        vars: Vec<usize>,
    },
    /// Choice-free ID-literal on a strictly lower level: grouped by the
    /// first column, a *fresh* variable in the non-grouping column, and a
    /// constant tid — exactly the taint analysis's base case.
    IdFresh {
        level: usize,
        pred: usize,
        var: usize,
    },
}

/// One clause for a level-`level` head predicate.
#[derive(Clone, Debug)]
struct ClauseSpec {
    head_pred: usize,
    head_vars: Vec<usize>,
    body: Vec<LitSpec>,
}

#[derive(Clone, Debug)]
struct ProgramSpec {
    /// clauses[level-1] = clauses whose head lives at that level (1 or 2).
    clauses: Vec<Vec<ClauseSpec>>,
    /// Facts for the two input predicates over a 3-symbol domain.
    facts: Vec<(usize, usize, usize)>,
}

fn pred_name(level: usize, pred: usize) -> String {
    format!("l{level}p{pred}")
}

fn arb_lit(level: usize) -> impl Strategy<Value = LitSpec> {
    let pos = (
        0..level + 1,
        0usize..2,
        proptest::collection::vec(0usize..4, 2),
    )
        .prop_map(|(l, p, v)| LitSpec::Pos {
            level: l,
            pred: p,
            vars: v,
        });
    let neg =
        (0..level, 0usize..2, proptest::collection::vec(0usize..4, 2)).prop_map(|(l, p, v)| {
            LitSpec::Neg {
                level: l,
                pred: p,
                vars: v,
            }
        });
    let id = (0..level, 0usize..2, 0usize..4).prop_map(|(l, p, v)| LitSpec::IdFresh {
        level: l,
        pred: p,
        var: v,
    });
    prop_oneof![3 => pos, 1 => neg, 2 => id]
}

fn arb_clause(level: usize) -> impl Strategy<Value = ClauseSpec> {
    (
        0usize..2,
        proptest::collection::vec(0usize..4, 2),
        proptest::collection::vec(arb_lit(level), 1..4),
    )
        .prop_map(move |(head_pred, head_vars, body)| ClauseSpec {
            head_pred,
            head_vars,
            body,
        })
}

fn arb_program() -> impl Strategy<Value = ProgramSpec> {
    (
        proptest::collection::vec(arb_clause(1), 1..4),
        proptest::collection::vec(arb_clause(2), 1..4),
        proptest::collection::vec((0usize..2, 0usize..3, 0usize..3), 0..8),
    )
        .prop_map(|(l1, l2, facts)| ProgramSpec {
            clauses: vec![l1, l2],
            facts,
        })
}

/// Render the spec to source, repairing safety exactly as the general
/// random-program harness does, but giving every ID-literal a fresh
/// non-grouping variable so each occurrence is choice-free.
fn render(spec: &ProgramSpec) -> String {
    let mut src = String::new();
    let mut fresh = 0usize;
    for (li, level_clauses) in spec.clauses.iter().enumerate() {
        let level = li + 1;
        for c in level_clauses {
            let mut bound: Vec<usize> = c
                .body
                .iter()
                .filter_map(|l| match l {
                    LitSpec::Pos { vars, .. } => Some(vars.clone()),
                    _ => None,
                })
                .flatten()
                .collect();
            bound.sort_unstable();
            bound.dedup();
            let mut body_parts: Vec<String> = Vec::new();
            if bound.is_empty() {
                body_parts.push(format!("{}(X, Y)", pred_name(0, 0)));
                bound = vec![0, 1];
            }
            let fix = |v: usize| -> usize {
                if bound.contains(&v) {
                    v
                } else {
                    bound[v % bound.len()]
                }
            };
            for l in &c.body {
                match l {
                    LitSpec::Pos { level, pred, vars } => {
                        body_parts.push(format!(
                            "{}({}, {})",
                            pred_name(*level, *pred),
                            VARS[vars[0]],
                            VARS[vars[1]]
                        ));
                    }
                    LitSpec::Neg { level, pred, vars } => {
                        body_parts.push(format!(
                            "not {}({}, {})",
                            pred_name(*level, *pred),
                            VARS[fix(vars[0])],
                            VARS[fix(vars[1])]
                        ));
                    }
                    LitSpec::IdFresh { level, pred, var } => {
                        fresh += 1;
                        body_parts.push(format!(
                            "{}[1]({}, F{fresh}, 0)",
                            pred_name(*level, *pred),
                            VARS[fix(*var)],
                        ));
                    }
                }
            }
            let head = format!(
                "{}({}, {})",
                pred_name(level, c.head_pred),
                VARS[fix(c.head_vars[0])],
                VARS[fix(c.head_vars[1])]
            );
            src.push_str(&format!("{head} :- {}.\n", body_parts.join(", ")));
        }
    }
    src
}

fn build(spec: &ProgramSpec) -> (ValidatedProgram, Database) {
    let src = render(spec);
    let interner = Arc::new(Interner::new());
    let program = ValidatedProgram::parse(&src, Arc::clone(&interner))
        .unwrap_or_else(|e| panic!("generated program failed to validate: {e}\n{src}"));
    let mut db = Database::with_interner(interner);
    for p in 0..2 {
        db.declare(&pred_name(0, p), idlog_core::RelType::elementary(2))
            .unwrap();
    }
    for &(p, a, b) in &spec.facts {
        db.insert_syms(&pred_name(0, p), &[&format!("c{a}"), &format!("c{b}")])
            .unwrap();
    }
    (program, db)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn certified_fast_path_matches_full_enumeration(spec in arb_program(), seed in any::<u64>()) {
        let (program, db) = build(&spec);
        let interner = Arc::clone(program.interner());
        let output = pred_name(2, spec.clauses[1][0].head_pred);
        let query = Query::new(program, &output).unwrap();
        prop_assert!(
            query.certified_deterministic(),
            "choice-free occurrences must certify\n{}",
            render(&spec)
        );

        let budget = EnumBudget { max_models: 50_000, max_answers: 50_000 };
        let slow = query
            .session(&db)
            .options(EvalOptions::serial().budget(budget).det_fastpath(false))
            .all_answers()
            .unwrap();
        prop_assume!(slow.complete()); // skip the rare factorial blowups
        prop_assert_eq!(
            slow.len(), 1,
            "a certified query has a single answer over all ID-functions\n{}",
            render(&spec)
        );

        for threads in [1usize, 2, 8] {
            let fast = query
                .session(&db)
                .options(EvalOptions::new().threads(threads).budget(budget))
                .all_answers()
                .unwrap();
            prop_assert_eq!(fast.models_explored(), 1, "fast path must not enumerate");
            prop_assert!(fast.complete());
            prop_assert_eq!(
                fast.to_sorted_strings(&interner),
                slow.to_sorted_strings(&interner),
                "fast path diverged at {} threads\n{}",
                threads,
                render(&spec)
            );
        }

        // Every seeded oracle must land on the certified answer.
        let result = query
            .session(&db)
            .options(EvalOptions::new())
            .run_with(&mut SeededOracle::new(seed))
            .unwrap();
        let tuples: Vec<_> = result.relation.iter().cloned().collect();
        prop_assert!(
            slow.contains_answer(&tuples),
            "seeded answer differs from the certified one\n{}",
            render(&spec)
        );
    }
}
