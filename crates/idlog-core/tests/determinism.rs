//! Reproducibility suite.
//!
//! The engine promises bit-for-bit reproducibility along two axes:
//!
//! 1. **Run-to-run**: the same program, database, and oracle produce the
//!    same relations and the same [`EvalStats`] every time — the oracle is
//!    consulted in sorted (name, grouping) order and delta rounds execute a
//!    deterministic (plan, step) work list.
//! 2. **Across thread counts**: `EvalOptions::threads` changes scheduling
//!    only. Work items merge at the round barrier in work-item order, so
//!    relations, statistics, *and* profiles (wall time excepted) are
//!    identical for any thread count.
//! 3. **Across storage backends**: `EvalOptions::backend` changes physical
//!    layout only. Every statistic is a function of relation *contents*
//!    (sets), never of scan order, so the hash and columnar backends
//!    produce the same relations and the same [`EvalStats`].

use std::sync::Arc;

use idlog_core::tid::TidOracle;
use idlog_core::{
    enumerate_with_options, evaluate_with_options, BackendKind, CanonicalOracle, EnumBudget,
    EvalOptions, EvalOutput, Interner, SeededOracle, Strategy, ValidatedProgram,
};
use idlog_storage::{make_id_relation, Database};

/// Both storage backends; determinism suites sweep this axis.
const BACKENDS: [BackendKind; 2] = [BackendKind::Hash, BackendKind::Columnar];

fn setup(src: &str, facts: &[(&str, &[&str])]) -> (ValidatedProgram, Database) {
    let interner = Arc::new(Interner::new());
    let program = ValidatedProgram::parse(src, Arc::clone(&interner)).unwrap();
    let mut db = Database::with_interner(interner);
    for (pred, cols) in facts {
        db.insert_syms(pred, cols).unwrap();
    }
    (program, db)
}

/// A two-layer tree: root → 16 middle nodes → 16 leaves each. Transitive
/// closure runs few rounds, but the deltas (272, then 256 tuples) are large
/// enough to cross the engine's parallel-round threshold and shard.
fn two_layer_tree() -> (ValidatedProgram, Database) {
    let interner = Arc::new(Interner::new());
    let program = ValidatedProgram::parse(
        "tc(X, Y) :- e(X, Y). tc(X, Y) :- e(X, Z), tc(Z, Y).",
        Arc::clone(&interner),
    )
    .unwrap();
    let mut db = Database::with_interner(interner);
    for m in 0..16 {
        db.insert_syms("e", &["root", &format!("m{m}")]).unwrap();
        for l in 0..16 {
            db.insert_syms("e", &[&format!("m{m}"), &format!("l{m}_{l}")])
                .unwrap();
        }
    }
    (program, db)
}

fn assert_same_output(a: &EvalOutput, b: &EvalOutput, rels: &[&str], what: &str) {
    assert_eq!(a.stats(), b.stats(), "stats differ: {what}");
    for name in rels {
        match (a.relation(name), b.relation(name)) {
            (Some(x), Some(y)) => assert!(x.set_eq(y), "relation {name} differs: {what}"),
            (None, None) => {}
            _ => panic!("presence of {name} differs: {what}"),
        }
    }
}

/// A stratum that reads several ID-relations: before the ordering fix the
/// oracle was consulted in hash order, so any call-order-sensitive oracle
/// produced different perfect models run-to-run.
const MULTI_ID_SRC: &str = "
    first_a(X, T) :- a[1](X, Y, T).
    first_b(X, T) :- b[1](X, Y, T).
    first_c(X, T) :- c[1](X, Y, T).
    agree(X) :- first_a(X, T), first_b(X, T), first_c(X, T).
";

const MULTI_ID_FACTS: &[(&str, &[&str])] = &[
    ("a", &["p", "u"]),
    ("a", &["p", "v"]),
    ("a", &["q", "u"]),
    ("b", &["p", "u"]),
    ("b", &["p", "w"]),
    ("b", &["q", "u"]),
    ("c", &["p", "u"]),
    ("c", &["p", "v"]),
    ("c", &["q", "w"]),
];

#[test]
fn seeded_runs_are_reproducible() {
    for seed in [0u64, 7, 0xDEAD_BEEF] {
        let (program, db) = setup(MULTI_ID_SRC, MULTI_ID_FACTS);
        let once = evaluate_with_options(
            &program,
            &db,
            &mut SeededOracle::new(seed),
            &EvalOptions::new(),
        )
        .unwrap();
        let (program2, db2) = setup(MULTI_ID_SRC, MULTI_ID_FACTS);
        let twice = evaluate_with_options(
            &program2,
            &db2,
            &mut SeededOracle::new(seed),
            &EvalOptions::new(),
        )
        .unwrap();
        // Fresh interners on both sides: reproducibility may not lean on
        // interning order, only on names.
        let render = |out: &EvalOutput, rel: &str| -> Vec<String> {
            out.relation(rel)
                .map(|r| {
                    r.sorted_canonical(out.interner())
                        .iter()
                        .map(|t| t.display(out.interner()).to_string())
                        .collect()
                })
                .unwrap_or_default()
        };
        for rel in ["first_a", "first_b", "first_c", "agree"] {
            assert_eq!(
                render(&once, rel),
                render(&twice, rel),
                "seed {seed}: relation {rel} not reproducible"
            );
        }
        assert_eq!(once.stats(), twice.stats(), "seed {seed}: stats differ");
    }
}

#[test]
fn seeded_oracle_is_call_order_independent() {
    let (_, db) = setup(MULTI_ID_SRC, MULTI_ID_FACTS);
    let interner = Arc::clone(db.interner());
    let a = db.relation("a").unwrap();
    let b = db.relation("b").unwrap();
    let sym_a = interner.get("a").unwrap();
    let sym_b = interner.get("b").unwrap();

    // Consult a then b…
    let mut o1 = SeededOracle::new(42);
    let a_first = o1.assign(sym_a, &[0], a, &interner);
    let b_second = o1.assign(sym_b, &[0], b, &interner);
    // …and b then a: per-(seed, name, grouping) streams must not shift.
    let mut o2 = SeededOracle::new(42);
    let b_first = o2.assign(sym_b, &[0], b, &interner);
    let a_second = o2.assign(sym_a, &[0], a, &interner);

    assert!(
        make_id_relation(a, &a_first)
            .unwrap()
            .set_eq(&make_id_relation(a, &a_second).unwrap()),
        "assignment for `a` depends on consultation order"
    );
    assert!(
        make_id_relation(b, &b_first)
            .unwrap()
            .set_eq(&make_id_relation(b, &b_second).unwrap()),
        "assignment for `b` depends on consultation order"
    );
}

#[test]
fn thread_count_changes_nothing_on_recursion() {
    // Deltas of 272 and 256 tuples exceed the parallel-round threshold, so
    // the scoped-pool path really runs (sharded) at 2 and 8 threads.
    let (program, db) = two_layer_tree();
    for backend in BACKENDS {
        let baseline = evaluate_with_options(
            &program,
            &db,
            &mut CanonicalOracle,
            &EvalOptions::serial().backend(backend),
        )
        .unwrap();
        // 272 edges + 256 root→leaf paths.
        assert_eq!(
            baseline.relation("tc").unwrap().len(),
            528,
            "fixture sanity"
        );
        for threads in [2usize, 8] {
            let par = evaluate_with_options(
                &program,
                &db,
                &mut CanonicalOracle,
                &EvalOptions::new().threads(threads).backend(backend),
            )
            .unwrap();
            assert_same_output(
                &baseline,
                &par,
                &["tc"],
                &format!("{threads} threads, {backend} backend"),
            );
        }
    }
}

#[test]
fn thread_count_changes_nothing_on_multi_rule_strata() {
    // Several rules per stratum + negation + ID-literals: round 0 fans out
    // across plans, delta rounds across (plan, step) items.
    let src = "
        reach(X) :- start(X).
        reach(Y) :- reach(X), e(X, Y).
        alt(Y) :- start(Y).
        alt(Y) :- alt(X), e(X, Y).
        dead(X) :- node(X), not reach(X).
        pick(X) :- node[](X, 0).
    ";
    let facts: &[(&str, &[&str])] = &[
        ("start", &["a"]),
        ("node", &["a"]),
        ("node", &["b"]),
        ("node", &["c"]),
        ("node", &["d"]),
        ("e", &["a", "b"]),
        ("e", &["b", "c"]),
        ("e", &["c", "a"]),
    ];
    let rels = ["reach", "alt", "dead", "pick"];
    for strategy in [Strategy::SemiNaive, Strategy::Naive] {
        for backend in BACKENDS {
            let (program, db) = setup(src, facts);
            let baseline = evaluate_with_options(
                &program,
                &db,
                &mut SeededOracle::new(3),
                &EvalOptions::serial().strategy(strategy).backend(backend),
            )
            .unwrap();
            for threads in [2usize, 8] {
                let par = evaluate_with_options(
                    &program,
                    &db,
                    &mut SeededOracle::new(3),
                    &EvalOptions::new()
                        .threads(threads)
                        .strategy(strategy)
                        .backend(backend),
                )
                .unwrap();
                assert_same_output(
                    &baseline,
                    &par,
                    &rels,
                    &format!("{threads} threads, {strategy:?}, {backend} backend"),
                );
            }
        }
    }
}

#[test]
fn enumeration_is_identical_across_thread_counts() {
    let (program, db) = setup(
        "sex_guess(X, male) :- person(X).
         sex_guess(X, female) :- person(X).
         man(X) :- sex_guess[1](X, male, 1).",
        &[("person", &["a"]), ("person", &["b"]), ("person", &["c"])],
    );
    let budget = EnumBudget::default();
    let serial =
        enumerate_with_options(&program, &db, "man", &EvalOptions::serial().budget(budget))
            .unwrap();
    for backend in BACKENDS {
        for threads in [1usize, 2, 8] {
            let par = enumerate_with_options(
                &program,
                &db,
                "man",
                &EvalOptions::new()
                    .threads(threads)
                    .budget(budget)
                    .backend(backend),
            )
            .unwrap();
            assert!(
                serial.same_answers(&par, program.interner()),
                "answer set differs at {threads} threads on the {backend} backend"
            );
            assert_eq!(serial.models_explored(), par.models_explored());
        }
    }
}

#[test]
fn backends_agree_on_relations_and_stats() {
    // The third reproducibility axis: hash and columnar storage hold the
    // same sets, so every run produces the same relations and EvalStats —
    // at every thread count. (idlog-suite asserts the same over the
    // `programs/*.idl` corpus.)
    type Fixture = fn() -> (ValidatedProgram, Database);
    let cases: [(&str, Fixture, &[&str]); 2] = [
        ("two_layer_tree", two_layer_tree, &["tc"]),
        (
            "multi_id",
            || setup(MULTI_ID_SRC, MULTI_ID_FACTS),
            &["first_a", "first_b", "first_c", "agree"],
        ),
    ];
    for (name, fixture, rels) in cases {
        let (program, db) = fixture();
        let hash = evaluate_with_options(
            &program,
            &db,
            &mut SeededOracle::new(11),
            &EvalOptions::serial().backend(BackendKind::Hash),
        )
        .unwrap();
        for threads in [1usize, 2, 4] {
            let columnar = evaluate_with_options(
                &program,
                &db,
                &mut SeededOracle::new(11),
                &EvalOptions::new()
                    .threads(threads)
                    .backend(BackendKind::Columnar),
            )
            .unwrap();
            assert_same_output(
                &hash,
                &columnar,
                rels,
                &format!("{name}: hash/serial vs columnar/{threads} threads"),
            );
        }
    }
}

#[test]
fn profile_is_identical_across_thread_counts() {
    // Deltas large enough that the sharded parallel path actually runs;
    // the profile (JSON and table, wall time excluded) must still be
    // byte-identical at every thread count.
    let (program, db) = two_layer_tree();
    let run = |threads: usize| {
        evaluate_with_options(
            &program,
            &db,
            &mut CanonicalOracle,
            &EvalOptions::new().threads(threads).profile(true),
        )
        .unwrap()
    };
    let baseline = run(1);
    let base_profile = baseline.profile().expect("profiling enabled");
    let base_json = base_profile.to_json(false);
    let base_table = base_profile.render_table(false);
    assert!(base_json.contains("idlog-profile/1"), "{base_json}");
    assert_eq!(base_profile.totals, baseline.stats());
    for threads in [2usize, 8] {
        let par = run(threads);
        let profile = par.profile().expect("profiling enabled");
        assert_eq!(
            profile.to_json(false),
            base_json,
            "profile JSON differs at {threads} threads"
        );
        assert_eq!(
            profile.render_table(false),
            base_table,
            "profile table differs at {threads} threads"
        );
        // Shard counts are part of the profile and depend only on delta
        // sizes, so the parallel runs really sharded *and* still agreed.
        assert!(
            profile.per_rule_totals().iter().any(|t| t.shards > 1),
            "fixture did not exercise sharding"
        );
    }
}

#[test]
fn profiling_does_not_change_results() {
    let (program, db) = two_layer_tree();
    let plain =
        evaluate_with_options(&program, &db, &mut CanonicalOracle, &EvalOptions::new()).unwrap();
    let profiled = evaluate_with_options(
        &program,
        &db,
        &mut CanonicalOracle,
        &EvalOptions::new().profile(true),
    )
    .unwrap();
    assert!(plain.profile().is_none());
    assert_same_output(&plain, &profiled, &["tc"], "profiling on vs off");
}

/// A program whose round-0 delta is ~300 tuples per rule — enough to cross
/// the parallel-round threshold and shard — and whose `plus` instances
/// overflow for some pairs. The overflow error itself must be
/// deterministic: parallel rounds report the first failing work item in
/// work-item order, so every thread count sees the serial path's error.
fn overflow_fixture() -> (idlog_core::Query, Database) {
    let src = "sum(M) :- a(X), b(Y), plus(X, Y, M).\n\
               sum(M) :- b(Y), a(X), plus(X, Y, M).";
    let q = idlog_core::Query::parse(src, "sum").unwrap();
    let mut db = q.new_database();
    let mut facts = String::from("b(9223372036854775707).\n");
    for i in 0..300 {
        facts.push_str(&format!("a({i}).\n"));
    }
    idlog_core::load_facts(&facts, &mut db).unwrap();
    (q, db)
}

#[test]
fn builtin_overflow_error_is_identical_across_thread_counts() {
    let (q, db) = overflow_fixture();
    let serial = q.session(&db).threads(1).run().unwrap_err();
    assert_eq!(
        serial,
        idlog_core::CoreError::Eval {
            message: "arithmetic overflow".into()
        }
    );
    for backend in BACKENDS {
        for threads in [2usize, 8] {
            let par = q
                .session(&db)
                .threads(threads)
                .backend(backend)
                .run()
                .unwrap_err();
            assert_eq!(
                serial, par,
                "overflow error differs at {threads} threads on {backend}"
            );
        }
    }
    // Run-to-run too.
    assert_eq!(serial, q.session(&db).threads(8).run().unwrap_err());
}
