//! Integration tests for the resource-governance layer: limit trips and
//! cancellation return structured errors carrying the partial result, and
//! the partial result is byte-identical at any thread count because limits
//! are decided at deterministic round barriers.

use std::time::Duration;

use idlog_core::{BackendKind, CancelToken, EvalError, LimitKind, Limits, Query};

/// Both storage backends; limit trips must be identical across them.
const BACKENDS: [BackendKind; 2] = [BackendKind::Hash, BackendKind::Columnar];

/// A program whose fixpoint diverges: `count` grows by one every round,
/// forever. Theorem 3 of the paper says we cannot detect this statically —
/// the governor is the runtime answer.
const DIVERGE: &str = "count(0). count(M) :- count(N), plus(N, 1, M).";

fn rounds_limit(n: u64) -> Limits {
    Limits {
        max_rounds: Some(n),
        ..Limits::none()
    }
}

#[test]
fn round_limit_returns_partial_result_identically_at_any_thread_count() {
    let q = Query::parse(DIVERGE, "count").unwrap();
    let db = q.new_database();
    let mut snapshots = Vec::new();
    for backend in BACKENDS {
        for threads in [1usize, 2, 8] {
            let err = q
                .session(&db)
                .threads(threads)
                .backend(backend)
                .limits(rounds_limit(10))
                .try_run()
                .unwrap_err();
            let EvalError::Limit { limit, partial } = err else {
                panic!("expected Limit at {threads} threads");
            };
            assert_eq!(limit, LimitKind::Rounds);
            let rel = partial.relation("count").expect("partial carries output");
            let tuples: Vec<String> = rel
                .sorted_canonical(q.interner())
                .iter()
                .map(|t| t.display(q.interner()).to_string())
                .collect();
            assert!(!tuples.is_empty(), "partial result must not be empty");
            snapshots.push((tuples, partial.stats()));
        }
    }
    // Same facts, same counters, regardless of parallelism or storage.
    for (i, snap) in snapshots.iter().enumerate().skip(1) {
        assert_eq!(&snapshots[0], snap, "snapshot {i} diverged");
    }
    assert_eq!(
        snapshots[0].1.iterations, 10,
        "tripped at the round barrier"
    );
}

#[test]
fn tuple_limit_trips_deterministically() {
    let q = Query::parse(DIVERGE, "count").unwrap();
    let db = q.new_database();
    let mut snapshots = Vec::new();
    for backend in BACKENDS {
        for threads in [1usize, 2, 8] {
            let err = q
                .session(&db)
                .threads(threads)
                .backend(backend)
                .limits(Limits {
                    max_tuples: Some(7),
                    ..Limits::none()
                })
                .try_run()
                .unwrap_err();
            let EvalError::Limit { limit, partial } = err else {
                panic!("expected Limit at {threads} threads");
            };
            assert_eq!(limit, LimitKind::Tuples);
            let rel = partial.relation("count").expect("partial carries output");
            snapshots.push((rel.len(), partial.stats()));
        }
    }
    for (i, snap) in snapshots.iter().enumerate().skip(1) {
        assert_eq!(&snapshots[0], snap, "snapshot {i} diverged");
    }
    assert!(
        snapshots[0].1.inserted > 7,
        "tripped after crossing the bound"
    );
}

#[test]
fn byte_limit_trips_on_divergence() {
    let q = Query::parse(DIVERGE, "count").unwrap();
    let db = q.new_database();
    let err = q
        .session(&db)
        .limits(Limits {
            max_bytes: Some(512),
            ..Limits::none()
        })
        .try_run()
        .unwrap_err();
    let EvalError::Limit { limit, .. } = err else {
        panic!("expected Limit");
    };
    assert_eq!(limit, LimitKind::Bytes);
}

/// The byte estimate is a pure function of (len, arity, sorts) — no hashes,
/// no capacities, no backend internals — so a symbol-heavy diverging
/// program trips `max_bytes` at the *same round* for every thread count and
/// every storage backend.
#[test]
fn byte_limit_trips_at_the_same_round_for_symbol_heavy_programs() {
    let sym_src = "seedy(alpha). seedy(beta). seedy(gamma).
                   count(X, 0) :- seedy(X).
                   count(X, M) :- count(X, N), plus(N, 1, M).";
    let limits = Limits {
        max_bytes: Some(4096),
        ..Limits::none()
    };
    let q = Query::parse(sym_src, "count").unwrap();
    let db = q.new_database();
    let mut rounds = Vec::new();
    for backend in BACKENDS {
        for threads in [1usize, 2, 8] {
            let err = q
                .session(&db)
                .threads(threads)
                .backend(backend)
                .limits(limits)
                .try_run()
                .unwrap_err();
            let EvalError::Limit { limit, partial } = err else {
                panic!("expected Limit at {threads} threads on {backend}");
            };
            assert_eq!(limit, LimitKind::Bytes);
            rounds.push((partial.stats().iterations, partial.stats()));
        }
    }
    for (i, r) in rounds.iter().enumerate().skip(1) {
        assert_eq!(&rounds[0], r, "trip round {i} diverged");
    }
    assert!(rounds[0].0 >= 2, "fixture must survive the first barrier");

    // Same shape with int keys: symbols are estimated heavier (48 vs 16
    // bytes per value), so the symbol-heavy variant must trip earlier.
    let int_src = "seedy(101). seedy(102). seedy(103).
                   count(X, 0) :- seedy(X).
                   count(X, M) :- count(X, N), plus(N, 1, M).";
    let qi = Query::parse(int_src, "count").unwrap();
    let dbi = qi.new_database();
    let err = qi.session(&dbi).limits(limits).try_run().unwrap_err();
    let EvalError::Limit { limit, partial } = err else {
        panic!("expected Limit on the int variant");
    };
    assert_eq!(limit, LimitKind::Bytes);
    assert!(
        rounds[0].0 < partial.stats().iterations,
        "symbol columns must weigh more than int columns ({} vs {})",
        rounds[0].0,
        partial.stats().iterations
    );
}

#[test]
fn zero_deadline_trips_before_any_round_completes() {
    let q = Query::parse(DIVERGE, "count").unwrap();
    let db = q.new_database();
    for threads in [1usize, 4] {
        let err = q
            .session(&db)
            .threads(threads)
            .deadline(Duration::ZERO)
            .try_run()
            .unwrap_err();
        let EvalError::Limit { limit, .. } = err else {
            panic!("expected Limit at {threads} threads");
        };
        assert_eq!(limit, LimitKind::Deadline);
    }
}

#[test]
fn short_deadline_stops_a_diverging_run_promptly() {
    let q = Query::parse(DIVERGE, "count").unwrap();
    let db = q.new_database();
    let started = std::time::Instant::now();
    let err = q
        .session(&db)
        .threads(4)
        .deadline(Duration::from_millis(50))
        .try_run()
        .unwrap_err();
    // Generous bound: the point is "seconds, not forever".
    assert!(
        started.elapsed() < Duration::from_secs(30),
        "deadline must stop a diverging run"
    );
    assert!(
        matches!(
            err,
            EvalError::Limit {
                limit: LimitKind::Deadline,
                ..
            }
        ),
        "{err:?}"
    );
}

#[test]
fn cancellation_from_another_thread_stops_the_run() {
    let q = Query::parse(DIVERGE, "count").unwrap();
    let db = q.new_database();
    let token = CancelToken::new();
    let trip = token.clone();
    let canceller = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(20));
        trip.cancel();
    });
    let err = q
        .session(&db)
        .threads(2)
        .cancel_token(token)
        .try_run()
        .unwrap_err();
    canceller.join().unwrap();
    let EvalError::Cancelled { partial } = err else {
        panic!("expected Cancelled, got {err:?}");
    };
    // Partial state is coherent (complete rounds only) even if empty.
    let _ = partial.relation("count");
}

#[test]
fn generous_limits_do_not_perturb_a_terminating_run() {
    let src = "tc(X, Y) :- e(X, Y). tc(X, Y) :- e(X, Z), tc(Z, Y).";
    let q = Query::parse(src, "tc").unwrap();
    let mut db = q.new_database();
    let chain: String = (0..20).map(|i| format!("e({i}, {}).\n", i + 1)).collect();
    idlog_core::load_facts(&chain, &mut db).unwrap();

    let plain = q.session(&db).run().unwrap();
    let governed = q
        .session(&db)
        .limits(Limits {
            deadline: Some(Duration::from_secs(120)),
            max_rounds: Some(100_000),
            max_tuples: Some(100_000_000),
            max_bytes: Some(1 << 32),
        })
        .try_run()
        .unwrap();
    assert!(plain.relation.set_eq(&governed.relation));
    assert_eq!(plain.stats, governed.stats);
}

#[test]
fn limits_compose_first_barrier_trip_wins() {
    // Both ceilings are crossable; rounds trips first because with one new
    // tuple per round the 3-round barrier precedes the 100-tuple one.
    let q = Query::parse(DIVERGE, "count").unwrap();
    let db = q.new_database();
    let err = q
        .session(&db)
        .limits(Limits {
            max_rounds: Some(3),
            max_tuples: Some(100),
            ..Limits::none()
        })
        .try_run()
        .unwrap_err();
    assert!(
        matches!(
            err,
            EvalError::Limit {
                limit: LimitKind::Rounds,
                ..
            }
        ),
        "{err:?}"
    );
}
