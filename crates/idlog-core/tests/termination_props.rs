//! Randomized soundness harness for the termination certificate.
//!
//! Generates random *choice-free* programs over a small predicate pool with
//! same-level recursion and arithmetic builtins (`succ`, `plus`, `<`) —
//! exactly the shapes the argument-flow analysis classifies — then checks:
//!
//! 1. a certificate that says *bounded* is honest: the actual semi-naive
//!    round count never exceeds `round_bound(db)`, at 1, 2, and 8 threads;
//! 2. the run under the bound is byte-identical across thread counts
//!    (stats included), so the certificate never perturbs determinism;
//! 3. a certificate that refuses a bound always carries a growth witness
//!    (these programs are never evaluated — they may actually diverge).

use std::sync::Arc;

use proptest::prelude::*;

use idlog_core::{
    analyze_termination, evaluate_with_options, CanonicalOracle, EvalOptions, Interner, Tuple,
    ValidatedProgram, Value,
};
use idlog_storage::Database;

/// Variable pool; index 4 is reserved for a builtin's fresh output.
const VARS: [&str; 5] = ["X", "Y", "Z", "W", "V"];

/// Derived predicates `p0..p3`; atom index 4 refers to the input `e`.
const DERIVED: usize = 4;

fn pred_name(p: usize) -> String {
    if p == DERIVED {
        "e".to_string()
    } else {
        format!("p{p}")
    }
}

/// An optional arithmetic literal in a clause body.
#[derive(Clone, Copy, Debug)]
enum BuiltinSpec {
    /// `succ(A, V)` — grows A by one into the fresh var V.
    Succ { input: usize },
    /// `plus(A, A, V)` — doubles A into V.
    Plus { input: usize },
    /// `A < B` — a pure test, never a generator.
    Lt { a: usize, b: usize },
}

#[derive(Clone, Debug)]
struct ClauseSpec {
    head: usize,
    head_vars: [usize; 2],
    atoms: Vec<(usize, [usize; 2])>,
    builtin: Option<BuiltinSpec>,
}

#[derive(Clone, Debug)]
struct ProgramSpec {
    clauses: Vec<ClauseSpec>,
    facts: Vec<(i64, i64)>,
}

fn arb_builtin() -> impl Strategy<Value = Option<BuiltinSpec>> {
    prop_oneof![
        2 => Just(None),
        1 => (0usize..4).prop_map(|input| Some(BuiltinSpec::Succ { input })),
        1 => (0usize..4).prop_map(|input| Some(BuiltinSpec::Plus { input })),
        1 => (0usize..4, 0usize..4).prop_map(|(a, b)| Some(BuiltinSpec::Lt { a, b })),
    ]
}

fn arb_clause() -> impl Strategy<Value = ClauseSpec> {
    (
        0usize..4,
        (0usize..5, 0usize..5),
        proptest::collection::vec((0usize..=DERIVED, (0usize..4, 0usize..4)), 1..3),
        arb_builtin(),
    )
        .prop_map(|(head, head_vars, atoms, builtin)| ClauseSpec {
            head,
            head_vars: [head_vars.0, head_vars.1],
            atoms: atoms.into_iter().map(|(p, vs)| (p, [vs.0, vs.1])).collect(),
            builtin,
        })
}

fn arb_program() -> impl Strategy<Value = ProgramSpec> {
    (
        proptest::collection::vec(arb_clause(), 1..5),
        proptest::collection::vec((0i64..5, 0i64..5), 1..6),
    )
        .prop_map(|(clauses, facts)| ProgramSpec { clauses, facts })
}

/// Render the spec to source, repairing safety: every variable a builtin
/// reads, and every head variable, is forced to one bound by a positive
/// atom — except the builtin's fresh output `V`, which may flow to the
/// head (that is the growth shape under test).
fn render(spec: &ProgramSpec) -> String {
    let mut src = String::new();
    for c in &spec.clauses {
        let mut bound: Vec<usize> = c.atoms.iter().flat_map(|(_, vs)| vs.to_vec()).collect();
        bound.sort_unstable();
        bound.dedup();
        let fix = |v: usize| bound[v % bound.len()];
        let mut parts: Vec<String> = c
            .atoms
            .iter()
            .map(|(p, vs)| format!("{}({}, {})", pred_name(*p), VARS[vs[0]], VARS[vs[1]]))
            .collect();
        let mut generated = None;
        match c.builtin {
            Some(BuiltinSpec::Succ { input }) => {
                parts.push(format!("succ({}, V)", VARS[fix(input)]));
                generated = Some(4);
            }
            Some(BuiltinSpec::Plus { input }) => {
                let a = VARS[fix(input)];
                parts.push(format!("plus({a}, {a}, V)"));
                generated = Some(4);
            }
            Some(BuiltinSpec::Lt { a, b }) => {
                parts.push(format!("{} < {}", VARS[fix(a)], VARS[fix(b)]));
            }
            None => {}
        }
        let head_var = |v: usize| {
            if v == 4 && generated == Some(4) {
                VARS[4]
            } else {
                VARS[fix(v)]
            }
        };
        src.push_str(&format!(
            "{}({}, {}) :- {}.\n",
            pred_name(c.head),
            head_var(c.head_vars[0]),
            head_var(c.head_vars[1]),
            parts.join(", ")
        ));
    }
    src
}

fn build(spec: &ProgramSpec) -> (ValidatedProgram, Database) {
    let src = render(spec);
    let interner = Arc::new(Interner::new());
    let program = ValidatedProgram::parse(&src, Arc::clone(&interner))
        .unwrap_or_else(|e| panic!("generated program failed to validate: {e}\n{src}"));
    let mut db = Database::with_interner(interner);
    db.declare(
        "e",
        idlog_core::RelType::new(vec![idlog_core::Sort::I, idlog_core::Sort::I]),
    )
    .unwrap();
    for &(a, b) in &spec.facts {
        db.insert("e", Tuple::new(vec![Value::Int(a), Value::Int(b)]))
            .unwrap();
    }
    (program, db)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// A bounded certificate over-approximates the real round count, and
    /// the certified ceiling never perturbs thread-count determinism. An
    /// unbounded verdict always names a growing cycle.
    #[test]
    fn certified_bounds_cover_actual_rounds(spec in arb_program()) {
        let (program, db) = build(&spec);
        let cert = analyze_termination(program.ast());
        if !cert.bounded() {
            // Positive choice-free programs leave only one refusal reason.
            prop_assert!(
                cert.growth_witness().is_some(),
                "unbounded without witness\n{}",
                render(&spec)
            );
            prop_assert!(cert.round_bound(&db).is_none());
            return Ok(()); // evaluating could genuinely diverge
        }
        let bound = cert.round_bound(&db);
        prop_assert!(bound.is_some(), "bounded cert without a bound\n{}", render(&spec));
        let bound = bound.unwrap();

        let mut outs = Vec::new();
        for threads in [1usize, 2, 8] {
            // The certified ceiling: honest evaluations must never trip it.
            let options = EvalOptions::new().threads(threads).max_rounds(bound);
            let out = evaluate_with_options(&program, &db, &mut CanonicalOracle, &options)
                .unwrap_or_else(|e| panic!(
                    "certified program tripped its own bound {bound}: {e}\n{}",
                    render(&spec)
                ));
            prop_assert!(
                out.stats().iterations <= bound,
                "rounds {} > certified bound {bound}\n{}",
                out.stats().iterations,
                render(&spec)
            );
            outs.push(out);
        }
        for pair in outs.windows(2) {
            prop_assert_eq!(
                pair[0].stats(),
                pair[1].stats(),
                "stats differ across thread counts\n{}",
                render(&spec)
            );
            for p in 0..4 {
                let name = pred_name(p);
                match (pair[0].relation(&name), pair[1].relation(&name)) {
                    (Some(a), Some(b)) => prop_assert!(a.set_eq(b), "{name} differs"),
                    (None, None) => {}
                    _ => prop_assert!(false, "presence mismatch on {name}"),
                }
            }
        }
    }
}
