//! Engine-focused integration cases: shapes the unit tests don't cover —
//! mutual recursion, repeated variables and constants in probes, multiple
//! ID-literals per clause, deep strata, self-joins.

use std::sync::Arc;

use idlog_core::{Interner, Query, Tuple, Value};
use idlog_storage::Database;

fn db_from(interner: &Arc<Interner>, facts: &[(&str, &[&str])]) -> Database {
    let mut db = Database::with_interner(Arc::clone(interner));
    for (pred, cols) in facts {
        db.insert_syms(pred, cols).unwrap();
    }
    db
}

fn rows(q: &Query, rel: &idlog_core::Relation) -> Vec<String> {
    let interner = q.interner();
    let mut v: Vec<String> = rel
        .sorted_canonical(interner)
        .iter()
        .map(|t| t.display(interner).to_string())
        .collect();
    v.sort();
    v
}

/// Mutual recursion across two predicates in one stratum.
#[test]
fn mutual_recursion_even_odd_paths() {
    let src = "
        even_path(X, X) :- node(X).
        odd_path(X, Y) :- even_path(X, Z), e(Z, Y).
        even_path(X, Y) :- odd_path(X, Z), e(Z, Y).
    ";
    let q = Query::parse(src, "even_path").unwrap();
    let db = db_from(
        q.interner(),
        &[
            ("node", &["a"]),
            ("node", &["b"]),
            ("node", &["c"]),
            ("e", &["a", "b"]),
            ("e", &["b", "c"]),
            ("e", &["c", "a"]),
        ],
    );
    let rel = q.session(&db).run().unwrap().relation;
    // 3-cycle: even-length paths from X land on the nodes at even distance;
    // gcd(2,3)=1 so every node reaches every node (incl. itself) eventually.
    assert_eq!(rel.len(), 9);
}

/// Repeated variable inside one atom: the engine's same-step check path.
#[test]
fn self_loop_detection() {
    let q = Query::parse("loop(X) :- e(X, X).", "loop").unwrap();
    let db = db_from(
        q.interner(),
        &[
            ("e", &["a", "a"]),
            ("e", &["a", "b"]),
            ("e", &["b", "b"]),
            ("e", &["b", "c"]),
        ],
    );
    let rel = q.session(&db).run().unwrap().relation;
    assert_eq!(rows(&q, &rel), ["(a)", "(b)"]);
}

/// Constants in probe positions combined with repeated head variables.
#[test]
fn constant_probes_and_self_join() {
    let src = "peer(X, Y) :- e(X, hub), e(Y, hub), X != Y.";
    let q = Query::parse(src, "peer").unwrap();
    let db = db_from(
        q.interner(),
        &[
            ("e", &["a", "hub"]),
            ("e", &["b", "hub"]),
            ("e", &["c", "other"]),
        ],
    );
    let rel = q.session(&db).run().unwrap().relation;
    assert_eq!(rows(&q, &rel), ["(a, b)", "(b, a)"]);
}

/// Two ID-literals in one clause: both choice points resolved per model.
#[test]
fn two_id_literals_in_one_clause() {
    let src = "pair(X, Y) :- left[](X, 0), right[](Y, 0).";
    let q = Query::parse(src, "pair").unwrap();
    let db = db_from(
        q.interner(),
        &[
            ("left", &["l1"]),
            ("left", &["l2"]),
            ("right", &["r1"]),
            ("right", &["r2"]),
        ],
    );
    let answers = q.session(&db).all_answers().unwrap();
    assert!(answers.complete());
    // 2 × 2 = 4 distinct single-pair answers.
    assert_eq!(answers.len(), 4);
    for rel in answers.iter() {
        assert_eq!(rel.len(), 1);
    }
}

/// Same base predicate read under two different groupings: independent
/// ID-relations.
#[test]
fn two_groupings_of_one_predicate() {
    let src = "
        by_dept(N) :- emp[2](N, D, 0).
        by_name(D) :- emp[1](N, D, 0).
        both(N, D) :- by_dept(N), by_name(D).
    ";
    let q = Query::parse(src, "both").unwrap();
    let db = db_from(
        q.interner(),
        &[
            ("emp", &["a", "x"]),
            ("emp", &["a", "y"]),
            ("emp", &["b", "x"]),
        ],
    );
    let answers = q.session(&db).all_answers().unwrap();
    assert!(answers.complete());
    assert!(answers.len() > 1, "the two groupings choose independently");
    // Every answer is a cross product of the two independent selections.
    for rel in answers.iter() {
        assert!(!rel.is_empty());
    }
}

/// A five-stratum alternation of negation and ID-literals.
#[test]
fn deep_strata_chain() {
    let src = "
        l1(X) :- base(X).
        l2(X) :- l1(X), not skip(X).
        l3(X) :- l2[](X, 0).
        l4(X) :- l2(X), not l3(X).
        l5(X) :- l4[](X, T), T <= 0.
    ";
    let q = Query::parse(src, "l5").unwrap();
    let db = db_from(
        q.interner(),
        &[
            ("base", &["a"]),
            ("base", &["b"]),
            ("base", &["c"]),
            ("skip", &["c"]),
        ],
    );
    let answers = q.session(&db).all_answers().unwrap();
    assert!(answers.complete());
    // l2 = {a,b}; l3 picks one; l4 = the other; l5 = that one.
    assert_eq!(answers.len(), 2);
    for rel in answers.iter() {
        assert_eq!(rel.len(), 1);
    }
}

/// Facts with integer constants interact with comparisons.
#[test]
fn integer_facts_and_filters() {
    let src = "
        senior(N) :- level(N, L), L >= 3.
        junior(N) :- level(N, L), L < 3.
    ";
    let q = Query::parse(src, "senior").unwrap();
    let mut db = Database::with_interner(Arc::clone(q.interner()));
    for (n, l) in [("a", 1i64), ("b", 3), ("c", 5)] {
        let sym = Value::Sym(q.interner().intern(n));
        db.insert("level", Tuple::new(vec![sym, Value::Int(l)]))
            .unwrap();
    }
    let rel = q.session(&db).run().unwrap().relation;
    assert_eq!(rows(&q, &rel), ["(b)", "(c)"]);
    let j = Query::parse_with_interner(src, "junior", Arc::clone(q.interner())).unwrap();
    let rel = j.session(&db).run().unwrap().relation;
    assert_eq!(rows(&j, &rel), ["(a)"]);
}

/// Zero-ary predicates through all strata machinery.
#[test]
fn zero_ary_flags() {
    let src = "
        nonempty :- p(X).
        empty :- not nonempty.
        verdict(yes) :- nonempty.
        verdict(no) :- empty.
    ";
    let q = Query::parse(src, "verdict").unwrap();
    let db = db_from(q.interner(), &[("p", &["a"])]);
    let rel = q.session(&db).run().unwrap().relation;
    assert_eq!(rows(&q, &rel), ["(yes)"]);
    let empty_db = q.new_database();
    let rel = q.session(&empty_db).run().unwrap().relation;
    assert_eq!(rows(&q, &rel), ["(no)"]);
}

/// A wide join (five-way) exercising index reuse within one clause.
#[test]
fn five_way_join() {
    let src = "j(A, E) :- r1(A, B), r2(B, C), r3(C, D), r4(D, E), r5(E).";
    let q = Query::parse(src, "j").unwrap();
    let db = db_from(
        q.interner(),
        &[
            ("r1", &["a", "b"]),
            ("r2", &["b", "c"]),
            ("r3", &["c", "d"]),
            ("r4", &["d", "e"]),
            ("r5", &["e"]),
            ("r1", &["a2", "b2"]), // dead-end branch
            ("r2", &["b2", "c2"]),
        ],
    );
    let rel = q.session(&db).run().unwrap().relation;
    assert_eq!(rows(&q, &rel), ["(a, e)"]);
}

/// An ID-relation over an IDB predicate computed with recursion, grouped by
/// a derived column.
#[test]
fn id_relation_over_recursive_idb() {
    let src = "
        reach(X, Y) :- e(X, Y).
        reach(X, Y) :- e(X, Z), reach(Z, Y).
        spokesman(X, Y) :- reach[1](X, Y, 0).
    ";
    let q = Query::parse(src, "spokesman").unwrap();
    let db = db_from(q.interner(), &[("e", &["a", "b"]), ("e", &["b", "c"])]);
    // reach = {(a,b),(a,c),(b,c)}: groups by source a → {b,c}, b → {c}.
    let answers = q.session(&db).all_answers().unwrap();
    assert!(answers.complete());
    assert_eq!(answers.len(), 2, "two choices for a's spokesman, one for b");
    for rel in answers.iter() {
        assert_eq!(rel.len(), 2, "one spokesman per source");
    }
}
