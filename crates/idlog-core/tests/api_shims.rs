//! The deprecated entry points are shims over the `EvalOptions`/`Session`
//! API — each must produce exactly what its replacement produces.

#![allow(deprecated)]

use std::sync::Arc;

use idlog_core::enumerate::{
    enumerate_answers, enumerate_answers_parallel, enumerate_answers_with,
};
use idlog_core::{
    enumerate_with_options, evaluate, evaluate_with_config, evaluate_with_options,
    evaluate_with_strategy, CanonicalOracle, EnumBudget, EvalConfig, EvalOptions, Interner, Query,
    SeededOracle, Strategy, ValidatedProgram,
};
use idlog_storage::Database;

fn fixture() -> (ValidatedProgram, Database) {
    let interner = Arc::new(Interner::new());
    let program = ValidatedProgram::parse(
        "reach(X) :- start(X).
         reach(Y) :- reach(X), e(X, Y).
         pick(X) :- reach[](X, 0).
         far(X) :- node(X), not reach(X).",
        Arc::clone(&interner),
    )
    .unwrap();
    let mut db = Database::with_interner(interner);
    for v in ["a", "b", "c", "d"] {
        db.insert_syms("node", &[v]).unwrap();
    }
    for (x, y) in [("a", "b"), ("b", "c")] {
        db.insert_syms("e", &[x, y]).unwrap();
    }
    db.insert_syms("start", &["a"]).unwrap();
    (program, db)
}

fn same_relations(
    a: &idlog_core::EvalOutput,
    b: &idlog_core::EvalOutput,
    program: &ValidatedProgram,
) {
    for name in ["reach", "pick", "far"] {
        let (ra, rb) = (a.relation(name).unwrap(), b.relation(name).unwrap());
        assert!(ra.set_eq(rb), "relation {name} differs");
    }
    assert_eq!(a.stats(), b.stats(), "stats differ");
    let _ = program;
}

#[test]
fn evaluate_shim_matches_options() {
    let (program, db) = fixture();
    let old = evaluate(&program, &db, &mut CanonicalOracle).unwrap();
    let new = evaluate_with_options(&program, &db, &mut CanonicalOracle, &EvalOptions::default())
        .unwrap();
    same_relations(&old, &new, &program);
}

#[test]
fn evaluate_with_strategy_shim_matches_options() {
    let (program, db) = fixture();
    for strategy in [Strategy::SemiNaive, Strategy::Naive] {
        let old =
            evaluate_with_strategy(&program, &db, &mut SeededOracle::new(9), strategy).unwrap();
        let new = evaluate_with_options(
            &program,
            &db,
            &mut SeededOracle::new(9),
            &EvalOptions::new().strategy(strategy),
        )
        .unwrap();
        same_relations(&old, &new, &program);
    }
}

#[test]
fn evaluate_with_config_shim_matches_options() {
    let (program, db) = fixture();
    for threads in [1usize, 3] {
        let old = evaluate_with_config(
            &program,
            &db,
            &mut CanonicalOracle,
            Strategy::SemiNaive,
            &EvalConfig::with_threads(threads),
        )
        .unwrap();
        let new = evaluate_with_options(
            &program,
            &db,
            &mut CanonicalOracle,
            &EvalOptions::new().threads(threads),
        )
        .unwrap();
        same_relations(&old, &new, &program);
    }
}

#[test]
fn enumeration_shims_match_options() {
    let (program, db) = fixture();
    let budget = EnumBudget::default();
    let new = enumerate_with_options(&program, &db, "pick", &EvalOptions::serial().budget(budget))
        .unwrap();
    let seq = enumerate_answers(&program, &db, "pick", &budget).unwrap();
    let par = enumerate_answers_parallel(&program, &db, "pick", &budget).unwrap();
    let cfg = enumerate_answers_with(&program, &db, "pick", &budget, &EvalConfig::with_threads(2))
        .unwrap();
    for (label, old) in [("seq", &seq), ("par", &par), ("cfg", &cfg)] {
        assert!(
            new.same_answers(old, program.interner()),
            "{label} shim differs"
        );
        assert_eq!(new.models_explored(), old.models_explored(), "{label}");
        assert_eq!(new.complete(), old.complete(), "{label}");
    }
}

#[test]
fn query_shims_match_session() {
    let q = Query::parse(
        "reach(X) :- start(X).
         reach(Y) :- reach(X), e(X, Y).
         pick(X) :- reach[](X, 0).",
        "pick",
    )
    .unwrap();
    let mut db = q.new_database();
    db.insert_syms("start", &["a"]).unwrap();
    db.insert_syms("e", &["a", "b"]).unwrap();

    let session = q.session(&db).run().unwrap();
    let old_eval = q.eval(&db, &mut CanonicalOracle).unwrap();
    assert_eq!(session.relation, old_eval);
    let (rel, stats) = q.eval_with_stats(&db, &mut CanonicalOracle).unwrap();
    assert_eq!((rel, stats), (session.relation.clone(), session.stats));
    let (rel, stats) = q
        .eval_configured(&db, &mut CanonicalOracle, &EvalConfig::serial())
        .unwrap();
    assert_eq!((rel, stats), (session.relation.clone(), session.stats));

    let budget = EnumBudget::default();
    let new_all = q.session(&db).all_answers().unwrap();
    for old in [
        q.all_answers(&db, &budget).unwrap(),
        q.all_answers_parallel(&db, &budget).unwrap(),
        q.all_answers_configured(&db, &budget, &EvalConfig::with_threads(2))
            .unwrap(),
    ] {
        assert!(new_all.same_answers(&old, q.interner()));
    }
}

#[test]
fn eval_config_converts_to_options() {
    let opts: EvalOptions = EvalConfig::with_threads(7).into();
    assert_eq!(opts, EvalOptions::new().threads(7));
    assert_eq!(
        EvalConfig::serial().to_options().effective_threads(),
        1,
        "serial config resolves to one thread"
    );
}
