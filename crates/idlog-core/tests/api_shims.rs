//! The PR 3 `#[deprecated]` entry-point shims are gone; `Query::parse` →
//! [`idlog_core::Session`] with [`idlog_core::EvalOptions`] is the one
//! blessed path. This test keeps them gone:
//!
//! 1. an **absence scan** over `idlog-core/src` asserts no `#[deprecated]`
//!    attribute and no removed-shim name reappears in the public surface;
//! 2. a **blessed-path exercise** shows the supported API covers everything
//!    the shims used to do (one answer, stats, explicit options, seeded
//!    oracle, all answers).

use idlog_core::{EnumBudget, EvalOptions, Query, SeededOracle, Strategy};

/// Declarations of the deleted shims. Any of these reappearing as `pub` in
/// idlog-core source is a regression — the blessed API must not regrow them.
const REMOVED: &[&str] = &[
    "fn eval(",
    "fn eval_with_stats(",
    "fn eval_configured(",
    "fn all_answers_parallel(",
    "fn all_answers_configured(",
    "struct EvalConfig",
    "fn evaluate(",
    "fn evaluate_with_strategy(",
    "fn evaluate_with_config(",
    "fn enumerate_answers(",
    "fn enumerate_answers_parallel(",
    "fn enumerate_answers_with(",
];

fn core_src_files() -> Vec<std::path::PathBuf> {
    let src = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("src");
    let mut files = Vec::new();
    let mut stack = vec![src];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir).expect("readable src dir") {
            let path = entry.expect("dir entry").path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                files.push(path);
            }
        }
    }
    assert!(!files.is_empty(), "found no source files under src/");
    files
}

#[test]
fn no_deprecated_items_remain_in_core() {
    for path in core_src_files() {
        let text = std::fs::read_to_string(&path).expect("readable source file");
        assert!(
            !text.contains("#[deprecated"),
            "{} still carries a #[deprecated] attribute",
            path.display()
        );
        for name in REMOVED {
            for (lineno, line) in text.lines().enumerate() {
                if line.trim_start().starts_with("//") {
                    continue;
                }
                assert!(
                    !(line.contains(name) && line.contains("pub ")),
                    "{}:{}: removed shim `{name}` reappeared: {line}",
                    path.display(),
                    lineno + 1
                );
            }
        }
    }
}

#[test]
fn blessed_path_covers_the_old_shims() {
    let q = Query::parse("pick(N) :- emp[2](N, D, 0).", "pick").unwrap();
    let mut db = q.new_database();
    db.insert_syms("emp", &["a", "x"]).unwrap();
    db.insert_syms("emp", &["b", "x"]).unwrap();

    // `Query::eval` → session().run().
    let one = q.session(&db).run().unwrap();
    assert_eq!(one.relation.len(), 1);

    // `eval_with_stats` → the result carries stats.
    assert!(one.stats.inserted > 0);

    // `eval_configured` / `evaluate_with_config` → options()/threads().
    let configured = q
        .session(&db)
        .options(EvalOptions::new().strategy(Strategy::SemiNaive))
        .threads(2)
        .run()
        .unwrap();
    assert_eq!(configured.relation, one.relation);
    assert_eq!(configured.stats, one.stats);

    // `eval` with an explicit oracle → run_with().
    let mut oracle = SeededOracle::new(7);
    let seeded = q.session(&db).run_with(&mut oracle).unwrap();
    assert_eq!(seeded.relation.len(), 1);

    // `all_answers` / `all_answers_parallel` / `all_answers_configured`
    // → budget()/threads() on the same session builder.
    let all = q
        .session(&db)
        .budget(EnumBudget::default())
        .all_answers()
        .unwrap();
    assert_eq!(all.len(), 2);
    let all_parallel = q
        .session(&db)
        .budget(EnumBudget::default())
        .threads(4)
        .all_answers()
        .unwrap();
    assert!(all.same_answers(&all_parallel, q.interner()));
}
