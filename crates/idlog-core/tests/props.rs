//! Property-based tests for the engine: builtin solving against brute
//! force, semi-naive evaluation against a reference fixpoint, oracle
//! soundness, and the bounded-enumeration optimization against the full
//! walk.

use std::sync::Arc;

use proptest::prelude::*;

use idlog_core::{
    builtins::solve, enumerate_with_options, evaluate_with_options, BackendKind, CanonicalOracle,
    EnumBudget, EvalOptions, Interner, Query, SeededOracle, ValidatedProgram,
};
use idlog_parser::Builtin;
use idlog_storage::Database;

// ---------------------------------------------------------------- builtins

/// Brute-force the solution set of a builtin over a small grid.
fn brute(op: Builtin, args: &[Option<i64>], limit: i64) -> Vec<Vec<i64>> {
    let n = op.arity();
    let mut out = Vec::new();
    let mut idx = vec![0i64; n];
    loop {
        let candidate: Vec<i64> = (0..n).map(|k| args[k].unwrap_or(idx[k])).collect();
        let holds = match op {
            Builtin::Succ => candidate[1] == candidate[0] + 1,
            Builtin::Plus => candidate[0] + candidate[1] == candidate[2],
            Builtin::Minus => candidate[1] + candidate[2] == candidate[0],
            Builtin::Times => candidate[0] * candidate[1] == candidate[2],
            Builtin::Div => candidate[1] != 0 && candidate[1] * candidate[2] == candidate[0],
            Builtin::Lt => candidate[0] < candidate[1],
            Builtin::Le => candidate[0] <= candidate[1],
            Builtin::Gt => candidate[0] > candidate[1],
            Builtin::Ge => candidate[0] >= candidate[1],
            Builtin::Eq => candidate[0] == candidate[1],
            Builtin::Ne => candidate[0] != candidate[1],
        };
        if holds && candidate.iter().all(|&v| v >= 0 && v <= limit) {
            out.push(candidate);
        }
        // Odometer over the free positions only.
        let mut k = n;
        loop {
            if k == 0 {
                out.sort();
                out.dedup();
                return out;
            }
            k -= 1;
            if args[k].is_some() {
                continue;
            }
            idx[k] += 1;
            if idx[k] <= limit {
                break;
            }
            idx[k] = 0;
        }
    }
}

fn arb_mask(n: usize) -> impl Strategy<Value = Vec<Option<i64>>> {
    proptest::collection::vec(proptest::option::of(0i64..8), n..=n)
}

proptest! {
    /// Wherever `solve` succeeds, its solutions equal brute force over the
    /// grid that contains them.
    #[test]
    fn solve_matches_brute_force(
        op_idx in 0usize..11,
        mask in arb_mask(3),
    ) {
        let ops = [
            Builtin::Succ, Builtin::Plus, Builtin::Minus, Builtin::Times, Builtin::Div,
            Builtin::Lt, Builtin::Le, Builtin::Gt, Builtin::Ge, Builtin::Eq, Builtin::Ne,
        ];
        let op = ops[op_idx];
        let args: Vec<Option<i64>> = mask.into_iter().take(op.arity()).collect();
        prop_assume!(args.len() == op.arity());
        if let Ok(mut sols) = solve(op, &args) {
            sols.sort();
            sols.dedup();
            // All bound inputs are ≤ 7, so every derived value fits in
            // 0..=64 (products of two ≤7 values, sums, etc.); the brute
            // grid over the free positions covers that range.
            let expect = brute(op, &args, 64);
            prop_assert_eq!(sols, expect, "op {:?} args {:?}", op, args);
        }
    }
}

// ------------------------------------------------------------- evaluation

/// Reference reachability by plain BFS.
fn reachable(edges: &[(usize, usize)], starts: &[usize]) -> Vec<usize> {
    let mut seen: Vec<usize> = starts.to_vec();
    let mut frontier = starts.to_vec();
    while let Some(u) = frontier.pop() {
        for &(a, b) in edges {
            if a == u && !seen.contains(&b) {
                seen.push(b);
                frontier.push(b);
            }
        }
    }
    seen.sort_unstable();
    seen.dedup();
    seen
}

proptest! {
    /// Semi-naive reach = BFS reach on random graphs.
    #[test]
    fn reach_matches_bfs(
        edges in proptest::collection::vec((0usize..8, 0usize..8), 0..24),
        start in 0usize..8,
    ) {
        let q = Query::parse(
            "reach(X) :- start(X). reach(Y) :- reach(X), e(X, Y).",
            "reach",
        ).unwrap();
        let mut db = q.new_database();
        for (a, b) in &edges {
            db.insert_syms("e", &[&format!("v{a}"), &format!("v{b}")]).unwrap();
        }
        db.insert_syms("start", &[&format!("v{start}")]).unwrap();
        let rel = q.session(&db).run().unwrap().relation;
        let mut got: Vec<String> = rel
            .iter()
            .map(|t| q.interner().resolve(t[0].as_sym().unwrap()))
            .collect();
        got.sort();
        let want: Vec<String> =
            reachable(&edges, &[start]).into_iter().map(|v| format!("v{v}")).collect();
        prop_assert_eq!(got, want);
    }

    /// Per-rule profile records partition the total [`idlog_core::EvalStats`]:
    /// summing every rule's counters (plus per-round iteration counts and
    /// ID-relation materializations) reproduces the run's totals exactly.
    #[test]
    fn profile_totals_sum_to_eval_stats(
        edges in proptest::collection::vec((0usize..8, 0usize..8), 0..24),
        start in 0usize..8,
        threads in 1usize..5,
    ) {
        let interner = Arc::new(Interner::new());
        let program = ValidatedProgram::parse(
            "reach(X) :- start(X).
             reach(Y) :- reach(X), e(X, Y).
             pick(X) :- reach[](X, 0).
             far(X) :- node(X), not reach(X).",
            Arc::clone(&interner),
        ).unwrap();
        let mut db = Database::with_interner(Arc::clone(&interner));
        for v in 0..8 {
            db.insert_syms("node", &[&format!("v{v}")]).unwrap();
        }
        for (a, b) in &edges {
            db.insert_syms("e", &[&format!("v{a}"), &format!("v{b}")]).unwrap();
        }
        db.insert_syms("start", &[&format!("v{start}")]).unwrap();
        let out = evaluate_with_options(
            &program,
            &db,
            &mut CanonicalOracle,
            &EvalOptions::new().threads(threads).profile(true),
        ).unwrap();
        let stats = out.stats();
        let profile = out.profile().unwrap();
        prop_assert_eq!(profile.totals, stats);

        let mut summed = idlog_core::EvalStats::default();
        for t in profile.per_rule_totals() {
            summed.instantiations += t.stats.instantiations;
            summed.derived += t.stats.derived;
            summed.inserted += t.stats.inserted;
            summed.probes += t.stats.probes;
            summed.builtin_evals += t.stats.builtin_evals;
        }
        for stratum in &profile.strata {
            summed.iterations += stratum.rounds.len() as u64;
            summed.id_relations += stratum.id_relations.len() as u64;
        }
        prop_assert_eq!(summed, stats, "profile records do not partition the totals");
    }

    /// Stratified negation: complement = nodes − reach, on random graphs.
    #[test]
    fn negation_is_complement(
        edges in proptest::collection::vec((0usize..6, 0usize..6), 0..15),
        start in 0usize..6,
    ) {
        let q = Query::parse(
            "reach(X) :- start(X).
             reach(Y) :- reach(X), e(X, Y).
             unreach(X) :- node(X), not reach(X).",
            "unreach",
        ).unwrap();
        let mut db = q.new_database();
        for v in 0..6 {
            db.insert_syms("node", &[&format!("v{v}")]).unwrap();
        }
        for (a, b) in &edges {
            db.insert_syms("e", &[&format!("v{a}"), &format!("v{b}")]).unwrap();
        }
        db.insert_syms("start", &[&format!("v{start}")]).unwrap();
        let rel = q.session(&db).run().unwrap().relation;
        let reach = reachable(&edges, &[start]);
        prop_assert_eq!(rel.len(), 6 - reach.len());
    }

    /// Every seeded-oracle answer of a tid query appears in the enumerated
    /// answer set (oracle soundness).
    #[test]
    fn oracle_answers_are_enumerated(
        members in proptest::collection::vec((0usize..3, 0usize..4), 1..8),
        seed in any::<u64>(),
    ) {
        let q = Query::parse("pick(N) :- emp[2](N, D, 0).", "pick").unwrap();
        let mut db = q.new_database();
        for (d, m) in &members {
            db.insert_syms("emp", &[&format!("m{m}"), &format!("d{d}")]).unwrap();
        }
        let all = q.session(&db).all_answers().unwrap();
        prop_assert!(all.complete());
        let one = q.session(&db).run_with(&mut SeededOracle::new(seed)).unwrap().relation;
        let tuples: Vec<_> = one.iter().cloned().collect();
        prop_assert!(all.contains_answer(&tuples));
    }

    /// The bounded-enumeration optimization never changes the answer set:
    /// compare a tid-bounded query against the same query with the bound
    /// analysis defeated by exposing the tid and projecting afterwards.
    #[test]
    fn bounded_walk_equals_full_walk(
        members in proptest::collection::vec((0usize..2, 0usize..4), 1..7),
        k in 1i64..3,
    ) {
        let interner = Arc::new(Interner::new());
        // Bounded: tid compared against the constant k.
        let bounded = ValidatedProgram::parse(
            &format!("pick(N) :- emp[2](N, D, T), T < {k}."),
            Arc::clone(&interner),
        ).unwrap();
        // Full: the helper exposes the tid (defeating the analysis), and the
        // output projects it away — semantically the same query.
        let full = ValidatedProgram::parse(
            &format!(
                "expose(N, T) :- emp[2](N, D, T).
                 pick(N) :- expose(N, T), T < {k}."
            ),
            Arc::clone(&interner),
        ).unwrap();
        let mut db = Database::with_interner(Arc::clone(&interner));
        for (d, m) in &members {
            db.insert_syms("emp", &[&format!("m{m}"), &format!("d{d}")]).unwrap();
        }
        let budget = EnumBudget { max_models: 200_000, max_answers: 100_000 };
        let opts = EvalOptions::serial().budget(budget);
        let a = enumerate_with_options(&bounded, &db, "pick", &opts).unwrap();
        let b = enumerate_with_options(&full, &db, "pick", &opts).unwrap();
        prop_assert!(a.complete() && b.complete());
        prop_assert!(a.same_answers(&b, &interner));
        // And the bounded walk is never larger.
        prop_assert!(a.models_explored() <= b.models_explored());
    }

    /// Evaluation is monotone in the input for negation-free programs:
    /// adding facts never removes derived tuples.
    #[test]
    fn positive_programs_are_monotone(
        edges in proptest::collection::vec((0usize..5, 0usize..5), 1..12),
    ) {
        let interner = Arc::new(Interner::new());
        let program = ValidatedProgram::parse(
            "tc(X, Y) :- e(X, Y). tc(X, Y) :- e(X, Z), tc(Z, Y).",
            Arc::clone(&interner),
        ).unwrap();
        let mut db_small = Database::with_interner(Arc::clone(&interner));
        let mut db_big = Database::with_interner(Arc::clone(&interner));
        for (i, (a, b)) in edges.iter().enumerate() {
            if i % 2 == 0 {
                db_small.insert_syms("e", &[&format!("v{a}"), &format!("v{b}")]).unwrap();
            }
            db_big.insert_syms("e", &[&format!("v{a}"), &format!("v{b}")]).unwrap();
        }
        let small =
            evaluate_with_options(&program, &db_small, &mut CanonicalOracle, &EvalOptions::new())
                .unwrap();
        let big =
            evaluate_with_options(&program, &db_big, &mut CanonicalOracle, &EvalOptions::new())
                .unwrap();
        let small_tc = small.relation("tc").unwrap();
        let big_tc = big.relation("tc").unwrap();
        for t in small_tc.iter() {
            prop_assert!(big_tc.contains(t));
        }
    }
}

proptest! {
    /// Builtin failures are part of the determinism contract: whether a
    /// random arithmetic program overflows — and the exact error it
    /// overflows with — is identical at 1, 2, and 8 threads, on either
    /// storage backend, and matches run-to-run.
    #[test]
    fn overflow_outcome_is_thread_count_invariant(
        offsets in proptest::collection::vec(0i64..200, 1..40),
        near_max in (i64::MAX - 150)..i64::MAX,
    ) {
        let q = Query::parse("sum(M) :- a(X), b(Y), plus(X, Y, M).", "sum").unwrap();
        let mut db = q.new_database();
        let mut facts = format!("b({near_max}).\n");
        for off in &offsets {
            facts.push_str(&format!("a({off}).\n"));
        }
        idlog_core::load_facts(&facts, &mut db).unwrap();
        let serial = q.session(&db).threads(1).run();
        for backend in [BackendKind::Hash, BackendKind::Columnar] {
            for threads in [1usize, 2, 8] {
                let par = q.session(&db).threads(threads).backend(backend).run();
                match (&serial, &par) {
                    (Ok(a), Ok(b)) => {
                        prop_assert!(
                            a.relation.set_eq(&b.relation),
                            "{threads} threads, {backend}"
                        );
                        prop_assert_eq!(a.stats, b.stats, "{} threads, {}", threads, backend);
                    }
                    (Err(a), Err(b)) => prop_assert_eq!(a, b, "{} threads, {}", threads, backend),
                    _ => prop_assert!(
                        false,
                        "Ok/Err disagreement at {threads} threads on {backend}"
                    ),
                }
            }
        }
    }
}
