//! Fault-injection tests (`--features failpoints`): injected panics, errors,
//! and delays at every site must surface as clean structured errors — never
//! process aborts, deadlocks, partial merges, or nondeterministic output.
//!
//! The failpoint registry is process-global, so every test serializes on
//! `SCENARIO` and clears the registry before releasing it.

#![cfg(feature = "failpoints")]

use std::sync::Mutex;

use idlog_common::failpoint;
use idlog_core::{CoreError, EvalError, Query};

static SCENARIO: Mutex<()> = Mutex::new(());

/// Run `f` with `spec` configured, silencing the default panic hook so the
/// intentionally injected panics do not spray backtraces over test output.
/// The registry is cleared and the hook restored before returning.
fn with_failpoints<T>(spec: &str, f: impl FnOnce() -> T) -> T {
    let _guard = SCENARIO.lock().unwrap_or_else(|p| p.into_inner());
    failpoint::configure(spec).expect("test spec must parse");
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let out = f();
    let _ = std::panic::take_hook();
    std::panic::set_hook(prev_hook);
    failpoint::clear();
    out
}

const TC: &str = "tc(X, Y) :- e(X, Y). tc(X, Y) :- e(X, Z), tc(Z, Y).";

fn tc_query() -> (Query, idlog_core::Database) {
    let q = Query::parse(TC, "tc").unwrap();
    let mut db = q.new_database();
    let chain: String = (0..12).map(|i| format!("e({i}, {}).\n", i + 1)).collect();
    idlog_core::load_facts(&chain, &mut db).unwrap();
    (q, db)
}

fn expect_internal(err: EvalError) -> (Option<usize>, String) {
    match err {
        EvalError::Core(CoreError::Internal { clause, message }) => (clause, message),
        other => panic!("expected Internal, got {other:?}"),
    }
}

#[test]
fn worker_panic_surfaces_as_internal_error_with_clause() {
    for threads in [1usize, 4] {
        let err = with_failpoints("eval.worker=panic", || {
            let (q, db) = tc_query();
            q.session(&db).threads(threads).try_run().unwrap_err()
        });
        let (clause, message) = expect_internal(err);
        assert!(clause.is_some(), "worker faults carry the rule's clause");
        assert!(message.contains("injected panic"), "{message}");
    }
}

#[test]
fn worker_oom_panic_is_contained() {
    let err = with_failpoints("eval.worker=oom", || {
        let (q, db) = tc_query();
        q.session(&db).threads(4).try_run().unwrap_err()
    });
    let (_, message) = expect_internal(err);
    assert!(message.contains("allocation failure"), "{message}");
}

#[test]
fn worker_error_action_surfaces_as_internal_error() {
    let err = with_failpoints("eval.worker=err:disk on fire", || {
        let (q, db) = tc_query();
        q.session(&db).try_run().unwrap_err()
    });
    let (clause, message) = expect_internal(err);
    assert!(clause.is_some());
    assert!(message.contains("disk on fire"), "{message}");
}

#[test]
fn worker_delay_does_not_perturb_results_at_any_thread_count() {
    // Adversarial scheduling: slow every work item down and check the
    // output is still byte-identical to the clean run at 1/2/8 threads.
    let (q, db) = tc_query();
    // The baseline also takes the scenario lock (with an empty spec) so a
    // concurrent test's failpoints cannot leak into it.
    let clean = with_failpoints("", || q.session(&db).run().unwrap());
    for threads in [1usize, 2, 8] {
        let delayed = with_failpoints("eval.worker=delay:3", || {
            q.session(&db).threads(threads).run().unwrap()
        });
        assert!(
            clean.relation.set_eq(&delayed.relation),
            "{threads} threads"
        );
        assert_eq!(clean.stats, delayed.stats, "{threads} threads");
    }
}

#[test]
fn storage_insert_panic_is_contained() {
    // Facts are loaded before the failpoint arms, so the first tripped
    // insert is a derived tuple inside the governed evaluation.
    let err = with_failpoints("storage.insert=panic", || {
        let (q, db) = tc_query();
        q.session(&db).threads(2).try_run().unwrap_err()
    });
    let (_, message) = expect_internal(err);
    assert!(message.contains("storage.insert"), "{message}");
}

#[test]
fn oracle_assign_faults_are_contained() {
    let src = "pick(N) :- emp[2](N, D, 0).";
    for spec in ["oracle.assign=panic", "oracle.assign=err:oracle down"] {
        let err = with_failpoints(spec, || {
            let q = Query::parse(src, "pick").unwrap();
            let mut db = q.new_database();
            idlog_core::load_facts("emp(a, s). emp(b, s).", &mut db).unwrap();
            q.session(&db).try_run().unwrap_err()
        });
        let (_, message) = expect_internal(err);
        assert!(message.contains("oracle.assign"), "{spec}: {message}");
    }
}

#[test]
fn enum_branch_faults_are_contained() {
    // An uncertified one-of-many choice forces real enumeration; threads > 1
    // with more than one assignment spawns the branch-worker pool where the
    // site lives.
    let src = "pick(X) :- item[](X, 0).";
    for spec in ["enum.branch=panic", "enum.branch=err:branch fault"] {
        let err = with_failpoints(spec, || {
            let q = Query::parse(src, "pick").unwrap();
            let mut db = q.new_database();
            idlog_core::load_facts("item(a). item(b). item(c).", &mut db).unwrap();
            q.session(&db)
                .threads(4)
                .all_answers()
                .expect_err("injected branch fault must fail enumeration")
        });
        match err {
            CoreError::Internal { message, .. } => {
                assert!(message.contains("enum.branch"), "{spec}: {message}")
            }
            other => panic!("{spec}: expected Internal, got {other:?}"),
        }
    }
}

#[test]
fn enum_branch_delay_keeps_answer_sets_identical() {
    let src = "pick(X) :- item[](X, 0).";
    let q = Query::parse(src, "pick").unwrap();
    let mut db = q.new_database();
    idlog_core::load_facts("item(a). item(b). item(c). item(d).", &mut db).unwrap();
    let clean = with_failpoints("", || q.session(&db).threads(4).all_answers().unwrap());
    let delayed = with_failpoints("enum.branch=delay:5", || {
        q.session(&db).threads(4).all_answers().unwrap()
    });
    assert_eq!(
        clean.to_sorted_strings(q.interner()),
        delayed.to_sorted_strings(q.interner())
    );
}

#[test]
fn clearing_failpoints_restores_normal_evaluation() {
    let result = with_failpoints("eval.worker=panic", || {
        let (q, db) = tc_query();
        let _ = q.session(&db).try_run().unwrap_err();
        failpoint::clear();
        q.session(&db).try_run()
    });
    assert!(result.is_ok(), "clean run after clear(): {result:?}");
}
