//! Program validation and metadata.

use std::sync::Arc;

use idlog_common::{FxHashMap, FxHashSet, Interner, SymbolId};
use idlog_parser::{Builtin, Literal, PredicateRef, Program};

use crate::error::{CoreError, CoreResult};
use crate::plan::RulePlan;
use crate::safety::{order_clause, ClauseOrder};
use crate::sorts::{infer, SortMap};
use crate::stratify::Stratification;

/// A structurally validated IDLOG program: arities are consistent, heads are
/// single positive ordinary atoms, sorts are inferred, and every clause has a
/// safe evaluation order.
#[derive(Debug, Clone)]
pub struct ValidatedProgram {
    interner: Arc<Interner>,
    ast: Program,
    arities: FxHashMap<SymbolId, usize>,
    sorts: SortMap,
    orders: Vec<ClauseOrder>,
    idb: FxHashSet<SymbolId>,
    inputs: FxHashSet<SymbolId>,
    id_uses: FxHashSet<(SymbolId, Vec<usize>)>,
    strat: Stratification,
    plans: Arc<Vec<RulePlan>>,
}

impl ValidatedProgram {
    /// Validate a parsed program.
    pub fn new(ast: Program, interner: Arc<Interner>) -> CoreResult<Self> {
        // Head shape: exactly one positive ordinary atom, not arithmetic.
        for (ci, clause) in ast.clauses.iter().enumerate() {
            if clause.head.len() != 1 {
                return Err(CoreError::Validation {
                    clause: Some(ci),
                    message: "IDLOG clauses have exactly one head atom \
                              (multi-head clauses belong to DL)"
                        .into(),
                });
            }
            let h = &clause.head[0];
            if h.negated {
                return Err(CoreError::Validation {
                    clause: Some(ci),
                    message: "negated heads belong to N-DATALOG, not IDLOG".into(),
                });
            }
            if h.atom.pred.is_id_version() {
                return Err(CoreError::Validation {
                    clause: Some(ci),
                    message: "the head must be a non-ID-atom ([She90b] clause shape)".into(),
                });
            }
            let head_name = interner.resolve(h.atom.pred.base());
            if Builtin::from_name(&head_name).is_some() {
                return Err(CoreError::Validation {
                    clause: Some(ci),
                    message: format!("cannot define arithmetic predicate {head_name}"),
                });
            }
            for lit in &clause.body {
                if matches!(lit, Literal::Choice { .. }) {
                    return Err(CoreError::Validation {
                        clause: Some(ci),
                        message: "choice literals belong to DATALOG^C; translate them with \
                                  idlog-choice first"
                            .into(),
                    });
                }
                if matches!(lit, Literal::Cut) {
                    return Err(CoreError::Validation {
                        clause: Some(ci),
                        message: "cut is a top-down construct; use the SLD evaluator in \
                                  idlog-choice::cut"
                            .into(),
                    });
                }
            }
        }

        // Arity consistency across all occurrences.
        let mut arities: FxHashMap<SymbolId, usize> = FxHashMap::default();
        let mut check_arity = |pred: SymbolId, arity: usize, ci: usize| -> CoreResult<()> {
            match arities.get(&pred) {
                Some(&a) if a != arity => Err(CoreError::Validation {
                    clause: Some(ci),
                    message: format!(
                        "predicate {} used with arity {arity} but previously {a}",
                        interner.resolve(pred)
                    ),
                }),
                _ => {
                    arities.insert(pred, arity);
                    Ok(())
                }
            }
        };
        for (ci, clause) in ast.clauses.iter().enumerate() {
            check_arity(
                clause.head[0].atom.pred.base(),
                clause.head[0].atom.base_arity(),
                ci,
            )?;
            for lit in &clause.body {
                if let Some(a) = lit.atom() {
                    check_arity(a.pred.base(), a.base_arity(), ci)?;
                }
            }
        }

        // Grouping positions are in range of the (now global) arity.
        let mut id_uses: FxHashSet<(SymbolId, Vec<usize>)> = FxHashSet::default();
        for (ci, clause) in ast.clauses.iter().enumerate() {
            for lit in &clause.body {
                if let Some(a) = lit.atom() {
                    if let PredicateRef::IdVersion { base, grouping } = &a.pred {
                        let arity = arities[base];
                        if let Some(&bad) = grouping.iter().find(|&&g| g >= arity) {
                            return Err(CoreError::Validation {
                                clause: Some(ci),
                                message: format!(
                                    "grouping attribute {} exceeds arity {arity} of {}",
                                    bad + 1,
                                    interner.resolve(*base)
                                ),
                            });
                        }
                        id_uses.insert((*base, grouping.clone()));
                    }
                }
            }
        }

        let sorts = infer(&ast, &arities, &interner)?;

        let mut orders = Vec::with_capacity(ast.clauses.len());
        for (ci, clause) in ast.clauses.iter().enumerate() {
            orders.push(order_clause(clause, ci)?);
        }

        let idb = ast.head_predicates();
        let inputs = ast.input_predicates();

        // Stratification and rule compilation are deterministic per program:
        // compute once here (also surfacing stratification errors at
        // validation time) and reuse across evaluations.
        let strat = crate::stratify::stratify(&ast, &interner)?;
        let mut vp = ValidatedProgram {
            interner,
            ast,
            arities,
            sorts,
            orders,
            idb,
            inputs,
            id_uses,
            strat,
            plans: Arc::new(Vec::new()),
        };
        let plans = crate::plan::compile(&vp)?;
        vp.plans = Arc::new(plans);
        Ok(vp)
    }

    /// Parse and validate in one step.
    ///
    /// ```
    /// use std::sync::Arc;
    /// use idlog_core::{Interner, ValidatedProgram};
    ///
    /// let program = ValidatedProgram::parse(
    ///     "tc(X, Y) :- e(X, Y). tc(X, Y) :- e(X, Z), tc(Z, Y).",
    ///     Arc::new(Interner::new()),
    /// ).unwrap();
    /// assert_eq!(program.idb().len(), 1);
    ///
    /// // The paper's safety discipline rejects under-bound arithmetic:
    /// assert!(ValidatedProgram::parse(
    ///     "p(X, N) :- q(X, N), plus(N, L, M).",
    ///     Arc::new(Interner::new()),
    /// ).is_err());
    /// ```
    pub fn parse(src: &str, interner: Arc<Interner>) -> CoreResult<Self> {
        let ast = idlog_parser::parse_program(src, &interner)?;
        Self::new(ast, interner)
    }

    /// The shared interner.
    pub fn interner(&self) -> &Arc<Interner> {
        &self.interner
    }

    /// The underlying AST.
    pub fn ast(&self) -> &Program {
        &self.ast
    }

    /// Arity of `pred`, if it occurs in the program.
    pub fn arity(&self, pred: SymbolId) -> Option<usize> {
        self.arities.get(&pred).copied()
    }

    /// Inferred column sorts.
    pub fn sorts(&self) -> &SortMap {
        &self.sorts
    }

    /// Safe evaluation order of clause `ci`'s body.
    pub fn clause_order(&self, ci: usize) -> &ClauseOrder {
        &self.orders[ci]
    }

    /// Predicates defined by some clause head.
    pub fn idb(&self) -> &FxHashSet<SymbolId> {
        &self.idb
    }

    /// Input predicates: in bodies (ordinary or ID-version) but never heads.
    pub fn inputs(&self) -> &FxHashSet<SymbolId> {
        &self.inputs
    }

    /// All `(base predicate, grouping)` pairs whose ID-relation the program
    /// reads.
    pub fn id_uses(&self) -> &FxHashSet<(SymbolId, Vec<usize>)> {
        &self.id_uses
    }

    /// The (cached) stratification.
    pub fn stratification(&self) -> &Stratification {
        &self.strat
    }

    /// The (cached) compiled rule plans, one per clause.
    pub fn plans(&self) -> &Arc<Vec<RulePlan>> {
        &self.plans
    }

    /// The program portion related to `output` — the paper's `P/q`: all
    /// clauses whose head predicate (transitively) contributes to `output`.
    pub fn restrict_to(&self, output: SymbolId) -> CoreResult<ValidatedProgram> {
        let mut wanted: FxHashSet<SymbolId> = FxHashSet::default();
        wanted.insert(output);
        loop {
            let mut changed = false;
            for clause in &self.ast.clauses {
                let head = clause.head[0].atom.pred.base();
                if wanted.contains(&head) {
                    for lit in &clause.body {
                        if let Some(a) = lit.atom() {
                            changed |= wanted.insert(a.pred.base());
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }
        let clauses = self
            .ast
            .clauses
            .iter()
            .filter(|c| wanted.contains(&c.head[0].atom.pred.base()))
            .cloned()
            .collect();
        ValidatedProgram::new(Program { clauses }, Arc::clone(&self.interner))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn validate(src: &str) -> CoreResult<ValidatedProgram> {
        let i = Arc::new(Interner::new());
        ValidatedProgram::parse(src, i)
    }

    #[test]
    fn accepts_paper_example2() {
        let p = validate(
            "sex_guess(X, male) :- person(X).
             sex_guess(X, female) :- person(X).
             man(X) :- sex_guess[1](X, male, 1).
             woman(X) :- sex_guess[1](X, female, 1).",
        )
        .unwrap();
        assert_eq!(p.id_uses().len(), 1);
        assert!(p.inputs().contains(&p.interner().get("person").unwrap()));
        assert_eq!(p.idb().len(), 3);
    }

    #[test]
    fn rejects_multi_head() {
        assert!(matches!(
            validate("a(X) & b(X) :- c(X)."),
            Err(CoreError::Validation { .. })
        ));
    }

    #[test]
    fn rejects_negated_head() {
        assert!(validate("not a(X) :- c(X).").is_err());
    }

    #[test]
    fn rejects_id_head() {
        assert!(validate("a[1](X, T) :- c(X), succ(T, T2).").is_err());
    }

    #[test]
    fn rejects_choice_literal() {
        let err = validate("s(N) :- emp(N, D), choice((D), (N)).").unwrap_err();
        match err {
            CoreError::Validation { message, .. } => {
                assert!(message.contains("choice"), "{message}")
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn rejects_arity_mismatch() {
        assert!(validate("p(X) :- q(X). r(X) :- q(X, X).").is_err());
    }

    #[test]
    fn rejects_defining_builtin() {
        assert!(validate("succ(X, X) :- p(X).").is_err());
    }

    #[test]
    fn restrict_to_keeps_related_clauses_only() {
        let p = validate(
            "a(X) :- b(X).
             b(X) :- base(X).
             unrelated(X) :- other(X).",
        )
        .unwrap();
        let a = p.interner().get("a").unwrap();
        let restricted = p.restrict_to(a).unwrap();
        assert_eq!(restricted.ast().clauses.len(), 2);
        assert!(restricted
            .arity(p.interner().get("unrelated").unwrap())
            .is_none());
    }

    #[test]
    fn restrict_follows_id_literals() {
        let p = validate(
            "pick(X) :- cand[](X, 0).
             cand(X) :- pool(X).
             junk(X) :- pool(X).",
        )
        .unwrap();
        let pick = p.interner().get("pick").unwrap();
        let restricted = p.restrict_to(pick).unwrap();
        assert_eq!(restricted.ast().clauses.len(), 2);
    }

    #[test]
    fn safety_error_propagates() {
        assert!(matches!(
            validate("p(X, Y) :- q(X)."),
            Err(CoreError::Safety { .. })
        ));
    }
}
