//! Model checking: is a computed state closed under a program's clauses?
//!
//! The paper's Theorem 1 guarantees every stratified IDLOG program has a
//! perfect model; [`verify_model`] checks the operational counterpart for a
//! concrete evaluation result — that every rule instantiation whose body is
//! satisfied has its head fact present. Together with minimality spot checks
//! in the test suite, this validates the engine's fixpoints independently of
//! the engine's own derivation bookkeeping.

use idlog_common::{SymbolId, Tuple};
use idlog_storage::Database;

use crate::engine::{run_rule, EvalState};
use crate::error::{CoreError, CoreResult};
use crate::eval::EvalOutput;
use crate::pred::PredKey;
use crate::program::ValidatedProgram;
use crate::stats::EvalStats;

/// A head fact that a satisfied body failed to support.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelViolation {
    /// The head predicate.
    pub pred: SymbolId,
    /// The derivable-but-missing tuple.
    pub tuple: Tuple,
}

/// Check that `output`'s state (all relations computed by [`crate::evaluate_with_options`]
/// along with the input database) is closed under the program's clauses:
/// re-fire every rule against the final relations and report any head fact
/// not already present.
///
/// Returns the violations (empty = the state is a model). ID-literals are
/// checked against the ID-relations materialized during the evaluation; a
/// program portion that never ran (not related to the evaluated output) is
/// skipped if its ID-relations were never drawn.
pub fn verify_model(
    program: &ValidatedProgram,
    db: &Database,
    output: &EvalOutput,
) -> CoreResult<Vec<ModelViolation>> {
    let interner = program.interner();
    // Rebuild an EvalState view over the output's relations.
    let mut state = EvalState::new();
    let mut skip_preds: Vec<SymbolId> = Vec::new();
    for &pred in program.inputs().iter().chain(program.idb()) {
        let name = interner.resolve(pred);
        match output.relation(&name) {
            Some(rel) => state.put(PredKey::Ordinary(pred), rel.clone()),
            None => {
                // Input predicate never installed (not part of the evaluated
                // portion): fall back to the database or treat as empty.
                if let Some(rel) = db.relation_by_id(pred) {
                    state.put(PredKey::Ordinary(pred), rel.clone());
                }
            }
        }
    }
    for (base, grouping) in program.id_uses() {
        let name = interner.resolve(*base);
        match output.id_relation(&name, grouping) {
            Some(rel) => state.put(PredKey::Id(*base, grouping.clone()), rel.clone()),
            None => {
                // The ID-relation was never materialized (unrelated portion):
                // clauses reading it cannot be checked meaningfully.
                for clause in &program.ast().clauses {
                    let head = clause.head[0].atom.pred.base();
                    let uses_it = clause.body.iter().any(|l| {
                        l.atom().is_some_and(|a| match &a.pred {
                            idlog_parser::PredicateRef::IdVersion {
                                base: b,
                                grouping: g,
                            } => b == base && g == grouping,
                            _ => false,
                        })
                    });
                    if uses_it {
                        skip_preds.push(head);
                    }
                }
            }
        }
    }

    let plans = program.plans().clone();
    state.rebuild_indexes_for(&plans.iter().collect::<Vec<_>>());

    let mut violations = Vec::new();
    let mut stats = EvalStats::default();
    for plan in plans.iter() {
        if skip_preds.contains(&plan.head_pred) {
            continue;
        }
        let head_rel = state
            .get(&PredKey::Ordinary(plan.head_pred))
            .cloned()
            .ok_or_else(|| CoreError::Eval {
                message: format!(
                    "relation {} missing from the checked state",
                    interner.resolve(plan.head_pred)
                ),
            })?;
        let mut derived: Vec<(SymbolId, Tuple)> = Vec::new();
        run_rule(&state, plan, None, &mut derived, &mut stats)?;
        for (pred, t) in derived {
            if !head_rel.contains(&t) {
                violations.push(ModelViolation { pred, tuple: t });
            }
        }
    }
    violations.sort_by(|a, b| {
        interner
            .cmp_by_name(a.pred, b.pred)
            .then_with(|| a.tuple.cmp_canonical(&b.tuple, interner))
    });
    violations.dedup();
    Ok(violations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EvalOptions;
    use crate::eval::evaluate_with_options;
    use crate::tid::{CanonicalOracle, SeededOracle};
    use std::sync::Arc;

    fn setup(src: &str, facts: &[(&str, &[&str])]) -> (ValidatedProgram, Database) {
        let interner = Arc::new(crate::Interner::new());
        let program = ValidatedProgram::parse(src, Arc::clone(&interner)).unwrap();
        let mut db = Database::with_interner(interner);
        for (pred, cols) in facts {
            db.insert_syms(pred, cols).unwrap();
        }
        (program, db)
    }

    #[test]
    fn computed_fixpoints_are_models() {
        let (p, db) = setup(
            "tc(X, Y) :- e(X, Y). tc(X, Y) :- e(X, Z), tc(Z, Y).",
            &[("e", &["a", "b"]), ("e", &["b", "c"]), ("e", &["c", "a"])],
        );
        let out =
            evaluate_with_options(&p, &db, &mut CanonicalOracle, &EvalOptions::default()).unwrap();
        assert!(verify_model(&p, &db, &out).unwrap().is_empty());
    }

    #[test]
    fn id_programs_are_models_under_any_oracle() {
        let (p, db) = setup(
            "pick(N, D) :- emp[2](N, D, 0).
             rest(N) :- emp(N, D), not pick(N, D).",
            &[
                ("emp", &["a", "x"]),
                ("emp", &["b", "x"]),
                ("emp", &["c", "y"]),
            ],
        );
        for seed in 0..8 {
            let out = evaluate_with_options(
                &p,
                &db,
                &mut SeededOracle::new(seed),
                &EvalOptions::default(),
            )
            .unwrap();
            let violations = verify_model(&p, &db, &out).unwrap();
            assert!(violations.is_empty(), "seed {seed}: {violations:?}");
        }
    }

    #[test]
    fn detects_a_non_model() {
        // Evaluate the full program, then check a *larger* program against
        // the same state: the extra clause's heads are missing.
        let (p, db) = setup("a(X) :- base(X).", &[("base", &["x"]), ("base", &["y"])]);
        let out =
            evaluate_with_options(&p, &db, &mut CanonicalOracle, &EvalOptions::default()).unwrap();

        let bigger = ValidatedProgram::parse(
            "a(X) :- base(X). a(X) :- more(X).",
            Arc::clone(p.interner()),
        )
        .unwrap();
        let mut db2 = Database::with_interner(Arc::clone(p.interner()));
        db2.insert_syms("base", &["x"]).unwrap();
        db2.insert_syms("base", &["y"]).unwrap();
        db2.insert_syms("more", &["z"]).unwrap();
        let violations = verify_model(&bigger, &db2, &out).unwrap();
        assert_eq!(violations.len(), 1);
        assert_eq!(
            p.interner().resolve(violations[0].pred),
            "a",
            "the unsupported head is a(z)"
        );
    }

    #[test]
    fn arithmetic_models_check() {
        let (p, db) = setup("upto(0). upto(M) :- upto(N), succ(N, M), M <= 5.", &[]);
        let out =
            evaluate_with_options(&p, &db, &mut CanonicalOracle, &EvalOptions::default()).unwrap();
        assert_eq!(out.relation("upto").unwrap().len(), 6);
        assert!(verify_model(&p, &db, &out).unwrap().is_empty());
    }
}
