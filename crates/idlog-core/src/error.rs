//! Engine errors and the stable error-code surface.
//!
//! [`ErrorCode`] is the one vocabulary shared by library callers
//! ([`CoreError::code`] / [`EvalError::code`](crate::EvalError)), the CLI
//! (exit codes via [`ErrorCode::exit_code`]), and the service protocol
//! (`code` fields in responses). Codes are stable strings: once shipped
//! they never change meaning, so clients may switch on them.

use std::fmt;

use idlog_common::CommonError;
use idlog_parser::ParseError;

use crate::govern::LimitKind;

/// Stable, serializable error codes.
///
/// One code per failure family; governor trips carry the specific
/// [`LimitKind`] so `limit:timeout` and `limit:max-rounds` stay
/// distinguishable across the wire. `Usage`, `Io`, and `Protocol` belong to
/// the serving/CLI layer (the engine itself never produces them) but live
/// here so every layer agrees on one enum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum ErrorCode {
    /// Surface-syntax error.
    Parse,
    /// Structural validation failure.
    Validation,
    /// Conflicting sort inference.
    Sort,
    /// Safety-condition violation.
    Safety,
    /// The program is not stratifiable.
    Stratification,
    /// The input database disagrees with the program.
    Input,
    /// Runtime evaluation failure.
    Eval,
    /// An enumeration budget tripped.
    Budget,
    /// A governor resource ceiling tripped.
    Limit(LimitKind),
    /// The evaluation's cancel token fired.
    Cancelled,
    /// A contained engine invariant failure.
    Internal,
    /// An unclassified failure from a front-end layer (lint counts, missing
    /// profile, …) that maps to plain exit 1.
    Failure,
    /// Bad command-line or request arguments.
    Usage,
    /// An I/O failure outside the engine (file, socket).
    Io,
    /// A malformed service request or response.
    Protocol,
    /// The server shed the request at admission because its bounded queue
    /// was full. Retryable: the response carries a `retry_after_ms` hint.
    Overloaded,
}

impl ErrorCode {
    /// The stable wire string for this code.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::Parse => "parse",
            ErrorCode::Validation => "validation",
            ErrorCode::Sort => "sort",
            ErrorCode::Safety => "safety",
            ErrorCode::Stratification => "stratification",
            ErrorCode::Input => "input",
            ErrorCode::Eval => "eval",
            ErrorCode::Budget => "budget",
            ErrorCode::Limit(LimitKind::Deadline) => "limit:timeout",
            ErrorCode::Limit(LimitKind::Rounds) => "limit:max-rounds",
            ErrorCode::Limit(LimitKind::Tuples) => "limit:max-tuples",
            ErrorCode::Limit(LimitKind::Bytes) => "limit:max-bytes",
            ErrorCode::Limit(LimitKind::Models) => "limit:max-models",
            ErrorCode::Limit(LimitKind::Answers) => "limit:max-answers",
            ErrorCode::Cancelled => "cancelled",
            ErrorCode::Internal => "internal",
            ErrorCode::Failure => "failure",
            ErrorCode::Usage => "usage",
            ErrorCode::Io => "io",
            ErrorCode::Protocol => "protocol",
            ErrorCode::Overloaded => "overloaded",
        }
    }

    /// Parse a wire string back into a code (exact match on
    /// [`ErrorCode::as_str`]).
    pub fn parse(s: &str) -> Option<ErrorCode> {
        const ALL: &[ErrorCode] = &[
            ErrorCode::Parse,
            ErrorCode::Validation,
            ErrorCode::Sort,
            ErrorCode::Safety,
            ErrorCode::Stratification,
            ErrorCode::Input,
            ErrorCode::Eval,
            ErrorCode::Budget,
            ErrorCode::Limit(LimitKind::Deadline),
            ErrorCode::Limit(LimitKind::Rounds),
            ErrorCode::Limit(LimitKind::Tuples),
            ErrorCode::Limit(LimitKind::Bytes),
            ErrorCode::Limit(LimitKind::Models),
            ErrorCode::Limit(LimitKind::Answers),
            ErrorCode::Cancelled,
            ErrorCode::Internal,
            ErrorCode::Failure,
            ErrorCode::Usage,
            ErrorCode::Io,
            ErrorCode::Protocol,
            ErrorCode::Overloaded,
        ];
        ALL.iter().copied().find(|c| c.as_str() == s)
    }

    /// The process exit code the CLI maps this code to: `0` success (never
    /// an `ErrorCode`), `1` failure, `2` usage, `3` resource limit, `130`
    /// interrupt — the convention shells expect. Regression-tested in
    /// `idlog-cli`.
    pub fn exit_code(self) -> u8 {
        match self {
            ErrorCode::Usage => 2,
            // Overload shedding is a resource trip from the client's point
            // of view: the server refused the work, retrying may succeed —
            // the same script handling as a governor limit.
            ErrorCode::Limit(_) | ErrorCode::Budget | ErrorCode::Overloaded => 3,
            ErrorCode::Cancelled => 130,
            _ => 1,
        }
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Any failure from validation through evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CoreError {
    /// Surface-syntax error.
    Parse(ParseError),
    /// Structural validation failure (head shape, arity mismatch, …).
    Validation {
        /// 0-based clause index, when attributable.
        clause: Option<usize>,
        /// What is wrong.
        message: String,
    },
    /// Sort inference found conflicting sorts.
    Sort {
        /// What conflicts.
        message: String,
    },
    /// The paper's safety condition is violated (unbound head variable,
    /// un-orderable arithmetic literal, unbound negation, …).
    Safety {
        /// 0-based clause index.
        clause: usize,
        /// What is wrong.
        message: String,
    },
    /// The program is not stratifiable: a cycle through negation or through
    /// an ID-literal.
    Stratification {
        /// Predicate names on the offending cycle.
        cycle: Vec<String>,
    },
    /// The input database disagrees with the program (missing sort, wrong
    /// arity, …).
    Input {
        /// What is wrong.
        message: String,
    },
    /// A runtime evaluation failure (arithmetic overflow, an arithmetic
    /// instance with infinitely many solutions that the static modes could
    /// not rule out, …).
    Eval {
        /// What went wrong.
        message: String,
    },
    /// Evaluation exceeded a caller-imposed budget (enumeration spaces are
    /// products of factorials; budgets keep them finite in practice).
    BudgetExceeded {
        /// Which budget tripped.
        what: String,
    },
    /// A governor resource ceiling tripped (deadline, rounds, tuples,
    /// bytes). The governed entry points wrap this as
    /// [`EvalError::Limit`](crate::EvalError) with the partial output
    /// attached; this payload-light form is what propagates through the
    /// engine internals and the legacy `CoreResult` API.
    LimitExceeded {
        /// Which ceiling tripped.
        limit: crate::govern::LimitKind,
    },
    /// The evaluation's [`CancelToken`](crate::CancelToken) fired
    /// (Ctrl-C, embedder shutdown).
    Cancelled,
    /// An engine invariant failed at runtime — typically a panic in a
    /// worker, builtin, oracle, or the storage layer, contained by
    /// `catch_unwind` instead of aborting the process.
    Internal {
        /// 0-based clause index of the rule being evaluated, when the
        /// fault is attributable to one.
        clause: Option<usize>,
        /// The contained panic message or broken invariant.
        message: String,
    },
    /// A foundation-layer error surfaced during evaluation.
    Common(CommonError),
}

impl CoreError {
    /// The stable [`ErrorCode`] for this error.
    pub fn code(&self) -> ErrorCode {
        match self {
            CoreError::Parse(_) => ErrorCode::Parse,
            CoreError::Validation { .. } => ErrorCode::Validation,
            CoreError::Sort { .. } => ErrorCode::Sort,
            CoreError::Safety { .. } => ErrorCode::Safety,
            CoreError::Stratification { .. } => ErrorCode::Stratification,
            CoreError::Input { .. } => ErrorCode::Input,
            CoreError::Eval { .. } => ErrorCode::Eval,
            CoreError::BudgetExceeded { .. } => ErrorCode::Budget,
            CoreError::LimitExceeded { limit } => ErrorCode::Limit(*limit),
            CoreError::Cancelled => ErrorCode::Cancelled,
            CoreError::Internal { .. } => ErrorCode::Internal,
            CoreError::Common(_) => ErrorCode::Input,
        }
    }
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Parse(e) => write!(f, "{e}"),
            CoreError::Validation {
                clause: Some(c),
                message,
            } => {
                write!(f, "invalid clause #{c}: {message}")
            }
            CoreError::Validation {
                clause: None,
                message,
            } => {
                write!(f, "invalid program: {message}")
            }
            CoreError::Sort { message } => write!(f, "sort error: {message}"),
            CoreError::Safety { clause, message } => {
                write!(f, "unsafe clause #{clause}: {message}")
            }
            CoreError::Stratification { cycle } => {
                write!(
                    f,
                    "program is not stratifiable; cycle through: {}",
                    cycle.join(" -> ")
                )
            }
            CoreError::Input { message } => write!(f, "bad input database: {message}"),
            CoreError::Eval { message } => write!(f, "evaluation error: {message}"),
            CoreError::BudgetExceeded { what } => write!(f, "budget exceeded: {what}"),
            CoreError::LimitExceeded { limit } => write!(f, "limit exceeded: {limit}"),
            CoreError::Cancelled => f.write_str("evaluation cancelled"),
            CoreError::Internal {
                clause: Some(c),
                message,
            } => {
                write!(f, "internal error in clause #{c}: {message}")
            }
            CoreError::Internal {
                clause: None,
                message,
            } => {
                write!(f, "internal error: {message}")
            }
            CoreError::Common(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Parse(e) => Some(e),
            CoreError::Common(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ParseError> for CoreError {
    fn from(e: ParseError) -> Self {
        CoreError::Parse(e)
    }
}

impl From<CommonError> for CoreError {
    fn from(e: CommonError) -> Self {
        CoreError::Common(e)
    }
}

/// Result alias for engine operations.
pub type CoreResult<T> = Result<T, CoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_round_trip() {
        let cases = [
            (ErrorCode::Parse, "parse", 1),
            (ErrorCode::Validation, "validation", 1),
            (ErrorCode::Sort, "sort", 1),
            (ErrorCode::Safety, "safety", 1),
            (ErrorCode::Stratification, "stratification", 1),
            (ErrorCode::Input, "input", 1),
            (ErrorCode::Eval, "eval", 1),
            (ErrorCode::Budget, "budget", 3),
            (ErrorCode::Limit(LimitKind::Deadline), "limit:timeout", 3),
            (ErrorCode::Limit(LimitKind::Rounds), "limit:max-rounds", 3),
            (ErrorCode::Limit(LimitKind::Tuples), "limit:max-tuples", 3),
            (ErrorCode::Limit(LimitKind::Bytes), "limit:max-bytes", 3),
            (ErrorCode::Limit(LimitKind::Models), "limit:max-models", 3),
            (ErrorCode::Limit(LimitKind::Answers), "limit:max-answers", 3),
            (ErrorCode::Cancelled, "cancelled", 130),
            (ErrorCode::Internal, "internal", 1),
            (ErrorCode::Failure, "failure", 1),
            (ErrorCode::Usage, "usage", 2),
            (ErrorCode::Io, "io", 1),
            (ErrorCode::Protocol, "protocol", 1),
            (ErrorCode::Overloaded, "overloaded", 3),
        ];
        for (code, s, exit) in cases {
            assert_eq!(code.as_str(), s);
            assert_eq!(ErrorCode::parse(s), Some(code), "{s}");
            assert_eq!(code.exit_code(), exit, "{s}");
        }
        assert_eq!(ErrorCode::parse("nope"), None);
    }

    #[test]
    fn core_errors_carry_their_family_code() {
        assert_eq!(
            CoreError::Eval {
                message: "overflow".into()
            }
            .code(),
            ErrorCode::Eval
        );
        assert_eq!(
            CoreError::LimitExceeded {
                limit: LimitKind::Deadline
            }
            .code(),
            ErrorCode::Limit(LimitKind::Deadline)
        );
        assert_eq!(CoreError::Cancelled.code(), ErrorCode::Cancelled);
    }

    #[test]
    fn display_variants() {
        let e = CoreError::Safety {
            clause: 3,
            message: "unbound head variable X".into(),
        };
        assert!(e.to_string().contains("#3"));
        let e = CoreError::Stratification {
            cycle: vec!["p".into(), "q".into()],
        };
        assert!(e.to_string().contains("p -> q"));
    }
}
