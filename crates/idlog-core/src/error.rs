//! Engine errors.

use std::fmt;

use idlog_common::CommonError;
use idlog_parser::ParseError;

/// Any failure from validation through evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// Surface-syntax error.
    Parse(ParseError),
    /// Structural validation failure (head shape, arity mismatch, …).
    Validation {
        /// 0-based clause index, when attributable.
        clause: Option<usize>,
        /// What is wrong.
        message: String,
    },
    /// Sort inference found conflicting sorts.
    Sort {
        /// What conflicts.
        message: String,
    },
    /// The paper's safety condition is violated (unbound head variable,
    /// un-orderable arithmetic literal, unbound negation, …).
    Safety {
        /// 0-based clause index.
        clause: usize,
        /// What is wrong.
        message: String,
    },
    /// The program is not stratifiable: a cycle through negation or through
    /// an ID-literal.
    Stratification {
        /// Predicate names on the offending cycle.
        cycle: Vec<String>,
    },
    /// The input database disagrees with the program (missing sort, wrong
    /// arity, …).
    Input {
        /// What is wrong.
        message: String,
    },
    /// A runtime evaluation failure (arithmetic overflow, an arithmetic
    /// instance with infinitely many solutions that the static modes could
    /// not rule out, …).
    Eval {
        /// What went wrong.
        message: String,
    },
    /// Evaluation exceeded a caller-imposed budget (enumeration spaces are
    /// products of factorials; budgets keep them finite in practice).
    BudgetExceeded {
        /// Which budget tripped.
        what: String,
    },
    /// A governor resource ceiling tripped (deadline, rounds, tuples,
    /// bytes). The governed entry points wrap this as
    /// [`EvalError::Limit`](crate::EvalError) with the partial output
    /// attached; this payload-light form is what propagates through the
    /// engine internals and the legacy `CoreResult` API.
    LimitExceeded {
        /// Which ceiling tripped.
        limit: crate::govern::LimitKind,
    },
    /// The evaluation's [`CancelToken`](crate::CancelToken) fired
    /// (Ctrl-C, embedder shutdown).
    Cancelled,
    /// An engine invariant failed at runtime — typically a panic in a
    /// worker, builtin, oracle, or the storage layer, contained by
    /// `catch_unwind` instead of aborting the process.
    Internal {
        /// 0-based clause index of the rule being evaluated, when the
        /// fault is attributable to one.
        clause: Option<usize>,
        /// The contained panic message or broken invariant.
        message: String,
    },
    /// A foundation-layer error surfaced during evaluation.
    Common(CommonError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Parse(e) => write!(f, "{e}"),
            CoreError::Validation {
                clause: Some(c),
                message,
            } => {
                write!(f, "invalid clause #{c}: {message}")
            }
            CoreError::Validation {
                clause: None,
                message,
            } => {
                write!(f, "invalid program: {message}")
            }
            CoreError::Sort { message } => write!(f, "sort error: {message}"),
            CoreError::Safety { clause, message } => {
                write!(f, "unsafe clause #{clause}: {message}")
            }
            CoreError::Stratification { cycle } => {
                write!(
                    f,
                    "program is not stratifiable; cycle through: {}",
                    cycle.join(" -> ")
                )
            }
            CoreError::Input { message } => write!(f, "bad input database: {message}"),
            CoreError::Eval { message } => write!(f, "evaluation error: {message}"),
            CoreError::BudgetExceeded { what } => write!(f, "budget exceeded: {what}"),
            CoreError::LimitExceeded { limit } => write!(f, "limit exceeded: {limit}"),
            CoreError::Cancelled => f.write_str("evaluation cancelled"),
            CoreError::Internal {
                clause: Some(c),
                message,
            } => {
                write!(f, "internal error in clause #{c}: {message}")
            }
            CoreError::Internal {
                clause: None,
                message,
            } => {
                write!(f, "internal error: {message}")
            }
            CoreError::Common(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Parse(e) => Some(e),
            CoreError::Common(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ParseError> for CoreError {
    fn from(e: ParseError) -> Self {
        CoreError::Parse(e)
    }
}

impl From<CommonError> for CoreError {
    fn from(e: CommonError) -> Self {
        CoreError::Common(e)
    }
}

/// Result alias for engine operations.
pub type CoreResult<T> = Result<T, CoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = CoreError::Safety {
            clause: 3,
            message: "unbound head variable X".into(),
        };
        assert!(e.to_string().contains("#3"));
        let e = CoreError::Stratification {
            cycle: vec!["p".into(), "q".into()],
        };
        assert!(e.to_string().contains("p -> q"));
    }
}
