//! Rule plans: clauses compiled to ordered join steps.
//!
//! The safe body order found by [`crate::safety`] is compiled into a
//! [`RulePlan`]: for every step we know statically which argument positions
//! are bound on entry (they form the probe key), which bind new variables,
//! and which merely check a repeated variable. The engine then executes the
//! plan without re-deriving any of this per tuple.

use idlog_common::{FxHashMap, SymbolId, Value};
use idlog_parser::{Builtin, Clause, Literal, PredicateRef, Term};

use crate::error::{CoreError, CoreResult};
use crate::pred::PredKey;
use crate::program::ValidatedProgram;

/// A term with clause variables resolved to dense indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TermPat {
    /// A ground constant.
    Const(Value),
    /// Clause variable number.
    Var(usize),
}

/// One positive atom step.
#[derive(Debug, Clone)]
pub struct AtomStep {
    /// Which stored relation to read.
    pub key: PredKey,
    /// Positions bound on entry and the pattern producing their value
    /// (probe-key parts, in position order).
    pub probe: Vec<(usize, TermPat)>,
    /// Positions that bind a new variable (first occurrence).
    pub bind: Vec<(usize, usize)>,
    /// Positions that must equal a variable bound earlier *in this step*
    /// (repeated variable, e.g. `p(X, X)` with `X` free on entry).
    pub check: Vec<(usize, usize)>,
}

/// One executable step of a rule body.
#[derive(Debug, Clone)]
pub enum Step {
    /// Join with a stored relation (scan when `probe` is empty).
    Atom(AtomStep),
    /// Fully-bound negated membership test.
    Negation {
        /// Which stored relation to test.
        key: PredKey,
        /// The (fully bound) argument patterns.
        terms: Vec<TermPat>,
    },
    /// Arithmetic literal.
    Builtin {
        /// The operation.
        op: Builtin,
        /// Argument patterns.
        args: Vec<TermPat>,
        /// Statically-known boundness per argument.
        bound: Vec<bool>,
    },
}

impl Step {
    /// The stored relation this step reads, if any.
    pub fn reads(&self) -> Option<&PredKey> {
        match self {
            Step::Atom(a) => Some(&a.key),
            Step::Negation { key, .. } => Some(key),
            Step::Builtin { .. } => None,
        }
    }
}

/// A compiled clause.
#[derive(Debug, Clone)]
pub struct RulePlan {
    /// Index of the source clause in the program.
    pub clause_idx: usize,
    /// Head predicate.
    pub head_pred: SymbolId,
    /// Head argument patterns.
    pub head: Vec<TermPat>,
    /// Ordered body steps.
    pub steps: Vec<Step>,
    /// Number of clause variables.
    pub n_vars: usize,
}

impl RulePlan {
    /// Step indices that are positive atom joins on `pred` (candidates for
    /// semi-naive delta rewriting).
    pub fn atom_steps_on(&self, pred: SymbolId) -> Vec<usize> {
        self.steps
            .iter()
            .enumerate()
            .filter_map(|(i, s)| match s {
                Step::Atom(a) if a.key.base() == pred && matches!(a.key, PredKey::Ordinary(_)) => {
                    Some(i)
                }
                _ => None,
            })
            .collect()
    }
}

/// Compile every clause of `program` into a [`RulePlan`].
pub fn compile(program: &ValidatedProgram) -> CoreResult<Vec<RulePlan>> {
    program
        .ast()
        .clauses
        .iter()
        .enumerate()
        .map(|(ci, clause)| compile_clause(program, clause, ci))
        .collect()
}

fn compile_clause(
    program: &ValidatedProgram,
    clause: &Clause,
    clause_idx: usize,
) -> CoreResult<RulePlan> {
    // Variables get dense indices in order of first occurrence.
    let names = clause.variables();
    let vars: FxHashMap<&str, usize> = names.iter().enumerate().map(|(i, &n)| (n, i)).collect();

    let pat = |t: &Term| -> TermPat {
        match t {
            Term::Var(v) => TermPat::Var(vars[v.as_str()]),
            Term::Sym(s) => TermPat::Const(Value::Sym(*s)),
            Term::Int(n) => TermPat::Const(Value::Int(*n)),
        }
    };

    let order = &program.clause_order(clause_idx).order;
    let mut bound = vec![false; names.len()];
    let mut steps = Vec::with_capacity(order.len());

    for &li in order {
        let lit = &clause.body[li];
        match lit {
            Literal::Pos(atom) => {
                let key = pred_key(&atom.pred);
                let mut probe = Vec::new();
                let mut bind = Vec::new();
                let mut check = Vec::new();
                let mut bound_in_step: Vec<usize> = Vec::new();
                for (pos, term) in atom.terms.iter().enumerate() {
                    match pat(term) {
                        TermPat::Const(c) => probe.push((pos, TermPat::Const(c))),
                        TermPat::Var(v) => {
                            if bound[v] {
                                probe.push((pos, TermPat::Var(v)));
                            } else if bound_in_step.contains(&v) {
                                check.push((pos, v));
                            } else {
                                bind.push((pos, v));
                                bound_in_step.push(v);
                            }
                        }
                    }
                }
                for v in bound_in_step {
                    bound[v] = true;
                }
                steps.push(Step::Atom(AtomStep {
                    key,
                    probe,
                    bind,
                    check,
                }));
            }
            Literal::Neg(atom) => {
                let key = pred_key(&atom.pred);
                let terms: Vec<TermPat> = atom.terms.iter().map(&pat).collect();
                // Safety ordering guarantees all bound.
                debug_assert!(terms.iter().all(|t| match t {
                    TermPat::Var(v) => bound[*v],
                    TermPat::Const(_) => true,
                }));
                steps.push(Step::Negation { key, terms });
            }
            Literal::Builtin { op, args } => {
                let pats: Vec<TermPat> = args.iter().map(&pat).collect();
                let mask: Vec<bool> = pats
                    .iter()
                    .map(|p| match p {
                        TermPat::Const(_) => true,
                        TermPat::Var(v) => bound[*v],
                    })
                    .collect();
                for p in &pats {
                    if let TermPat::Var(v) = p {
                        bound[*v] = true;
                    }
                }
                steps.push(Step::Builtin {
                    op: *op,
                    args: pats,
                    bound: mask,
                });
            }
            Literal::Choice { .. } | Literal::Cut => {
                return Err(CoreError::Validation {
                    clause: Some(clause_idx),
                    message: "choice/cut literal reached the planner".into(),
                });
            }
        }
    }

    let head_atom = clause.single_head();
    let head: Vec<TermPat> = head_atom.terms.iter().map(&pat).collect();
    Ok(RulePlan {
        clause_idx,
        head_pred: head_atom.pred.base(),
        head,
        steps,
        n_vars: names.len(),
    })
}

fn pred_key(p: &PredicateRef) -> PredKey {
    match p {
        PredicateRef::Ordinary(s) => PredKey::Ordinary(*s),
        PredicateRef::IdVersion { base, grouping } => PredKey::Id(*base, grouping.clone()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idlog_common::Interner;
    use std::sync::Arc;

    fn plans(src: &str) -> (Vec<RulePlan>, Arc<Interner>) {
        let i = Arc::new(Interner::new());
        let p = ValidatedProgram::parse(src, Arc::clone(&i)).unwrap();
        (compile(&p).unwrap(), i)
    }

    #[test]
    fn simple_join_plan() {
        let (ps, i) = plans("p(X, Y) :- q(X, Z), r(Z, Y).");
        let plan = &ps[0];
        assert_eq!(plan.n_vars, 3);
        assert_eq!(plan.steps.len(), 2);
        // First step scans q (nothing bound), binding X and Z.
        let Step::Atom(a0) = &plan.steps[0] else {
            panic!()
        };
        assert!(a0.probe.is_empty());
        assert_eq!(a0.bind.len(), 2);
        // Second step probes r on position 0 (Z bound).
        let Step::Atom(a1) = &plan.steps[1] else {
            panic!()
        };
        assert_eq!(a1.probe.len(), 1);
        assert_eq!(a1.probe[0].0, 0);
        assert_eq!(a1.key, PredKey::Ordinary(i.get("r").unwrap()));
    }

    #[test]
    fn repeated_var_in_one_step_is_checked() {
        let (ps, _) = plans("p(X) :- q(X, X).");
        let Step::Atom(a) = &ps[0].steps[0] else {
            panic!()
        };
        assert_eq!(a.bind.len(), 1);
        assert_eq!(a.check.len(), 1);
        assert_eq!(a.bind[0].1, a.check[0].1);
    }

    #[test]
    fn id_atom_becomes_id_key() {
        let (ps, i) = plans("two(N) :- emp[2](N, D, T), T < 2.");
        let Step::Atom(a) = &ps[0].steps[0] else {
            panic!()
        };
        assert_eq!(a.key, PredKey::Id(i.get("emp").unwrap(), vec![1]));
        // The comparison runs second, with T bound and 2 constant.
        let Step::Builtin { op, bound, .. } = &ps[0].steps[1] else {
            panic!()
        };
        assert_eq!(*op, Builtin::Lt);
        assert_eq!(bound, &vec![true, true]);
    }

    #[test]
    fn negation_step_fully_bound() {
        let (ps, i) = plans("p(X) :- q(X), not r(X).");
        let Step::Negation { key, terms } = &ps[0].steps[1] else {
            panic!()
        };
        assert_eq!(key, &PredKey::Ordinary(i.get("r").unwrap()));
        assert_eq!(terms.len(), 1);
    }

    #[test]
    fn constants_go_into_probe_keys() {
        let (ps, _) = plans("man(X) :- sex_guess[1](X, male, 1).");
        let Step::Atom(a) = &ps[0].steps[0] else {
            panic!()
        };
        // Positions 1 (male) and 2 (tid 1) are constants.
        assert_eq!(a.probe.len(), 2);
        assert_eq!(a.bind.len(), 1);
        assert_eq!(a.bind[0].0, 0);
    }

    #[test]
    fn atom_steps_on_finds_ordinary_only() {
        let (ps, i) = plans("p(X) :- q(X), q2(X), q[](X, 0), succ(Y, 1), r(Y).");
        let q = i.get("q").unwrap();
        let on_q = ps[0].atom_steps_on(q);
        assert_eq!(
            on_q.len(),
            1,
            "the ID-version of q is not a delta candidate"
        );
    }
}
