//! Sort inference for the two-sorted language.
//!
//! Every predicate column and every clause variable gets a sort (`u` or `i`).
//! Constraints come from constants, arithmetic predicates (all-`i`), tid
//! positions of ID-atoms (`i`), and equalities between occurrences. The
//! constraint graph is solved by fixpoint propagation; columns that remain
//! unconstrained default to `u` (the common case for purely relational
//! programs).

use idlog_common::{FxHashMap, Interner, RelType, Sort, SymbolId};
use idlog_parser::{Atom, Builtin, Literal, PredicateRef, Program, Term};

use crate::error::{CoreError, CoreResult};

/// Inferred column sorts for every predicate occurring in the program.
#[derive(Debug, Clone, Default)]
pub struct SortMap {
    cols: FxHashMap<(SymbolId, usize), Sort>,
    arities: FxHashMap<SymbolId, usize>,
}

impl SortMap {
    /// The inferred relation type of `pred` (columns default to `u`).
    pub fn rel_type(&self, pred: SymbolId) -> Option<RelType> {
        let arity = *self.arities.get(&pred)?;
        Some(RelType::new(
            (0..arity)
                .map(|c| self.cols.get(&(pred, c)).copied().unwrap_or(Sort::U))
                .collect(),
        ))
    }

    /// The inferred sort of one column (defaults to `u`).
    pub fn col_sort(&self, pred: SymbolId, col: usize) -> Sort {
        self.cols.get(&(pred, col)).copied().unwrap_or(Sort::U)
    }

    /// The *constraint* on one column: `None` when the program leaves the
    /// sort open (an input database may then use either sort).
    pub fn constraint(&self, pred: SymbolId, col: usize) -> Option<Sort> {
        self.cols.get(&(pred, col)).copied()
    }
}

/// One sort variable: a predicate column or a clause-local variable.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
enum Node {
    Col(SymbolId, usize),
    Var(usize, String),
}

/// Where a sort demand arose: one term occurrence in the program. Maps to
/// a source span through the parser's `SpanMap` side-table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SortSite {
    /// Term `term` of head atom `atom` in clause `clause`.
    Head {
        /// Clause index.
        clause: usize,
        /// Head atom index within the clause.
        atom: usize,
        /// Term position within the atom.
        term: usize,
    },
    /// Term (or builtin argument) `term` of body literal `literal` in
    /// clause `clause`.
    Body {
        /// Clause index.
        clause: usize,
        /// Body literal index within the clause.
        literal: usize,
        /// Term position within the literal.
        term: usize,
    },
}

/// One sort conflict, with enough structure for span-carrying diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SortConflict {
    /// Clause whose constraint exposed the conflict (`None` for conflicts
    /// between seed constraints).
    pub clause: Option<usize>,
    /// The occurrence whose demand exposed the conflict, when known.
    pub at: Option<SortSite>,
    /// The earlier occurrence that pinned the other sort, when known.
    pub first: Option<SortSite>,
    /// What conflicted.
    pub kind: SortConflictKind,
}

/// The shape of a sort conflict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SortConflictKind {
    /// A predicate column constrained to two different sorts.
    Column {
        /// The predicate.
        pred: SymbolId,
        /// Zero-based column.
        col: usize,
        /// The two demanded sorts.
        sorts: (Sort, Sort),
    },
    /// A clause variable constrained to two different sorts.
    Variable {
        /// The variable name.
        var: String,
        /// The two demanded sorts.
        sorts: (Sort, Sort),
    },
    /// A ground (dis)equality between constants of different sorts.
    GroundMismatch,
    /// A constant of the wrong sort in a position demanding `sort`.
    ConstantPosition {
        /// The demanded sort.
        sort: Sort,
    },
}

impl SortConflict {
    /// Human-readable explanation (matches the engine's historical wording).
    pub fn message(&self, interner: &Interner) -> String {
        match &self.kind {
            SortConflictKind::Column {
                pred,
                col,
                sorts: (a, b),
            } => format!(
                "column {} of {} is used both as sort {a} and sort {b}",
                col + 1,
                interner.resolve(*pred)
            ),
            SortConflictKind::Variable { var, sorts: (a, b) } => {
                let clause = self.clause.unwrap_or(0);
                format!("variable {var} in clause #{clause} is used both as sort {a} and sort {b}")
            }
            SortConflictKind::GroundMismatch => {
                let clause = self.clause.unwrap_or(0);
                format!("clause #{clause}: (dis)equality between different sorts")
            }
            SortConflictKind::ConstantPosition { sort } => {
                let clause = self.clause.unwrap_or(0);
                format!("clause #{clause}: constant of wrong sort in {sort} position")
            }
        }
    }
}

/// Infer sorts for `program`, whose predicates have the given `arities`.
pub fn infer(
    program: &Program,
    arities: &FxHashMap<SymbolId, usize>,
    interner: &Interner,
) -> CoreResult<SortMap> {
    infer_with_seeds(program, arities, interner, &[])
}

/// Like [`infer`], with additional seed constraints — used at evaluation
/// time to propagate the *actual* column sorts of the input database into
/// derived predicates whose sorts the program text leaves open (e.g. a
/// column only ever joined against an input column).
pub fn infer_with_seeds(
    program: &Program,
    arities: &FxHashMap<SymbolId, usize>,
    interner: &Interner,
    seeds: &[(SymbolId, usize, Sort)],
) -> CoreResult<SortMap> {
    let (map, conflicts) = infer_collect(program, arities, seeds);
    match conflicts.into_iter().next() {
        None => Ok(map),
        Some(c) => Err(CoreError::Sort {
            message: c.message(interner),
        }),
    }
}

/// Like [`infer_with_seeds`], but collects *every* conflict instead of
/// stopping at the first, and still returns the best-effort [`SortMap`]
/// (first constraint wins on conflicted nodes).
pub fn infer_collect(
    program: &Program,
    arities: &FxHashMap<SymbolId, usize>,
    seeds: &[(SymbolId, usize, Sort)],
) -> (SortMap, Vec<SortConflict>) {
    let mut solver = Solver {
        sorts: FxHashMap::default(),
        unions: Vec::new(),
        conflicts: Vec::new(),
    };
    for &(pred, col, sort) in seeds {
        solver.node_is(Node::Col(pred, col), sort, None, None);
    }

    for (ci, clause) in program.clauses.iter().enumerate() {
        for (hi, h) in clause.head.iter().enumerate() {
            solver.atom(ci, Loc::Head(hi), &h.atom);
        }
        for (li, l) in clause.body.iter().enumerate() {
            match l {
                Literal::Pos(a) | Literal::Neg(a) => solver.atom(ci, Loc::Body(li), a),
                Literal::Builtin { op, args } => solver.builtin(ci, li, *op, args),
                Literal::Choice { .. } | Literal::Cut => {
                    // Choice terms are variables/constants already constrained
                    // by their other occurrences; choice and cut are sort-free.
                }
            }
        }
    }
    solver.solve();

    let mut map = SortMap {
        cols: FxHashMap::default(),
        arities: arities.clone(),
    };
    for (node, (sort, _)) in solver.sorts {
        if let Node::Col(p, c) = node {
            map.cols.insert((p, c), sort);
        }
    }
    (map, solver.conflicts)
}

/// Which side of a clause an atom occurrence sits on.
#[derive(Clone, Copy)]
enum Loc {
    Head(usize),
    Body(usize),
}

impl Loc {
    fn site(self, clause: usize, term: usize) -> SortSite {
        match self {
            Loc::Head(atom) => SortSite::Head { clause, atom, term },
            Loc::Body(literal) => SortSite::Body {
                clause,
                literal,
                term,
            },
        }
    }
}

struct Solver {
    /// Each node's sort plus the occurrence that first demanded it.
    sorts: FxHashMap<Node, (Sort, Option<SortSite>)>,
    /// `(a, b, clause, site)` — nodes demanded equal by the occurrence at
    /// `site` in clause `clause`.
    unions: Vec<(Node, Node, usize, SortSite)>,
    conflicts: Vec<SortConflict>,
}

impl Solver {
    fn atom(&mut self, clause: usize, loc: Loc, atom: &Atom) {
        let (base, tid_pos) = match &atom.pred {
            PredicateRef::Ordinary(p) => (*p, None),
            PredicateRef::IdVersion { base, .. } => (*base, Some(atom.terms.len() - 1)),
        };
        for (pos, term) in atom.terms.iter().enumerate() {
            let site = loc.site(clause, pos);
            if Some(pos) == tid_pos {
                // Tid column is sort i and does not belong to the base pred.
                self.term_is(clause, site, term, Sort::I);
                continue;
            }
            match term {
                Term::Sym(_) => {
                    self.node_is(Node::Col(base, pos), Sort::U, Some(clause), Some(site))
                }
                Term::Int(_) => {
                    self.node_is(Node::Col(base, pos), Sort::I, Some(clause), Some(site))
                }
                Term::Var(v) => {
                    self.unions.push((
                        Node::Col(base, pos),
                        Node::Var(clause, v.clone()),
                        clause,
                        site,
                    ));
                }
            }
        }
    }

    fn builtin(&mut self, clause: usize, literal: usize, op: Builtin, args: &[Term]) {
        let site = |term| SortSite::Body {
            clause,
            literal,
            term,
        };
        match op {
            Builtin::Eq | Builtin::Ne => {
                // Both sides share a sort, whatever it is.
                let nodes: Vec<Option<Node>> = args
                    .iter()
                    .map(|t| match t {
                        Term::Var(v) => Some(Node::Var(clause, v.clone())),
                        _ => None,
                    })
                    .collect();
                match (&nodes[0], &nodes[1]) {
                    (Some(a), Some(b)) => self.unions.push((a.clone(), b.clone(), clause, site(0))),
                    (Some(n), None) => {
                        self.node_is(n.clone(), term_sort(&args[1]), Some(clause), Some(site(1)))
                    }
                    (None, Some(n)) => {
                        self.node_is(n.clone(), term_sort(&args[0]), Some(clause), Some(site(0)))
                    }
                    (None, None) => {
                        if term_sort(&args[0]) != term_sort(&args[1]) {
                            self.conflicts.push(SortConflict {
                                clause: Some(clause),
                                at: Some(site(1)),
                                first: Some(site(0)),
                                kind: SortConflictKind::GroundMismatch,
                            });
                        }
                    }
                }
            }
            _ => {
                // All arithmetic arguments are naturals.
                for (pos, t) in args.iter().enumerate() {
                    self.term_is(clause, site(pos), t, Sort::I);
                }
            }
        }
    }

    fn term_is(&mut self, clause: usize, site: SortSite, term: &Term, sort: Sort) {
        match term {
            Term::Var(v) => {
                self.node_is(Node::Var(clause, v.clone()), sort, Some(clause), Some(site))
            }
            other => {
                if term_sort(other) != sort {
                    self.conflicts.push(SortConflict {
                        clause: Some(clause),
                        at: Some(site),
                        first: None,
                        kind: SortConflictKind::ConstantPosition { sort },
                    });
                }
            }
        }
    }

    fn node_is(&mut self, node: Node, sort: Sort, clause: Option<usize>, site: Option<SortSite>) {
        if let Some(&(prev, prev_site)) = self.sorts.get(&node) {
            if prev != sort {
                self.conflicts
                    .push(conflict(&node, prev, sort, clause, site, prev_site));
            }
            return;
        }
        self.sorts.insert(node, (sort, site));
    }

    /// Propagate equalities until fixpoint, recording (without re-recording)
    /// every union whose two sides disagree.
    fn solve(&mut self) {
        let mut reported = vec![false; self.unions.len()];
        loop {
            let mut changed = false;
            for (idx, (a, b, clause, site)) in self.unions.clone().into_iter().enumerate() {
                match (self.sorts.get(&a).copied(), self.sorts.get(&b).copied()) {
                    (Some((sa, site_a)), Some((sb, site_b))) if sa != sb && !reported[idx] => {
                        reported[idx] = true;
                        // Anchor at the occurrence demanding the equality;
                        // point back at whichever prior demand disagrees.
                        let first = site_b.or(site_a);
                        self.conflicts
                            .push(conflict(&a, sa, sb, Some(clause), Some(site), first));
                    }
                    (Some((sa, _)), None) => {
                        self.sorts.insert(b.clone(), (sa, Some(site)));
                        changed = true;
                    }
                    (None, Some((sb, _))) => {
                        self.sorts.insert(a.clone(), (sb, Some(site)));
                        changed = true;
                    }
                    _ => {}
                }
            }
            if !changed {
                return;
            }
        }
    }
}

fn conflict(
    node: &Node,
    a: Sort,
    b: Sort,
    clause: Option<usize>,
    at: Option<SortSite>,
    first: Option<SortSite>,
) -> SortConflict {
    match node {
        Node::Col(p, c) => SortConflict {
            clause,
            at,
            first,
            kind: SortConflictKind::Column {
                pred: *p,
                col: *c,
                sorts: (a, b),
            },
        },
        Node::Var(var_clause, v) => SortConflict {
            clause: Some(*var_clause),
            at,
            first,
            kind: SortConflictKind::Variable {
                var: v.clone(),
                sorts: (a, b),
            },
        },
    }
}

fn term_sort(t: &Term) -> Sort {
    match t {
        Term::Sym(_) => Sort::U,
        Term::Int(_) => Sort::I,
        Term::Var(_) => unreachable!("callers handle variables"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idlog_parser::parse_program;

    fn arities_of(p: &Program) -> FxHashMap<SymbolId, usize> {
        let mut m = FxHashMap::default();
        for c in &p.clauses {
            for h in &c.head {
                m.insert(h.atom.pred.base(), h.atom.base_arity());
            }
            for l in &c.body {
                if let Some(a) = l.atom() {
                    m.insert(a.pred.base(), a.base_arity());
                }
            }
        }
        m
    }

    fn infer_src(src: &str) -> CoreResult<(SortMap, Interner, FxHashMap<SymbolId, usize>)> {
        let i = Interner::new();
        let p = parse_program(src, &i).unwrap();
        let a = arities_of(&p);
        infer(&p, &a, &i).map(|m| (m, i, a))
    }

    #[test]
    fn constants_fix_column_sorts() {
        let (m, i, _) = infer_src("p(a, 3).").unwrap();
        let p = i.get("p").unwrap();
        assert_eq!(m.col_sort(p, 0), Sort::U);
        assert_eq!(m.col_sort(p, 1), Sort::I);
        assert_eq!(m.rel_type(p).unwrap().to_string(), "01");
    }

    #[test]
    fn arithmetic_forces_i_through_variables() {
        let (m, i, _) = infer_src("q(X, N) :- p(X, N), succ(N, M), r(M).").unwrap();
        let q = i.get("q").unwrap();
        let r = i.get("r").unwrap();
        assert_eq!(m.col_sort(q, 0), Sort::U); // default
        assert_eq!(m.col_sort(q, 1), Sort::I); // via succ
        assert_eq!(m.col_sort(r, 0), Sort::I);
    }

    #[test]
    fn tid_position_is_i_but_base_columns_propagate() {
        let (m, i, _) = infer_src("two(N) :- emp[2](N, D, T), T < 2.").unwrap();
        let emp = i.get("emp").unwrap();
        assert_eq!(m.col_sort(emp, 0), Sort::U);
        assert_eq!(m.col_sort(emp, 1), Sort::U);
        // emp itself is binary; the tid is not a column of emp.
        assert_eq!(m.rel_type(emp).unwrap().arity(), 2);
    }

    #[test]
    fn conflict_is_reported() {
        // q(a) forces q's column to sort u; succ(X, Y) with X flowing from
        // q(X) forces the same column to sort i.
        let err = infer_src("q(a). p(X) :- q(X), succ(X, Y).").unwrap_err();
        match err {
            CoreError::Sort { message } => assert!(message.contains('q'), "{message}"),
            other => panic!("expected sort error, got {other:?}"),
        }
    }

    #[test]
    fn equality_unifies_sides() {
        let (m, i, _) = infer_src("p(X, Y) :- q(X), r(Y), X = Y, s(3), q(Z), Z = 4.").unwrap();
        let q = i.get("q").unwrap();
        // Z = 4 forces q's column to i... and X = Y keeps X,Y united; X in q
        // too, so q col is i, hence X and Y are i.
        assert_eq!(m.col_sort(q, 0), Sort::I);
        let p = i.get("p").unwrap();
        assert_eq!(m.col_sort(p, 0), Sort::I);
        assert_eq!(m.col_sort(p, 1), Sort::I);
    }

    #[test]
    fn ground_disequality_between_sorts_rejected() {
        let err = infer_src("p(X) :- q(X), a != 3.").unwrap_err();
        assert!(matches!(err, CoreError::Sort { .. }));
    }

    #[test]
    fn collect_reports_every_independent_conflict() {
        // Two unrelated conflicts: q's column (u vs i via succ) and r's
        // column (u via constant `a` vs i via constant 3).
        let i = Interner::new();
        let p = parse_program("q(a). p(X) :- q(X), succ(X, Y). r(a). r(3).", &i).unwrap();
        let a = arities_of(&p);
        let (_, conflicts) = infer_collect(&p, &a, &[]);
        assert_eq!(conflicts.len(), 2, "{conflicts:?}");
        assert!(conflicts
            .iter()
            .any(|c| matches!(&c.kind, SortConflictKind::Column { pred, .. }
                if i.resolve(*pred) == "q")));
        assert!(conflicts
            .iter()
            .any(|c| matches!(&c.kind, SortConflictKind::Column { pred, .. }
                if i.resolve(*pred) == "r")));
    }

    #[test]
    fn unconstrained_defaults_to_u() {
        let (m, i, _) = infer_src("p(X) :- q(X).").unwrap();
        let p = i.get("p").unwrap();
        assert_eq!(m.col_sort(p, 0), Sort::U);
    }
}
