//! Tid-observability analysis: how many tids of an ID-relation can a
//! program distinguish?
//!
//! The paper's footnotes 6–7 observe that a literal like
//! `emp[2](N, D, T), T < 2` "can be used to generate an optimization
//! information which ensures that only two tuples of the relation emp will
//! be used in the evaluation". This module derives that information: if
//! *every* occurrence of `p[s]` constrains its tid position to values `< k`
//! (a constant tid, or a variable used only in comparisons against
//! constants), then two ID-functions that agree on which tuples hold tids
//! `0..k` are indistinguishable, and all-answers enumeration may walk
//! k-prefix arrangements (falling factorial) instead of full permutations
//! (factorial) — see [`idlog_storage::BoundedAssignmentIter`].

use idlog_common::{FxHashMap, SymbolId};
use idlog_parser::{Builtin, Clause, Literal, PredicateRef, Program, Term};

use crate::program::ValidatedProgram;

/// For every ID-use whose tid is provably bounded in *all* occurrences, the
/// number of distinguishable tids `k` (observe tids `0..k` only).
pub fn tid_bounds(program: &ValidatedProgram) -> FxHashMap<(SymbolId, Vec<usize>), usize> {
    tid_bounds_ast(program.ast())
}

/// AST-level variant of [`tid_bounds`], usable before full validation (the
/// analysis only reads clause syntax) — e.g. by lint passes that want to
/// surface the optimization as a hint.
pub fn tid_bounds_ast(program: &Program) -> FxHashMap<(SymbolId, Vec<usize>), usize> {
    let mut bounds: FxHashMap<(SymbolId, Vec<usize>), Option<usize>> = FxHashMap::default();
    for clause in &program.clauses {
        for (li, lit) in clause.body.iter().enumerate() {
            let Some(atom) = lit.atom() else { continue };
            let PredicateRef::IdVersion { base, grouping } = &atom.pred else {
                continue;
            };
            let key = (*base, grouping.clone());
            let this = occurrence_bound(clause, li);
            let entry = bounds.entry(key).or_insert(Some(0));
            *entry = match (*entry, this) {
                (Some(a), Some(b)) => Some(a.max(b)),
                _ => None,
            };
        }
    }
    bounds
        .into_iter()
        .filter_map(|(k, v)| v.map(|b| (k, b)))
        .collect()
}

/// Bound for one ID-literal occurrence, or `None` when the tid leaks.
fn occurrence_bound(clause: &Clause, li: usize) -> Option<usize> {
    let atom = clause.body[li].atom().expect("caller checked");
    let tid_pos = atom.terms.len() - 1;
    match &atom.terms[tid_pos] {
        Term::Int(c) => Some(usize::try_from(*c).map_or(0, |c| c + 1)),
        Term::Sym(_) => Some(0), // wrong sort: never matches
        Term::Var(v) => {
            // The variable must occur nowhere else in the ID-atom itself.
            if atom.terms[..tid_pos].iter().any(|t| t.as_var() == Some(v)) {
                return None;
            }
            // ...nor in any head...
            for h in &clause.head {
                if h.atom.variables().contains(&v.as_str()) {
                    return None;
                }
            }
            // ...nor in any other body literal except bounding comparisons.
            let mut bound: Option<usize> = None;
            for (lj, other) in clause.body.iter().enumerate() {
                if lj == li {
                    continue;
                }
                match other {
                    Literal::Builtin { op, args } => match comparison_bound(*op, args, v) {
                        ComparisonUse::NotMentioned => {}
                        ComparisonUse::Bounds(b) => {
                            bound = Some(bound.map_or(b, |cur| cur.min(b)));
                        }
                        ComparisonUse::Leaks => return None,
                    },
                    _ => {
                        if other.variables().contains(&v.as_str()) {
                            return None;
                        }
                    }
                }
            }
            bound
        }
    }
}

enum ComparisonUse {
    NotMentioned,
    Bounds(usize),
    Leaks,
}

/// Does this builtin bound variable `v` from above by a constant?
fn comparison_bound(op: Builtin, args: &[Term], v: &str) -> ComparisonUse {
    let mentions = args.iter().any(|t| t.as_var() == Some(v));
    if !mentions {
        return ComparisonUse::NotMentioned;
    }
    let as_const = |t: &Term| match t {
        Term::Int(c) => usize::try_from(*c).ok(),
        _ => None,
    };
    // Only comparisons against an integer constant bound the tid; anything
    // else (another variable, a symbol) leaks it.
    match (op, &args[0], &args[1]) {
        // v < c, v <= c, v = c
        (Builtin::Lt, Term::Var(x), rhs) if x == v => match as_const(rhs) {
            Some(c) => ComparisonUse::Bounds(c),
            None => ComparisonUse::Leaks,
        },
        (Builtin::Le, Term::Var(x), rhs) if x == v => match as_const(rhs) {
            Some(c) => ComparisonUse::Bounds(c + 1),
            None => ComparisonUse::Leaks,
        },
        (Builtin::Eq, Term::Var(x), rhs) if x == v => match as_const(rhs) {
            Some(c) => ComparisonUse::Bounds(c + 1),
            None => ComparisonUse::Leaks,
        },
        // c > v, c >= v, c = v
        (Builtin::Gt, lhs, Term::Var(x)) if x == v => match as_const(lhs) {
            Some(c) => ComparisonUse::Bounds(c),
            None => ComparisonUse::Leaks,
        },
        (Builtin::Ge, lhs, Term::Var(x)) if x == v => match as_const(lhs) {
            Some(c) => ComparisonUse::Bounds(c + 1),
            None => ComparisonUse::Leaks,
        },
        (Builtin::Eq, lhs, Term::Var(x)) if x == v => match as_const(lhs) {
            Some(c) => ComparisonUse::Bounds(c + 1),
            None => ComparisonUse::Leaks,
        },
        _ => ComparisonUse::Leaks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idlog_common::Interner;
    use std::sync::Arc;

    fn bounds_of(src: &str) -> FxHashMap<(String, Vec<usize>), usize> {
        let interner = Arc::new(Interner::new());
        let p = ValidatedProgram::parse(src, Arc::clone(&interner)).unwrap();
        tid_bounds(&p)
            .into_iter()
            .map(|((s, g), b)| ((interner.resolve(s), g), b))
            .collect()
    }

    #[test]
    fn constant_tid_bounds_to_c_plus_one() {
        let b = bounds_of("pick(N) :- emp[2](N, D, 0).");
        assert_eq!(b.get(&("emp".into(), vec![1])), Some(&1));
        let b = bounds_of("pick(N) :- emp[2](N, D, 3).");
        assert_eq!(b.get(&("emp".into(), vec![1])), Some(&4));
    }

    #[test]
    fn comparison_bounds() {
        let b = bounds_of("two(N) :- emp[2](N, D, T), T < 2.");
        assert_eq!(b.get(&("emp".into(), vec![1])), Some(&2));
        let b = bounds_of("two(N) :- emp[2](N, D, T), T <= 2.");
        assert_eq!(b.get(&("emp".into(), vec![1])), Some(&3));
        let b = bounds_of("two(N) :- emp[2](N, D, T), 2 > T.");
        assert_eq!(b.get(&("emp".into(), vec![1])), Some(&2));
        let b = bounds_of("two(N) :- emp[2](N, D, T), T = 1.");
        assert_eq!(b.get(&("emp".into(), vec![1])), Some(&2));
    }

    #[test]
    fn leaking_tid_is_unbounded() {
        // Tid flows to the head.
        assert!(bounds_of("pick(N, T) :- emp[2](N, D, T), T < 5.").is_empty());
        // Tid joins with another literal.
        assert!(bounds_of("pick(N) :- emp[2](N, D, T), lim(T).").is_empty());
        // Tid in arithmetic other than a constant comparison.
        assert!(bounds_of("pick(N) :- emp[2](N, D, T), num(M), T < M.").is_empty());
        // No constraint at all.
        assert!(bounds_of("pick(N) :- emp[2](N, D, T), T >= 0.").is_empty());
    }

    #[test]
    fn multiple_occurrences_take_the_max_or_poison() {
        let b = bounds_of(
            "a(N) :- emp[2](N, D, 0).
             b(N) :- emp[2](N, D, T), T < 3.",
        );
        assert_eq!(b.get(&("emp".into(), vec![1])), Some(&3));
        let b = bounds_of(
            "a(N) :- emp[2](N, D, 0).
             b(N, T) :- emp[2](N, D, T), T < 3.",
        );
        assert!(b.is_empty(), "one leaking occurrence poisons the use");
    }

    #[test]
    fn distinct_groupings_are_independent() {
        let b = bounds_of(
            "a(N) :- emp[2](N, D, 0).
             b(N, T) :- emp[1](N, D, T), T < 9.",
        );
        assert_eq!(b.get(&("emp".into(), vec![1])), Some(&1));
        assert_eq!(b.get(&("emp".into(), vec![0])), None);
    }

    #[test]
    fn negated_id_literal_with_constant_tid() {
        let b = bounds_of("rest(N, D) :- emp(N, D), not emp[2](N, D, 0).");
        assert_eq!(b.get(&("emp".into(), vec![1])), Some(&1));
    }
}
