//! Goal-directed relevance: binding-pattern adornment analysis and the
//! certified magic-sets rewrite.
//!
//! A *point query* asks for a small slice of the perfect model — e.g.
//! `query(Y) :- ancestor(ann, Y).` over a huge `parent` EDB — yet bottom-up
//! evaluation computes the whole model because nothing tells the engine
//! which facts are relevant. The classic remedy is static: *adorn* every
//! reachable predicate with a bound/free binding pattern propagated by a
//! sideways-information-passing strategy (SIPS), then rewrite the program
//! with *magic* predicates so that bottom-up evaluation only derives facts
//! relevant to the query constants.
//!
//! This module implements the analysis and the rewrite for the
//! deterministic **left-to-right SIPS**: walking a clause body in textual
//! order, a variable is bound once the bound head positions, the constants,
//! or an earlier positive literal have produced it.
//!
//! The analysis either *certifies* the query (every reachable adorned goal
//! is evaluable) or *refuses* with a span-addressable witness walk:
//!
//! * **floundering** — a negated literal or a builtin is reached with
//!   required positions unbound under the left-to-right SIPS
//!   ([`RefusalReason::Floundering`], surfaced as lint `W030`);
//! * **choice blocked** — the reachable region contains an ID-literal (or
//!   `choice`/`!`): the magic guards would prune the base relation under a
//!   group-wise tid assignment, duplicating or splitting a choice point
//!   ([`RefusalReason::ChoiceSite`], surfaced as lint `W031`, mirroring the
//!   [`crate::taint`] witnesses).
//!
//! On a certificate, [`magic_program`] is a pure `Program → Program`
//! rewrite: adorned predicates with bound positions are renamed (`p__bf`),
//! their clauses guarded by `magic_p__bf(bound args)`, and magic rules are
//! derived from rule-body prefixes — with the query's own constants
//! degenerating into magic *seed facts*. Predicates only ever needed in
//! full (the root, negation targets, all-free occurrences) keep their
//! original name and stay unguarded, so the output predicate of the
//! transformed program is byte-identical to the direct evaluation.

use idlog_common::{FxHashMap, FxHashSet, Interner, SymbolId, Value};
use idlog_parser::{Atom, Clause, Literal, Program, Term};
use idlog_storage::Database;

use crate::eval::EvalOutput;
use crate::program::ValidatedProgram;
use crate::safety::{allowed_modes, builtin_mode_ok, mode_string};

/// Name prefix of the guard predicates introduced by [`magic_program`].
pub const MAGIC_PREFIX: &str = "magic_";

/// A predicate together with one reachable binding pattern (`true` =
/// bound). The all-free pattern is tracked separately by the analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdornedPred {
    /// The predicate.
    pub pred: SymbolId,
    /// Boundness per argument position under the left-to-right SIPS.
    pub pattern: Vec<bool>,
}

impl AdornedPred {
    /// Render as the classic `p^bf` notation.
    pub fn display(&self, interner: &Interner) -> String {
        format!(
            "{}^{}",
            interner.resolve(self.pred),
            pattern_string(&self.pattern)
        )
    }
}

/// Render a binding pattern as `b`/`f` characters (`bf` = first bound).
pub fn pattern_string(pattern: &[bool]) -> String {
    pattern.iter().map(|&b| if b { 'b' } else { 'f' }).collect()
}

/// One step of a refusal witness walk, from the query root down to the
/// offending literal. Mirrors the shape of [`crate::taint::TaintStep`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelevanceStep {
    /// The literal at `(clause, literal)` passes bindings into `to` with
    /// the given pattern — one sideways hop of the SIPS.
    Goal {
        /// Clause index in the analyzed program.
        clause: usize,
        /// Body literal index within that clause.
        literal: usize,
        /// The predicate the walk enters.
        to: SymbolId,
        /// The binding pattern it is entered with.
        pattern: Vec<bool>,
    },
    /// The literal at `(clause, literal)` flounders: boundness is required
    /// but not available under the left-to-right SIPS.
    Flounder {
        /// Clause index in the analyzed program.
        clause: usize,
        /// Body literal index within that clause.
        literal: usize,
        /// Why the literal cannot run (unbound negation, builtin mode).
        message: String,
    },
    /// The literal at `(clause, literal)` is a choice site (ID-literal,
    /// `choice`, or `!`) that magic guards must not split.
    Choice {
        /// Clause index in the analyzed program.
        clause: usize,
        /// Body literal index within that clause.
        literal: usize,
    },
}

/// Why relevance certification was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefusalReason {
    /// A goal floundered under the left-to-right SIPS (lint `W030`).
    Floundering,
    /// The reachable region contains a choice site (lint `W031`).
    ChoiceSite,
}

/// A refusal with its witness walk (never empty: the final step is the
/// offending [`RelevanceStep::Flounder`] or [`RelevanceStep::Choice`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelevanceRefusal {
    /// Why certification was refused.
    pub reason: RefusalReason,
    /// Goal hops from the root, ending at the offending literal.
    pub walk: Vec<RelevanceStep>,
}

impl RelevanceRefusal {
    /// The `(clause, literal)` site of the offending (final) step.
    pub fn site(&self) -> (usize, usize) {
        match self.walk.last() {
            Some(
                RelevanceStep::Flounder {
                    clause, literal, ..
                }
                | RelevanceStep::Choice { clause, literal }
                | RelevanceStep::Goal {
                    clause, literal, ..
                },
            ) => (*clause, *literal),
            None => (0, 0),
        }
    }

    /// One-line human rendering of the walk, for error messages.
    pub fn render(&self, interner: &Interner) -> String {
        let mut out = String::new();
        for step in &self.walk {
            match step {
                RelevanceStep::Goal {
                    to,
                    pattern,
                    clause,
                    literal,
                } => {
                    out.push_str(&format!(
                        " -> {}^{} (clause {}, literal {})",
                        interner.resolve(*to),
                        pattern_string(pattern),
                        clause,
                        literal
                    ));
                }
                RelevanceStep::Flounder {
                    clause,
                    literal,
                    message,
                } => {
                    out.push_str(&format!(
                        " -> flounders at clause {clause}, literal {literal}: {message}"
                    ));
                }
                RelevanceStep::Choice { clause, literal } => {
                    out.push_str(&format!(
                        " -> choice site at clause {clause}, literal {literal} \
                         (magic guards must not split a choice point)"
                    ));
                }
            }
        }
        format!("query root{out}")
    }
}

/// The result of the binding-pattern dataflow for one query root.
#[derive(Debug, Clone, Default)]
pub struct RelevanceAnalysis {
    /// Reachable adorned predicates with at least one bound position, in
    /// deterministic discovery (BFS) order.
    adorned: Vec<AdornedPred>,
    /// Predicates also (or only) needed in full — the root, negation
    /// targets, and all-free occurrences — in discovery order.
    all_free: Vec<SymbolId>,
    /// IDB predicates reachable from the root (denominator of
    /// [`RelevanceAnalysis::pruned_fraction`]).
    related_idb: usize,
    /// The refusal, when the analysis could not certify.
    refusal: Option<RelevanceRefusal>,
}

impl RelevanceAnalysis {
    /// True when every reachable adorned goal is evaluable and choice-free:
    /// [`magic_program`] is semantics-preserving.
    pub fn certified(&self) -> bool {
        self.refusal.is_none()
    }

    /// True when this is a certified *point query*: at least one reachable
    /// predicate is entered with a bound position, so magic guards prune.
    pub fn is_point_query(&self) -> bool {
        self.certified() && !self.adorned.is_empty()
    }

    /// The refusal witness, when not certified.
    pub fn refusal(&self) -> Option<&RelevanceRefusal> {
        self.refusal.as_ref()
    }

    /// Reachable adorned predicates with at least one bound position.
    pub fn adorned(&self) -> &[AdornedPred] {
        &self.adorned
    }

    /// Predicates needed in full (unguarded in the rewrite).
    pub fn all_free(&self) -> &[SymbolId] {
        &self.all_free
    }

    /// `(guarded, reachable)` IDB predicate counts: `guarded` predicates
    /// are only ever entered with bound positions, so *every* clause of
    /// theirs gets a magic guard — the statically pruned fraction of the
    /// dependency graph.
    pub fn pruned_fraction(&self) -> (usize, usize) {
        let free: FxHashSet<SymbolId> = self.all_free.iter().copied().collect();
        let mut guarded: FxHashSet<SymbolId> = FxHashSet::default();
        for a in &self.adorned {
            if !free.contains(&a.pred) {
                guarded.insert(a.pred);
            }
        }
        (guarded.len(), self.related_idb)
    }

    /// A stable cache-key component describing this analysis, used by the
    /// server to key prepared magic plans.
    pub fn fingerprint(&self) -> String {
        match &self.refusal {
            None => {
                let (guarded, total) = self.pruned_fraction();
                format!(
                    "relevance=cert;point={};guarded={guarded}/{total}",
                    self.is_point_query()
                )
            }
            Some(r) => match r.reason {
                RefusalReason::Floundering => "relevance=flounder".to_string(),
                RefusalReason::ChoiceSite => "relevance=choice".to_string(),
            },
        }
    }
}

/// One positive IDB occurrence discovered while walking a clause, with the
/// binding pattern the left-to-right SIPS passes into it.
struct Occurrence {
    literal: usize,
    base: SymbolId,
    pattern: Vec<bool>,
}

/// Everything the walk of one clause under one head pattern yields.
struct ClauseWalk {
    occurrences: Vec<Occurrence>,
    refusal: Option<(usize, RelevanceStep)>,
    plain: Vec<(usize, SymbolId)>,
}

/// Walk `clause`'s body textually left to right with the head positions of
/// `pattern` bound, recording every positive IDB occurrence's adornment,
/// every IDB predicate needed in full, and the first floundering or choice
/// site.
fn walk_clause(clause: &Clause, pattern: &[bool], idb: &FxHashSet<SymbolId>) -> ClauseWalk {
    let mut bound: FxHashSet<&str> = FxHashSet::default();
    let head = &clause.head[0].atom;
    for (pos, term) in head.terms.iter().enumerate() {
        if pattern.get(pos).copied().unwrap_or(false) {
            if let Term::Var(v) = term {
                bound.insert(v.as_str());
            }
        }
    }
    let mut walk = ClauseWalk {
        occurrences: Vec::new(),
        refusal: None,
        plain: Vec::new(),
    };
    let refuse = |walk: &mut ClauseWalk, li: usize, step: RelevanceStep| {
        if walk.refusal.is_none() {
            walk.refusal = Some((li, step));
        }
    };
    for (li, lit) in clause.body.iter().enumerate() {
        match lit {
            Literal::Pos(a) => {
                if a.pred.is_id_version() {
                    refuse(
                        &mut walk,
                        li,
                        RelevanceStep::Choice {
                            clause: 0,
                            literal: li,
                        },
                    );
                } else {
                    let base = a.pred.base();
                    if idb.contains(&base) {
                        let pat: Vec<bool> = a
                            .terms
                            .iter()
                            .map(|t| {
                                t.is_ground()
                                    || matches!(t, Term::Var(v) if bound.contains(v.as_str()))
                            })
                            .collect();
                        if pat.iter().any(|&b| b) {
                            walk.occurrences.push(Occurrence {
                                literal: li,
                                base,
                                pattern: pat,
                            });
                        } else {
                            walk.plain.push((li, base));
                        }
                    }
                }
                for t in &a.terms {
                    if let Term::Var(v) = t {
                        bound.insert(v.as_str());
                    }
                }
            }
            Literal::Neg(a) => {
                if a.pred.is_id_version() {
                    refuse(
                        &mut walk,
                        li,
                        RelevanceStep::Choice {
                            clause: 0,
                            literal: li,
                        },
                    );
                    continue;
                }
                let unbound: Vec<&str> = a
                    .terms
                    .iter()
                    .filter_map(Term::as_var)
                    .filter(|v| !bound.contains(v))
                    .collect();
                if !unbound.is_empty() {
                    refuse(
                        &mut walk,
                        li,
                        RelevanceStep::Flounder {
                            clause: 0,
                            literal: li,
                            message: format!(
                                "negated goal reached with {} unbound \
                                 under the left-to-right SIPS",
                                unbound
                                    .iter()
                                    .map(|v| format!("`{v}`"))
                                    .collect::<Vec<_>>()
                                    .join(", ")
                            ),
                        },
                    );
                }
                let base = a.pred.base();
                if idb.contains(&base) {
                    walk.plain.push((li, base));
                }
            }
            Literal::Builtin { op, args } => {
                let pat: Vec<bool> = args
                    .iter()
                    .map(|t| {
                        t.is_ground() || matches!(t, Term::Var(v) if bound.contains(v.as_str()))
                    })
                    .collect();
                if !builtin_mode_ok(*op, &pat) {
                    refuse(
                        &mut walk,
                        li,
                        RelevanceStep::Flounder {
                            clause: 0,
                            literal: li,
                            message: format!(
                                "`{}` reached with binding pattern {} but its input \
                                 modes allow only {}",
                                op.name(),
                                mode_string(&pat),
                                allowed_modes(*op)
                            ),
                        },
                    );
                }
                for t in args {
                    if let Term::Var(v) = t {
                        bound.insert(v.as_str());
                    }
                }
            }
            Literal::Choice { .. } | Literal::Cut => {
                refuse(
                    &mut walk,
                    li,
                    RelevanceStep::Choice {
                        clause: 0,
                        literal: li,
                    },
                );
            }
        }
    }
    walk
}

type TaskKey = (SymbolId, Vec<bool>);

/// Compute the reachable adorned predicates of `program` for a query on
/// `root` with all output positions free (boundness originates from the
/// constants in clause bodies), under the deterministic left-to-right SIPS.
///
/// The walk is a BFS over `(predicate, pattern)` tasks, so both the
/// discovery order and the refusal witness are deterministic.
pub fn analyze_relevance(program: &Program, root: SymbolId) -> RelevanceAnalysis {
    let idb: FxHashSet<SymbolId> = program.head_predicates();
    let mut clauses_of: FxHashMap<SymbolId, Vec<usize>> = FxHashMap::default();
    for (ci, clause) in program.clauses.iter().enumerate() {
        clauses_of
            .entry(clause.head[0].atom.pred.base())
            .or_default()
            .push(ci);
    }

    let root_arity = clauses_of
        .get(&root)
        .and_then(|cs| cs.first())
        .map(|&ci| program.clauses[ci].head[0].atom.terms.len())
        .unwrap_or(0);

    let mut analysis = RelevanceAnalysis::default();
    let mut seen: FxHashSet<TaskKey> = FxHashSet::default();
    let mut parent: FxHashMap<TaskKey, (Option<TaskKey>, usize, usize)> = FxHashMap::default();
    let mut queue: std::collections::VecDeque<TaskKey> = std::collections::VecDeque::new();
    let mut reachable_idb: FxHashSet<SymbolId> = FxHashSet::default();

    let root_key: TaskKey = (root, vec![false; root_arity]);
    seen.insert(root_key.clone());
    parent.insert(root_key.clone(), (None, 0, 0));
    queue.push_back(root_key);
    reachable_idb.insert(root);
    analysis.all_free.push(root);

    while let Some(task) = queue.pop_front() {
        let (pred, pattern) = &task;
        let Some(clauses) = clauses_of.get(pred) else {
            continue;
        };
        for &ci in clauses {
            let clause = &program.clauses[ci];
            let walk = walk_clause(clause, pattern, &idb);
            let enqueue =
                |key: TaskKey,
                 li: usize,
                 seen: &mut FxHashSet<TaskKey>,
                 parent: &mut FxHashMap<TaskKey, (Option<TaskKey>, usize, usize)>,
                 queue: &mut std::collections::VecDeque<TaskKey>| {
                    if seen.insert(key.clone()) {
                        parent.insert(key.clone(), (Some(task.clone()), ci, li));
                        queue.push_back(key);
                    }
                };
            for occ in &walk.occurrences {
                reachable_idb.insert(occ.base);
                if analysis
                    .adorned
                    .iter()
                    .all(|a| a.pred != occ.base || a.pattern != occ.pattern)
                {
                    analysis.adorned.push(AdornedPred {
                        pred: occ.base,
                        pattern: occ.pattern.clone(),
                    });
                }
                enqueue(
                    (occ.base, occ.pattern.clone()),
                    occ.literal,
                    &mut seen,
                    &mut parent,
                    &mut queue,
                );
            }
            for &(li, base) in &walk.plain {
                reachable_idb.insert(base);
                let arity = program.clauses[clauses_of[&base][0]].head[0]
                    .atom
                    .terms
                    .len();
                if !analysis.all_free.contains(&base) {
                    analysis.all_free.push(base);
                }
                enqueue(
                    (base, vec![false; arity]),
                    li,
                    &mut seen,
                    &mut parent,
                    &mut queue,
                );
            }
            if let Some((_, step)) = walk.refusal {
                // Rebuild the Goal chain from the root to this task, then
                // pin the offending step to its real clause index.
                let mut hops: Vec<RelevanceStep> = Vec::new();
                let mut at = Some(task.clone());
                while let Some(key) = at {
                    let (prev, pci, pli) = parent[&key].clone();
                    if prev.is_some() {
                        hops.push(RelevanceStep::Goal {
                            clause: pci,
                            literal: pli,
                            to: key.0,
                            pattern: key.1.clone(),
                        });
                    }
                    at = prev;
                }
                hops.reverse();
                let step = match step {
                    RelevanceStep::Flounder {
                        literal, message, ..
                    } => RelevanceStep::Flounder {
                        clause: ci,
                        literal,
                        message,
                    },
                    RelevanceStep::Choice { literal, .. } => RelevanceStep::Choice {
                        clause: ci,
                        literal,
                    },
                    goal => goal,
                };
                let reason = match &step {
                    RelevanceStep::Choice { .. } => RefusalReason::ChoiceSite,
                    _ => RefusalReason::Floundering,
                };
                hops.push(step);
                analysis.refusal = Some(RelevanceRefusal { reason, walk: hops });
                analysis.related_idb = reachable_idb.len();
                return analysis;
            }
        }
    }
    analysis.related_idb = reachable_idb.len();
    analysis
}

/// The renamed predicate for an adorned occurrence, e.g. `ancestor__bf`.
fn adorned_symbol(interner: &Interner, pred: SymbolId, pattern: &[bool]) -> SymbolId {
    interner.intern(&format!(
        "{}__{}",
        interner.resolve(pred),
        pattern_string(pattern)
    ))
}

/// The magic guard predicate for an adorned predicate, e.g.
/// `magic_ancestor__bf` (arity = number of bound positions).
fn magic_symbol(interner: &Interner, pred: SymbolId, pattern: &[bool]) -> SymbolId {
    interner.intern(&format!(
        "{MAGIC_PREFIX}{}__{}",
        interner.resolve(pred),
        pattern_string(pattern)
    ))
}

/// Apply the magic-sets transformation for a query on `root`, guided by a
/// certified `analysis` (returns `None` on a refusal — callers surface the
/// witness instead of rewriting).
///
/// The rewrite is pure `Program → Program`: for every reachable
/// `(predicate, pattern)` pair with bound positions, each clause of the
/// predicate is copied with its head renamed to `p__bf…`, a guard
/// `magic_p__bf…(bound head args)` prepended, and bound positive IDB body
/// occurrences renamed to their adorned versions; a *magic rule* per bound
/// occurrence derives the guard tuples from the prefix of the body before
/// it (supplementary predicates are not needed for the left-to-right SIPS —
/// the prefix literals serve directly). Predicates reached all-free (the
/// root, negation targets) keep their original name and clauses unguarded,
/// and a bound occurrence in a prefix with no guard and no preceding
/// literals degenerates into a magic **seed fact** over the query
/// constants. EDB literals are never renamed or guarded.
pub fn magic_program(
    program: &Program,
    root: SymbolId,
    interner: &Interner,
    analysis: &RelevanceAnalysis,
) -> Option<Program> {
    if !analysis.certified() {
        return None;
    }
    let idb: FxHashSet<SymbolId> = program.head_predicates();
    let mut clauses_of: FxHashMap<SymbolId, Vec<usize>> = FxHashMap::default();
    for (ci, clause) in program.clauses.iter().enumerate() {
        clauses_of
            .entry(clause.head[0].atom.pred.base())
            .or_default()
            .push(ci);
    }
    let root_arity = clauses_of
        .get(&root)
        .and_then(|cs| cs.first())
        .map(|&ci| program.clauses[ci].head[0].atom.terms.len())
        .unwrap_or(0);

    // Tasks in deterministic order: the all-free predicates first (root
    // leading), then every bound adornment in discovery order.
    let mut tasks: Vec<TaskKey> = Vec::new();
    let mut task_set: FxHashSet<TaskKey> = FxHashSet::default();
    let push = |key: TaskKey, tasks: &mut Vec<TaskKey>, set: &mut FxHashSet<TaskKey>| {
        if set.insert(key.clone()) {
            tasks.push(key);
        }
    };
    push((root, vec![false; root_arity]), &mut tasks, &mut task_set);
    for &p in &analysis.all_free {
        if let Some(cs) = clauses_of.get(&p) {
            let arity = program.clauses[cs[0]].head[0].atom.terms.len();
            push((p, vec![false; arity]), &mut tasks, &mut task_set);
        }
    }
    for a in &analysis.adorned {
        push((a.pred, a.pattern.clone()), &mut tasks, &mut task_set);
    }

    let bound_terms = |atom: &Atom, pattern: &[bool]| -> Vec<Term> {
        atom.terms
            .iter()
            .zip(pattern)
            .filter(|(_, &b)| b)
            .map(|(t, _)| t.clone())
            .collect()
    };

    let mut rules: Vec<Clause> = Vec::new();
    let mut seeds: Vec<Clause> = Vec::new();
    for (pred, pattern) in &tasks {
        let free = pattern.iter().all(|&b| !b);
        let Some(clauses) = clauses_of.get(pred) else {
            continue;
        };
        for &ci in clauses {
            let clause = &program.clauses[ci];
            let walk = walk_clause(clause, pattern, &idb);
            debug_assert!(walk.refusal.is_none(), "rewrite requires a certificate");
            let adorned_at: FxHashMap<usize, &Occurrence> =
                walk.occurrences.iter().map(|o| (o.literal, o)).collect();
            // Transformed body: bound positive IDB occurrences renamed.
            let body: Vec<Literal> = clause
                .body
                .iter()
                .enumerate()
                .map(|(li, lit)| match (lit, adorned_at.get(&li)) {
                    (Literal::Pos(a), Some(occ)) => Literal::Pos(Atom::ordinary(
                        adorned_symbol(interner, occ.base, &occ.pattern),
                        a.terms.clone(),
                    )),
                    _ => lit.clone(),
                })
                .collect();
            let head_atom = &clause.head[0].atom;
            let guard = (!free).then(|| {
                Literal::Pos(Atom::ordinary(
                    magic_symbol(interner, *pred, pattern),
                    bound_terms(head_atom, pattern),
                ))
            });
            // Magic rules: one per bound occurrence, from the body prefix.
            for occ in &walk.occurrences {
                let src = clause.body[occ.literal]
                    .atom()
                    .expect("occurrence indexes a positive atom");
                let magic_head = Atom::ordinary(
                    magic_symbol(interner, occ.base, &occ.pattern),
                    bound_terms(src, &occ.pattern),
                );
                let magic_body: Vec<Literal> = guard
                    .iter()
                    .cloned()
                    .chain(body[..occ.literal].iter().cloned())
                    .collect();
                let rule = Clause::new(magic_head, magic_body);
                if rule.is_fact() {
                    seeds.push(rule);
                } else {
                    rules.push(rule);
                }
            }
            // The rewritten clause itself.
            let new_head = if free {
                Atom::ordinary(head_atom.pred.base(), head_atom.terms.clone())
            } else {
                Atom::ordinary(
                    adorned_symbol(interner, *pred, pattern),
                    head_atom.terms.clone(),
                )
            };
            let new_body: Vec<Literal> = guard.into_iter().chain(body).collect();
            rules.push(Clause::new(new_head, new_body));
        }
    }
    let clauses: Vec<Clause> = seeds.into_iter().chain(rules).collect();
    Some(Program { clauses })
}

/// The *tuples pruned* metric of one magic evaluation: for every EDB atom
/// in a guarded clause of the transformed program, the number of stored
/// tuples the magic guard's bindings (and the atom's constants) rule out of
/// the join. Computed post-hoc from the final relations, so it is
/// byte-identical across thread counts and backends, and `0` when nothing
/// was prunable.
pub fn magic_tuples_pruned(magic: &ValidatedProgram, db: &Database, out: &EvalOutput) -> u64 {
    let interner = magic.interner();
    let mut projections: FxHashMap<(SymbolId, usize), FxHashSet<Value>> = FxHashMap::default();
    let project = |pred: SymbolId, col: usize, out: &EvalOutput| -> FxHashSet<Value> {
        let name = interner.resolve(pred);
        let mut set = FxHashSet::default();
        if let Some(rel) = out.relation(&name) {
            for t in rel.iter() {
                if let Some(&v) = t.values().get(col) {
                    set.insert(v);
                }
            }
        }
        set
    };
    #[derive(Hash, PartialEq, Eq, Clone)]
    enum Constraint {
        InGuard(SymbolId, usize),
        Equal(Value),
    }
    let mut counted: FxHashSet<(SymbolId, Vec<(usize, Constraint)>)> = FxHashSet::default();
    let mut pruned: u64 = 0;
    for clause in &magic.ast().clauses {
        // A guarded clause starts with its magic guard.
        let Some(Literal::Pos(guard)) = clause.body.first() else {
            continue;
        };
        let guard_pred = guard.pred.base();
        if !interner.resolve(guard_pred).starts_with(MAGIC_PREFIX) {
            continue;
        }
        let mut guard_cols: FxHashMap<&str, usize> = FxHashMap::default();
        for (col, term) in guard.terms.iter().enumerate() {
            if let Term::Var(v) = term {
                guard_cols.entry(v.as_str()).or_insert(col);
            }
        }
        for lit in &clause.body[1..] {
            let Literal::Pos(atom) = lit else { continue };
            let base = atom.pred.base();
            if !magic.inputs().contains(&base) {
                continue;
            }
            let mut constraints: Vec<(usize, Constraint)> = Vec::new();
            let mut restricted = false;
            for (col, term) in atom.terms.iter().enumerate() {
                match term {
                    Term::Var(v) => {
                        if let Some(&gcol) = guard_cols.get(v.as_str()) {
                            constraints.push((col, Constraint::InGuard(guard_pred, gcol)));
                            restricted = true;
                        }
                    }
                    Term::Sym(s) => constraints.push((col, Constraint::Equal(Value::Sym(*s)))),
                    Term::Int(i) => constraints.push((col, Constraint::Equal(Value::Int(*i)))),
                }
            }
            if !restricted || !counted.insert((base, constraints.clone())) {
                continue;
            }
            let Some(rel) = db.relation_by_id(base) else {
                continue;
            };
            for (col, c) in &constraints {
                if let Constraint::InGuard(gp, gc) = c {
                    let _ = (col, gp, gc);
                    projections
                        .entry((*gp, *gc))
                        .or_insert_with(|| project(*gp, *gc, out));
                }
            }
            let relevant = rel
                .iter()
                .filter(|t| {
                    constraints.iter().all(|(col, c)| {
                        let Some(&v) = t.values().get(*col) else {
                            return false;
                        };
                        match c {
                            Constraint::Equal(want) => v == *want,
                            Constraint::InGuard(gp, gc) => projections[&(*gp, *gc)].contains(&v),
                        }
                    })
                })
                .count();
            pruned += (rel.len() - relevant) as u64;
        }
    }
    pruned
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use idlog_parser::parse_program;

    const ANCESTOR: &str = "
        ancestor(X, Y) :- parent(X, Y).
        ancestor(X, Z) :- ancestor(X, Y), parent(Y, Z).
        query(Y) :- ancestor(ann, Y).
    ";

    fn analyzed(src: &str, root: &str) -> (RelevanceAnalysis, Program, Arc<Interner>) {
        let interner = Arc::new(Interner::new());
        let program = parse_program(src, &interner).expect("test program parses");
        let a = analyze_relevance(&program, interner.intern(root));
        (a, program, interner)
    }

    #[test]
    fn ancestor_point_query_is_certified() {
        let (a, _, interner) = analyzed(ANCESTOR, "query");
        assert!(a.certified());
        assert!(a.is_point_query());
        let shown: Vec<String> = a.adorned().iter().map(|p| p.display(&interner)).collect();
        assert_eq!(shown, vec!["ancestor^bf"]);
        assert_eq!(a.pruned_fraction(), (1, 2));
        assert!(
            a.fingerprint().contains("point=true"),
            "{}",
            a.fingerprint()
        );
    }

    #[test]
    fn all_free_query_is_certified_but_not_point() {
        let (a, _, _) = analyzed("tc(X, Y) :- e(X, Y). tc(X, Z) :- tc(X, Y), e(Y, Z).", "tc");
        assert!(a.certified());
        assert!(!a.is_point_query());
        assert!(a.adorned().is_empty());
        assert_eq!(a.pruned_fraction(), (0, 1));
    }

    #[test]
    fn unbound_negation_flounders_with_witness_walk() {
        let src = "
            reach(X, Y) :- edge(X, Y).
            reach(X, Z) :- reach(X, Y), edge(Y, Z).
            unreached(X, Y) :- not reach(X, Y), node(Y).
            q(Y) :- unreached(a, Y).
        ";
        let (a, _, interner) = analyzed(src, "q");
        assert!(!a.certified());
        let r = a.refusal().expect("refused");
        assert_eq!(r.reason, RefusalReason::Floundering);
        // The walk hops into unreached^bf, then flounders at the negation.
        assert!(matches!(
            r.walk.first(),
            Some(RelevanceStep::Goal { to, pattern, .. })
                if *to == interner.intern("unreached") && pattern == &vec![true, false]
        ));
        match r.walk.last() {
            Some(RelevanceStep::Flounder {
                clause,
                literal,
                message,
            }) => {
                assert_eq!((*clause, *literal), (2, 0));
                assert!(message.contains("`Y`"), "{message}");
            }
            other => panic!("unexpected final step {other:?}"),
        }
        assert!(r.render(&interner).contains("unreached^bf"));
    }

    #[test]
    fn builtin_mode_flounders() {
        let src = "
            scaled(X, Y) :- times(X, K, Y), factor(K).
            q(Y) :- scaled(Y, 42).
        ";
        // `times` needs two bound arguments, but under the left-to-right
        // SIPS it is reached as ffb (only the head-bound product).
        let (a, _, _) = analyzed(src, "q");
        assert!(!a.certified());
        let r = a.refusal().unwrap();
        assert_eq!(r.reason, RefusalReason::Floundering);
        match r.walk.last() {
            Some(RelevanceStep::Flounder { message, .. }) => {
                assert!(message.contains("times"), "{message}");
                assert!(message.contains("mode"), "{message}");
            }
            other => panic!("unexpected final step {other:?}"),
        }
    }

    #[test]
    fn id_literal_blocks_with_choice_witness() {
        let src = "
            picked(X, Y) :- pref[2](X, Y, 0).
            pref(X, Y) :- likes(X, Y).
            q(Y) :- picked(a, Y).
        ";
        let (a, _, _) = analyzed(src, "q");
        assert!(!a.certified());
        let r = a.refusal().unwrap();
        assert_eq!(r.reason, RefusalReason::ChoiceSite);
        assert!(matches!(
            r.walk.last(),
            Some(RelevanceStep::Choice {
                clause: 0,
                literal: 0
            })
        ));
    }

    #[test]
    fn magic_rewrite_has_seed_guard_and_magic_rule() {
        let (a, program, interner) = analyzed(ANCESTOR, "query");
        let magic =
            magic_program(&program, interner.intern("query"), &interner, &a).expect("certified");
        let rendered = format!("{}", magic.display(&interner));
        // Seed fact from the query constant.
        assert!(rendered.contains("magic_ancestor__bf(ann)."), "{rendered}");
        // Guarded adorned clauses.
        assert!(
            rendered.contains("ancestor__bf(X, Y) :- magic_ancestor__bf(X), parent(X, Y)."),
            "{rendered}"
        );
        // The recursive magic rule chases bound arguments forward.
        assert!(
            rendered.contains("magic_ancestor__bf(X) :- magic_ancestor__bf(X)."),
            "{rendered}"
        );
        // The root keeps its name and reads the adorned predicate.
        assert!(
            rendered.contains("query(Y) :- ancestor__bf(ann, Y)."),
            "{rendered}"
        );
        // EDB literals are untouched.
        assert!(!rendered.contains("magic_parent"), "{rendered}");
    }

    #[test]
    fn magic_rewrite_refused_without_certificate() {
        let src = "picked(X) :- pool[](X, 0). q(X) :- picked(X).";
        let (a, program, interner) = analyzed(src, "q");
        assert!(magic_program(&program, interner.intern("q"), &interner, &a).is_none());
    }

    #[test]
    fn magic_program_validates_and_agrees_with_direct() {
        let interner = Arc::new(Interner::new());
        let program = parse_program(ANCESTOR, &interner).unwrap();
        let a = analyze_relevance(&program, interner.intern("query"));
        let magic = magic_program(&program, interner.intern("query"), &interner, &a).unwrap();
        let direct = ValidatedProgram::new(program, Arc::clone(&interner)).unwrap();
        let magicked = ValidatedProgram::new(magic, Arc::clone(&interner)).unwrap();

        let mut db = idlog_storage::Database::with_interner(Arc::clone(&interner));
        for (x, y) in [
            ("ann", "bob"),
            ("bob", "cal"),
            ("cal", "dee"),
            ("eve", "fay"),
            ("fay", "gus"),
        ] {
            db.insert_syms("parent", &[x, y]).unwrap();
        }
        let opts = crate::EvalOptions::serial();
        let d =
            crate::eval::evaluate_with_options(&direct, &db, &mut crate::CanonicalOracle, &opts)
                .unwrap();
        let m =
            crate::eval::evaluate_with_options(&magicked, &db, &mut crate::CanonicalOracle, &opts)
                .unwrap();
        let dr = d.relation("query").unwrap();
        let mr = m.relation("query").unwrap();
        assert!(dr.set_eq(mr), "magic answers differ from direct");
        assert_eq!(dr.len(), 3);
        // Profit: the magic run derives strictly fewer tuples (it never
        // touches the eve/fay branch).
        assert!(
            m.stats().inserted < d.stats().inserted,
            "magic {} vs direct {}",
            m.stats().inserted,
            d.stats().inserted
        );
        // And the pruned metric sees the irrelevant parent tuples.
        let pruned = magic_tuples_pruned(&magicked, &db, &m);
        assert!(pruned > 0, "expected pruned EDB tuples");
    }

    #[test]
    fn negation_target_is_kept_plain_and_answers_agree() {
        let src = "
            good(X) :- cand(X), not bad(X).
            bad(X) :- flag(X).
            q(X) :- good(X).
        ";
        // `good` is reached all-free, `bad` is a negation target: both stay
        // plain and the rewrite degenerates to the original program shape.
        let (a, program, interner) = analyzed(src, "q");
        assert!(a.certified());
        assert!(!a.is_point_query());
        let magic = magic_program(&program, interner.intern("q"), &interner, &a).unwrap();
        let rendered = format!("{}", magic.display(&interner));
        assert!(!rendered.contains("magic_"), "{rendered}");
    }
}
