//! Human-readable evaluation plans.
//!
//! [`explain`] renders what the engine will do with a program: the strata,
//! each clause's join order (the safe order found by [`crate::safety`]),
//! which ID-relations are read and with what tid bounds, and the inferred
//! relation types. The `idlog check` CLI command prints this.

use std::fmt::Write as _;

use idlog_parser::Literal;

use crate::error::CoreResult;
use crate::program::ValidatedProgram;
use crate::tidbound::tid_bounds;

/// Render an evaluation plan for `program`.
pub fn explain(program: &ValidatedProgram) -> CoreResult<String> {
    let interner = program.interner();
    let strat = program.stratification();
    let bounds = tid_bounds(program);
    let mut out = String::new();

    let mut inputs: Vec<String> = program
        .inputs()
        .iter()
        .map(|&p| interner.resolve(p))
        .collect();
    inputs.sort();
    let _ = writeln!(out, "inputs: {}", inputs.join(", "));

    let by_stratum = strat.clauses_by_stratum(program.ast());
    for (k, clause_ids) in by_stratum.iter().enumerate() {
        if clause_ids.is_empty() {
            continue;
        }
        let _ = writeln!(out, "stratum {k}:");
        for &ci in clause_ids {
            let clause = &program.ast().clauses[ci];
            let _ = writeln!(out, "  {}", clause.display(interner));
            if clause.body.len() > 1 {
                let order = &program.clause_order(ci).order;
                let steps: Vec<String> = order
                    .iter()
                    .map(|&li| clause.body[li].display(interner).to_string())
                    .collect();
                let _ = writeln!(out, "    order: {}", steps.join("  ->  "));
            }
            for lit in &clause.body {
                if let Literal::Pos(a) | Literal::Neg(a) = lit {
                    if let idlog_parser::PredicateRef::IdVersion { base, grouping } = &a.pred {
                        let name = interner.resolve(*base);
                        let attrs: Vec<String> =
                            grouping.iter().map(|g| (g + 1).to_string()).collect();
                        let bound = bounds
                            .get(&(*base, grouping.clone()))
                            .map_or("unbounded (full permutation walk)".to_string(), |k| {
                                format!("tids < {k} observable (k-prefix walk)")
                            });
                        let _ = writeln!(
                            out,
                            "    reads ID-relation {name}[{}]: {bound}",
                            attrs.join(",")
                        );
                    }
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn explain_shows_strata_orders_and_bounds() {
        let program = ValidatedProgram::parse(
            "reach(X) :- start(X).
             reach(Y) :- reach(X), e(X, Y).
             pick(N) :- reach[](N, T), T < 2, big(N).
             rest(N) :- reach(N), not pick(N).",
            Arc::new(crate::Interner::new()),
        )
        .unwrap();
        let text = explain(&program).unwrap();
        assert!(text.contains("inputs: big, e, start"), "{text}");
        assert!(text.contains("stratum 0:"), "{text}");
        assert!(text.contains("stratum 1:"), "{text}");
        assert!(text.contains("stratum 2:"), "{text}");
        assert!(text.contains("reads ID-relation reach[]"), "{text}");
        assert!(text.contains("tids < 2 observable"), "{text}");
        assert!(text.contains("order:"), "{text}");
    }

    #[test]
    fn explain_marks_unbounded_uses() {
        let program = ValidatedProgram::parse(
            "expose(N, T) :- emp[2](N, D, T).",
            Arc::new(crate::Interner::new()),
        )
        .unwrap();
        let text = explain(&program).unwrap();
        assert!(text.contains("unbounded (full permutation walk)"), "{text}");
    }
}
