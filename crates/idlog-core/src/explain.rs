//! Human-readable evaluation plans.
//!
//! [`explain`] renders what the engine will do with a program: the strata,
//! each clause's join order (the safe order found by [`crate::safety`]),
//! which ID-relations are read and with what tid bounds, and the inferred
//! relation types. The `idlog check` CLI command prints this.
//! [`explain_analyze`] renders the same plan annotated with measured
//! per-clause counters from a [`Profile`] — the `EXPLAIN ANALYZE` of the
//! engine, surfaced by `idlog explain --analyze`.

use std::collections::HashMap;
use std::fmt::Write as _;

use idlog_parser::Literal;

use crate::error::CoreResult;
use crate::profile::Profile;
use crate::program::ValidatedProgram;
use crate::tidbound::tid_bounds;

/// Render an evaluation plan for `program`.
pub fn explain(program: &ValidatedProgram) -> CoreResult<String> {
    render(program, None)
}

/// Render an evaluation plan annotated with measured counters.
///
/// `profile` must come from evaluating the *same* `program` (same clause
/// indices) with [`crate::EvalOptions::profile`] enabled; clauses the run
/// never instantiated are annotated `measured: (not fired)`.
pub fn explain_analyze(program: &ValidatedProgram, profile: &Profile) -> CoreResult<String> {
    render(program, Some(profile))
}

fn render(program: &ValidatedProgram, profile: Option<&Profile>) -> CoreResult<String> {
    let interner = program.interner();
    let strat = program.stratification();
    let bounds = tid_bounds(program);
    let mut out = String::new();

    // Measured per-clause totals, when analyzing.
    let measured: HashMap<usize, _> = profile
        .map(|p| {
            p.per_rule_totals()
                .into_iter()
                .map(|t| (t.clause, t))
                .collect()
        })
        .unwrap_or_default();

    let mut inputs: Vec<String> = program
        .inputs()
        .iter()
        .map(|&p| interner.resolve(p))
        .collect();
    inputs.sort();
    let _ = writeln!(out, "inputs: {}", inputs.join(", "));

    let by_stratum = strat.clauses_by_stratum(program.ast());
    for (k, clause_ids) in by_stratum.iter().enumerate() {
        if clause_ids.is_empty() {
            continue;
        }
        let _ = writeln!(out, "stratum {k}:");
        if let Some(p) = profile {
            for sp in p.strata.iter().filter(|sp| sp.index == k) {
                for idr in &sp.id_relations {
                    let _ = writeln!(
                        out,
                        "  materialized ID-relation {}: {} tuples in {} group(s)",
                        idr.display_name(),
                        idr.tuples,
                        idr.groups
                    );
                }
            }
        }
        for &ci in clause_ids {
            let clause = &program.ast().clauses[ci];
            let _ = writeln!(out, "  {}", clause.display(interner));
            if clause.body.len() > 1 {
                let order = &program.clause_order(ci).order;
                let steps: Vec<String> = order
                    .iter()
                    .map(|&li| clause.body[li].display(interner).to_string())
                    .collect();
                let _ = writeln!(out, "    order: {}", steps.join("  ->  "));
            }
            for lit in &clause.body {
                if let Literal::Pos(a) | Literal::Neg(a) = lit {
                    if let idlog_parser::PredicateRef::IdVersion { base, grouping } = &a.pred {
                        let name = interner.resolve(*base);
                        let attrs: Vec<String> =
                            grouping.iter().map(|g| (g + 1).to_string()).collect();
                        let bound = bounds
                            .get(&(*base, grouping.clone()))
                            .map_or("unbounded (full permutation walk)".to_string(), |k| {
                                format!("tids < {k} observable (k-prefix walk)")
                            });
                        let _ = writeln!(
                            out,
                            "    reads ID-relation {name}[{}]: {bound}",
                            attrs.join(",")
                        );
                    }
                }
            }
            if profile.is_some() {
                match measured.get(&ci) {
                    Some(t) => {
                        let _ = writeln!(
                            out,
                            "    measured: inst={} derived={} inserted={} redundant={} \
                             probes={} builtins={} rounds={} shards={}",
                            t.stats.instantiations,
                            t.stats.derived,
                            t.stats.inserted,
                            t.redundant(),
                            t.stats.probes,
                            t.stats.builtin_evals,
                            t.rounds,
                            t.shards
                        );
                    }
                    None => {
                        let _ = writeln!(out, "    measured: (not fired)");
                    }
                }
            }
        }
    }
    if let Some(p) = profile {
        let _ = writeln!(out, "totals: {}", p.totals);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EvalOptions;
    use crate::eval::evaluate_with_options;
    use crate::tid::CanonicalOracle;
    use std::sync::Arc;

    #[test]
    fn explain_shows_strata_orders_and_bounds() {
        let program = ValidatedProgram::parse(
            "reach(X) :- start(X).
             reach(Y) :- reach(X), e(X, Y).
             pick(N) :- reach[](N, T), T < 2, big(N).
             rest(N) :- reach(N), not pick(N).",
            Arc::new(crate::Interner::new()),
        )
        .unwrap();
        let text = explain(&program).unwrap();
        assert!(text.contains("inputs: big, e, start"), "{text}");
        assert!(text.contains("stratum 0:"), "{text}");
        assert!(text.contains("stratum 1:"), "{text}");
        assert!(text.contains("stratum 2:"), "{text}");
        assert!(text.contains("reads ID-relation reach[]"), "{text}");
        assert!(text.contains("tids < 2 observable"), "{text}");
        assert!(text.contains("order:"), "{text}");
        assert!(!text.contains("measured:"), "{text}");
        assert!(!text.contains("totals:"), "{text}");
    }

    #[test]
    fn explain_marks_unbounded_uses() {
        let program = ValidatedProgram::parse(
            "expose(N, T) :- emp[2](N, D, T).",
            Arc::new(crate::Interner::new()),
        )
        .unwrap();
        let text = explain(&program).unwrap();
        assert!(text.contains("unbounded (full permutation walk)"), "{text}");
    }

    #[test]
    fn explain_analyze_annotates_measured_counters() {
        let program = ValidatedProgram::parse(
            "reach(X) :- start(X).
             reach(Y) :- reach(X), e(X, Y).
             pick(N) :- reach[](N, 0).",
            Arc::new(crate::Interner::new()),
        )
        .unwrap();
        let mut db = idlog_storage::Database::with_interner(Arc::clone(program.interner()));
        db.insert_syms("start", &["a"]).unwrap();
        db.insert_syms("e", &["a", "b"]).unwrap();
        db.insert_syms("e", &["b", "c"]).unwrap();
        let out = evaluate_with_options(
            &program,
            &db,
            &mut CanonicalOracle,
            &EvalOptions::serial().profile(true),
        )
        .unwrap();
        let profile = out.profile().expect("profiling enabled");
        let text = explain_analyze(&program, profile).unwrap();
        assert!(text.contains("measured: inst="), "{text}");
        assert!(text.contains("materialized ID-relation reach[]"), "{text}");
        assert!(text.contains("totals: "), "{text}");
        // Every clause gets an annotation line (fired or not).
        assert_eq!(text.matches("measured:").count(), 3, "{text}");
    }
}
