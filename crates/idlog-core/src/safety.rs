//! Safety checking and body-literal ordering.
//!
//! The paper (§2.2) requires every use of an arithmetic predicate to have "a
//! sufficient number of arguments positively bound": for `+` the allowed
//! bound/unbound patterns are exactly `bbb, bbn, bnb, nbb, nnb`. We implement
//! that discipline as *mode tables* ([`builtin_mode_ok`]) plus a backtracking
//! search for an evaluation order of the body in which every literal's mode
//! is satisfied when it runs, negations are fully bound, and all head
//! variables end up bound. The order found is also the join order the
//! planner executes, so safety checking and planning agree by construction.

use idlog_common::FxHashSet;
use idlog_parser::{Builtin, Clause, Literal, Term};

use crate::error::{CoreError, CoreResult};

/// Is this builtin evaluable with the given argument boundness (`true` =
/// bound)? The tables admit exactly the patterns with finitely many
/// solutions over ℕ:
///
/// * `succ`: at least one side bound.
/// * `plus(A,B,C)`: two bound, or only `C` bound (`A+B=C` has `C+1` roots).
/// * `minus(A,B,C)` (`A−B=C`, i.e. `B+C=A`): two bound, or only `A` bound.
/// * `times`: two bound (`C` alone is unsafe: `0·B=0` has infinitely many `B`).
/// * `div(A,B,C)` (`B·C=A`, `B≠0`): `bbb`, `bbn`, `nbb` (`bnb`/`bnn` are
///   unsafe when `A=0`).
/// * `<`/`<=`: both bound, or left free with right bound (finite prefix of ℕ).
/// * `>`/`>=`: both bound, or right free with left bound.
/// * `=`: at least one side bound. `!=`: both bound.
pub fn builtin_mode_ok(op: Builtin, bound: &[bool]) -> bool {
    let n = bound.iter().filter(|&&b| b).count();
    match op {
        Builtin::Succ => n >= 1,
        Builtin::Plus => n >= 2 || bound == [false, false, true],
        Builtin::Minus => n >= 2 || bound == [true, false, false],
        Builtin::Times => n >= 2,
        Builtin::Div => {
            matches!(
                bound,
                [true, true, true] | [true, true, false] | [false, true, true]
            )
        }
        Builtin::Lt | Builtin::Le => bound[1],
        Builtin::Gt | Builtin::Ge => bound[0],
        Builtin::Eq => n >= 1,
        Builtin::Ne => n == 2,
    }
}

/// The allowed binding patterns of `op`'s mode-table row, paper §2.2 style
/// (`b` = bound, `n` = not bound).
pub fn allowed_modes(op: Builtin) -> &'static str {
    match op {
        Builtin::Succ => "bb, bn, nb",
        Builtin::Plus => "bbb, bbn, bnb, nbb, nnb",
        Builtin::Minus => "bbb, bbn, bnb, nbb, bnn",
        Builtin::Times => "bbb, bbn, bnb, nbb",
        Builtin::Div => "bbb, bbn, nbb",
        Builtin::Lt | Builtin::Le => "bb, nb",
        Builtin::Gt | Builtin::Ge => "bb, bn",
        Builtin::Eq => "bb, bn, nb",
        Builtin::Ne => "bb",
    }
}

/// Render a boundness pattern as a mode-table row, e.g. `bnn`.
pub fn mode_string(pattern: &[bool]) -> String {
    pattern.iter().map(|&b| if b { 'b' } else { 'n' }).collect()
}

/// Why one body literal cannot run given the variables bound so far.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StuckReason {
    /// A builtin whose binding pattern matches no row of its mode table.
    BuiltinMode {
        /// The arithmetic predicate.
        op: Builtin,
        /// Observed boundness per argument (`true` = bound).
        pattern: Vec<bool>,
    },
    /// A negated literal with variables bound nowhere else.
    UnboundNegation {
        /// The variables that never become bound.
        unbound: Vec<String>,
    },
    /// A choice literal with variables bound nowhere else.
    UnboundChoice {
        /// The variables that never become bound.
        unbound: Vec<String>,
    },
}

/// One structured safety violation in a clause.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SafetyViolation {
    /// No complete safe order exists; the listed literals stay stuck after a
    /// maximal safe prefix has run.
    NoSafeOrder {
        /// `(body literal index, why it cannot run)` for each stuck literal.
        stuck: Vec<(usize, StuckReason)>,
    },
    /// A head variable not bound anywhere in the body.
    UnboundHeadVar {
        /// Head atom index.
        head: usize,
        /// The unbound variable.
        var: String,
    },
}

impl StuckReason {
    /// Human-readable explanation.
    pub fn message(&self) -> String {
        match self {
            StuckReason::BuiltinMode { op, pattern } => format!(
                "`{}` has binding pattern {} but its mode table allows only {}",
                op.name(),
                mode_string(pattern),
                allowed_modes(*op)
            ),
            StuckReason::UnboundNegation { unbound } => {
                format!("negated literal never gets {} bound", join_vars(unbound))
            }
            StuckReason::UnboundChoice { unbound } => {
                format!("choice literal never gets {} bound", join_vars(unbound))
            }
        }
    }
}

fn join_vars(vars: &[String]) -> String {
    let list = vars
        .iter()
        .map(|v| format!("`{v}`"))
        .collect::<Vec<_>>()
        .join(", ");
    if vars.len() == 1 {
        format!("variable {list}")
    } else {
        format!("variables {list}")
    }
}

impl SafetyViolation {
    /// Human-readable explanation (no clause prefix).
    pub fn message(&self) -> String {
        match self {
            SafetyViolation::NoSafeOrder { stuck } => {
                let details = stuck
                    .iter()
                    .map(|(_, r)| r.message())
                    .collect::<Vec<_>>()
                    .join("; ");
                format!("no safe evaluation order: {details}")
            }
            SafetyViolation::UnboundHeadVar { var, .. } => {
                format!("head variable {var} is not bound by the body")
            }
        }
    }
}

/// A safe evaluation order for one clause body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClauseOrder {
    /// Indices into `clause.body`, in execution order.
    pub order: Vec<usize>,
}

/// Check one clause completely, collecting every violation instead of
/// stopping at the first. On success returns the safe order found.
pub fn analyze_clause(clause: &Clause) -> Result<ClauseOrder, Vec<SafetyViolation>> {
    let body = &clause.body;
    let mut order = Vec::with_capacity(body.len());
    let mut used = vec![false; body.len()];
    let mut bound: FxHashSet<&str> = FxHashSet::default();

    if !search(body, &mut used, &mut bound, &mut order) {
        return Err(vec![SafetyViolation::NoSafeOrder {
            stuck: stuck_literals(body),
        }]);
    }

    // Every head variable must be bound by the body (or be a constant).
    let mut violations = Vec::new();
    for (hi, h) in clause.head.iter().enumerate() {
        for v in h.atom.variables() {
            if !bound.contains(v) {
                violations.push(SafetyViolation::UnboundHeadVar {
                    head: hi,
                    var: v.to_string(),
                });
            }
        }
    }
    if violations.is_empty() {
        Ok(ClauseOrder { order })
    } else {
        Err(violations)
    }
}

/// Find a safe evaluation order for `clause` (see module docs), or explain
/// why none exists. `clause_idx` is used only for error reporting.
pub fn order_clause(clause: &Clause, clause_idx: usize) -> CoreResult<ClauseOrder> {
    analyze_clause(clause).map_err(|violations| CoreError::Safety {
        clause: clause_idx,
        message: violations
            .first()
            .map(SafetyViolation::message)
            .unwrap_or_else(|| "unsafe clause".into()),
    })
}

/// Run a greedy maximal safe prefix, then report why each leftover literal
/// is stuck. Used only after the backtracking search has failed, so the
/// leftovers are a genuine witness that no complete order exists.
fn stuck_literals(body: &[Literal]) -> Vec<(usize, StuckReason)> {
    let mut used = vec![false; body.len()];
    let mut bound: FxHashSet<&str> = FxHashSet::default();
    loop {
        let next = (0..body.len())
            .find(|&i| !used[i] && !matches!(eligibility(&body[i], &bound), Eligibility::No));
        match next {
            Some(i) => {
                used[i] = true;
                for v in body[i].variables() {
                    bound.insert(v);
                }
            }
            None => break,
        }
    }
    let unbound_of = |terms: &[Term], bound: &FxHashSet<&str>| -> Vec<String> {
        let mut seen = Vec::new();
        for t in terms {
            if let Term::Var(v) = t {
                if !bound.contains(v.as_str()) && !seen.contains(v) {
                    seen.push(v.clone());
                }
            }
        }
        seen
    };
    let mut stuck = Vec::new();
    for (i, lit) in body.iter().enumerate() {
        if used[i] {
            continue;
        }
        let reason = match lit {
            Literal::Builtin { op, args } => StuckReason::BuiltinMode {
                op: *op,
                pattern: args.iter().map(|t| term_bound(t, &bound)).collect(),
            },
            Literal::Neg(a) => StuckReason::UnboundNegation {
                unbound: unbound_of(&a.terms, &bound),
            },
            Literal::Choice { grouped, chosen } => {
                let mut terms = grouped.clone();
                terms.extend(chosen.iter().cloned());
                StuckReason::UnboundChoice {
                    unbound: unbound_of(&terms, &bound),
                }
            }
            // Positive atoms and cut are always eligible, so they cannot be
            // stuck.
            Literal::Pos(_) | Literal::Cut => continue,
        };
        stuck.push((i, reason));
    }
    stuck
}

/// Depth-first search for a complete safe order. Preference at each step:
/// fully-bound filters first (cheap, shrink intermediate results), then
/// positive atoms (most-bound first), then generating builtins.
fn search<'a>(
    body: &'a [Literal],
    used: &mut [bool],
    bound: &mut FxHashSet<&'a str>,
    order: &mut Vec<usize>,
) -> bool {
    if order.len() == body.len() {
        return true;
    }
    let mut candidates: Vec<(u32, usize)> = Vec::new();
    for (i, lit) in body.iter().enumerate() {
        if used[i] {
            continue;
        }
        match eligibility(lit, bound) {
            Eligibility::No => {}
            Eligibility::Filter => candidates.push((0, i)),
            Eligibility::PosAtom { bound_positions } => {
                // Lower rank = tried earlier; more bound positions first.
                candidates.push((2 + (64 - bound_positions.min(64)) as u32, i))
            }
            Eligibility::Generator => candidates.push((100, i)),
        }
    }
    candidates.sort_unstable();
    for (_, i) in candidates {
        used[i] = true;
        order.push(i);
        let newly: Vec<&str> = body[i]
            .variables()
            .into_iter()
            .filter(|v| !bound.contains(*v))
            .collect();
        for v in &newly {
            bound.insert(v);
        }
        if search(body, used, bound, order) {
            return true;
        }
        for v in &newly {
            bound.remove(v);
        }
        order.pop();
        used[i] = false;
    }
    false
}

enum Eligibility {
    No,
    /// All variables already bound: a pure test.
    Filter,
    /// Positive atom; binds its variables.
    PosAtom {
        bound_positions: u64,
    },
    /// Builtin with a satisfied mode that still binds new variables.
    Generator,
}

fn eligibility(lit: &Literal, bound: &FxHashSet<&str>) -> Eligibility {
    let all_bound = |terms: &[Term]| terms.iter().all(|t| term_bound(t, bound));
    match lit {
        Literal::Pos(a) => {
            let bound_positions = a.terms.iter().filter(|t| term_bound(t, bound)).count() as u64;
            Eligibility::PosAtom { bound_positions }
        }
        Literal::Neg(a) => {
            if all_bound(&a.terms) {
                Eligibility::Filter
            } else {
                Eligibility::No
            }
        }
        Literal::Builtin { op, args } => {
            let pattern: Vec<bool> = args.iter().map(|t| term_bound(t, bound)).collect();
            if !builtin_mode_ok(*op, &pattern) {
                Eligibility::No
            } else if pattern.iter().all(|&b| b) {
                Eligibility::Filter
            } else {
                Eligibility::Generator
            }
        }
        Literal::Cut => Eligibility::Filter,
        Literal::Choice { grouped, chosen } => {
            // KN88 requires choice variables to occur in ordinary body
            // literals; by the time all other literals ran they are bound.
            if all_bound(grouped) && all_bound(chosen) {
                Eligibility::Filter
            } else {
                Eligibility::No
            }
        }
    }
}

fn term_bound(t: &Term, bound: &FxHashSet<&str>) -> bool {
    match t {
        Term::Var(v) => bound.contains(v.as_str()),
        _ => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idlog_common::Interner;
    use idlog_parser::parse_clause;

    fn order_src(src: &str) -> CoreResult<ClauseOrder> {
        let i = Interner::new();
        let c = parse_clause(src, &i).unwrap();
        order_clause(&c, 0)
    }

    #[test]
    fn paper_plus_mode_table() {
        use Builtin::Plus;
        // Paper §2.2: allowed are bbb, bbn, bnb, nbb, nnb.
        assert!(builtin_mode_ok(Plus, &[true, true, true]));
        assert!(builtin_mode_ok(Plus, &[true, true, false]));
        assert!(builtin_mode_ok(Plus, &[true, false, true]));
        assert!(builtin_mode_ok(Plus, &[false, true, true]));
        assert!(builtin_mode_ok(Plus, &[false, false, true]));
        assert!(!builtin_mode_ok(Plus, &[true, false, false]));
        assert!(!builtin_mode_ok(Plus, &[false, true, false]));
        assert!(!builtin_mode_ok(Plus, &[false, false, false]));
    }

    #[test]
    fn paper_example_p1_is_unsafe_p2_is_safe() {
        // Paper §2.2: p1(X,N) :- q(X,N), plus(N,L,M) is NOT allowed
        // (1 + L = M has infinitely many solutions), while
        // p2(X,N) :- q(X,N), plus(L,M,N) IS allowed.
        assert!(order_src("p1(X, N) :- q(X, N), plus(N, L, M).").is_err());
        let ord = order_src("p2(X, N) :- q(X, N), plus(L, M, N).").unwrap();
        assert_eq!(ord.order, vec![0, 1]);
    }

    #[test]
    fn filters_run_before_atoms_when_possible() {
        let ord = order_src("p(X) :- q(X), r(X), X != a.").unwrap();
        // q binds X; then the filter X != a runs before the second atom.
        assert_eq!(ord.order[0], 0);
        assert_eq!(ord.order[1], 2);
        assert_eq!(ord.order[2], 1);
    }

    #[test]
    fn negation_needs_bound_vars() {
        assert!(order_src("p(X) :- q(X), not r(X).").is_ok());
        assert!(order_src("p(X) :- q(X), not r(Y).").is_err());
    }

    #[test]
    fn unbound_head_variable_is_unsafe() {
        let err = order_src("p(X, Y) :- q(X).").unwrap_err();
        match err {
            CoreError::Safety { message, .. } => assert!(message.contains('Y'), "{message}"),
            other => panic!("expected safety error, got {other:?}"),
        }
    }

    #[test]
    fn builtin_chain_is_ordered() {
        // succ needs one side bound; plus nnb generates; order must be
        // q, plus (nnb via N), succ.
        let ord = order_src("p(L) :- q(N), plus(L, M, N), succ(M, K), K < 10.").unwrap();
        assert_eq!(ord.order[0], 0);
        assert_eq!(ord.order[1], 1);
    }

    #[test]
    fn comparison_half_modes() {
        assert!(builtin_mode_ok(Builtin::Lt, &[false, true]));
        assert!(!builtin_mode_ok(Builtin::Lt, &[true, false]));
        assert!(builtin_mode_ok(Builtin::Gt, &[true, false]));
        assert!(!builtin_mode_ok(Builtin::Gt, &[false, true]));
        assert!(builtin_mode_ok(Builtin::Eq, &[false, true]));
        assert!(!builtin_mode_ok(Builtin::Ne, &[false, true]));
    }

    #[test]
    fn tid_comparison_clause_orders() {
        // The paper's sampling clause: emp[2] binds N, D, T; then T < 2.
        let ord = order_src("two(N) :- emp[2](N, D, T), T < 2.").unwrap();
        assert_eq!(ord.order, vec![0, 1]);
    }

    #[test]
    fn generator_lt_binds_variable() {
        // N < 3 with N free and 3 bound: generates N ∈ {0,1,2}.
        let ord = order_src("p(N) :- N < 3.").unwrap();
        assert_eq!(ord.order, vec![0]);
    }

    #[test]
    fn analyze_collects_every_unbound_head_var() {
        let i = Interner::new();
        let c = parse_clause("p(X, Y, Z) :- q(X).", &i).unwrap();
        let violations = analyze_clause(&c).unwrap_err();
        assert_eq!(violations.len(), 2);
        assert!(violations
            .iter()
            .all(|v| matches!(v, SafetyViolation::UnboundHeadVar { .. })));
    }

    #[test]
    fn stuck_builtin_reports_pattern_and_mode_row() {
        let i = Interner::new();
        let c = parse_clause("p1(X, N) :- q(X, N), plus(N, L, M).", &i).unwrap();
        let violations = analyze_clause(&c).unwrap_err();
        let [SafetyViolation::NoSafeOrder { stuck }] = &violations[..] else {
            panic!("expected NoSafeOrder, got {violations:?}");
        };
        let [(1, StuckReason::BuiltinMode { op, pattern })] = &stuck[..] else {
            panic!("expected one stuck builtin, got {stuck:?}");
        };
        assert_eq!(*op, Builtin::Plus);
        assert_eq!(pattern, &vec![true, false, false]);
        let msg = violations[0].message();
        assert!(msg.contains("bnn"), "{msg}");
        assert!(msg.contains("nnb"), "{msg}");
    }

    #[test]
    fn stuck_negation_names_the_unbound_variable() {
        let i = Interner::new();
        let c = parse_clause("p(X) :- q(X), not r(Y).", &i).unwrap();
        let violations = analyze_clause(&c).unwrap_err();
        let [SafetyViolation::NoSafeOrder { stuck }] = &violations[..] else {
            panic!("{violations:?}");
        };
        let [(1, StuckReason::UnboundNegation { unbound })] = &stuck[..] else {
            panic!("{stuck:?}");
        };
        assert_eq!(unbound, &vec!["Y".to_string()]);
    }

    #[test]
    fn choice_literal_is_a_filter() {
        let ord = order_src("s(N) :- emp(N, D), choice((D), (N)).").unwrap();
        assert_eq!(ord.order, vec![0, 1]);
        // Choice with a variable bound nowhere else is unsafe.
        assert!(order_src("s(N) :- emp(N, D), choice((D), (Z)).").is_err());
    }
}
