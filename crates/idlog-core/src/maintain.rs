//! Incremental view maintenance: keep a computed perfect model up to date
//! under EDB fact inserts and retracts without recomputing it from scratch.
//!
//! [`Materialized`] wraps the post-fixpoint [`EvalState`] of one canonical
//! evaluation. [`Materialized::apply`] re-drives the semi-naive delta
//! machinery from a batch of EDB changes, one stratum at a time, using the
//! classic **DRed** (delete-and-rederive) discipline for stratified
//! negation:
//!
//! 1. **Overdelete** — derive every tuple that loses at least one
//!    derivation, evaluating rule bodies under *old-state* semantics (a
//!    deleted body fact still counts present, an inserted one absent);
//!    within a stratum this iterates to fixpoint, since deleting a head
//!    tuple can unsupport further tuples of the same stratum.
//! 2. **Remove** — physically retract the overdeleted tuples.
//! 3. **Rederive** — reinsert overdeleted tuples that still have a
//!    derivation from the surviving state (iterated: a rederived tuple can
//!    resupport another).
//! 4. **Insert** — semi-naive insertion rounds: positive deltas replay
//!    inserted tuples; a negated literal whose relation lost tuples is
//!    replayed by rewriting the negation step into a fully-bound atom step
//!    over the net-deleted tuples (sound because net deletions are, by
//!    construction, absent from the new relation).
//!
//! The net per-predicate insert/delete sets of each stratum seed the next,
//! so changes propagate bottom-up exactly as the original evaluation did.
//!
//! **Applicability.** ID-relations are materialized from a *complete* base
//! relation through a [`crate::tid::TidOracle`]; there is no meaningful
//! incremental update of an ID-assignment (tids may shuffle arbitrarily
//! when the base changes). [`Materialized::apply`] therefore falls back to
//! a full canonical recomputation whenever a changed predicate can reach an
//! ID-literal's base relation — ID-literals over *unaffected* bases keep
//! their materialization, which stays valid because [`CanonicalOracle`] is
//! a pure function of relation content. The fallback also covers ill-typed
//! or otherwise suspicious deltas; the database handed to `apply` is the
//! source of truth either way.

use std::sync::Arc;

use idlog_common::{FxHashMap, FxHashSet, Interner, SymbolId, Tuple, Value};
use idlog_storage::{Database, Relation};

use crate::builtins;
use crate::config::EvalOptions;
use crate::engine::{run_rule, EvalState};
use crate::error::CoreResult;
use crate::eval::evaluate_with_options;
use crate::plan::{AtomStep, RulePlan, Step, TermPat};
use crate::pred::PredKey;
use crate::program::ValidatedProgram;
use crate::stats::EvalStats;
use crate::tid::CanonicalOracle;

/// How [`Materialized::apply`] satisfied a change batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MaintainOutcome {
    /// The batch was a no-op (every insert already present, every retract
    /// already absent, or no touched predicate feeds this view).
    Unchanged,
    /// The model was updated in place by delta propagation.
    Incremental,
    /// The change reached an ID-literal's base (or the delta was otherwise
    /// unsuitable), so the model was recomputed from the database.
    Recomputed,
}

/// A batch of EDB changes, as (predicate, tuple) pairs. Inserts are applied
/// before retracts; a tuple appearing in both nets out to no change.
#[derive(Debug, Clone, Default)]
pub struct FactDelta {
    /// Facts to add.
    pub inserts: Vec<(SymbolId, Tuple)>,
    /// Facts to remove.
    pub retracts: Vec<(SymbolId, Tuple)>,
}

impl FactDelta {
    /// A single-fact insertion.
    pub fn insert(pred: SymbolId, tuple: Tuple) -> Self {
        FactDelta {
            inserts: vec![(pred, tuple)],
            retracts: Vec::new(),
        }
    }

    /// A single-fact retraction.
    pub fn retract(pred: SymbolId, tuple: Tuple) -> Self {
        FactDelta {
            inserts: Vec::new(),
            retracts: vec![(pred, tuple)],
        }
    }

    /// True when both lists are empty.
    pub fn is_empty(&self) -> bool {
        self.inserts.is_empty() && self.retracts.is_empty()
    }
}

/// A materialized perfect model (canonical oracle) that can be maintained
/// incrementally as the fact database changes.
///
/// Built from a program's *related portion* (what [`crate::Query`]
/// evaluates) and a database; thereafter [`Materialized::apply`] keeps the
/// relations identical to what a fresh canonical evaluation over the
/// updated database would produce — the equivalence the service layer's
/// byte-identical-responses guarantee rests on.
#[derive(Debug, Clone)]
pub struct Materialized {
    program: ValidatedProgram,
    options: EvalOptions,
    state: EvalState,
    build_stats: EvalStats,
}

/// An ordered, deduplicated set of changed tuples for one predicate.
/// The order is first-change order, so replay work lists are deterministic.
#[derive(Debug, Default, Clone)]
struct NetChange {
    order: Vec<Tuple>,
    set: FxHashSet<Tuple>,
}

impl NetChange {
    fn add(&mut self, t: Tuple) -> bool {
        if self.set.insert(t.clone()) {
            self.order.push(t);
            true
        } else {
            false
        }
    }

    fn remove(&mut self, t: &Tuple) -> bool {
        if self.set.remove(t) {
            self.order.retain(|x| x != t);
            true
        } else {
            false
        }
    }

    fn is_empty(&self) -> bool {
        self.order.is_empty()
    }
}

type NetMap = FxHashMap<SymbolId, NetChange>;

impl Materialized {
    /// Evaluate `program` over `db` with the [`CanonicalOracle`] and keep
    /// the full fixpoint state for maintenance. Pass the *related* program
    /// of a query (see [`crate::Query::related_program`]) so unrelated
    /// clauses neither cost work nor block incrementality.
    pub fn build(
        program: &ValidatedProgram,
        db: &Database,
        options: &EvalOptions,
    ) -> CoreResult<Materialized> {
        let out = evaluate_with_options(program, db, &mut CanonicalOracle, options)?;
        let (_, state, stats) = out.into_parts();
        Ok(Materialized {
            program: program.clone(),
            options: *options,
            state,
            build_stats: stats,
        })
    }

    /// The interner shared with the program and database.
    pub fn interner(&self) -> &Arc<Interner> {
        self.program.interner()
    }

    /// The current relation for `name` (input or IDB), if the program
    /// mentions it.
    pub fn relation(&self, name: &str) -> Option<&Relation> {
        let id = self.program.interner().get(name)?;
        self.state.get(&PredKey::Ordinary(id))
    }

    /// Statistics of the most recent *full* evaluation (the build, or the
    /// last recompute fallback). Incremental maintenance does not update
    /// them — counters are defined per evaluation, not per lifetime.
    pub fn build_stats(&self) -> EvalStats {
        self.build_stats
    }

    /// Recompute the model from `db` wholesale (also the fallback path of
    /// [`Materialized::apply`]).
    pub fn rebuild(&mut self, db: &Database) -> CoreResult<()> {
        let out = evaluate_with_options(&self.program, db, &mut CanonicalOracle, &self.options)?;
        let (_, state, stats) = out.into_parts();
        self.state = state;
        self.build_stats = stats;
        Ok(())
    }

    /// Apply an EDB change batch. `db` must be the tenant database *after*
    /// the changes (it is read only on the recompute fallback) and must
    /// share the program's interner.
    pub fn apply(&mut self, db: &Database, delta: &FactDelta) -> CoreResult<MaintainOutcome> {
        // 1. Apply the EDB delta to the working input copies, recording the
        //    per-predicate net change. Flags from the storage layer filter
        //    no-ops (re-inserting a present fact, retracting an absent one).
        let mut net_ins: NetMap = NetMap::default();
        let mut net_del: NetMap = NetMap::default();
        for (pred, t) in &delta.inserts {
            match self.classify(*pred, t) {
                EdbFate::Apply => {}
                EdbFate::Ignore => continue,
                EdbFate::Fallback => return self.recompute(db),
            }
            let rel = self
                .state
                .get_mut(&PredKey::Ordinary(*pred))
                .expect("classify checked presence");
            if rel.delta_batch_insert(&[t])[0] {
                net_ins.entry(*pred).or_default().add(t.clone());
            }
        }
        for (pred, t) in &delta.retracts {
            match self.classify(*pred, t) {
                EdbFate::Apply => {}
                EdbFate::Ignore => continue,
                EdbFate::Fallback => return self.recompute(db),
            }
            let rel = self
                .state
                .get_mut(&PredKey::Ordinary(*pred))
                .expect("classify checked presence");
            if rel.remove_batch(&[t])[0] {
                // An insert-then-retract of the same tuple nets out.
                let was_fresh_insert = net_ins.get_mut(pred).is_some_and(|n| n.remove(t));
                if !was_fresh_insert {
                    net_del.entry(*pred).or_default().add(t.clone());
                }
            }
        }
        net_ins.retain(|_, n| !n.is_empty());
        net_del.retain(|_, n| !n.is_empty());
        if net_ins.is_empty() && net_del.is_empty() {
            return Ok(MaintainOutcome::Unchanged);
        }

        // 2. Applicability gate: no changed predicate may reach an
        //    ID-literal's base relation.
        let plans = Arc::clone(self.program.plans());
        let changed: FxHashSet<SymbolId> = net_ins.keys().chain(net_del.keys()).copied().collect();
        let affected = affected_closure(&plans, &changed);
        let id_reachable = plans.iter().any(|plan| {
            plan.steps.iter().any(|s| match s.reads() {
                Some(PredKey::Id(base, _)) => affected.contains(base),
                _ => false,
            })
        });
        if id_reachable {
            return self.recompute(db);
        }

        // 3. Propagate stratum by stratum.
        let by_stratum = self
            .program
            .stratification()
            .clauses_by_stratum(self.program.ast());
        let mut stats = EvalStats::default();
        for clauses in &by_stratum {
            let splans: Vec<&RulePlan> = clauses.iter().map(|&ci| &plans[ci]).collect();
            let touched = splans.iter().any(|p| affected.contains(&p.head_pred));
            if !touched {
                continue;
            }
            self.maintain_stratum(&splans, &mut net_ins, &mut net_del, &mut stats)?;
        }
        Ok(MaintainOutcome::Incremental)
    }

    fn recompute(&mut self, db: &Database) -> CoreResult<MaintainOutcome> {
        self.rebuild(db)?;
        Ok(MaintainOutcome::Recomputed)
    }

    /// Decide what to do with one EDB change pair.
    fn classify(&self, pred: SymbolId, t: &Tuple) -> EdbFate {
        if self.program.idb().contains(&pred) {
            // Facts stored under an IDB predicate: let the full evaluation
            // path produce its canonical Input error.
            return EdbFate::Fallback;
        }
        if !self.program.inputs().contains(&pred) {
            return EdbFate::Ignore; // not part of this view
        }
        match self.state.get(&PredKey::Ordinary(pred)) {
            Some(rel) if rel.check_tuple(t).is_ok() => EdbFate::Apply,
            // Arity/sort mismatch against the working copy (e.g. a relation
            // first populated after the build refined different sorts):
            // recompute from the database, the source of truth.
            _ => EdbFate::Fallback,
        }
    }

    /// DRed phases for one stratum. `net_ins`/`net_del` hold the cumulative
    /// net changes of the EDB and all lower strata on entry, and gain this
    /// stratum's head-predicate nets on exit.
    fn maintain_stratum(
        &mut self,
        splans: &[&RulePlan],
        net_ins: &mut NetMap,
        net_del: &mut NetMap,
        stats: &mut EvalStats,
    ) -> CoreResult<()> {
        let heads: FxHashSet<SymbolId> = splans.iter().map(|p| p.head_pred).collect();

        // Phase 1 — overdelete, under old-state semantics. `deleted` holds
        // the overdeleted set; tuples stay physically present so old reads
        // of this stratum see them.
        let mut deleted: NetMap = NetMap::default();
        let mut cand: Vec<(SymbolId, Tuple)> = Vec::new();
        {
            let view = OldView {
                state: &self.state,
                net_ins,
                net_del,
            };
            for plan in splans {
                for (si, step) in plan.steps.iter().enumerate() {
                    match step {
                        Step::Atom(a) => {
                            let PredKey::Ordinary(p) = &a.key else {
                                continue;
                            };
                            if let Some(d) = net_del.get(p) {
                                if !d.is_empty() {
                                    exec_old(
                                        &view,
                                        plan,
                                        0,
                                        Replay::Pos(si, &d.order),
                                        &mut vec![None; plan.n_vars],
                                        &mut cand,
                                        stats,
                                    )?;
                                }
                            }
                        }
                        Step::Negation { key, .. } => {
                            let PredKey::Ordinary(q) = key else { continue };
                            if let Some(i) = net_ins.get(q) {
                                if !i.is_empty() {
                                    exec_old(
                                        &view,
                                        plan,
                                        0,
                                        Replay::Neg(si, &i.set),
                                        &mut vec![None; plan.n_vars],
                                        &mut cand,
                                        stats,
                                    )?;
                                }
                            }
                        }
                        Step::Builtin { .. } => {}
                    }
                }
            }
        }
        loop {
            let mut next: FxHashMap<SymbolId, Vec<Tuple>> = FxHashMap::default();
            for (p, t) in cand.drain(..) {
                if deleted.entry(p).or_default().add(t.clone()) {
                    next.entry(p).or_default().push(t);
                }
            }
            if next.is_empty() {
                break;
            }
            let view = OldView {
                state: &self.state,
                net_ins,
                net_del,
            };
            for plan in splans {
                for (si, step) in plan.steps.iter().enumerate() {
                    let Step::Atom(a) = step else { continue };
                    let PredKey::Ordinary(p) = &a.key else {
                        continue;
                    };
                    if !heads.contains(p) {
                        continue;
                    }
                    if let Some(d) = next.get(p) {
                        exec_old(
                            &view,
                            plan,
                            0,
                            Replay::Pos(si, d),
                            &mut vec![None; plan.n_vars],
                            &mut cand,
                            stats,
                        )?;
                    }
                }
            }
        }
        deleted.retain(|_, n| !n.is_empty());

        // Phase 2 — physically remove the overdeleted tuples.
        for (p, nc) in &deleted {
            let rel = self
                .state
                .get_mut(&PredKey::Ordinary(*p))
                .expect("stratum head installed");
            let batch: Vec<&Tuple> = nc.order.iter().collect();
            rel.remove_batch(&batch);
        }

        // Phase 3 — rederive: overdeleted tuples still derivable from the
        // surviving state come back, iterated so a rederived tuple can
        // resupport another. Only rules whose head lost tuples can help.
        if !deleted.is_empty() {
            let red_plans: Vec<&RulePlan> = splans
                .iter()
                .filter(|p| deleted.contains_key(&p.head_pred))
                .copied()
                .collect();
            self.state.rebuild_indexes_for(&red_plans);
            let mut out: Vec<(SymbolId, Tuple)> = Vec::new();
            for plan in &red_plans {
                run_rule(&self.state, plan, None, &mut out, stats)?;
            }
            loop {
                let mut reinserted: FxHashMap<SymbolId, Vec<Tuple>> = FxHashMap::default();
                for (p, t) in out.drain(..) {
                    let still_deleted = deleted.get_mut(&p).is_some_and(|n| n.remove(&t));
                    if !still_deleted {
                        continue;
                    }
                    let rel = self
                        .state
                        .get_mut(&PredKey::Ordinary(p))
                        .expect("stratum head installed");
                    if rel.delta_batch_insert(&[&t])[0] {
                        reinserted.entry(p).or_default().push(t);
                    }
                }
                if reinserted.is_empty() {
                    break;
                }
                for plan in &red_plans {
                    for (si, step) in plan.steps.iter().enumerate() {
                        let Step::Atom(a) = step else { continue };
                        let PredKey::Ordinary(p) = &a.key else {
                            continue;
                        };
                        if let Some(d) = reinserted.get(p) {
                            run_rule(&self.state, plan, Some((si, d)), &mut out, stats)?;
                        }
                    }
                }
            }
            deleted.retain(|_, n| !n.is_empty());
        }

        // Phase 4 — insert: semi-naive rounds seeded by the lower strata's
        // net inserts (positive atoms) and net deletes (negated literals,
        // replayed through a negation→atom rewrite).
        let mut adapted: Vec<(RulePlan, usize, Vec<Tuple>)> = Vec::new();
        let mut seeds: Vec<(&RulePlan, usize, Vec<Tuple>)> = Vec::new();
        for plan in splans {
            for (si, step) in plan.steps.iter().enumerate() {
                match step {
                    Step::Atom(a) => {
                        let PredKey::Ordinary(p) = &a.key else {
                            continue;
                        };
                        if let Some(i) = net_ins.get(p) {
                            if !i.is_empty() {
                                seeds.push((*plan, si, i.order.clone()));
                            }
                        }
                    }
                    Step::Negation { key, terms } => {
                        let PredKey::Ordinary(q) = key else { continue };
                        if let Some(d) = net_del.get(q) {
                            if !d.is_empty() {
                                // Rewrite `not q(…)` into a fully-bound atom
                                // probe and replay the net-deleted tuples: a
                                // net-deleted tuple is absent from the new
                                // relation, so each replayed match is exactly
                                // an instantiation where the negation newly
                                // holds.
                                let mut rewritten = (*plan).clone();
                                rewritten.steps[si] = Step::Atom(AtomStep {
                                    key: key.clone(),
                                    probe: terms.iter().copied().enumerate().collect(),
                                    bind: Vec::new(),
                                    check: Vec::new(),
                                });
                                adapted.push((rewritten, si, d.order.clone()));
                            }
                        }
                    }
                    Step::Builtin { .. } => {}
                }
            }
        }
        let mut stratum_ins: NetMap = NetMap::default();
        {
            let mut index_plans: Vec<&RulePlan> = splans.to_vec();
            index_plans.extend(adapted.iter().map(|(p, _, _)| p));
            self.state.rebuild_indexes_for(&index_plans);
        }
        let mut out: Vec<(SymbolId, Tuple)> = Vec::new();
        for (plan, si, tuples) in &seeds {
            run_rule(&self.state, plan, Some((*si, tuples)), &mut out, stats)?;
        }
        for (plan, si, tuples) in &adapted {
            run_rule(&self.state, plan, Some((*si, tuples)), &mut out, stats)?;
        }
        loop {
            let mut fresh: FxHashMap<SymbolId, Vec<Tuple>> = FxHashMap::default();
            for (p, t) in out.drain(..) {
                let rel = self
                    .state
                    .get_mut(&PredKey::Ordinary(p))
                    .expect("stratum head installed");
                if rel.delta_batch_insert(&[&t])[0] {
                    // A tuple that was overdeleted and now reappears through
                    // new support nets out: physically back, no net change.
                    let was_deleted = deleted.get_mut(&p).is_some_and(|n| n.remove(&t));
                    if !was_deleted {
                        stratum_ins.entry(p).or_default().add(t.clone());
                    }
                    fresh.entry(p).or_default().push(t);
                }
            }
            if fresh.is_empty() {
                break;
            }
            for plan in splans {
                for (si, step) in plan.steps.iter().enumerate() {
                    let Step::Atom(a) = step else { continue };
                    let PredKey::Ordinary(p) = &a.key else {
                        continue;
                    };
                    if !heads.contains(p) {
                        continue;
                    }
                    if let Some(d) = fresh.get(p) {
                        run_rule(&self.state, plan, Some((si, d)), &mut out, stats)?;
                    }
                }
            }
        }

        // Publish this stratum's nets for the strata above.
        for (p, nc) in deleted {
            if !nc.is_empty() {
                let slot = net_del.entry(p).or_default();
                for t in nc.order {
                    slot.add(t);
                }
            }
        }
        for (p, nc) in stratum_ins {
            if !nc.is_empty() {
                let slot = net_ins.entry(p).or_default();
                for t in nc.order {
                    slot.add(t);
                }
            }
        }
        Ok(())
    }
}

enum EdbFate {
    Apply,
    Ignore,
    Fallback,
}

/// Head predicates transitively reachable from the changed set.
fn affected_closure(plans: &[RulePlan], changed: &FxHashSet<SymbolId>) -> FxHashSet<SymbolId> {
    let mut affected = changed.clone();
    loop {
        let mut grew = false;
        for plan in plans {
            if affected.contains(&plan.head_pred) {
                continue;
            }
            let feeds = plan
                .steps
                .iter()
                .any(|s| s.reads().is_some_and(|k| affected.contains(&k.base())));
            if feeds {
                affected.insert(plan.head_pred);
                grew = true;
            }
        }
        if !grew {
            return affected;
        }
    }
}

/// Which body step replays a change set during overdeletion.
#[derive(Clone, Copy)]
enum Replay<'a> {
    /// Positive atom step `si` scans the deleted tuples.
    Pos(usize, &'a [Tuple]),
    /// Negation step `si` requires its ground tuple among the inserted set
    /// (the negation held in the old state and fails in the new one).
    Neg(usize, &'a FxHashSet<Tuple>),
}

/// Old-state reads over the partially updated [`EvalState`]: the current
/// contents minus recorded net inserts plus recorded net deletes.
/// Predicates of the stratum being overdeleted have no recorded nets yet
/// and are physically untouched, so they read as old automatically.
struct OldView<'a> {
    state: &'a EvalState,
    net_ins: &'a NetMap,
    net_del: &'a NetMap,
}

impl OldView<'_> {
    fn contains(&self, key: &PredKey, t: &Tuple) -> bool {
        let cur = self.state.get(key).is_some_and(|r| r.contains(t));
        let PredKey::Ordinary(p) = key else {
            return cur; // ID-relations are unaffected (gate) and unchanged
        };
        let ins = self.net_ins.get(p).is_some_and(|n| n.set.contains(t));
        let del = self.net_del.get(p).is_some_and(|n| n.set.contains(t));
        (cur && !ins) || del
    }
}

fn resolve(pat: TermPat, bindings: &[Option<Value>]) -> Value {
    match pat {
        TermPat::Const(c) => c,
        TermPat::Var(v) => bindings[v].expect("variable bound by plan order"),
    }
}

/// Execute one rule plan against the old state, driving the step named by
/// `replay` from the changed tuples. Mirrors the engine's executor, but
/// reads through [`OldView`] and needs no indexes (overdeletion batches are
/// small and scans verify probe positions per tuple).
#[allow(clippy::too_many_arguments)]
fn exec_old(
    view: &OldView<'_>,
    plan: &RulePlan,
    si: usize,
    replay: Replay<'_>,
    bindings: &mut Vec<Option<Value>>,
    out: &mut Vec<(SymbolId, Tuple)>,
    stats: &mut EvalStats,
) -> CoreResult<()> {
    if si == plan.steps.len() {
        stats.instantiations += 1;
        let head: Tuple = plan.head.iter().map(|&p| resolve(p, bindings)).collect();
        out.push((plan.head_pred, head));
        return Ok(());
    }
    match &plan.steps[si] {
        Step::Atom(astep) => {
            if let Replay::Pos(ri, dtuples) = replay {
                if ri == si {
                    for t in dtuples {
                        stats.probes += 1;
                        old_try_tuple(view, plan, si, astep, t, replay, bindings, out, stats)?;
                    }
                    return Ok(());
                }
            }
            // Old contents = current \ net_ins ∪ net_del (disjoint by
            // construction: net inserts are physically present, net deletes
            // physically absent).
            let skip = |t: &Tuple| {
                let PredKey::Ordinary(p) = &astep.key else {
                    return false;
                };
                view.net_ins.get(p).is_some_and(|n| n.set.contains(t))
            };
            if let Some(rel) = view.state.get(&astep.key) {
                for t in rel.iter() {
                    if skip(t) {
                        continue;
                    }
                    stats.probes += 1;
                    old_try_tuple(view, plan, si, astep, t, replay, bindings, out, stats)?;
                }
            }
            if let PredKey::Ordinary(p) = &astep.key {
                if let Some(d) = view.net_del.get(p) {
                    for t in &d.order {
                        stats.probes += 1;
                        old_try_tuple(view, plan, si, astep, t, replay, bindings, out, stats)?;
                    }
                }
            }
            Ok(())
        }
        Step::Negation { key, terms } => {
            let t: Tuple = terms.iter().map(|&p| resolve(p, bindings)).collect();
            stats.probes += 1;
            if let Replay::Neg(ri, inserted) = replay {
                if ri == si {
                    // The driving step: the negation held in the old state
                    // (a net insert was absent) and fails in the new one.
                    if inserted.contains(&t) {
                        exec_old(view, plan, si + 1, replay, bindings, out, stats)?;
                    }
                    return Ok(());
                }
            }
            if !view.contains(key, &t) {
                exec_old(view, plan, si + 1, replay, bindings, out, stats)?;
            }
            Ok(())
        }
        Step::Builtin { op, args, bound } => {
            stats.builtin_evals += 1;
            // `=`/`!=` compare any sort; other builtins are ℕ-arithmetic.
            if matches!(op, idlog_parser::Builtin::Eq | idlog_parser::Builtin::Ne) {
                let vals: Vec<Option<Value>> = args
                    .iter()
                    .zip(bound)
                    .map(|(&a, &b)| b.then(|| resolve(a, bindings)))
                    .collect();
                match (vals[0], vals[1]) {
                    (Some(a), Some(b)) => {
                        if builtins::eq_check(*op, a, b) {
                            exec_old(view, plan, si + 1, replay, bindings, out, stats)?;
                        }
                    }
                    (Some(known), None) | (None, Some(known)) => {
                        let free = if vals[0].is_none() { args[0] } else { args[1] };
                        let TermPat::Var(v) = free else {
                            unreachable!("free side is a variable")
                        };
                        bindings[v] = Some(known);
                        exec_old(view, plan, si + 1, replay, bindings, out, stats)?;
                        bindings[v] = None;
                    }
                    (None, None) => unreachable!("mode table requires one bound side"),
                }
                return Ok(());
            }
            let mut ints: Vec<Option<i64>> = Vec::with_capacity(args.len());
            for (&a, &b) in args.iter().zip(bound) {
                if b {
                    match resolve(a, bindings) {
                        Value::Int(n) => ints.push(Some(n)),
                        Value::Sym(_) => return Ok(()),
                    }
                } else {
                    ints.push(None);
                }
            }
            for sol in builtins::solve(*op, &ints)? {
                let mut newly: Vec<usize> = Vec::new();
                let mut ok = true;
                for (k, &a) in args.iter().enumerate() {
                    let want = Value::Int(sol[k]);
                    match a {
                        TermPat::Const(c) => {
                            if c != want {
                                ok = false;
                                break;
                            }
                        }
                        TermPat::Var(v) => match bindings[v] {
                            Some(cur) => {
                                if cur != want {
                                    ok = false;
                                    break;
                                }
                            }
                            None => {
                                bindings[v] = Some(want);
                                newly.push(v);
                            }
                        },
                    }
                }
                if ok {
                    exec_old(view, plan, si + 1, replay, bindings, out, stats)?;
                }
                for v in newly {
                    bindings[v] = None;
                }
            }
            Ok(())
        }
    }
}

/// Match one candidate tuple in the old-state executor: verify probe
/// positions, bind, check repeats, recurse.
#[allow(clippy::too_many_arguments)]
fn old_try_tuple(
    view: &OldView<'_>,
    plan: &RulePlan,
    si: usize,
    astep: &AtomStep,
    t: &Tuple,
    replay: Replay<'_>,
    bindings: &mut Vec<Option<Value>>,
    out: &mut Vec<(SymbolId, Tuple)>,
    stats: &mut EvalStats,
) -> CoreResult<()> {
    for &(pos, pat) in &astep.probe {
        if t[pos] != resolve(pat, bindings) {
            return Ok(());
        }
    }
    for &(pos, v) in &astep.bind {
        bindings[v] = Some(t[pos]);
    }
    let checks_ok = astep
        .check
        .iter()
        .all(|&(pos, v)| bindings[v].expect("bound earlier in step") == t[pos]);
    if checks_ok {
        exec_old(view, plan, si + 1, replay, bindings, out, stats)?;
    }
    for &(_, v) in &astep.bind {
        bindings[v] = None;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Query;
    use idlog_storage::BackendKind;

    /// Drive a program through a change script, asserting after every step
    /// that the maintained state matches a fresh canonical evaluation on
    /// both comparison axes: set equality per predicate and the canonical
    /// string rendering (what the service serves).
    fn check_equivalence(
        src: &str,
        output: &str,
        initial: &[(&str, &[&str])],
        script: &[(Op, &str, &[&str])],
        backend: BackendKind,
    ) -> Vec<MaintainOutcome> {
        let q = Query::parse(src, output).unwrap();
        let mut db = q.new_database();
        for (pred, cols) in initial {
            db.insert_syms(pred, cols).unwrap();
        }
        let options = EvalOptions::new().backend(backend);
        let mut mat = Materialized::build(q.related_program(), &db, &options).unwrap();
        let mut outcomes = Vec::new();
        for (op, pred, cols) in script {
            let interner = Arc::clone(q.interner());
            let tuple: Tuple = cols
                .iter()
                .map(|c| Value::Sym(interner.intern(c)))
                .collect();
            let pred_id = interner.intern(pred);
            let delta = match op {
                Op::Ins => {
                    db.insert(pred, tuple.clone()).unwrap();
                    FactDelta::insert(pred_id, tuple)
                }
                Op::Del => {
                    db.retract(pred, &tuple).unwrap();
                    FactDelta::retract(pred_id, tuple)
                }
            };
            outcomes.push(mat.apply(&db, &delta).unwrap());
            // Ground truth: fresh evaluation over the updated database.
            let fresh =
                evaluate_with_options(q.related_program(), &db, &mut CanonicalOracle, &options)
                    .unwrap();
            for pred_name in db.predicate_names() {
                let (Some(a), Some(b)) = (mat.relation(&pred_name), fresh.relation(&pred_name))
                else {
                    continue;
                };
                assert!(
                    a.set_eq(b),
                    "{pred_name} diverged after {op:?} {pred}({cols:?}):\n maintained {:?}\n fresh {:?}",
                    a.sorted_canonical(&interner),
                    b.sorted_canonical(&interner),
                );
                assert_eq!(
                    a.sorted_canonical(&interner),
                    b.sorted_canonical(&interner),
                    "canonical rendering diverged for {pred_name}"
                );
            }
            let (a, b) = (
                mat.relation(output).unwrap(),
                fresh.relation(output).unwrap(),
            );
            assert!(a.set_eq(b), "output diverged after {op:?} {pred}({cols:?})");
        }
        outcomes
    }

    #[derive(Debug, Clone, Copy)]
    enum Op {
        Ins,
        Del,
    }

    const TC: &str = "tc(X, Y) :- e(X, Y). tc(X, Y) :- e(X, Z), tc(Z, Y).";

    #[test]
    fn transitive_closure_inserts_are_incremental() {
        for backend in [BackendKind::Hash, BackendKind::Columnar] {
            let outcomes = check_equivalence(
                TC,
                "tc",
                &[("e", &["a", "b"])],
                &[
                    (Op::Ins, "e", &["b", "c"]),
                    (Op::Ins, "e", &["c", "d"]),
                    (Op::Ins, "e", &["d", "a"]), // closes a cycle
                    (Op::Ins, "e", &["a", "b"]), // duplicate: no-op
                ],
                backend,
            );
            assert_eq!(
                outcomes,
                [
                    MaintainOutcome::Incremental,
                    MaintainOutcome::Incremental,
                    MaintainOutcome::Incremental,
                    MaintainOutcome::Unchanged,
                ],
                "{backend:?}"
            );
        }
    }

    #[test]
    fn transitive_closure_deletes_rederive() {
        for backend in [BackendKind::Hash, BackendKind::Columnar] {
            // A diamond: a→b→d and a→c→d; deleting a→b must keep tc(a,d)
            // through the other path (the rederivation case DRed exists for).
            let outcomes = check_equivalence(
                TC,
                "tc",
                &[
                    ("e", &["a", "b"]),
                    ("e", &["b", "d"]),
                    ("e", &["a", "c"]),
                    ("e", &["c", "d"]),
                    ("e", &["d", "e"]),
                ],
                &[
                    (Op::Del, "e", &["a", "b"]),
                    (Op::Del, "e", &["c", "d"]), // now tc(a,d) really dies
                    (Op::Del, "e", &["x", "y"]), // absent: no-op
                    (Op::Ins, "e", &["a", "d"]), // resurrect directly
                ],
                backend,
            );
            assert_eq!(
                outcomes,
                [
                    MaintainOutcome::Incremental,
                    MaintainOutcome::Incremental,
                    MaintainOutcome::Unchanged,
                    MaintainOutcome::Incremental,
                ],
                "{backend:?}"
            );
        }
    }

    #[test]
    fn stratified_negation_flips_both_ways() {
        let src = "reach(X) :- start(X).
                   reach(Y) :- reach(X), e(X, Y).
                   far(X) :- node(X), not reach(X).";
        let outcomes = check_equivalence(
            src,
            "far",
            &[
                ("node", &["a"]),
                ("node", &["b"]),
                ("node", &["c"]),
                ("start", &["a"]),
                ("e", &["a", "b"]),
            ],
            &[
                (Op::Ins, "e", &["b", "c"]), // c becomes reachable → far loses c
                (Op::Del, "e", &["a", "b"]), // b, c unreachable → far gains both
                (Op::Ins, "node", &["d"]),   // unreachable node → far gains d
                (Op::Del, "start", &["a"]),  // nothing reachable at all
            ],
            BackendKind::Hash,
        );
        assert!(outcomes.iter().all(|o| *o == MaintainOutcome::Incremental));
    }

    #[test]
    fn affected_id_literal_falls_back_to_recompute() {
        let q = Query::parse("pick(N) :- emp[2](N, D, 0).", "pick").unwrap();
        let mut db = q.new_database();
        db.insert_syms("emp", &["ann", "sales"]).unwrap();
        let options = EvalOptions::default();
        let mut mat = Materialized::build(q.related_program(), &db, &options).unwrap();
        db.insert_syms("emp", &["bob", "sales"]).unwrap();
        let bob: Tuple = ["bob", "sales"]
            .iter()
            .map(|s| Value::Sym(q.interner().intern(s)))
            .collect();
        let outcome = mat
            .apply(&db, &FactDelta::insert(q.interner().intern("emp"), bob))
            .unwrap();
        assert_eq!(outcome, MaintainOutcome::Recomputed);
        let fresh = q.session(&db).run().unwrap();
        assert!(mat.relation("pick").unwrap().set_eq(&fresh.relation));
    }

    #[test]
    fn unaffected_id_literal_stays_incremental() {
        // The ID-literal reads `emp`; the change touches only `bonus`, which
        // cannot reach emp — the materialized ID-relation stays valid.
        let src = "lead(N, D) :- emp[2](N, D, 0).
                   paid(N) :- lead(N, D), bonus(D).";
        let q = Query::parse(src, "paid").unwrap();
        let mut db = q.new_database();
        db.insert_syms("emp", &["ann", "sales"]).unwrap();
        db.insert_syms("emp", &["bob", "sales"]).unwrap();
        let options = EvalOptions::default();
        let mut mat = Materialized::build(q.related_program(), &db, &options).unwrap();
        db.insert_syms("bonus", &["sales"]).unwrap();
        let t: Tuple = vec![Value::Sym(q.interner().intern("sales"))].into();
        let outcome = mat
            .apply(&db, &FactDelta::insert(q.interner().intern("bonus"), t))
            .unwrap();
        assert_eq!(outcome, MaintainOutcome::Incremental);
        let fresh = q.session(&db).run().unwrap();
        assert!(mat.relation("paid").unwrap().set_eq(&fresh.relation));
    }

    #[test]
    fn irrelevant_predicate_changes_are_unchanged() {
        let q = Query::parse(TC, "tc").unwrap();
        let mut db = q.new_database();
        db.insert_syms("e", &["a", "b"]).unwrap();
        let options = EvalOptions::default();
        let mut mat = Materialized::build(q.related_program(), &db, &options).unwrap();
        // A predicate the program never mentions.
        db.insert_syms("noise", &["z"]).unwrap();
        let t: Tuple = vec![Value::Sym(q.interner().intern("z"))].into();
        let outcome = mat
            .apply(&db, &FactDelta::insert(q.interner().intern("noise"), t))
            .unwrap();
        assert_eq!(outcome, MaintainOutcome::Unchanged);
    }

    #[test]
    fn arithmetic_bodies_maintain() {
        let src = "big(M) :- num(N), plus(N, N, M).";
        let q = Query::parse(src, "big").unwrap();
        let mut db = q.new_database();
        db.insert("num", Tuple::new(vec![Value::Int(3)])).unwrap();
        let options = EvalOptions::default();
        let mut mat = Materialized::build(q.related_program(), &db, &options).unwrap();
        let num = q.interner().intern("num");

        let five = Tuple::new(vec![Value::Int(5)]);
        db.insert("num", five.clone()).unwrap();
        assert_eq!(
            mat.apply(&db, &FactDelta::insert(num, five)).unwrap(),
            MaintainOutcome::Incremental
        );
        let three = Tuple::new(vec![Value::Int(3)]);
        db.retract("num", &three).unwrap();
        assert_eq!(
            mat.apply(&db, &FactDelta::retract(num, three)).unwrap(),
            MaintainOutcome::Incremental
        );
        let fresh = q.session(&db).run().unwrap();
        assert!(mat.relation("big").unwrap().set_eq(&fresh.relation));
        assert_eq!(fresh.relation.len(), 1); // only 10 remains
    }

    #[test]
    fn insert_then_retract_nets_out() {
        let q = Query::parse(TC, "tc").unwrap();
        let mut db = q.new_database();
        db.insert_syms("e", &["a", "b"]).unwrap();
        let options = EvalOptions::default();
        let mut mat = Materialized::build(q.related_program(), &db, &options).unwrap();
        let t: Tuple = ["b", "c"]
            .iter()
            .map(|s| Value::Sym(q.interner().intern(s)))
            .collect();
        let e = q.interner().intern("e");
        let delta = FactDelta {
            inserts: vec![(e, t.clone())],
            retracts: vec![(e, t)],
        };
        // db is unchanged overall, and so is the view.
        assert_eq!(mat.apply(&db, &delta).unwrap(), MaintainOutcome::Unchanged);
        let fresh = q.session(&db).run().unwrap();
        assert!(mat.relation("tc").unwrap().set_eq(&fresh.relation));
    }
}
