//! Resource governance: limits, cancellation, and structured failure.
//!
//! Theorem 3 of the paper makes non-termination of IDLOG programs
//! *undecidable*, so a runaway query is a permanent fact of life — the only
//! principled defense is a runtime governor. This module provides the
//! cooperative pieces:
//!
//! - [`Limits`]: caller-imposed ceilings (wall-clock deadline, fixpoint
//!   rounds, derived tuples, estimated bytes), carried inside
//!   [`EvalOptions`](crate::EvalOptions).
//! - [`CancelToken`]: a cloneable flag for Ctrl-C / embedder shutdown.
//! - [`Governor`]: the shared checker every evaluation thread consults.
//! - [`EvalError`]: the structured failure returned by
//!   [`evaluate_governed`](crate::evaluate_governed), carrying the partial
//!   output (relations + [`EvalStats`]) accumulated up to the last completed
//!   round barrier.
//!
//! # Determinism
//!
//! The engine promises byte-identical results at any thread count, and the
//! governor must not break that promise. Deterministic limits (`max_rounds`,
//! `max_tuples`, `max_bytes`) are therefore checked **only at round
//! barriers**, where the merged state and stats are identical across thread
//! counts — so *whether* a limit trips, *which* limit trips, and the partial
//! output it carries are all thread-count independent. Timing-dependent
//! stops (deadline, cancellation) are additionally polled between work items
//! for promptness; when one trips mid-round the whole round is discarded, so
//! the partial output is still a barrier-consistent prefix of the fixpoint.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::error::{CoreError, CoreResult};
use crate::eval::EvalOutput;
use crate::stats::EvalStats;

/// Which resource ceiling tripped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LimitKind {
    /// The wall-clock deadline ([`Limits::deadline`]).
    Deadline,
    /// The fixpoint-round ceiling ([`Limits::max_rounds`]).
    Rounds,
    /// The derived-tuple ceiling ([`Limits::max_tuples`]).
    Tuples,
    /// The estimated-memory ceiling ([`Limits::max_bytes`]).
    Bytes,
    /// The enumeration model budget ([`EnumBudget::max_models`](crate::EnumBudget)).
    Models,
    /// The enumeration answer budget ([`EnumBudget::max_answers`](crate::EnumBudget)).
    Answers,
}

impl LimitKind {
    /// Stable kebab-case name, matching the CLI flag that sets the limit.
    pub fn as_str(self) -> &'static str {
        match self {
            LimitKind::Deadline => "timeout",
            LimitKind::Rounds => "max-rounds",
            LimitKind::Tuples => "max-tuples",
            LimitKind::Bytes => "max-bytes",
            LimitKind::Models => "max-models",
            LimitKind::Answers => "max-answers",
        }
    }
}

impl fmt::Display for LimitKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Why a bounded walk or evaluation stopped before reaching its natural end.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// A resource ceiling tripped.
    Limit(LimitKind),
    /// The cancellation token fired.
    Cancelled,
}

impl StopReason {
    /// The stable [`ErrorCode`](crate::ErrorCode) for this stop.
    pub fn code(&self) -> crate::ErrorCode {
        match self {
            StopReason::Limit(k) => crate::ErrorCode::Limit(*k),
            StopReason::Cancelled => crate::ErrorCode::Cancelled,
        }
    }
}

impl fmt::Display for StopReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StopReason::Limit(k) => write!(f, "{k} budget hit"),
            StopReason::Cancelled => f.write_str("cancelled"),
        }
    }
}

/// Caller-imposed resource ceilings. `Copy` so it rides inside
/// [`EvalOptions`](crate::EvalOptions); all fields default to unlimited.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Limits {
    /// Wall-clock budget for the whole evaluation, measured from the moment
    /// the governor is built. Polled between work items, so trips are prompt
    /// but (unlike the ceilings below) the exact stopping round may vary
    /// run to run.
    pub deadline: Option<Duration>,
    /// Maximum semi-naive rounds (`EvalStats::iterations`), cumulative
    /// across strata. Checked at round barriers; deterministic.
    pub max_rounds: Option<u64>,
    /// Maximum newly derived tuples (`EvalStats::inserted`). Checked at
    /// round barriers; deterministic.
    pub max_tuples: Option<u64>,
    /// Maximum estimated bytes of stored tuples. Checked at round barriers;
    /// deterministic (the estimate is a pure function of relation sizes).
    pub max_bytes: Option<u64>,
}

impl Limits {
    /// No limits — the default.
    pub fn none() -> Self {
        Limits::default()
    }

    /// True when every ceiling is unset.
    pub fn is_unlimited(&self) -> bool {
        *self == Limits::default()
    }

    /// Tighten the round ceiling to at most `bound`, keeping an existing
    /// smaller one. Used to install a statically certified depth bound
    /// ([`crate::TerminationCert::round_bound`]) without loosening limits
    /// the caller already set.
    pub fn tighten_rounds(mut self, bound: u64) -> Limits {
        self.max_rounds = Some(self.max_rounds.map_or(bound, |m| m.min(bound)));
        self
    }
}

/// A cloneable cancellation flag. Cloning shares the flag; any clone can
/// cancel, and every governor polling it observes the cancellation at its
/// next check. `cancel` is a single atomic store, so it is safe to call
/// from a signal handler.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Request cancellation (async-signal-safe).
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Has cancellation been requested?
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }

    /// Re-arm the token (e.g. between REPL queries after a Ctrl-C).
    pub fn reset(&self) {
        self.0.store(false, Ordering::Relaxed);
    }
}

/// The shared resource governor. Built once per evaluation from
/// [`Limits`] (+ an optional [`CancelToken`]) and consulted by every
/// worker thread: [`Governor::poll`] between work items,
/// [`Governor::check_barrier`] at round barriers.
#[derive(Debug, Clone)]
pub struct Governor {
    deadline: Option<Instant>,
    max_rounds: Option<u64>,
    max_tuples: Option<u64>,
    max_bytes: Option<u64>,
    cancel: Option<CancelToken>,
}

impl Governor {
    /// Build a governor; the deadline clock starts now.
    pub fn new(limits: Limits, cancel: Option<CancelToken>) -> Self {
        Governor {
            deadline: limits.deadline.map(|d| Instant::now() + d),
            max_rounds: limits.max_rounds,
            max_tuples: limits.max_tuples,
            max_bytes: limits.max_bytes,
            cancel,
        }
    }

    /// A governor that never trips.
    pub fn unlimited() -> Self {
        Governor::new(Limits::none(), None)
    }

    /// Cheap timing-dependent check (cancellation, deadline), called between
    /// work items. A trip mid-round makes the engine discard the whole
    /// round, keeping the surviving state barrier-consistent.
    pub fn poll(&self) -> CoreResult<()> {
        if let Some(token) = &self.cancel {
            if token.is_cancelled() {
                return Err(CoreError::Cancelled);
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Err(CoreError::LimitExceeded {
                    limit: LimitKind::Deadline,
                });
            }
        }
        Ok(())
    }

    /// Full check at a deterministic round barrier, where `stats` and the
    /// stored relations are identical across thread counts. `bytes` is
    /// consulted lazily, only when a byte ceiling is set.
    ///
    /// Call this only when the fixpoint still has work to do: an evaluation
    /// that *completes* within its final round is a success even if that
    /// round grazed a ceiling.
    pub fn check_barrier(&self, stats: &EvalStats, bytes: impl FnOnce() -> u64) -> CoreResult<()> {
        self.poll()?;
        if let Some(max) = self.max_rounds {
            if stats.iterations >= max {
                return Err(CoreError::LimitExceeded {
                    limit: LimitKind::Rounds,
                });
            }
        }
        if let Some(max) = self.max_tuples {
            if stats.inserted > max {
                return Err(CoreError::LimitExceeded {
                    limit: LimitKind::Tuples,
                });
            }
        }
        if let Some(max) = self.max_bytes {
            if bytes() > max {
                return Err(CoreError::LimitExceeded {
                    limit: LimitKind::Bytes,
                });
            }
        }
        Ok(())
    }
}

/// Structured evaluation failure, as returned by
/// [`evaluate_governed`](crate::evaluate_governed) and
/// [`Session::try_run`](crate::Session::try_run). Limit trips and
/// cancellations carry the **partial output** — the relations, stats, and
/// profile accumulated up to the last completed round barrier — so a
/// governed caller can show what was derived before the stop.
#[derive(Debug, Clone)]
pub enum EvalError {
    /// A resource ceiling tripped.
    Limit {
        /// Which ceiling.
        limit: LimitKind,
        /// Output as of the last completed round barrier.
        partial: Box<EvalOutput>,
    },
    /// The cancellation token fired.
    Cancelled {
        /// Output as of the last completed round barrier.
        partial: Box<EvalOutput>,
    },
    /// Any other evaluation failure (parse-independent runtime errors,
    /// contained panics, builtin overflow, …). Carries no partial output.
    Core(CoreError),
}

impl EvalError {
    /// Flatten to the payload-light [`CoreError`], dropping any partial
    /// output. This is how the legacy `CoreResult` entry points are derived
    /// from the governed one.
    pub fn into_core(self) -> CoreError {
        match self {
            EvalError::Limit { limit, .. } => CoreError::LimitExceeded { limit },
            EvalError::Cancelled { .. } => CoreError::Cancelled,
            EvalError::Core(e) => e,
        }
    }

    /// The partial output, when this error carries one.
    pub fn partial_output(&self) -> Option<&EvalOutput> {
        match self {
            EvalError::Limit { partial, .. } | EvalError::Cancelled { partial } => Some(partial),
            EvalError::Core(_) => None,
        }
    }

    /// The stable [`ErrorCode`](crate::ErrorCode) for this error — the same
    /// code [`EvalError::into_core`] would yield, without consuming the
    /// partial output.
    pub fn code(&self) -> crate::ErrorCode {
        match self {
            EvalError::Limit { limit, .. } => crate::ErrorCode::Limit(*limit),
            EvalError::Cancelled { .. } => crate::ErrorCode::Cancelled,
            EvalError::Core(e) => e.code(),
        }
    }
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::Limit { limit, .. } => write!(f, "limit exceeded: {limit}"),
            EvalError::Cancelled { .. } => f.write_str("evaluation cancelled"),
            EvalError::Core(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for EvalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EvalError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for EvalError {
    fn from(e: CoreError) -> Self {
        EvalError::Core(e)
    }
}

/// Render a `catch_unwind` payload as the panic message it carried.
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_governor_never_trips() {
        let g = Governor::unlimited();
        assert!(g.poll().is_ok());
        let stats = EvalStats {
            iterations: u64::MAX,
            inserted: u64::MAX,
            ..Default::default()
        };
        assert!(g.check_barrier(&stats, || u64::MAX).is_ok());
    }

    #[test]
    fn round_and_tuple_ceilings_trip_at_barriers() {
        let g = Governor::new(
            Limits {
                max_rounds: Some(3),
                max_tuples: Some(10),
                ..Limits::none()
            },
            None,
        );
        let ok = EvalStats {
            iterations: 2,
            inserted: 10,
            ..Default::default()
        };
        assert!(g.check_barrier(&ok, || 0).is_ok());
        let rounds = EvalStats {
            iterations: 3,
            ..Default::default()
        };
        assert_eq!(
            g.check_barrier(&rounds, || 0),
            Err(CoreError::LimitExceeded {
                limit: LimitKind::Rounds
            })
        );
        let tuples = EvalStats {
            inserted: 11,
            ..Default::default()
        };
        assert_eq!(
            g.check_barrier(&tuples, || 0),
            Err(CoreError::LimitExceeded {
                limit: LimitKind::Tuples
            })
        );
    }

    #[test]
    fn byte_ceiling_consults_estimate_lazily() {
        let g = Governor::new(
            Limits {
                max_bytes: Some(100),
                ..Limits::none()
            },
            None,
        );
        assert_eq!(
            g.check_barrier(&EvalStats::default(), || 101),
            Err(CoreError::LimitExceeded {
                limit: LimitKind::Bytes
            })
        );
        // No byte limit set: the closure must not even run.
        let g = Governor::unlimited();
        assert!(g
            .check_barrier(&EvalStats::default(), || panic!("consulted"))
            .is_ok());
    }

    #[test]
    fn zero_deadline_trips_immediately() {
        let g = Governor::new(
            Limits {
                deadline: Some(Duration::ZERO),
                ..Limits::none()
            },
            None,
        );
        assert_eq!(
            g.poll(),
            Err(CoreError::LimitExceeded {
                limit: LimitKind::Deadline
            })
        );
    }

    #[test]
    fn cancel_token_is_shared_and_resettable() {
        let token = CancelToken::new();
        let g = Governor::new(Limits::none(), Some(token.clone()));
        assert!(g.poll().is_ok());
        token.clone().cancel();
        assert_eq!(g.poll(), Err(CoreError::Cancelled));
        token.reset();
        assert!(g.poll().is_ok());
    }

    #[test]
    fn limit_kind_names_match_cli_flags() {
        assert_eq!(LimitKind::Deadline.to_string(), "timeout");
        assert_eq!(LimitKind::Tuples.to_string(), "max-tuples");
        assert_eq!(LimitKind::Models.to_string(), "max-models");
    }
}
