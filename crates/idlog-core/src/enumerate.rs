//! All-answers enumeration: the query as a set of relations.
//!
//! A non-deterministic IDLOG query maps an input database to the *set* of
//! answers `{ qᴵ : I a finite perfect model }` (\[She90b\] §3.1). Perfect
//! models are in bijection with choices of ID-functions, so enumeration
//! backtracks over every [`idlog_storage::IdAssignment`] at every
//! ID-materialization point,
//! stratum by stratum. The space is a product of factorials; an
//! [`EnumBudget`] bounds the walk, the [`crate::Governor`] limits
//! bound each branch's fixpoint, and the result records *which* stop —
//! model budget, answer budget, a resource ceiling, or cancellation — ended
//! the walk early ([`AnswerSet::stopped`]).

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;

use idlog_common::{FxHashMap, FxHashSet, Interner, SymbolId, Tuple};
use idlog_storage::{
    make_id_relation, BoundedAssignmentIter, Database, IdAssignmentIter, Relation,
};

use crate::config::EvalOptions;
use crate::engine::{eval_stratum, EvalState};
use crate::error::{CoreError, CoreResult};
use crate::eval;
use crate::govern::{panic_message, CancelToken, Governor, LimitKind, StopReason};
use crate::plan::RulePlan;
use crate::pred::PredKey;
use crate::program::ValidatedProgram;
use crate::stats::EvalStats;
use crate::tid::CanonicalOracle;
use crate::tidbound::tid_bounds;

/// Bounds on enumeration work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EnumBudget {
    /// Maximum number of perfect models (leaves) to visit.
    pub max_models: u64,
    /// Maximum number of *distinct answers* to collect.
    pub max_answers: usize,
}

impl Default for EnumBudget {
    fn default() -> Self {
        EnumBudget {
            max_models: 100_000,
            max_answers: 10_000,
        }
    }
}

/// The set of answers of a non-deterministic query.
#[derive(Debug, Clone)]
pub struct AnswerSet {
    answers: Vec<Relation>,
    stop: Option<StopReason>,
    models_explored: u64,
}

impl AnswerSet {
    /// Number of distinct answers.
    pub fn len(&self) -> usize {
        self.answers.len()
    }

    /// True when there are no answers (never the case for a total query on a
    /// stratifiable program — the empty relation is still an answer).
    pub fn is_empty(&self) -> bool {
        self.answers.is_empty()
    }

    /// The distinct answer relations.
    pub fn iter(&self) -> impl Iterator<Item = &Relation> {
        self.answers.iter()
    }

    /// False when a budget, resource limit, or cancellation stopped the walk
    /// before every perfect model was visited.
    pub fn complete(&self) -> bool {
        self.stop.is_none()
    }

    /// Why the walk stopped early, when it did: the enumeration budgets
    /// report as [`LimitKind::Models`]/[`LimitKind::Answers`], governor
    /// ceilings as their own [`LimitKind`], Ctrl-C as
    /// [`StopReason::Cancelled`]. `None` means the walk was exhaustive.
    pub fn stopped(&self) -> Option<StopReason> {
        self.stop
    }

    /// How many perfect models were visited.
    pub fn models_explored(&self) -> u64 {
        self.models_explored
    }

    /// Each answer as a sorted list of rendered tuples; the outer list is
    /// sorted too. Canonical across runs — convenient for tests and reports.
    pub fn to_sorted_strings(&self, interner: &Interner) -> Vec<Vec<String>> {
        let mut out: Vec<Vec<String>> = self
            .answers
            .iter()
            .map(|rel| {
                let mut rows: Vec<String> = rel
                    .sorted_canonical(interner)
                    .iter()
                    .map(|t| t.display(interner).to_string())
                    .collect();
                rows.sort();
                rows
            })
            .collect();
        out.sort();
        out
    }

    /// True when some answer equals exactly `tuples` (order-insensitive).
    pub fn contains_answer(&self, tuples: &[Tuple]) -> bool {
        self.answers
            .iter()
            .any(|rel| rel.len() == tuples.len() && tuples.iter().all(|t| rel.contains(t)))
    }

    /// Build an answer set from raw relations (used by the other language
    /// semantics in this workspace — DATALOG^C and DL — so their answer sets
    /// compare directly with IDLOG's). Deduplicates and sorts canonically.
    /// An incomplete walk (`complete == false`) reports as a model-budget
    /// stop; use [`AnswerSet::collect_stopped`] to carry a precise reason.
    pub fn collect(
        relations: impl IntoIterator<Item = Relation>,
        complete: bool,
        models_explored: u64,
        interner: &Interner,
    ) -> AnswerSet {
        let stop = if complete {
            None
        } else {
            Some(StopReason::Limit(LimitKind::Models))
        };
        AnswerSet::collect_stopped(relations, stop, models_explored, interner)
    }

    /// Like [`AnswerSet::collect`], but records exactly why the walk stopped
    /// early (`None` = exhaustive).
    pub fn collect_stopped(
        relations: impl IntoIterator<Item = Relation>,
        stop: Option<StopReason>,
        models_explored: u64,
        interner: &Interner,
    ) -> AnswerSet {
        let mut keys: FxHashSet<Vec<Tuple>> = FxHashSet::default();
        let mut answers = Vec::new();
        for rel in relations {
            if keys.insert(rel.sorted_canonical(interner)) {
                answers.push(rel);
            }
        }
        answers.sort_by(|a, b| {
            let ka = a.sorted_canonical(interner);
            let kb = b.sorted_canonical(interner);
            ka.len().cmp(&kb.len()).then_with(|| {
                for (x, y) in ka.iter().zip(kb.iter()) {
                    let ord = x.cmp_canonical(y, interner);
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            })
        });
        AnswerSet {
            answers,
            stop,
            models_explored,
        }
    }

    /// Set-equality of two answer sets (same distinct answers).
    pub fn same_answers(&self, other: &AnswerSet, interner: &Interner) -> bool {
        self.to_sorted_strings(interner) == other.to_sorted_strings(interner)
    }
}

/// Enumerate every answer of `output` over `db` under [`EvalOptions`]: the
/// options' budget bounds the walk, and the configured thread budget drives
/// the first choice point's fan-out (whatever is not consumed by branching
/// parallelizes the per-branch fixpoint rounds). Profiling does not apply
/// to enumeration and is ignored.
///
/// ```
/// use idlog_core::Query;
///
/// // Example 2 of the paper: guessing everyone's sex.
/// let q = Query::parse(
///     "sex_guess(X, male) :- person(X).
///      sex_guess(X, female) :- person(X).
///      man(X) :- sex_guess[1](X, male, 1).",
///     "man",
/// ).unwrap();
/// let mut db = q.new_database();
/// db.insert_syms("person", &["a"]).unwrap();
/// db.insert_syms("person", &["b"]).unwrap();
///
/// let answers = q.session(&db).all_answers().unwrap();
/// assert_eq!(answers.len(), 4); // ∅, {a}, {b}, {a, b}
/// assert!(answers.complete());
/// ```
pub fn enumerate_with_options(
    program: &ValidatedProgram,
    db: &Database,
    output: &str,
    options: &EvalOptions,
) -> CoreResult<AnswerSet> {
    enumerate_governed(program, db, output, options, None)
}

/// [`enumerate_with_options`] plus governance: the options'
/// [`Limits`](crate::Limits) bound each branch's fixpoint and the whole walk
/// (deadline), and `cancel` lets a signal handler or embedder stop the walk.
///
/// Limit trips and cancellations are **not errors** here: enumeration is
/// a bounded walk by design, so they end the walk the same way the model
/// budget does, and the returned set reports the reason through
/// [`AnswerSet::stopped`]. Only real failures (validation, arithmetic,
/// contained panics) return `Err`.
pub fn enumerate_governed(
    program: &ValidatedProgram,
    db: &Database,
    output: &str,
    options: &EvalOptions,
    cancel: Option<&CancelToken>,
) -> CoreResult<AnswerSet> {
    let governor = Governor::new(options.limits, cancel.cloned());
    enumerate_impl(program, db, output, &options.budget, options, &governor)
}

/// `Shared::stop` encoding: `0` = still walking; otherwise a [`StopReason`].
/// The first writer wins (compare-exchange from `0`), so the reported reason
/// is the first stop observed anywhere in the walk.
fn encode_stop(reason: StopReason) -> u8 {
    match reason {
        StopReason::Limit(LimitKind::Deadline) => 1,
        StopReason::Limit(LimitKind::Rounds) => 2,
        StopReason::Limit(LimitKind::Tuples) => 3,
        StopReason::Limit(LimitKind::Bytes) => 4,
        StopReason::Limit(LimitKind::Models) => 5,
        StopReason::Limit(LimitKind::Answers) => 6,
        StopReason::Cancelled => 7,
    }
}

fn decode_stop(code: u8) -> Option<StopReason> {
    match code {
        0 => None,
        1 => Some(StopReason::Limit(LimitKind::Deadline)),
        2 => Some(StopReason::Limit(LimitKind::Rounds)),
        3 => Some(StopReason::Limit(LimitKind::Tuples)),
        4 => Some(StopReason::Limit(LimitKind::Bytes)),
        5 => Some(StopReason::Limit(LimitKind::Models)),
        6 => Some(StopReason::Limit(LimitKind::Answers)),
        _ => Some(StopReason::Cancelled),
    }
}

struct Shared {
    budget: EnumBudget,
    /// Perfect models visited, across all workers.
    models: AtomicU64,
    /// First stop reason observed anywhere ([`encode_stop`]); `0` = none.
    stop: AtomicU8,
}

impl Shared {
    /// Record a stop; the first reason wins, later ones are ignored.
    fn stop_with(&self, reason: StopReason) {
        let _ = self.stop.compare_exchange(
            0,
            encode_stop(reason),
            Ordering::Relaxed,
            Ordering::Relaxed,
        );
    }

    /// Record the stop corresponding to a governor trip.
    fn stop_for(&self, e: &CoreError) {
        match e {
            CoreError::LimitExceeded { limit } => self.stop_with(StopReason::Limit(*limit)),
            CoreError::Cancelled => self.stop_with(StopReason::Cancelled),
            // Not a stop — real errors propagate as Err, not through here.
            _ => {}
        }
    }

    fn is_stopped(&self) -> bool {
        self.stop.load(Ordering::Relaxed) != 0
    }

    fn stopped(&self) -> Option<StopReason> {
        decode_stop(self.stop.load(Ordering::Relaxed))
    }
}

/// Per-worker answer sink (merged after the walk); keeps the hot leaf path
/// free of cross-thread locking.
#[derive(Default)]
struct Local {
    keys: FxHashSet<Vec<Tuple>>,
    answers: Vec<Relation>,
}

fn enumerate_impl(
    program: &ValidatedProgram,
    db: &Database,
    output: &str,
    budget: &EnumBudget,
    options: &EvalOptions,
    governor: &Governor,
) -> CoreResult<AnswerSet> {
    let interner = Arc::clone(program.interner());
    let output_id = interner.get(output).ok_or_else(|| CoreError::Validation {
        clause: None,
        message: format!("output predicate {output} does not occur in the program"),
    })?;

    // Only the program portion related to the output contributes choice
    // points or answers (the paper's P/q).
    let restricted = program.restrict_to(output_id)?;
    if restricted.arity(output_id).is_none() {
        // No clause defines the output: either it is an input predicate
        // (the identity query — one answer, the stored relation) or it does
        // not occur at all.
        return match program.arity(output_id) {
            Some(arity) => {
                let rel = db
                    .relation_by_id(output_id)
                    .cloned()
                    .unwrap_or_else(|| Relation::elementary(arity));
                Ok(AnswerSet::collect([rel], true, 1, &interner))
            }
            None => Err(CoreError::Validation {
                clause: None,
                message: format!("output predicate {output} does not occur in the program"),
            }),
        };
    }

    let strat = restricted.stratification();
    let plans = restricted.plans();
    let by_stratum = strat.clauses_by_stratum(restricted.ast());
    let stratum_plans: Vec<Vec<&RulePlan>> = by_stratum
        .iter()
        .map(|cs| cs.iter().map(|&ci| &plans[ci]).collect())
        .collect();

    let mut state = EvalState::new();
    eval::install_for_enumeration(&restricted, db, &mut state, options.backend)?;

    // Footnote 6/7 optimization: ID-uses whose tids are provably bounded
    // enumerate k-prefix arrangements instead of full permutations.
    let bounds = tid_bounds(&restricted);

    let shared = Shared {
        budget: *budget,
        models: AtomicU64::new(0),
        stop: AtomicU8::new(0),
    };

    let cx = Cx {
        stratum_plans: &stratum_plans,
        interner: &interner,
        output: output_id,
        shared: &shared,
        bounds: &bounds,
        governor,
    };
    // Cap the fan-out: beyond a small pool the branch chunks stop amortizing
    // the per-branch state clone.
    let threads = options.effective_threads().min(16);
    let mut local = Local::default();
    // The walk is contained: a panic anywhere below surfaces as a clean
    // `Internal` error instead of aborting the caller. Parallel branch
    // workers are additionally contained at their join points in `branch`.
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        explore(&cx, 0, state, threads, &mut local)
    })) {
        Ok(result) => result?,
        Err(payload) => {
            return Err(CoreError::Internal {
                clause: None,
                message: format!("enumeration panicked: {}", panic_message(payload)),
            })
        }
    }

    // `Local` already deduplicates within one worker; parallel workers merge
    // their sinks in `branch`, so at this point `local` holds everything.
    if local.answers.len() > budget.max_answers {
        local.answers.truncate(budget.max_answers);
        shared.stop_with(StopReason::Limit(LimitKind::Answers));
    }
    Ok(AnswerSet::collect_stopped(
        local.answers,
        shared.stopped(),
        shared.models.load(Ordering::Relaxed),
        &interner,
    ))
}

/// Shared read-only context for the recursive walk.
struct Cx<'a> {
    stratum_plans: &'a [Vec<&'a RulePlan>],
    interner: &'a Arc<Interner>,
    output: SymbolId,
    shared: &'a Shared,
    bounds: &'a FxHashMap<(SymbolId, Vec<usize>), usize>,
    governor: &'a Governor,
}

/// Recursive walk: at stratum `k`, branch over the assignments of every
/// ID-relation the stratum reads, evaluate, and descend.
fn explore(
    cx: &Cx<'_>,
    k: usize,
    state: EvalState,
    threads: usize,
    local: &mut Local,
) -> CoreResult<()> {
    if k == cx.stratum_plans.len() {
        let rel = state
            .get(&PredKey::Ordinary(cx.output))
            .cloned()
            .unwrap_or_else(|| Relation::elementary(0));
        let key = rel.sorted_canonical(cx.interner);
        let models = cx.shared.models.fetch_add(1, Ordering::Relaxed) + 1;
        if models > cx.shared.budget.max_models {
            cx.shared.stop_with(StopReason::Limit(LimitKind::Models));
            return Ok(());
        }
        if local.keys.insert(key) {
            if local.answers.len() >= cx.shared.budget.max_answers {
                cx.shared.stop_with(StopReason::Limit(LimitKind::Answers));
                return Ok(());
            }
            local.answers.push(rel);
        }
        return Ok(());
    }

    // Which ID-relations does this stratum need that are not yet chosen?
    let mut needed: Vec<(PredKey, SymbolId, Vec<usize>)> = Vec::new();
    let mut seen: FxHashSet<PredKey> = FxHashSet::default();
    for plan in &cx.stratum_plans[k] {
        for step in &plan.steps {
            if let Some(PredKey::Id(base, grouping)) = step.reads() {
                let key = PredKey::Id(*base, grouping.clone());
                if !state.has(&key) && seen.insert(key.clone()) {
                    needed.push((key, *base, grouping.clone()));
                }
            }
        }
    }
    // Deterministic branch order.
    needed.sort_by_key(|(_, base, grouping)| (cx.interner.resolve(*base), grouping.clone()));

    branch(cx, k, state, threads, &needed, 0, local)
}

/// Branch over assignments of `needed[i..]`, then evaluate stratum `k` and
/// descend.
#[allow(clippy::too_many_arguments)]
fn branch(
    cx: &Cx<'_>,
    k: usize,
    state: EvalState,
    threads: usize,
    needed: &[(PredKey, SymbolId, Vec<usize>)],
    i: usize,
    local: &mut Local,
) -> CoreResult<()> {
    if cx.shared.is_stopped() {
        return Ok(());
    }
    // Timing-dependent stops (deadline, Ctrl-C): a trip ends the walk the
    // same way a budget does — the answers gathered so far stand, and the
    // result records the reason.
    if let Err(e) = cx.governor.poll() {
        cx.shared.stop_for(&e);
        return Ok(());
    }
    if i == needed.len() {
        let mut state = state;
        let same: FxHashSet<SymbolId> = cx.stratum_plans[k].iter().map(|p| p.head_pred).collect();
        let mut stats = EvalStats::default();
        // Threads not consumed by branch fan-out parallelize the rounds.
        // Governor trips inside the branch's fixpoint (per-branch rounds,
        // tuples, bytes, or the shared deadline) stop the walk rather than
        // failing it.
        match eval_stratum(
            &mut state,
            &cx.stratum_plans[k],
            &same,
            &mut stats,
            threads,
            cx.governor,
            None,
        ) {
            Ok(()) => {}
            Err(e @ (CoreError::LimitExceeded { .. } | CoreError::Cancelled)) => {
                cx.shared.stop_for(&e);
                return Ok(());
            }
            Err(e) => return Err(e),
        }
        return explore(cx, k + 1, state, threads, local);
    }

    let (key, base, grouping) = &needed[i];
    let base_rel = state
        .get(&PredKey::Ordinary(*base))
        .cloned()
        .ok_or_else(|| CoreError::Eval {
            message: format!("base relation {} missing", cx.interner.resolve(*base)),
        })?;
    // Only distinguishable assignments: k-prefix arrangements when the tid
    // use is bounded, full permutations otherwise.
    let assignments: Vec<_> = match cx.bounds.get(&(*base, grouping.clone())) {
        Some(&bound) => {
            BoundedAssignmentIter::new(&base_rel, grouping, bound, cx.interner).collect()
        }
        None => IdAssignmentIter::new(&base_rel, grouping, cx.interner).collect(),
    };

    if threads > 1 && assignments.len() > 1 {
        // Distribute the first choice point's branches over a bounded pool:
        // one thread per chunk, each walking its share sequentially into its
        // own local sink (no cross-thread locking on the leaf path). With a
        // single-thread budget (e.g. a single-core host under auto config)
        // this path is skipped — threads would only add overhead.
        let chunk_len = assignments.len().div_ceil(threads);
        let results: Vec<CoreResult<Local>> = std::thread::scope(|scope| {
            let handles: Vec<_> = assignments
                .chunks(chunk_len)
                .map(|chunk| {
                    let state = &state;
                    let base_rel = &base_rel;
                    let key = &key;
                    scope.spawn(move || -> CoreResult<Local> {
                        #[cfg(feature = "failpoints")]
                        if let Err(message) = idlog_common::failpoint::hit("enum.branch") {
                            return Err(CoreError::Internal {
                                clause: None,
                                message,
                            });
                        }
                        let mut mine = Local::default();
                        for assignment in chunk {
                            if cx.shared.is_stopped() {
                                return Ok(mine);
                            }
                            let mut branch_state = state.clone();
                            branch_state
                                .put((*key).clone(), make_id_relation(base_rel, assignment)?);
                            // Only one level of parallelism.
                            branch(cx, k, branch_state, 1, needed, i + 1, &mut mine)?;
                        }
                        Ok(mine)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(r) => r,
                    // A worker panic must not take the process down; surface
                    // it as the same contained-fault error the fixpoint uses.
                    Err(payload) => Err(CoreError::Internal {
                        clause: None,
                        message: format!(
                            "enumeration branch worker panicked: {}",
                            panic_message(payload)
                        ),
                    }),
                })
                .collect()
        });
        for r in results {
            let mine = r?;
            for rel in mine.answers {
                let key = rel.sorted_canonical(cx.interner);
                if local.keys.insert(key) {
                    local.answers.push(rel);
                }
            }
        }
        return Ok(());
    }

    for assignment in &assignments {
        if cx.shared.is_stopped() {
            return Ok(());
        }
        let mut branch_state = state.clone();
        branch_state.put(key.clone(), make_id_relation(&base_rel, assignment)?);
        branch(cx, k, branch_state, threads, needed, i + 1, local)?;
    }
    Ok(())
}

/// Deterministic single-model shortcut used by tests: the canonical answer.
pub fn canonical_answer(
    program: &ValidatedProgram,
    db: &Database,
    output: &str,
) -> CoreResult<Relation> {
    let out =
        eval::evaluate_with_options(program, db, &mut CanonicalOracle, &EvalOptions::default())?;
    out.relation(output)
        .cloned()
        .ok_or_else(|| CoreError::Validation {
            clause: None,
            message: format!("output predicate {output} does not occur in the program"),
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(src: &str, facts: &[(&str, &[&str])]) -> (ValidatedProgram, Database) {
        let interner = Arc::new(Interner::new());
        let program = ValidatedProgram::parse(src, Arc::clone(&interner)).unwrap();
        let mut db = Database::with_interner(interner);
        for (pred, cols) in facts {
            db.insert_syms(pred, cols).unwrap();
        }
        (program, db)
    }

    fn enumerate(
        program: &ValidatedProgram,
        db: &Database,
        output: &str,
        budget: &EnumBudget,
    ) -> CoreResult<AnswerSet> {
        enumerate_with_options(program, db, output, &EvalOptions::serial().budget(*budget))
    }

    #[test]
    fn paper_example2_all_answers() {
        // The query man on person={a,b} has answers ∅, {a}, {b}, {a,b}.
        let (p, db) = setup(
            "sex_guess(X, male) :- person(X).
             sex_guess(X, female) :- person(X).
             man(X) :- sex_guess[1](X, male, 1).
             woman(X) :- sex_guess[1](X, female, 1).",
            &[("person", &["a"]), ("person", &["b"])],
        );
        let budget = EnumBudget::default();
        let answers = enumerate(&p, &db, "man", &budget).unwrap();
        assert!(answers.complete());
        assert_eq!(answers.stopped(), None);
        let strings = answers.to_sorted_strings(p.interner());
        assert_eq!(
            strings,
            vec![
                vec![],
                vec!["(a)".to_string()],
                vec!["(a)".to_string(), "(b)".to_string()],
                vec!["(b)".to_string()],
            ]
        );
        // woman has the same answer set by symmetry.
        let answers_w = enumerate(&p, &db, "woman", &budget).unwrap();
        assert_eq!(answers_w.to_sorted_strings(p.interner()), strings);
    }

    #[test]
    fn deterministic_program_has_one_answer() {
        let (p, db) = setup(
            "tc(X, Y) :- e(X, Y). tc(X, Y) :- e(X, Z), tc(Z, Y).",
            &[("e", &["a", "b"]), ("e", &["b", "c"])],
        );
        let answers = enumerate(&p, &db, "tc", &EnumBudget::default()).unwrap();
        assert_eq!(answers.len(), 1);
        assert!(answers.complete());
        assert_eq!(answers.models_explored(), 1);
    }

    #[test]
    fn one_per_group_selection_has_product_many_models_but_fewer_answers() {
        // Pick one employee from the sales group of 3. A constant tid 0
        // bounds the observable tids, so the walk visits 3 distinguishable
        // arrangements (not 3! = 6 permutations) — the footnote 6/7
        // optimization — and finds 3 distinct answers.
        let (p, db) = setup(
            "pick(N) :- emp[2](N, d, 0).",
            &[
                ("emp", &["a", "d"]),
                ("emp", &["b", "d"]),
                ("emp", &["c", "d"]),
            ],
        );
        let answers = enumerate(&p, &db, "pick", &EnumBudget::default()).unwrap();
        assert_eq!(answers.models_explored(), 3);
        assert_eq!(answers.len(), 3);
    }

    #[test]
    fn unbounded_tid_use_walks_full_permutations() {
        // The tid is exposed in the head, so every permutation is a
        // distinguishable model: 3! = 6.
        let (p, db) = setup(
            "pick(N, T) :- emp[2](N, d, T).",
            &[
                ("emp", &["a", "d"]),
                ("emp", &["b", "d"]),
                ("emp", &["c", "d"]),
            ],
        );
        let answers = enumerate(&p, &db, "pick", &EnumBudget::default()).unwrap();
        assert_eq!(answers.models_explored(), 6);
        assert_eq!(answers.len(), 6);
    }

    #[test]
    fn budget_truncates() {
        // The head exposes the tid, so the space is the full 5! = 120
        // permutations; cap at 10.
        let (p, db) = setup(
            "pick(N, T) :- emp[](N, D, T).",
            &[
                ("emp", &["a", "d"]),
                ("emp", &["b", "d"]),
                ("emp", &["c", "d"]),
                ("emp", &["e", "d"]),
                ("emp", &["f", "d"]),
            ],
        );
        let budget = EnumBudget {
            max_models: 10,
            max_answers: 1000,
        };
        let answers = enumerate(&p, &db, "pick", &budget).unwrap();
        assert!(!answers.complete());
        assert_eq!(
            answers.stopped(),
            Some(StopReason::Limit(LimitKind::Models))
        );
        assert!(answers.models_explored() <= 11);
    }

    #[test]
    fn answer_budget_reports_its_own_kind() {
        let (p, db) = setup(
            "pick(N, T) :- emp[](N, D, T).",
            &[
                ("emp", &["a", "d"]),
                ("emp", &["b", "d"]),
                ("emp", &["c", "d"]),
            ],
        );
        let budget = EnumBudget {
            max_models: 1_000,
            max_answers: 2,
        };
        let answers = enumerate(&p, &db, "pick", &budget).unwrap();
        assert!(!answers.complete());
        assert_eq!(
            answers.stopped(),
            Some(StopReason::Limit(LimitKind::Answers))
        );
        assert_eq!(answers.len(), 2);
    }

    #[test]
    fn zero_deadline_stops_the_walk_cleanly() {
        // A deadline trip is a *stop*, not an error: the walk ends where it
        // stands and the result names the timeout.
        let (p, db) = setup(
            "tc(X, Y) :- e(X, Y). tc(X, Y) :- e(X, Z), tc(Z, Y).",
            &[("e", &["a", "b"]), ("e", &["b", "c"])],
        );
        let opts = EvalOptions::serial().deadline(std::time::Duration::ZERO);
        let answers = enumerate_governed(&p, &db, "tc", &opts, None).unwrap();
        assert!(!answers.complete());
        assert_eq!(
            answers.stopped(),
            Some(StopReason::Limit(LimitKind::Deadline))
        );
    }

    #[test]
    fn cancelled_token_stops_the_walk_cleanly() {
        let (p, db) = setup(
            "tc(X, Y) :- e(X, Y). tc(X, Y) :- e(X, Z), tc(Z, Y).",
            &[("e", &["a", "b"])],
        );
        let token = CancelToken::new();
        token.cancel();
        let answers =
            enumerate_governed(&p, &db, "tc", &EvalOptions::serial(), Some(&token)).unwrap();
        assert!(!answers.complete());
        assert_eq!(answers.stopped(), Some(StopReason::Cancelled));
    }

    #[test]
    fn parallel_matches_sequential() {
        let (p, db) = setup(
            "sex_guess(X, male) :- person(X).
             sex_guess(X, female) :- person(X).
             man(X) :- sex_guess[1](X, male, 1).",
            &[("person", &["a"]), ("person", &["b"]), ("person", &["c"])],
        );
        let budget = EnumBudget::default();
        let seq = enumerate(&p, &db, "man", &budget).unwrap();
        let par =
            enumerate_with_options(&p, &db, "man", &EvalOptions::new().budget(budget)).unwrap();
        assert_eq!(
            seq.to_sorted_strings(p.interner()),
            par.to_sorted_strings(p.interner())
        );
    }

    #[test]
    fn unknown_output_is_an_error() {
        let (p, db) = setup("p(X) :- q(X).", &[]);
        assert!(enumerate(&p, &db, "zzz", &EnumBudget::default()).is_err());
    }

    #[test]
    fn unrelated_choice_points_do_not_blow_up() {
        // The ID-use in `noise` is unrelated to `out`; P/q restriction must
        // drop it, leaving exactly one model.
        let (p, db) = setup(
            "noise(N) :- emp[](N, D, 0).
             out(X) :- person(X).",
            &[
                ("person", &["a"]),
                ("emp", &["a", "d"]),
                ("emp", &["b", "d"]),
                ("emp", &["c", "d"]),
            ],
        );
        let answers = enumerate(&p, &db, "out", &EnumBudget::default()).unwrap();
        assert_eq!(answers.models_explored(), 1);
        assert_eq!(answers.len(), 1);
    }

    #[test]
    fn legacy_collect_maps_incomplete_to_model_budget() {
        let interner = Interner::new();
        let set = AnswerSet::collect([Relation::elementary(0)], false, 3, &interner);
        assert!(!set.complete());
        assert_eq!(set.stopped(), Some(StopReason::Limit(LimitKind::Models)));
        let set = AnswerSet::collect([Relation::elementary(0)], true, 1, &interner);
        assert!(set.complete());
        assert_eq!(set.stopped(), None);
    }

    #[test]
    fn stop_codes_round_trip() {
        for reason in [
            StopReason::Limit(LimitKind::Deadline),
            StopReason::Limit(LimitKind::Rounds),
            StopReason::Limit(LimitKind::Tuples),
            StopReason::Limit(LimitKind::Bytes),
            StopReason::Limit(LimitKind::Models),
            StopReason::Limit(LimitKind::Answers),
            StopReason::Cancelled,
        ] {
            assert_eq!(decode_stop(encode_stop(reason)), Some(reason));
        }
        assert_eq!(decode_stop(0), None);
    }
}
