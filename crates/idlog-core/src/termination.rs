//! Static termination and boundedness certification.
//!
//! The paper's Theorem 3 makes exact termination undecidable, so — like the
//! ID-taint analysis in [`crate::taint`] — this pass is *sound but
//! incomplete*: every program it certifies genuinely reaches a fixpoint in a
//! bounded number of rounds, but some terminating programs stay uncertified.
//!
//! The analysis has three layers:
//!
//! 1. **Recursion classification.** The predicate dependency graph (from
//!    [`crate::stratify::dependency_edges`]) is condensed into SCCs and each
//!    recursive component is classified as linear, nonlinear, or recursive
//!    through negation / ID-materialization (see [`RecursionKind`]).
//! 2. **Argument flow.** A graph over `(predicate, column)` nodes records
//!    how values move between columns, through joins and through builtins.
//!    Arithmetic over ℕ is the only way IDLOG can *invent* values, so an
//!    edge is **expanding** when it passes through a builtin output position
//!    that can exceed every input (`succ`'s successor, `plus`/`times`
//!    results, `minus`/`div` first arguments). A cycle through an expanding
//!    edge is the divergence engine of `programs/diverge.idl`: the fixpoint
//!    derives an ever-larger value forever. Such a cycle is returned as a
//!    [`FlowEdge`] witness; predicates fed by one are cardinality-unbounded.
//! 3. **Round bound.** When no expanding cycle exists (and the program is
//!    choice-free and stratifiable), every derivable value lives in a finite
//!    pool: database values, program constants, and builtin-generated
//!    naturals up to a ceiling `V*` obtained by applying each expanding
//!    builtin occurrence at most once (an acyclic flow graph cannot reuse
//!    one). [`TerminationCert::round_bound`] turns that pool into a concrete
//!    per-database ceiling on fixpoint rounds — polynomial in the EDB size —
//!    which the engine installs as an automatic `max_rounds` limit, so even
//!    a buggy certificate trips deterministically instead of hanging.

use idlog_common::{FxHashMap, FxHashSet, SymbolId, Value};
use idlog_parser::{Builtin, Literal, Program, Term};
use idlog_storage::Database;

use crate::stratify::{dependency_edges, stratify_check, DepEdge};

/// A node of the argument-flow graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FlowNode {
    /// Column `.1` (0-based) of predicate `.0`.
    Col(SymbolId, usize),
    /// The tid source of predicate `.0`: tids enumerate group members, so
    /// their values are bounded by the base relation's cardinality.
    Card(SymbolId),
}

impl FlowNode {
    /// The predicate this node belongs to.
    pub fn pred(&self) -> SymbolId {
        match self {
            FlowNode::Col(p, _) | FlowNode::Card(p) => *p,
        }
    }
}

/// One edge of the argument-flow graph: a value read from `from` can reach
/// `to` through clause `clause`. Carries provenance for witness rendering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowEdge {
    /// Source node (a body occurrence).
    pub from: FlowNode,
    /// Target node (a head column).
    pub to: FlowNode,
    /// Index of the inducing clause.
    pub clause: usize,
    /// Body literal where the value is read.
    pub literal: usize,
    /// Body literal of the builtin that grows the value, when the edge is
    /// expanding.
    pub grew_at: Option<usize>,
    /// The growing builtin, when the edge is expanding.
    pub op: Option<Builtin>,
}

impl FlowEdge {
    /// True when the value can strictly exceed every value read at `from`.
    pub fn is_expanding(&self) -> bool {
        self.grew_at.is_some()
    }
}

/// How a dependency SCC recurses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecursionKind {
    /// The component has no cycle (a single predicate without a self-edge).
    Nonrecursive,
    /// Every clause of the component reads at most one component predicate.
    Linear,
    /// Some clause reads two or more component predicates.
    Nonlinear,
    /// A cycle of the component passes through negation (not stratifiable).
    ThroughNegation,
    /// A cycle passes through an ID-literal or the clauses use `choice`/`!`
    /// (recursive choice — ID-relations inside the cycle can never be
    /// completely materialized).
    ThroughChoice,
}

impl RecursionKind {
    /// Stable lower-case rendering for reports.
    pub fn as_str(&self) -> &'static str {
        match self {
            RecursionKind::Nonrecursive => "nonrecursive",
            RecursionKind::Linear => "linear",
            RecursionKind::Nonlinear => "nonlinear",
            RecursionKind::ThroughNegation => "through-negation",
            RecursionKind::ThroughChoice => "through-choice",
        }
    }
}

/// One SCC of the predicate dependency graph.
#[derive(Debug, Clone)]
pub struct SccSummary {
    /// Member predicates, in interning order.
    pub preds: Vec<SymbolId>,
    /// Recursion classification.
    pub kind: RecursionKind,
}

/// An ID-literal occurrence whose base predicate is not certified
/// cardinality-bounded (the W021 lint's raw material).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnboundedIdSite {
    /// Clause index of the occurrence.
    pub clause: usize,
    /// Body literal index of the occurrence.
    pub literal: usize,
    /// The base predicate of the ID-literal.
    pub base: SymbolId,
}

/// The result of the termination analysis over one program.
///
/// Produced by [`analyze_termination`]; cached per [`crate::Query`] and
/// consumed by the governor wiring and the `idlog-analyze` lints
/// (W020/W021/H010).
#[derive(Debug, Clone)]
pub struct TerminationCert {
    /// Certified: no expanding flow cycle, choice-free, stratifiable.
    bounded: bool,
    /// An expanding flow cycle, when one exists: `witness[0]` is the
    /// expanding edge, and each edge's `to` is the next edge's `from`,
    /// closing back at `witness[0].from`.
    witness: Vec<FlowEdge>,
    /// Predicates whose cardinality the analysis cannot bound (fed by an
    /// expanding cycle).
    unbounded: FxHashSet<SymbolId>,
    /// Dependency SCCs with their recursion classification.
    sccs: Vec<SccSummary>,
    /// ID-literal occurrences over unbounded bases.
    id_sites: Vec<UnboundedIdSite>,
    /// Derived predicates with their arities (the tuples the fixpoint can
    /// insert), in first-definition order.
    idb: Vec<(SymbolId, usize)>,
    /// Input predicates (read but never defined), with arities.
    edb: Vec<(SymbolId, usize)>,
    /// Largest integer constant in the program (for the value ceiling).
    max_const: i64,
    /// Number of distinct constant terms in the program.
    const_count: u64,
    /// One entry per body occurrence of a builtin with an expanding output
    /// position (bounds the depth of acyclic growth chains).
    expanding_ops: Vec<Builtin>,
    /// Number of strata when the program stratifies.
    strata: u64,
    /// True when the program uses `choice`/`!` or non-IDLOG head forms.
    foreign: bool,
    /// Pre-extracted clause shapes for the instantiation products.
    nonrec_clauses: Vec<ClauseShape>,
    /// Dependency edges (to find what feeds a recursive component).
    dep_edges: Vec<DepEdge>,
}

impl TerminationCert {
    /// True when the analysis certifies that every fixpoint evaluation of
    /// the program reaches its fixpoint in finitely many rounds, on every
    /// database ([`TerminationCert::round_bound`] then yields a concrete
    /// ceiling). `false` means *unknown*, not divergent — Theorem 3 makes
    /// the exact property undecidable.
    pub fn bounded(&self) -> bool {
        self.bounded
    }

    /// True when the analysis bounds the cardinality of `pred` (its set of
    /// derivable tuples is finite on every database). Predicates never fed
    /// by an expanding cycle — including all EDB inputs — are bounded.
    pub fn pred_bounded(&self, pred: SymbolId) -> bool {
        !self.unbounded.contains(&pred)
    }

    /// The expanding flow cycle proving why no bound exists, if one was
    /// found: `witness()[0]` is the expanding edge and consecutive edges
    /// chain `to → from`, closing the cycle.
    pub fn growth_witness(&self) -> Option<&[FlowEdge]> {
        if self.witness.is_empty() {
            None
        } else {
            Some(&self.witness)
        }
    }

    /// Predicates whose cardinality the analysis cannot bound, in
    /// interning order.
    pub fn unbounded_predicates(&self) -> Vec<SymbolId> {
        let mut v: Vec<SymbolId> = self.unbounded.iter().copied().collect();
        v.sort_unstable();
        v
    }

    /// The dependency SCCs with their recursion classification, in
    /// condensation (evaluation) order.
    pub fn recursion(&self) -> &[SccSummary] {
        &self.sccs
    }

    /// The recursion classification of `pred`'s component
    /// ([`RecursionKind::Nonrecursive`] for unknown predicates).
    pub fn recursion_kind(&self, pred: SymbolId) -> RecursionKind {
        self.sccs
            .iter()
            .find(|s| s.preds.contains(&pred))
            .map(|s| s.kind)
            .unwrap_or(RecursionKind::Nonrecursive)
    }

    /// ID-literal occurrences whose base predicate is not certified
    /// cardinality-bounded — materializing such an ID-relation can never
    /// complete (the W021 lint).
    pub fn unbounded_id_sites(&self) -> &[UnboundedIdSite] {
        &self.id_sites
    }

    /// The maximum arity over derived predicates: the degree of the
    /// polynomial (in the active-domain size) bounding every derived
    /// relation's cardinality. `0` for fact-only programs.
    pub fn degree(&self) -> usize {
        self.idb.iter().map(|&(_, a)| a).max().unwrap_or(0)
    }

    /// A concrete ceiling on fixpoint rounds (`EvalStats::iterations`) for
    /// evaluating the program over `db`, or `None` when the program is not
    /// certified bounded.
    ///
    /// The bound is a deliberate over-approximation: every non-final round
    /// inserts at least one tuple, so rounds ≤ total derivable tuples +
    /// one fixpoint-detection round per stratum. Derivable tuples per
    /// predicate are bounded by `D^arity` where `D` is the size of the
    /// derivable-value pool (database values, program constants, naturals
    /// up to the ceiling `V*`, and — for recursive components — the
    /// cardinalities of the components they read, which also bound tid
    /// values). All arithmetic saturates; a saturated bound is still sound,
    /// merely useless as a governor ceiling.
    pub fn round_bound(&self, db: &Database) -> Option<u64> {
        if !self.bounded {
            return None;
        }
        // Value ceiling: the largest natural any evaluation can derive.
        // In a certified (acyclic) flow graph a derivation chain passes
        // each expanding occurrence at most once, so iterating them all
        // `len` times dominates every chain.
        let mut vstar: u64 = self.max_const.max(0) as u64;
        for rel in db.iter().map(|(_, r)| r) {
            for t in rel.iter() {
                for v in t.values() {
                    if let Value::Int(n) = v {
                        vstar = vstar.max((*n).max(0) as u64);
                    }
                }
            }
        }
        for _ in 0..self.expanding_ops.len() + 1 {
            for op in &self.expanding_ops {
                vstar = match op {
                    Builtin::Succ => vstar.saturating_add(1),
                    Builtin::Plus | Builtin::Minus => vstar.saturating_add(vstar).max(1),
                    Builtin::Times | Builtin::Div => vstar.saturating_mul(vstar).max(vstar),
                    _ => vstar,
                };
            }
        }
        // Distinct values stored anywhere in the database.
        let mut pool: FxHashSet<Value> = FxHashSet::default();
        for (_, rel) in db.iter() {
            for t in rel.iter() {
                pool.extend(t.values().iter().copied());
            }
        }
        let base_domain = (pool.len() as u64)
            .saturating_add(self.const_count)
            .saturating_add(vstar)
            .saturating_add(1);

        // Tuple bounds per predicate, over the dependency condensation in
        // evaluation order: nonrecursive predicates get the sum over their
        // clauses of instantiation products; recursive components get
        // `D^arity` over the pool enlarged by everything the component
        // reads (which also covers tid values: a tid of `q` is below
        // `q`'s cardinality).
        let mut tuples: FxHashMap<SymbolId, u64> = FxHashMap::default();
        for &(p, _) in &self.edb {
            let n = db.relation_by_id(p).map(|r| r.len() as u64).unwrap_or(0);
            tuples.insert(p, n);
        }
        let arity: FxHashMap<SymbolId, usize> = self
            .idb
            .iter()
            .chain(self.edb.iter())
            .map(|&(p, a)| (p, a))
            .collect();
        for scc in &self.sccs {
            if scc.kind == RecursionKind::Nonrecursive {
                let p = scc.preds[0];
                if tuples.contains_key(&p) {
                    continue; // EDB input
                }
                let mut total: u64 = 0;
                for clauses in self.clause_products(p, &tuples, vstar) {
                    total = total.saturating_add(clauses);
                }
                tuples.insert(p, total);
            } else {
                let mut domain = base_domain;
                for q in self.feeding(scc) {
                    domain = domain.saturating_add(tuples.get(&q).copied().unwrap_or(0));
                }
                for &p in &scc.preds {
                    let a = arity.get(&p).copied().unwrap_or(0) as u32;
                    tuples.insert(p, domain.saturating_pow(a).max(1));
                }
            }
        }
        let mut total: u64 = 0;
        for &(p, _) in &self.idb {
            total = total.saturating_add(tuples.get(&p).copied().unwrap_or(0));
        }
        Some(total.saturating_add(self.strata).saturating_add(2))
    }

    /// Per-clause instantiation products for nonrecursive `p`: for each
    /// defining clause, the product of body-atom cardinalities, with
    /// `V*+1` per value-generating builtin.
    fn clause_products(
        &self,
        p: SymbolId,
        tuples: &FxHashMap<SymbolId, u64>,
        vstar: u64,
    ) -> Vec<u64> {
        let mut out = Vec::new();
        for clause in &self.nonrec_clauses {
            if clause.head != p {
                continue;
            }
            let mut product: u64 = 1;
            for factor in &clause.factors {
                let f = match factor {
                    ClauseFactor::Atom(q) => tuples.get(q).copied().unwrap_or(0),
                    ClauseFactor::Generator => vstar.saturating_add(1),
                };
                product = product.saturating_mul(f);
            }
            out.push(product);
        }
        out
    }

    /// Predicates outside `scc` that some clause of `scc` reads.
    fn feeding(&self, scc: &SccSummary) -> Vec<SymbolId> {
        let mut out: Vec<SymbolId> = self
            .dep_edges
            .iter()
            .filter(|e| scc.preds.contains(&e.to) && !scc.preds.contains(&e.from))
            .map(|e| e.from)
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }
}

/// A body factor of a nonrecursive clause, for the instantiation product.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ClauseFactor {
    /// A positive atom (ordinary or ID) over the given base predicate.
    Atom(SymbolId),
    /// A value-generating builtin (anything but `=`/`!=`): at most `V*+1`
    /// solutions per instantiation of its bound arguments.
    Generator,
}

/// Pre-extracted shape of one clause, for the per-database bound.
#[derive(Debug, Clone)]
struct ClauseShape {
    head: SymbolId,
    factors: Vec<ClauseFactor>,
}

impl TerminationCert {
    /// An always-uncertified certificate (used defensively for programs the
    /// analysis cannot model).
    fn uncertified(foreign: bool) -> TerminationCert {
        TerminationCert {
            bounded: false,
            witness: Vec::new(),
            unbounded: FxHashSet::default(),
            sccs: Vec::new(),
            id_sites: Vec::new(),
            idb: Vec::new(),
            edb: Vec::new(),
            max_const: 0,
            const_count: 0,
            expanding_ops: Vec::new(),
            strata: 1,
            foreign,
            nonrec_clauses: Vec::new(),
            dep_edges: Vec::new(),
        }
    }

    /// True when the program uses constructs outside the analyzed fragment
    /// (`choice`, `!`, multi-atom or negated heads).
    pub fn outside_fragment(&self) -> bool {
        self.foreign
    }
}

/// Builtin output positions whose value can strictly exceed every input:
/// the successor, sums, products, and the reconstructed minuend/dividend.
fn expanding_output(op: Builtin, pos: usize) -> bool {
    matches!(
        (op, pos),
        (Builtin::Succ, 1)
            | (Builtin::Plus, 2)
            | (Builtin::Minus, 0)
            | (Builtin::Times, 2)
            | (Builtin::Div, 0)
    )
}

/// Builtin argument positions the engine can *bind* from the others (see
/// `idlog_core::builtins::solve`'s mode table). Comparisons enumerate their
/// open side; `!=` never binds.
fn bindable_output(op: Builtin, pos: usize) -> bool {
    match op {
        Builtin::Succ | Builtin::Eq => true,
        Builtin::Plus | Builtin::Minus | Builtin::Times | Builtin::Div => true,
        Builtin::Lt | Builtin::Le => pos == 0,
        Builtin::Gt | Builtin::Ge => pos == 1,
        Builtin::Ne => false,
    }
}

/// One source feeding a clause variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Src {
    node: FlowNode,
    literal: usize,
    grew_at: Option<usize>,
    op: Option<Builtin>,
}

/// Run the termination analysis over `program`. Works on the surface AST so
/// the analyzer can run it on programs that fail later validation stages;
/// anything outside the IDLOG fragment yields an uncertified cert.
pub fn analyze_termination(program: &Program) -> TerminationCert {
    let foreign = program.clauses.iter().any(|c| {
        c.head.len() != 1
            || c.head.iter().any(|h| h.negated)
            || c.body
                .iter()
                .any(|l| matches!(l, Literal::Choice { .. } | Literal::Cut))
    });
    if program.clauses.is_empty() {
        let mut cert = TerminationCert::uncertified(false);
        cert.bounded = true;
        return cert;
    }

    // --- Program inventory: predicates, arities, constants. ---
    let mut idb: Vec<(SymbolId, usize)> = Vec::new();
    let mut all: Vec<(SymbolId, usize)> = Vec::new();
    let mut consts: FxHashSet<Term> = FxHashSet::default();
    let mut max_const: i64 = 0;
    let mut expanding_ops: Vec<Builtin> = Vec::new();
    let see = |all: &mut Vec<(SymbolId, usize)>, p: SymbolId, a: usize| {
        if !all.iter().any(|&(q, _)| q == p) {
            all.push((p, a));
        }
    };
    for clause in &program.clauses {
        for h in &clause.head {
            let p = h.atom.pred.base();
            see(&mut all, p, h.atom.base_arity());
            if !idb.iter().any(|&(q, _)| q == p) {
                idb.push((p, h.atom.base_arity()));
            }
            for t in &h.atom.terms {
                note_const(t, &mut consts, &mut max_const);
            }
        }
        for lit in &clause.body {
            if let Some(a) = lit.atom() {
                see(&mut all, a.pred.base(), a.base_arity());
                for t in &a.terms {
                    note_const(t, &mut consts, &mut max_const);
                }
            }
            if let Literal::Builtin { op, args } = lit {
                if (0..args.len()).any(|i| expanding_output(*op, i)) {
                    expanding_ops.push(*op);
                }
                for t in args {
                    note_const(t, &mut consts, &mut max_const);
                }
            }
        }
    }
    let edb: Vec<(SymbolId, usize)> = all
        .iter()
        .copied()
        .filter(|&(p, _)| !idb.iter().any(|&(q, _)| q == p))
        .collect();

    // --- Argument-flow graph. ---
    let edges = flow_edges(program);
    let witness = growth_cycle(&edges);
    let unbounded = unbounded_predicates(&edges, &witness);

    // --- Dependency SCC classification. ---
    let dep_edges = dependency_edges(program);
    let sccs = classify_sccs(program, &dep_edges, &idb, &edb);

    // --- ID-sites over unbounded bases. ---
    let mut id_sites = Vec::new();
    for (ci, clause) in program.clauses.iter().enumerate() {
        for (li, lit) in clause.body.iter().enumerate() {
            if let Some(a) = lit.atom() {
                if a.pred.is_id_version() && unbounded.contains(&a.pred.base()) {
                    id_sites.push(UnboundedIdSite {
                        clause: ci,
                        literal: li,
                        base: a.pred.base(),
                    });
                }
            }
        }
    }

    let (strata, stratified) = match stratify_check(program) {
        Ok(s) => (s.count() as u64, true),
        Err(_) => (1, false),
    };
    let bounded = !foreign && stratified && witness.is_empty() && unbounded.is_empty();

    // Clause shapes for the per-database instantiation products.
    let mut nonrec_clauses = Vec::new();
    for clause in &program.clauses {
        let Some(h) = clause.head.first() else {
            continue;
        };
        let mut factors = Vec::new();
        for lit in &clause.body {
            match lit {
                Literal::Pos(a) => factors.push(ClauseFactor::Atom(a.pred.base())),
                Literal::Builtin { op, .. } if !matches!(op, Builtin::Eq | Builtin::Ne) => {
                    factors.push(ClauseFactor::Generator)
                }
                _ => {}
            }
        }
        nonrec_clauses.push(ClauseShape {
            head: h.atom.pred.base(),
            factors,
        });
    }

    TerminationCert {
        bounded,
        witness,
        unbounded,
        sccs,
        id_sites,
        idb,
        edb,
        max_const,
        const_count: consts.len() as u64,
        expanding_ops,
        strata,
        foreign,
        nonrec_clauses,
        dep_edges,
    }
}

fn note_const(t: &Term, consts: &mut FxHashSet<Term>, max_const: &mut i64) {
    match t {
        Term::Int(n) => {
            *max_const = (*max_const).max(*n);
            consts.insert(t.clone());
        }
        Term::Sym(_) => {
            consts.insert(t.clone());
        }
        Term::Var(_) => {}
    }
}

/// Build the argument-flow edges of `program`.
///
/// Per clause: a variable bound by any positive atom takes only its atom
/// sources (the join *restricts* its range, so builtin-derived bindings for
/// the same variable cannot widen it — this is what keeps `parity.idl`'s
/// `succ(T, T2), has(T2)` certified). Variables bound only by builtins
/// inherit the sources of the builtin's other arguments, marked expanding
/// when the output position can exceed its inputs.
fn flow_edges(program: &Program) -> Vec<FlowEdge> {
    let mut edges = Vec::new();
    for (ci, clause) in program.clauses.iter().enumerate() {
        let mut sources: FxHashMap<&str, Vec<Src>> = FxHashMap::default();
        // Pass 1: positive atom bindings.
        for (li, lit) in clause.body.iter().enumerate() {
            let Literal::Pos(a) = lit else { continue };
            let base = a.pred.base();
            let id = a.pred.is_id_version();
            let tid_pos = a.terms.len().saturating_sub(1);
            for (j, t) in a.terms.iter().enumerate() {
                let Term::Var(v) = t else { continue };
                let node = if id && j == tid_pos {
                    FlowNode::Card(base)
                } else {
                    FlowNode::Col(base, j)
                };
                sources.entry(v.as_str()).or_default().push(Src {
                    node,
                    literal: li,
                    grew_at: None,
                    op: None,
                });
            }
        }
        let atom_bound: FxHashSet<&str> = sources.keys().copied().collect();
        // Pass 2: builtin-derived bindings, to fixpoint (chains like
        // `succ(A, B), succ(B, C)` need two passes).
        loop {
            let mut changed = false;
            for (li, lit) in clause.body.iter().enumerate() {
                let Literal::Builtin { op, args } = lit else {
                    continue;
                };
                for (tp, t) in args.iter().enumerate() {
                    let Term::Var(tv) = t else { continue };
                    if atom_bound.contains(tv.as_str()) || !bindable_output(*op, tp) {
                        continue;
                    }
                    let expanding = expanding_output(*op, tp);
                    let mut derived: Vec<Src> = Vec::new();
                    for (i, other) in args.iter().enumerate() {
                        if i == tp {
                            continue;
                        }
                        let Term::Var(ov) = other else { continue };
                        if ov == tv {
                            continue;
                        }
                        for src in sources.get(ov.as_str()).cloned().unwrap_or_default() {
                            derived.push(Src {
                                node: src.node,
                                literal: src.literal,
                                grew_at: if expanding { Some(li) } else { src.grew_at },
                                op: if expanding { Some(*op) } else { src.op },
                            });
                        }
                    }
                    let entry = sources.entry(tv.as_str()).or_default();
                    for src in derived {
                        let key = (src.node, src.grew_at.is_some());
                        if !entry.iter().any(|s| (s.node, s.grew_at.is_some()) == key) {
                            entry.push(src);
                            changed = true;
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }
        // Pass 3: edges into head columns.
        for h in &clause.head {
            let hp = h.atom.pred.base();
            for (k, t) in h.atom.terms.iter().enumerate() {
                let Term::Var(v) = t else { continue };
                for src in sources.get(v.as_str()).into_iter().flatten() {
                    edges.push(FlowEdge {
                        from: src.node,
                        to: FlowNode::Col(hp, k),
                        clause: ci,
                        literal: src.literal,
                        grew_at: src.grew_at,
                        op: src.op,
                    });
                }
            }
        }
    }
    edges
}

/// Find an expanding edge lying on a cycle, and return the cycle:
/// `[expanding edge, path back to its source…]` (mirrors
/// `stratify::find_cycle`). Empty when the flow graph has no growing cycle.
fn growth_cycle(edges: &[FlowEdge]) -> Vec<FlowEdge> {
    let mut adj: FxHashMap<FlowNode, Vec<&FlowEdge>> = FxHashMap::default();
    for e in edges {
        adj.entry(e.from).or_default().push(e);
    }
    for e in edges.iter().filter(|e| e.is_expanding()) {
        if e.from == e.to {
            return vec![*e];
        }
        let mut stack = vec![e.to];
        let mut visited: FxHashSet<FlowNode> = FxHashSet::default();
        let mut parent: FxHashMap<FlowNode, FlowEdge> = FxHashMap::default();
        visited.insert(e.to);
        while let Some(u) = stack.pop() {
            if u == e.from {
                let mut path = Vec::new();
                let mut at = u;
                while at != e.to {
                    let pe = parent[&at];
                    path.push(pe);
                    at = pe.from;
                }
                path.push(*e);
                path.reverse();
                return path;
            }
            for &edge in adj.get(&u).into_iter().flatten() {
                if visited.insert(edge.to) {
                    parent.insert(edge.to, *edge);
                    stack.push(edge.to);
                }
            }
        }
    }
    Vec::new()
}

/// Predicates whose cardinality cannot be bounded: everything reachable
/// (forward) from a node of an expanding cycle.
fn unbounded_predicates(edges: &[FlowEdge], witness: &[FlowEdge]) -> FxHashSet<SymbolId> {
    let mut out = FxHashSet::default();
    if witness.is_empty() {
        return out;
    }
    let mut adj: FxHashMap<FlowNode, Vec<FlowNode>> = FxHashMap::default();
    for e in edges {
        adj.entry(e.from).or_default().push(e.to);
    }
    // Seed from every expanding edge that closes a cycle, not just the
    // first witness: independent growth engines all poison their sinks.
    let mut seeds: Vec<FlowNode> = Vec::new();
    for e in edges.iter().filter(|e| e.is_expanding()) {
        if e.from == e.to || reaches(&adj, e.to, e.from) {
            seeds.push(e.to);
        }
    }
    let mut visited: FxHashSet<FlowNode> = seeds.iter().copied().collect();
    let mut stack = seeds;
    while let Some(u) = stack.pop() {
        if let FlowNode::Col(p, _) = u {
            out.insert(p);
        }
        for &v in adj.get(&u).into_iter().flatten() {
            if visited.insert(v) {
                stack.push(v);
            }
        }
    }
    out
}

fn reaches(adj: &FxHashMap<FlowNode, Vec<FlowNode>>, from: FlowNode, to: FlowNode) -> bool {
    let mut visited: FxHashSet<FlowNode> = FxHashSet::default();
    let mut stack = vec![from];
    visited.insert(from);
    while let Some(u) = stack.pop() {
        if u == to {
            return true;
        }
        for &v in adj.get(&u).into_iter().flatten() {
            if visited.insert(v) {
                stack.push(v);
            }
        }
    }
    false
}

/// Tarjan condensation of the dependency graph, in evaluation (reverse
/// topological-of-condensation) order, with recursion classification.
fn classify_sccs(
    program: &Program,
    dep_edges: &[DepEdge],
    idb: &[(SymbolId, usize)],
    edb: &[(SymbolId, usize)],
) -> Vec<SccSummary> {
    let mut preds: Vec<SymbolId> = idb.iter().chain(edb.iter()).map(|&(p, _)| p).collect();
    preds.sort_unstable();
    preds.dedup();
    let index_of: FxHashMap<SymbolId, usize> =
        preds.iter().enumerate().map(|(i, &p)| (p, i)).collect();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); preds.len()];
    for e in dep_edges {
        if let (Some(&f), Some(&t)) = (index_of.get(&e.from), index_of.get(&e.to)) {
            adj[f].push(t);
        }
    }
    // Tarjan emits components in reverse topological order of the
    // condensation (every component after its dependents); evaluation
    // order — dependencies first — is the reverse.
    let mut sccs = tarjan(&adj);
    sccs.reverse();

    let mut out = Vec::new();
    for comp in sccs {
        let members: FxHashSet<SymbolId> = comp.iter().map(|&i| preds[i]).collect();
        let self_edge = dep_edges
            .iter()
            .any(|e| e.from == e.to && members.contains(&e.from));
        let recursive = comp.len() > 1 || self_edge;
        let kind = if !recursive {
            RecursionKind::Nonrecursive
        } else {
            let in_scc = |e: &&DepEdge| members.contains(&e.from) && members.contains(&e.to);
            let through_neg = dep_edges.iter().filter(in_scc).any(|e| {
                matches!(
                    program.clauses[e.clause].body.get(e.literal),
                    Some(Literal::Neg(_))
                )
            });
            let through_id = dep_edges.iter().filter(in_scc).any(|e| {
                program.clauses[e.clause]
                    .body
                    .get(e.literal)
                    .and_then(Literal::atom)
                    .is_some_and(|a| a.pred.is_id_version())
            });
            let through_choice = through_id
                || program.clauses.iter().any(|c| {
                    c.head.iter().any(|h| members.contains(&h.atom.pred.base()))
                        && c.body
                            .iter()
                            .any(|l| matches!(l, Literal::Choice { .. } | Literal::Cut))
                });
            if through_choice {
                RecursionKind::ThroughChoice
            } else if through_neg {
                RecursionKind::ThroughNegation
            } else {
                // Linear: every clause of the component reads the component
                // at most once.
                let linear = program.clauses.iter().all(|c| {
                    if !c.head.iter().any(|h| members.contains(&h.atom.pred.base())) {
                        return true;
                    }
                    c.body
                        .iter()
                        .filter(|l| {
                            matches!(l, Literal::Pos(_))
                                && l.atom().is_some_and(|a| members.contains(&a.pred.base()))
                        })
                        .count()
                        <= 1
                });
                if linear {
                    RecursionKind::Linear
                } else {
                    RecursionKind::Nonlinear
                }
            }
        };
        let mut ps: Vec<SymbolId> = members.into_iter().collect();
        ps.sort_unstable();
        out.push(SccSummary { preds: ps, kind });
    }
    out
}

/// Iterative Tarjan SCC; components come out in reverse topological order
/// of the condensation (callers reverse for evaluation order).
fn tarjan(adj: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let n = adj.len();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut out: Vec<Vec<usize>> = Vec::new();

    // Explicit DFS stack: (node, next child position).
    for root in 0..n {
        if index[root] != usize::MAX {
            continue;
        }
        let mut call: Vec<(usize, usize)> = vec![(root, 0)];
        while let Some(&mut (v, ref mut ci)) = call.last_mut() {
            if *ci == 0 {
                index[v] = next_index;
                low[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if let Some(&w) = adj[v].get(*ci) {
                *ci += 1;
                if index[w] == usize::MAX {
                    call.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                if low[v] == index[v] {
                    let mut comp = Vec::new();
                    while let Some(w) = stack.pop() {
                        on_stack[w] = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    out.push(comp);
                }
                call.pop();
                if let Some(&(u, _)) = call.last() {
                    low[u] = low[u].min(low[v]);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use idlog_common::Interner;
    use idlog_parser::parse_program;

    fn cert(src: &str) -> (TerminationCert, Arc<Interner>) {
        let interner = Arc::new(Interner::new());
        let program = parse_program(src, &interner).expect("test program parses");
        (analyze_termination(&program), interner)
    }

    #[test]
    fn diverge_program_gets_growth_witness() {
        let (c, i) = cert("count(0). count(M) :- count(N), plus(N, 1, M). reached(N) :- count(N).");
        assert!(!c.bounded());
        let w = c.growth_witness().expect("witness");
        assert!(w[0].is_expanding());
        assert_eq!(w[0].op, Some(Builtin::Plus));
        // The cycle chains to → from and closes.
        for pair in w.windows(2) {
            assert_eq!(pair[0].to, pair[1].from);
        }
        assert_eq!(w.last().unwrap().to, w[0].from);
        let count = i.intern("count");
        let reached = i.intern("reached");
        assert!(!c.pred_bounded(count));
        assert!(!c.pred_bounded(reached), "growth flows into reached");
        assert!(c.round_bound(&Database::with_interner(i)).is_none());
    }

    #[test]
    fn succ_growth_is_caught_too() {
        let (c, _) = cert("nat(0). nat(M) :- nat(N), succ(N, M).");
        let w = c.growth_witness().expect("witness");
        assert_eq!(w[0].op, Some(Builtin::Succ));
    }

    #[test]
    fn transitive_closure_is_bounded_linear() {
        let (c, i) = cert("tc(X, Y) :- e(X, Y). tc(X, Y) :- e(X, Z), tc(Z, Y).");
        assert!(c.bounded());
        assert!(c.growth_witness().is_none());
        assert_eq!(c.recursion_kind(i.intern("tc")), RecursionKind::Linear);
        assert_eq!(c.recursion_kind(i.intern("e")), RecursionKind::Nonrecursive);
        assert_eq!(c.degree(), 2);
    }

    #[test]
    fn nonlinear_recursion_classified() {
        let (c, i) = cert("tc(X, Y) :- e(X, Y). tc(X, Y) :- tc(X, Z), tc(Z, Y).");
        assert!(c.bounded());
        assert_eq!(c.recursion_kind(i.intern("tc")), RecursionKind::Nonlinear);
    }

    #[test]
    fn bounded_succ_through_join_is_certified() {
        // parity.idl's engine: the succ output T2 is also bound by has(T2),
        // so the join restricts it to existing values — no growth.
        let (c, _) = cert(
            "numbered(X, T) :- person[](X, T).
             has(T) :- numbered(X, T).
             even_upto(T) :- has(T), T = 0.
             even_upto(T2) :- odd_upto(T), succ(T, T2), has(T2).
             odd_upto(T2) :- even_upto(T), succ(T, T2), has(T2).",
        );
        assert!(c.bounded(), "witness: {:?}", c.growth_witness());
    }

    #[test]
    fn acyclic_arithmetic_is_bounded() {
        let (c, i) = cert("next(M) :- base(N), succ(N, M).");
        assert!(c.bounded());
        let mut db = Database::with_interner(Arc::clone(&i));
        db.insert("base", idlog_common::Tuple::new(vec![Value::Int(7)]))
            .unwrap();
        let b = c.round_bound(&db).expect("bounded");
        assert!(b >= 2, "at least one derivation round plus fixpoint check");
    }

    #[test]
    fn unbounded_id_materialization_has_sites() {
        let (c, i) = cert(
            "nat(0). nat(M) :- nat(N), plus(N, 1, M).
             pick(X) :- nat[](X, 0).",
        );
        assert!(!c.bounded());
        let sites = c.unbounded_id_sites();
        assert_eq!(sites.len(), 1);
        assert_eq!(sites[0].base, i.intern("nat"));
        assert_eq!((sites[0].clause, sites[0].literal), (2, 0));
    }

    #[test]
    fn recursion_through_negation_classified() {
        let (c, i) = cert("p(X) :- q(X), not p(X).");
        assert_eq!(
            c.recursion_kind(i.intern("p")),
            RecursionKind::ThroughNegation
        );
        assert!(!c.bounded(), "not stratifiable");
    }

    #[test]
    fn recursion_through_id_literal_classified_as_choice() {
        let (c, i) = cert("p(X) :- q(X). p(X) :- p[](X, 0).");
        assert_eq!(
            c.recursion_kind(i.intern("p")),
            RecursionKind::ThroughChoice
        );
        assert!(!c.bounded());
    }

    #[test]
    fn choice_construct_is_outside_fragment() {
        let (c, _) = cert("s(N) :- emp(N, D), choice((D), (N)).");
        assert!(c.outside_fragment());
        assert!(!c.bounded());
        assert!(c.growth_witness().is_none(), "unknown, not divergent");
    }

    #[test]
    fn round_bound_covers_actual_rounds_tc() {
        // A 4-node chain: tc needs ~5 rounds; the bound must dominate.
        let src = "tc(X, Y) :- e(X, Y). tc(X, Y) :- e(X, Z), tc(Z, Y).";
        let interner = Arc::new(Interner::new());
        let program = parse_program(src, &interner).unwrap();
        let c = analyze_termination(&program);
        let mut db = Database::with_interner(Arc::clone(&interner));
        for (a, b) in [("a", "b"), ("b", "c"), ("c", "d"), ("d", "e")] {
            db.insert_syms("e", &[a, b]).unwrap();
        }
        let bound = c.round_bound(&db).expect("certified");
        let vp = crate::ValidatedProgram::parse(src, Arc::clone(&interner)).unwrap();
        let out = crate::evaluate_with_options(
            &vp,
            &db,
            &mut crate::CanonicalOracle,
            &crate::EvalOptions::new(),
        )
        .unwrap();
        assert!(
            out.stats().iterations <= bound,
            "actual {} > certified {}",
            out.stats().iterations,
            bound
        );
    }

    #[test]
    fn chain_bound_accumulates_in_dependency_order() {
        // Regression: the condensation must be walked dependencies-first,
        // or downstream predicates see cardinality 0 and the "bound"
        // undercuts the real round count.
        let src = "out(X) :- l0(X, Y). l0(X, Y) :- l1(X, Y). l1(X, Y) :- base(X, Y).";
        let interner = Arc::new(Interner::new());
        let program = parse_program(src, &interner).unwrap();
        let c = analyze_termination(&program);
        let mut db = Database::with_interner(Arc::clone(&interner));
        db.insert_syms("base", &["a", "b"]).unwrap();
        db.insert_syms("base", &["b", "c"]).unwrap();
        let bound = c.round_bound(&db).expect("certified");
        let vp = crate::ValidatedProgram::parse(src, Arc::clone(&interner)).unwrap();
        let out = crate::evaluate_with_options(
            &vp,
            &db,
            &mut crate::CanonicalOracle,
            &crate::EvalOptions::new(),
        )
        .unwrap();
        assert!(out.stats().iterations <= bound, "{bound} too small");
        assert!(bound >= 2 * 3, "three copies of two tuples dominate");
    }

    #[test]
    fn empty_and_fact_only_programs_are_bounded() {
        let (c, _) = cert("");
        assert!(c.bounded());
        let (c, i) = cert("p(a). p(b).");
        assert!(c.bounded());
        let b = c.round_bound(&Database::with_interner(i)).unwrap();
        assert!(b >= 2);
    }

    #[test]
    fn enumerative_comparison_is_bounded() {
        // `T < 2` enumerates 0..2 — bounded by the constant, no growth.
        let (c, _) = cert("two(N) :- emp[2](E, D, T), T < 2, eqv(T, N).");
        assert!(c.growth_witness().is_none());
    }

    #[test]
    fn growth_through_copy_chain_is_found() {
        // The growing value takes a detour through a second predicate.
        let (c, i) = cert(
            "a(0).
             b(M) :- a(N), plus(N, 1, M).
             a(N) :- b(N).",
        );
        assert!(!c.bounded());
        let w = c.growth_witness().expect("witness");
        assert!(w.len() >= 2, "cycle passes through two predicates: {w:?}");
        assert!(!c.pred_bounded(i.intern("a")));
        assert!(!c.pred_bounded(i.intern("b")));
    }
}
