//! Per-rule evaluation profiling.
//!
//! When [`crate::EvalOptions::profile`] is on, the engine records a
//! [`Profile`] tree alongside the usual [`EvalStats`]: per stratum, the
//! ID-relations materialized there, and per fixpoint round the counters of
//! every (rule, delta-step) aggregate — instantiations, derived/inserted
//! tuples, probes, builtin evaluations, delta sizes, shard counts, and wall
//! time.
//!
//! Determinism contract: everything except wall time is merged at the round
//! barriers in work-item order, so a profile is **byte-identical for any
//! thread count** (this is what lets `idlog run --profile-json` be diffed
//! across `IDLOG_THREADS` values in CI). Wall time is inherently
//! non-deterministic; the renderers therefore omit it unless explicitly
//! asked (`include_time`).

use std::fmt::Write as _;

use crate::program::ValidatedProgram;
use crate::stats::EvalStats;

/// Schema tag emitted by [`Profile::to_json`]; bump on breaking changes.
pub const PROFILE_JSON_SCHEMA: &str = "idlog-profile/1";

/// One work item's measurements, recorded by the engine at the round
/// barrier. An item is a (rule plan, optional delta step) pair, possibly one
/// shard of a larger delta; [`RoundProfile::from_items`] re-aggregates
/// shards.
#[derive(Debug, Clone)]
pub struct ItemRec {
    /// Clause index of the rule plan (into the program's clause list).
    pub clause: usize,
    /// The body step replayed against the delta (`None` in full rounds).
    pub delta_step: Option<usize>,
    /// Tuples in this item's delta shard.
    pub delta_tuples: u64,
    /// Tuples this item contributed to the round's merged output (used to
    /// attribute `derived`/`inserted` during absorption).
    pub out_len: usize,
    /// Counters local to this item.
    pub stats: EvalStats,
    /// Wall time of this item (non-deterministic; excluded from default
    /// rendering).
    pub wall_nanos: u64,
}

/// Aggregated measurements for one (rule, delta-step) within one round.
#[derive(Debug, Clone)]
pub struct RuleProfile {
    /// Clause index of the rule.
    pub clause: usize,
    /// The body step replayed against the delta (`None` in full rounds).
    pub delta_step: Option<usize>,
    /// Number of delta shards merged into this record (1 in full rounds).
    pub shards: u64,
    /// Total delta tuples replayed across shards.
    pub delta_tuples: u64,
    /// Counters for this rule in this round.
    pub stats: EvalStats,
    /// Summed wall time across shards (non-deterministic).
    pub wall_nanos: u64,
}

/// One fixpoint round of a stratum.
#[derive(Debug, Clone)]
pub struct RoundProfile {
    /// Round number within the stratum (0 = full round).
    pub round: usize,
    /// Per-(rule, delta-step) records, in deterministic work-list order.
    pub rules: Vec<RuleProfile>,
}

impl RoundProfile {
    /// Aggregate raw work items into per-(clause, delta-step) records,
    /// preserving first-appearance (work-item) order so the result is
    /// deterministic.
    pub fn from_items(round: usize, items: Vec<ItemRec>) -> RoundProfile {
        let mut rules: Vec<RuleProfile> = Vec::new();
        for item in items {
            let found = rules
                .iter_mut()
                .find(|r| r.clause == item.clause && r.delta_step == item.delta_step);
            match found {
                Some(r) => {
                    r.shards += 1;
                    r.delta_tuples += item.delta_tuples;
                    r.stats += item.stats;
                    r.wall_nanos += item.wall_nanos;
                }
                None => rules.push(RuleProfile {
                    clause: item.clause,
                    delta_step: item.delta_step,
                    shards: 1,
                    delta_tuples: item.delta_tuples,
                    stats: item.stats,
                    wall_nanos: item.wall_nanos,
                }),
            }
        }
        RoundProfile { round, rules }
    }
}

/// One ID-relation materialization.
#[derive(Debug, Clone)]
pub struct IdRelationProfile {
    /// Base predicate name.
    pub name: String,
    /// Grouping attribute positions (0-based).
    pub grouping: Vec<usize>,
    /// Number of groups the oracle assigned tids within.
    pub groups: u64,
    /// Tuples in the materialized ID-relation.
    pub tuples: u64,
}

impl IdRelationProfile {
    /// `name[a1,a2]` with 1-based attribute positions, matching program
    /// syntax.
    pub fn display_name(&self) -> String {
        let attrs: Vec<String> = self.grouping.iter().map(|g| (g + 1).to_string()).collect();
        format!("{}[{}]", self.name, attrs.join(","))
    }
}

/// One stratum's profile.
#[derive(Debug, Clone)]
pub struct StratumProfile {
    /// Stratum index (bottom-up).
    pub index: usize,
    /// ID-relations materialized before this stratum ran, in sorted
    /// (name, grouping) order — the oracle consultation order.
    pub id_relations: Vec<IdRelationProfile>,
    /// Fixpoint rounds.
    pub rounds: Vec<RoundProfile>,
}

impl StratumProfile {
    /// An empty profile for stratum `index`.
    pub fn new(index: usize) -> StratumProfile {
        StratumProfile {
            index,
            id_relations: Vec::new(),
            rounds: Vec::new(),
        }
    }
}

/// Per-rule totals across all strata and rounds (the table's row unit).
#[derive(Debug, Clone)]
pub struct RuleTotals {
    /// Clause index.
    pub clause: usize,
    /// Summed counters.
    pub stats: EvalStats,
    /// Rounds in which the rule (or one of its delta variants) fired.
    pub rounds: u64,
    /// Total delta shards executed.
    pub shards: u64,
    /// Total delta tuples replayed.
    pub delta_tuples: u64,
    /// Summed wall time (non-deterministic).
    pub wall_nanos: u64,
}

impl RuleTotals {
    /// Derived-but-duplicate tuples: the paper's "intermediate redundant
    /// tuples", localized to one rule.
    pub fn redundant(&self) -> u64 {
        self.stats.derived - self.stats.inserted
    }
}

/// The full profile of one evaluation.
#[derive(Debug, Clone, Default)]
pub struct Profile {
    /// Clause text by clause index (for rendering without an interner).
    pub rules: Vec<String>,
    /// Per-stratum records, bottom-up.
    pub strata: Vec<StratumProfile>,
    /// Whole-run totals — always equal to the run's [`EvalStats`].
    pub totals: EvalStats,
}

impl Profile {
    /// An empty profile (used by identity queries that evaluate nothing).
    pub fn empty() -> Profile {
        Profile::default()
    }

    /// A profile skeleton for `program`, capturing clause text so later
    /// rendering needs no interner.
    pub fn for_program(program: &ValidatedProgram) -> Profile {
        let interner = program.interner();
        Profile {
            rules: program
                .ast()
                .clauses
                .iter()
                .map(|c| c.display(interner).to_string())
                .collect(),
            strata: Vec::new(),
            totals: EvalStats::default(),
        }
    }

    /// Per-rule totals across all strata/rounds, **worst rules first**
    /// (by probes, then derived; clause index breaks ties for determinism).
    pub fn per_rule_totals(&self) -> Vec<RuleTotals> {
        let mut totals: Vec<RuleTotals> = Vec::new();
        for stratum in &self.strata {
            for round in &stratum.rounds {
                for rule in &round.rules {
                    let entry = match totals.iter_mut().find(|t| t.clause == rule.clause) {
                        Some(t) => t,
                        None => {
                            totals.push(RuleTotals {
                                clause: rule.clause,
                                stats: EvalStats::default(),
                                rounds: 0,
                                shards: 0,
                                delta_tuples: 0,
                                wall_nanos: 0,
                            });
                            totals.last_mut().expect("just pushed")
                        }
                    };
                    entry.stats += rule.stats;
                    entry.rounds += 1;
                    entry.shards += rule.shards;
                    entry.delta_tuples += rule.delta_tuples;
                    entry.wall_nanos += rule.wall_nanos;
                }
            }
        }
        totals.sort_by(|a, b| {
            b.stats
                .probes
                .cmp(&a.stats.probes)
                .then(b.stats.derived.cmp(&a.stats.derived))
                .then(a.clause.cmp(&b.clause))
        });
        totals
    }

    /// The text of clause `idx`, or a placeholder when unknown.
    pub fn rule_text(&self, idx: usize) -> &str {
        self.rules.get(idx).map_or("<unknown clause>", |s| s)
    }

    /// A compact summary of the materialized ID-relations, e.g.
    /// `emp[2]: 3 tuples in 2 groups, node[]: 4 tuples in 1 group` —
    /// `None` when the run materialized none.
    pub fn id_relation_breakdown(&self) -> Option<String> {
        let mut parts: Vec<String> = Vec::new();
        for stratum in &self.strata {
            for idr in &stratum.id_relations {
                parts.push(format!(
                    "{}: {} tuples in {} group(s)",
                    idr.display_name(),
                    idr.tuples,
                    idr.groups
                ));
            }
        }
        if parts.is_empty() {
            None
        } else {
            Some(parts.join(", "))
        }
    }

    /// A rustc-style text table, worst rules first. `include_time` adds the
    /// (non-deterministic) wall-time column; leave it off when output must
    /// be reproducible across runs and thread counts.
    pub fn render_table(&self, include_time: bool) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "evaluation profile (worst rules first)");
        let time_hdr = if include_time { "      time" } else { "" };
        let _ = writeln!(
            out,
            "{:>6} {:>10} {:>10} {:>10} {:>10} {:>10} {:>9} {:>7} {:>7}{time_hdr}  rule",
            "clause",
            "inst",
            "derived",
            "inserted",
            "redundant",
            "probes",
            "builtins",
            "rounds",
            "shards"
        );
        for t in self.per_rule_totals() {
            let time_col = if include_time {
                format!("{:>9.3}m", self.wall_ms(t.wall_nanos))
            } else {
                String::new()
            };
            let _ = writeln!(
                out,
                "{:>6} {:>10} {:>10} {:>10} {:>10} {:>10} {:>9} {:>7} {:>7}{time_col}  {}",
                format!("#{}", t.clause),
                t.stats.instantiations,
                t.stats.derived,
                t.stats.inserted,
                t.redundant(),
                t.stats.probes,
                t.stats.builtin_evals,
                t.rounds,
                t.shards,
                self.rule_text(t.clause)
            );
        }
        for stratum in &self.strata {
            for idr in &stratum.id_relations {
                let _ = writeln!(
                    out,
                    "id-relation {} (stratum {}): {} tuples in {} group(s)",
                    idr.display_name(),
                    stratum.index,
                    idr.tuples,
                    idr.groups
                );
            }
        }
        let _ = writeln!(out, "totals: {}", self.totals);
        out
    }

    fn wall_ms(&self, nanos: u64) -> f64 {
        nanos as f64 / 1.0e6
    }

    /// Machine-readable JSON (hand-rolled; the workspace takes no serde
    /// dependency). Stable key order; `include_time` adds `wall_nanos`
    /// fields, which are non-deterministic.
    pub fn to_json(&self, include_time: bool) -> String {
        let mut out = String::new();
        out.push('{');
        let _ = write!(out, "\"schema\":{}", json_str(PROFILE_JSON_SCHEMA));
        let _ = write!(out, ",\"totals\":{}", stats_json(&self.totals));
        out.push_str(",\"rules\":[");
        for (i, r) in self.rules.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&json_str(r));
        }
        out.push_str("],\"strata\":[");
        for (i, stratum) in self.strata.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"index\":{},\"id_relations\":[", stratum.index);
            for (j, idr) in stratum.id_relations.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let grouping: Vec<String> = idr.grouping.iter().map(|g| g.to_string()).collect();
                let _ = write!(
                    out,
                    "{{\"name\":{},\"grouping\":[{}],\"groups\":{},\"tuples\":{}}}",
                    json_str(&idr.name),
                    grouping.join(","),
                    idr.groups,
                    idr.tuples
                );
            }
            out.push_str("],\"rounds\":[");
            for (j, round) in stratum.rounds.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{{\"round\":{},\"rules\":[", round.round);
                for (k, rule) in round.rules.iter().enumerate() {
                    if k > 0 {
                        out.push(',');
                    }
                    let delta_step = rule
                        .delta_step
                        .map_or("null".to_string(), |s| s.to_string());
                    let _ = write!(
                        out,
                        "{{\"clause\":{},\"delta_step\":{delta_step},\"shards\":{},\
                         \"delta_tuples\":{},\"stats\":{}",
                        rule.clause,
                        rule.shards,
                        rule.delta_tuples,
                        stats_json(&rule.stats)
                    );
                    if include_time {
                        let _ = write!(out, ",\"wall_nanos\":{}", rule.wall_nanos);
                    }
                    out.push('}');
                }
                out.push_str("]}");
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }
}

/// Counters as a JSON object (rule-level records omit the whole-run
/// `iterations`/`id_relations` fields, which are always zero there — the
/// totals object carries them).
fn stats_json(s: &EvalStats) -> String {
    format!(
        "{{\"instantiations\":{},\"derived\":{},\"inserted\":{},\"probes\":{},\
         \"builtins\":{},\"iterations\":{},\"id_relations\":{}}}",
        s.instantiations,
        s.derived,
        s.inserted,
        s.probes,
        s.builtin_evals,
        s.iterations,
        s.id_relations
    )
}

/// Minimal JSON string escaping (quote, backslash, control characters).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(clause: usize, delta_step: Option<usize>, probes: u64) -> ItemRec {
        ItemRec {
            clause,
            delta_step,
            delta_tuples: 10,
            out_len: 0,
            stats: EvalStats {
                probes,
                ..Default::default()
            },
            wall_nanos: 5,
        }
    }

    #[test]
    fn from_items_merges_shards_in_first_appearance_order() {
        let round = RoundProfile::from_items(
            2,
            vec![
                rec(1, Some(0), 3),
                rec(1, Some(0), 4),
                rec(0, Some(1), 1),
                rec(1, Some(0), 2),
            ],
        );
        assert_eq!(round.round, 2);
        assert_eq!(round.rules.len(), 2);
        assert_eq!(round.rules[0].clause, 1);
        assert_eq!(round.rules[0].shards, 3);
        assert_eq!(round.rules[0].delta_tuples, 30);
        assert_eq!(round.rules[0].stats.probes, 9);
        assert_eq!(round.rules[0].wall_nanos, 15);
        assert_eq!(round.rules[1].clause, 0);
    }

    #[test]
    fn per_rule_totals_sorts_worst_first() {
        let mut p = Profile::empty();
        p.rules = vec!["a.".into(), "b.".into()];
        p.strata.push(StratumProfile {
            index: 0,
            id_relations: Vec::new(),
            rounds: vec![
                RoundProfile::from_items(0, vec![rec(0, None, 5), rec(1, None, 50)]),
                RoundProfile::from_items(1, vec![rec(1, Some(0), 1)]),
            ],
        });
        let totals = p.per_rule_totals();
        assert_eq!(totals.len(), 2);
        assert_eq!(totals[0].clause, 1, "worst (most probes) first");
        assert_eq!(totals[0].rounds, 2);
        assert_eq!(totals[0].stats.probes, 51);
        assert_eq!(totals[1].clause, 0);
    }

    #[test]
    fn json_escapes_and_tags_schema() {
        let mut p = Profile::empty();
        p.rules = vec!["p(\"x\") :- q(X).".into()];
        let json = p.to_json(false);
        assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
        assert!(json.contains("\"schema\":\"idlog-profile/1\""), "{json}");
        assert!(json.contains("p(\\\"x\\\")"), "{json}");
        assert!(!json.contains("wall_nanos"), "{json}");
        let timed = p.to_json(true);
        // No rule records here, but the flag must not corrupt the document.
        assert!(timed.starts_with('{') && timed.ends_with('}'));
    }

    #[test]
    fn table_lists_worst_rule_first_and_totals() {
        let mut p = Profile::empty();
        p.rules = vec!["cheap.".into(), "hot(X) :- big(X).".into()];
        p.strata.push(StratumProfile {
            index: 0,
            id_relations: vec![IdRelationProfile {
                name: "emp".into(),
                grouping: vec![1],
                groups: 2,
                tuples: 3,
            }],
            rounds: vec![RoundProfile::from_items(
                0,
                vec![rec(0, None, 1), rec(1, None, 100)],
            )],
        });
        p.totals = EvalStats {
            probes: 101,
            ..Default::default()
        };
        let table = p.render_table(false);
        let hot = table.find("hot(X)").unwrap();
        let cheap = table.find("cheap.").unwrap();
        assert!(hot < cheap, "{table}");
        assert!(table.contains("id-relation emp[2] (stratum 0): 3 tuples in 2 group(s)"));
        assert!(table.contains("totals: "), "{table}");
        assert!(!table.contains("time"), "no time column by default");
        assert!(p.render_table(true).contains("time"));
    }

    #[test]
    fn redundant_is_derived_minus_inserted() {
        let t = RuleTotals {
            clause: 0,
            stats: EvalStats {
                derived: 10,
                inserted: 4,
                ..Default::default()
            },
            rounds: 1,
            shards: 1,
            delta_tuples: 0,
            wall_nanos: 0,
        };
        assert_eq!(t.redundant(), 6);
    }
}
