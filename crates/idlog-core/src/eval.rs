//! The evaluation driver: perfect-model computation for one tid choice.
//!
//! Given a validated program, an input database, and a [`TidOracle`], compute
//! the unique perfect model determined by the oracle's ID-function choices:
//! strata are evaluated bottom-up; before a stratum runs, the ID-relations
//! its rules read are materialized from the (now complete) lower-stratum
//! relations.

use std::sync::Arc;

use idlog_common::{FxHashMap, FxHashSet, Interner, SymbolId};
use idlog_storage::{make_id_relation, Database, Relation};

use crate::config::EvalConfig;
use crate::engine::{eval_stratum, eval_stratum_naive, EvalState};
use crate::error::{CoreError, CoreResult};
use crate::plan::RulePlan;
use crate::pred::PredKey;
use crate::program::ValidatedProgram;
use crate::sorts::{infer_with_seeds, SortMap};
use crate::stats::EvalStats;
use crate::tid::TidOracle;

/// The result of one evaluation: every predicate's relation plus statistics.
#[derive(Debug, Clone)]
pub struct EvalOutput {
    interner: Arc<Interner>,
    state: EvalState,
    stats: EvalStats,
}

impl EvalOutput {
    /// The relation computed for `name` (input, IDB, or — via
    /// [`EvalOutput::id_relation`] — an ID-relation).
    pub fn relation(&self, name: &str) -> Option<&Relation> {
        let id = self.interner.get(name)?;
        self.state.get(&PredKey::Ordinary(id))
    }

    /// A materialized ID-relation `name[grouping]` (0-based grouping), if the
    /// program used it.
    pub fn id_relation(&self, name: &str, grouping: &[usize]) -> Option<&Relation> {
        let id = self.interner.get(name)?;
        self.state.get(&PredKey::Id(id, grouping.to_vec()))
    }

    /// Evaluation statistics.
    pub fn stats(&self) -> EvalStats {
        self.stats
    }

    /// The interner shared with the program and database.
    pub fn interner(&self) -> &Arc<Interner> {
        &self.interner
    }
}

/// Fixpoint strategy per stratum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Strategy {
    /// Delta-driven semi-naive evaluation (the default).
    #[default]
    SemiNaive,
    /// Re-run every rule in full each round — the ablation baseline the
    /// `seminaive_ablation` bench compares against.
    Naive,
}

/// Compute the perfect model of `program` on `db` under `oracle`'s tid
/// choices.
///
/// `db` must share the program's interner (build it with
/// `Database::with_interner(program.interner().clone())`).
pub fn evaluate(
    program: &ValidatedProgram,
    db: &Database,
    oracle: &mut dyn TidOracle,
) -> CoreResult<EvalOutput> {
    evaluate_with_config(
        program,
        db,
        oracle,
        Strategy::SemiNaive,
        &EvalConfig::default(),
    )
}

/// [`evaluate`] with an explicit fixpoint [`Strategy`].
pub fn evaluate_with_strategy(
    program: &ValidatedProgram,
    db: &Database,
    oracle: &mut dyn TidOracle,
    strategy: Strategy,
) -> CoreResult<EvalOutput> {
    evaluate_with_config(program, db, oracle, strategy, &EvalConfig::default())
}

/// [`evaluate`] with an explicit [`Strategy`] and [`EvalConfig`]. The thread
/// count never changes the computed relations or statistics — rounds merge
/// worker output in deterministic work-item order.
pub fn evaluate_with_config(
    program: &ValidatedProgram,
    db: &Database,
    oracle: &mut dyn TidOracle,
    strategy: Strategy,
    config: &EvalConfig,
) -> CoreResult<EvalOutput> {
    let interner = Arc::clone(program.interner());
    if !Arc::ptr_eq(&interner, db.interner()) {
        return Err(CoreError::Input {
            message: "database and program must share one interner \
                      (use Database::with_interner(program.interner().clone()))"
                .into(),
        });
    }

    let strat = program.stratification();
    let plans = program.plans();
    let mut stats = EvalStats::default();
    let mut state = EvalState::new();

    install_inputs(program, db, &mut state)?;
    install_idb(program, &refine_sorts(program, db)?, db, &mut state)?;

    let threads = config.effective_threads();
    let by_stratum = strat.clauses_by_stratum(program.ast());
    for stratum_clauses in &by_stratum {
        let stratum_plans: Vec<&RulePlan> = stratum_clauses.iter().map(|&ci| &plans[ci]).collect();
        materialize_id_relations(&stratum_plans, &mut state, oracle, &interner, &mut stats)?;
        match strategy {
            Strategy::SemiNaive => {
                let same_stratum: FxHashSet<SymbolId> =
                    stratum_plans.iter().map(|p| p.head_pred).collect();
                eval_stratum(
                    &mut state,
                    &stratum_plans,
                    &same_stratum,
                    &mut stats,
                    threads,
                )?;
            }
            Strategy::Naive => {
                eval_stratum_naive(&mut state, &stratum_plans, &mut stats, threads)?;
            }
        }
    }

    Ok(EvalOutput {
        interner,
        state,
        stats,
    })
}

/// Set up an [`EvalState`] for enumeration: interner check, input relations
/// copied, IDB relations created empty.
pub(crate) fn install_for_enumeration(
    program: &ValidatedProgram,
    db: &Database,
    state: &mut EvalState,
) -> CoreResult<()> {
    if !Arc::ptr_eq(program.interner(), db.interner()) {
        return Err(CoreError::Input {
            message: "database and program must share one interner \
                      (use Database::with_interner(program.interner().clone()))"
                .into(),
        });
    }
    install_inputs(program, db, state)?;
    install_idb(program, &refine_sorts(program, db)?, db, state)?;
    Ok(())
}

/// Re-run sort inference seeded with the database's actual input column
/// sorts, so IDB relations whose sorts the program text leaves open get the
/// types the data implies (e.g. an unconstrained column joined with an
/// integer input column becomes sort `i`).
fn refine_sorts(program: &ValidatedProgram, db: &Database) -> CoreResult<SortMap> {
    let mut seeds = Vec::new();
    for &pred in program.inputs() {
        if let Some(rel) = db.relation_by_id(pred) {
            for col in 0..rel.arity() {
                seeds.push((pred, col, rel.rtype().sort(col)));
            }
        }
    }
    let mut arities = idlog_common::FxHashMap::default();
    for &p in program.inputs().iter().chain(program.idb()) {
        if let Some(a) = program.arity(p) {
            arities.insert(p, a);
        }
    }
    infer_with_seeds(program.ast(), &arities, program.interner(), &seeds).map_err(|e| {
        CoreError::Input {
            message: format!("database sorts conflict with the program: {e}"),
        }
    })
}

/// Copy input relations from the database (or create empty ones), checking
/// arity and constrained sorts.
fn install_inputs(
    program: &ValidatedProgram,
    db: &Database,
    state: &mut EvalState,
) -> CoreResult<()> {
    let interner = program.interner();
    for &pred in program.inputs() {
        let arity = program.arity(pred).expect("input predicate has an arity");
        match db.relation_by_id(pred) {
            Some(rel) => {
                if rel.arity() != arity {
                    return Err(CoreError::Input {
                        message: format!(
                            "relation {} has arity {} but the program uses arity {arity}",
                            interner.resolve(pred),
                            rel.arity()
                        ),
                    });
                }
                for col in 0..arity {
                    if let Some(want) = program.sorts().constraint(pred, col) {
                        if rel.rtype().sort(col) != want {
                            return Err(CoreError::Input {
                                message: format!(
                                    "column {} of {} must have sort {want}",
                                    col + 1,
                                    interner.resolve(pred)
                                ),
                            });
                        }
                    }
                }
                state.put(PredKey::Ordinary(pred), rel.clone());
            }
            None => {
                let rtype = program
                    .sorts()
                    .rel_type(pred)
                    .expect("arity known implies type known");
                state.put(PredKey::Ordinary(pred), Relation::new(rtype));
            }
        }
    }
    Ok(())
}

/// Create empty relations for every IDB predicate, using the
/// database-refined sorts. Rejects databases that store facts under an IDB
/// predicate — they would be silently ignored otherwise (the paper's input
/// predicates never occur in heads; put such facts in the program instead).
fn install_idb(
    program: &ValidatedProgram,
    refined: &SortMap,
    db: &Database,
    state: &mut EvalState,
) -> CoreResult<()> {
    for &pred in program.idb() {
        if db.relation_by_id(pred).is_some_and(|r| !r.is_empty()) {
            return Err(CoreError::Input {
                message: format!(
                    "predicate {} is defined by rules but the database also stores facts \
                     for it; move them into the program or rename one of the two",
                    program.interner().resolve(pred)
                ),
            });
        }
        let rtype = refined
            .rel_type(pred)
            .or_else(|| program.sorts().rel_type(pred))
            .expect("IDB predicate has a type");
        state.put(PredKey::Ordinary(pred), Relation::new(rtype));
    }
    Ok(())
}

/// Materialize every ID-relation the given plans read that is not yet
/// present. Lower strata are complete, so the base relations are final.
///
/// The oracle is consulted in sorted (base name, grouping) order. Iterating
/// the collection map directly would consult it in hash order — fine for
/// [`crate::tid::CanonicalOracle`], but any oracle with call-order-dependent
/// state would then produce different perfect models run-to-run.
fn materialize_id_relations(
    plans: &[&RulePlan],
    state: &mut EvalState,
    oracle: &mut dyn TidOracle,
    interner: &Interner,
    stats: &mut EvalStats,
) -> CoreResult<()> {
    // Collect first: borrow juggling (state is read and written).
    let mut needed: FxHashMap<PredKey, (SymbolId, Vec<usize>)> = FxHashMap::default();
    for plan in plans {
        for step in &plan.steps {
            if let Some(PredKey::Id(base, grouping)) = step.reads() {
                let key = PredKey::Id(*base, grouping.clone());
                if !state.has(&key) {
                    needed.insert(key, (*base, grouping.clone()));
                }
            }
        }
    }
    let mut needed: Vec<(PredKey, (SymbolId, Vec<usize>))> = needed.into_iter().collect();
    needed.sort_by_key(|(_, (base, grouping))| (interner.resolve(*base), grouping.clone()));
    for (key, (base, grouping)) in needed {
        let rel = state
            .get(&PredKey::Ordinary(base))
            .cloned()
            .ok_or_else(|| CoreError::Eval {
                message: format!(
                    "ID-relation of {} requested before its base relation exists",
                    interner.resolve(base)
                ),
            })?;
        let assignment = oracle.assign(base, &grouping, &rel, interner);
        state.put(key, make_id_relation(&rel, &assignment));
        stats.id_relations += 1;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tid::{CanonicalOracle, ExplicitOracle};
    use idlog_common::{Tuple, Value};

    fn setup(src: &str, facts: &[(&str, &[&str])]) -> (ValidatedProgram, Database) {
        let interner = Arc::new(Interner::new());
        let program = ValidatedProgram::parse(src, Arc::clone(&interner)).unwrap();
        let mut db = Database::with_interner(interner);
        for (pred, cols) in facts {
            db.insert_syms(pred, cols).unwrap();
        }
        (program, db)
    }

    fn names(out: &EvalOutput, rel: &str) -> Vec<String> {
        let interner = out.interner();
        let mut v: Vec<String> = out
            .relation(rel)
            .map(|r| {
                r.iter()
                    .map(|t| {
                        t.values()
                            .iter()
                            .map(|x| x.display(interner).to_string())
                            .collect::<Vec<_>>()
                            .join(",")
                    })
                    .collect()
            })
            .unwrap_or_default();
        v.sort();
        v
    }

    #[test]
    fn transitive_closure() {
        let (p, db) = setup(
            "tc(X, Y) :- e(X, Y). tc(X, Y) :- e(X, Z), tc(Z, Y).",
            &[("e", &["a", "b"]), ("e", &["b", "c"]), ("e", &["c", "d"])],
        );
        let out = evaluate(&p, &db, &mut CanonicalOracle).unwrap();
        assert_eq!(
            names(&out, "tc"),
            ["a,b", "a,c", "a,d", "b,c", "b,d", "c,d"]
        );
    }

    #[test]
    fn stratified_negation() {
        let (p, db) = setup(
            "unreach(X) :- node(X), not reach(X).
             reach(X) :- start(X).
             reach(Y) :- reach(X), e(X, Y).",
            &[
                ("node", &["a"]),
                ("node", &["b"]),
                ("node", &["c"]),
                ("start", &["a"]),
                ("e", &["a", "b"]),
            ],
        );
        let out = evaluate(&p, &db, &mut CanonicalOracle).unwrap();
        assert_eq!(names(&out, "reach"), ["a", "b"]);
        assert_eq!(names(&out, "unreach"), ["c"]);
    }

    #[test]
    fn facts_in_program() {
        let (p, db) = setup("p(a). q(X) :- p(X).", &[]);
        let out = evaluate(&p, &db, &mut CanonicalOracle).unwrap();
        assert_eq!(names(&out, "q"), ["a"]);
    }

    #[test]
    fn id_literal_selects_one_per_group() {
        // all_depts via emp[2](N, D, 0): one employee per department.
        let (p, db) = setup(
            "one_per_dept(N, D) :- emp[2](N, D, 0).",
            &[
                ("emp", &["ann", "sales"]),
                ("emp", &["bob", "sales"]),
                ("emp", &["cay", "dev"]),
            ],
        );
        let out = evaluate(&p, &db, &mut CanonicalOracle).unwrap();
        // Canonical order: ann before bob in sales.
        assert_eq!(names(&out, "one_per_dept"), ["ann,sales", "cay,dev"]);
        assert_eq!(out.stats().id_relations, 1);
    }

    #[test]
    fn explicit_oracle_changes_the_answer() {
        let (p, db) = setup(
            "one_per_dept(N, D) :- emp[2](N, D, 0).",
            &[
                ("emp", &["ann", "sales"]),
                ("emp", &["bob", "sales"]),
                ("emp", &["cay", "dev"]),
            ],
        );
        let mut oracle = ExplicitOracle::new();
        // Group "dev" = [cay], group "sales" = [ann, bob] (canonical key
        // order: dev < sales). Swap sales so bob gets tid 0.
        oracle.set("emp", vec![1], vec![vec![0], vec![1, 0]]);
        let out = evaluate(&p, &db, &mut oracle).unwrap();
        assert_eq!(names(&out, "one_per_dept"), ["bob,sales", "cay,dev"]);
    }

    #[test]
    fn arithmetic_chain() {
        let (p, mut db) = setup("double(N, M) :- num(N), plus(N, N, M).", &[]);
        db.insert("num", Tuple::new(vec![Value::Int(3)])).unwrap();
        db.insert("num", Tuple::new(vec![Value::Int(5)])).unwrap();
        let out = evaluate(&p, &db, &mut CanonicalOracle).unwrap();
        assert_eq!(names(&out, "double"), ["3,6", "5,10"]);
    }

    #[test]
    fn missing_input_relation_is_empty() {
        let (p, db) = setup("p(X) :- q(X).", &[]);
        let out = evaluate(&p, &db, &mut CanonicalOracle).unwrap();
        assert!(names(&out, "p").is_empty());
    }

    #[test]
    fn arity_mismatch_in_db_is_input_error() {
        let (p, mut db) = setup("p(X) :- q(X).", &[]);
        db.insert_syms("q", &["a", "b"]).unwrap();
        assert!(matches!(
            evaluate(&p, &db, &mut CanonicalOracle),
            Err(CoreError::Input { .. })
        ));
    }

    #[test]
    fn sort_mismatch_in_db_is_input_error() {
        let (p, mut db) = setup("r(N) :- q(N), succ(N, M).", &[]);
        db.insert_syms("q", &["a"]).unwrap();
        assert!(matches!(
            evaluate(&p, &db, &mut CanonicalOracle),
            Err(CoreError::Input { .. })
        ));
    }

    #[test]
    fn different_interner_is_rejected() {
        let interner = Arc::new(Interner::new());
        let program = ValidatedProgram::parse("p(X) :- q(X).", interner).unwrap();
        let db = Database::new();
        assert!(matches!(
            evaluate(&program, &db, &mut CanonicalOracle),
            Err(CoreError::Input { .. })
        ));
    }

    #[test]
    fn idb_facts_in_the_database_are_rejected() {
        let (p, mut db) = setup("p(X) :- q(X).", &[("q", &["a"])]);
        db.insert_syms("p", &["stray"]).unwrap();
        assert!(matches!(
            evaluate(&p, &db, &mut CanonicalOracle),
            Err(CoreError::Input { .. })
        ));
    }

    #[test]
    fn paper_example2_with_canonical_oracle() {
        // sex_guess has two tuples per person (male/female guesses), grouped
        // by person. The canonical oracle gives female tid 0, male tid 1
        // (female < male), so man(X) :- sex_guess[1](X, male, 1) holds for
        // everyone and woman(X) for no one.
        let (p, db) = setup(
            "sex_guess(X, male) :- person(X).
             sex_guess(X, female) :- person(X).
             man(X) :- sex_guess[1](X, male, 1).
             woman(X) :- sex_guess[1](X, female, 1).",
            &[("person", &["a"]), ("person", &["b"])],
        );
        let out = evaluate(&p, &db, &mut CanonicalOracle).unwrap();
        assert_eq!(names(&out, "man"), ["a", "b"]);
        assert!(names(&out, "woman").is_empty());
    }

    #[test]
    fn naive_and_seminaive_agree() {
        let (p, db) = setup(
            "tc(X, Y) :- e(X, Y). tc(X, Y) :- e(X, Z), tc(Z, Y).",
            &[
                ("e", &["a", "b"]),
                ("e", &["b", "c"]),
                ("e", &["c", "d"]),
                ("e", &["d", "a"]),
            ],
        );
        let semi =
            evaluate_with_strategy(&p, &db, &mut CanonicalOracle, Strategy::SemiNaive).unwrap();
        let naive = evaluate_with_strategy(&p, &db, &mut CanonicalOracle, Strategy::Naive).unwrap();
        assert!(semi
            .relation("tc")
            .unwrap()
            .set_eq(naive.relation("tc").unwrap()));
        // Semi-naive derives strictly fewer duplicate facts on a cycle.
        assert!(
            semi.stats().derived < naive.stats().derived,
            "semi {} vs naive {}",
            semi.stats().derived,
            naive.stats().derived
        );
    }

    #[test]
    fn negated_id_literal() {
        // Everyone who is NOT the tid-0 employee of their department.
        let (p, db) = setup(
            "rest(N, D) :- emp(N, D), not emp[2](N, D, 0).",
            &[
                ("emp", &["ann", "sales"]),
                ("emp", &["bob", "sales"]),
                ("emp", &["cay", "dev"]),
            ],
        );
        let out = evaluate(&p, &db, &mut CanonicalOracle).unwrap();
        assert_eq!(names(&out, "rest"), ["bob,sales"]);
    }
}
