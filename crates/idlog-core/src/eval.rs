//! The evaluation driver: perfect-model computation for one tid choice.
//!
//! Given a validated program, an input database, and a [`TidOracle`], compute
//! the unique perfect model determined by the oracle's ID-function choices:
//! strata are evaluated bottom-up; before a stratum runs, the ID-relations
//! its rules read are materialized from the (now complete) lower-stratum
//! relations.

use std::sync::Arc;

use idlog_common::{FxHashMap, FxHashSet, Interner, SymbolId};
use idlog_storage::{make_id_relation, BackendKind, Database, Relation};

use crate::config::EvalOptions;
use crate::engine::{eval_stratum, eval_stratum_naive, EvalState};
use crate::error::{CoreError, CoreResult};
use crate::govern::{panic_message, CancelToken, EvalError, Governor};
use crate::plan::RulePlan;
use crate::pred::PredKey;
use crate::profile::{IdRelationProfile, Profile, StratumProfile};
use crate::program::ValidatedProgram;
use crate::sorts::{infer_with_seeds, SortMap};
use crate::stats::EvalStats;
use crate::tid::TidOracle;

/// The result of one evaluation: every predicate's relation plus statistics
/// (and, when requested, a per-rule [`Profile`]).
#[derive(Debug, Clone)]
pub struct EvalOutput {
    interner: Arc<Interner>,
    state: EvalState,
    stats: EvalStats,
    profile: Option<Profile>,
}

impl EvalOutput {
    /// The relation computed for `name` (input, IDB, or — via
    /// [`EvalOutput::id_relation`] — an ID-relation).
    pub fn relation(&self, name: &str) -> Option<&Relation> {
        let id = self.interner.get(name)?;
        self.state.get(&PredKey::Ordinary(id))
    }

    /// A materialized ID-relation `name[grouping]` (0-based grouping), if the
    /// program used it.
    pub fn id_relation(&self, name: &str, grouping: &[usize]) -> Option<&Relation> {
        let id = self.interner.get(name)?;
        self.state.get(&PredKey::Id(id, grouping.to_vec()))
    }

    /// Evaluation statistics.
    pub fn stats(&self) -> EvalStats {
        self.stats
    }

    /// The per-rule profile, when the run was started with
    /// [`EvalOptions::profile`] set.
    pub fn profile(&self) -> Option<&Profile> {
        self.profile.as_ref()
    }

    /// Take ownership of the profile, leaving `None` behind.
    pub fn take_profile(&mut self) -> Option<Profile> {
        self.profile.take()
    }

    /// The interner shared with the program and database.
    pub fn interner(&self) -> &Arc<Interner> {
        &self.interner
    }

    /// Decompose into the raw evaluation state and statistics (incremental
    /// maintenance seeds a [`crate::maintain::Materialized`] from them).
    pub(crate) fn into_parts(self) -> (Arc<Interner>, EvalState, EvalStats) {
        (self.interner, self.state, self.stats)
    }
}

/// Fixpoint strategy per stratum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Strategy {
    /// Delta-driven semi-naive evaluation (the default).
    #[default]
    SemiNaive,
    /// Re-run every rule in full each round — the ablation baseline the
    /// `seminaive_ablation` bench compares against.
    Naive,
    /// Goal-directed evaluation: [`crate::query::Query`] rewrites the
    /// program with magic sets ([`crate::relevance`]) before evaluation,
    /// which then proceeds semi-naively over the transformed program. At
    /// this layer the fixpoint loop is identical to [`Strategy::SemiNaive`].
    Magic,
}

impl Strategy {
    /// Parse a strategy name as accepted by `idlog run --strategy`, the
    /// REPL `:strategy` command, and the service protocol.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "seminaive" => Some(Strategy::SemiNaive),
            "naive" => Some(Strategy::Naive),
            "magic" => Some(Strategy::Magic),
            _ => None,
        }
    }

    /// The canonical name (`"seminaive"` / `"naive"` / `"magic"`).
    pub fn name(self) -> &'static str {
        match self {
            Strategy::SemiNaive => "seminaive",
            Strategy::Naive => "naive",
            Strategy::Magic => "magic",
        }
    }
}

impl std::fmt::Display for Strategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Compute the perfect model of `program` on `db` under `oracle`'s tid
/// choices, governed by [`EvalOptions`] (strategy, threads, profiling).
///
/// `db` must share the program's interner (build it with
/// `Database::with_interner(program.interner().clone())`). Neither the
/// thread count nor profiling changes the computed relations or statistics
/// — rounds merge worker output in deterministic work-item order, and the
/// profile (wall time excepted) inherits that determinism.
pub fn evaluate_with_options(
    program: &ValidatedProgram,
    db: &Database,
    oracle: &mut dyn TidOracle,
    options: &EvalOptions,
) -> CoreResult<EvalOutput> {
    evaluate_governed(program, db, oracle, options, None).map_err(EvalError::into_core)
}

/// [`evaluate_with_options`] under full resource governance: a
/// [`Governor`] built from `options.limits` (plus the optional
/// [`CancelToken`]) is checked by every worker, and a limit trip or
/// cancellation returns [`EvalError::Limit`]/[`EvalError::Cancelled`]
/// carrying the **partial output** — relations, [`EvalStats`], and profile
/// as of the last completed round barrier, byte-identical at any thread
/// count for the deterministic ceilings (`max_rounds`, `max_tuples`,
/// `max_bytes`).
pub fn evaluate_governed(
    program: &ValidatedProgram,
    db: &Database,
    oracle: &mut dyn TidOracle,
    options: &EvalOptions,
    cancel: Option<&CancelToken>,
) -> Result<EvalOutput, EvalError> {
    let interner = Arc::clone(program.interner());
    if !Arc::ptr_eq(&interner, db.interner()) {
        return Err(EvalError::Core(CoreError::Input {
            message: "database and program must share one interner \
                      (use Database::with_interner(program.interner().clone()))"
                .into(),
        }));
    }

    let governor = Governor::new(options.limits, cancel.cloned());
    let strat = program.stratification();
    let plans = program.plans();
    let mut stats = EvalStats::default();
    let mut state = EvalState::new();
    let mut profile = options.profile.then(|| Profile::for_program(program));

    install_inputs(program, db, &mut state, options.backend).map_err(EvalError::Core)?;
    install_idb(
        program,
        &refine_sorts(program, db).map_err(EvalError::Core)?,
        db,
        &mut state,
        options.backend,
    )
    .map_err(EvalError::Core)?;

    // Run the strata inside a closure so that on a limit trip or
    // cancellation the accumulated state/stats/profile survive to be
    // packaged as the partial output.
    let threads = options.effective_threads();
    let by_stratum = strat.clauses_by_stratum(program.ast());
    let run = (|| -> CoreResult<()> {
        for (k, stratum_clauses) in by_stratum.iter().enumerate() {
            // Inter-stratum barrier: a stratum that ends at fixpoint skips
            // its final in-stratum check, so re-check cumulative ceilings
            // before committing to the next stratum's work.
            if k > 0 {
                governor.check_barrier(&stats, || state.estimated_bytes())?;
            }
            let stratum_plans: Vec<&RulePlan> =
                stratum_clauses.iter().map(|&ci| &plans[ci]).collect();
            let mut sp = profile.as_ref().map(|_| StratumProfile::new(k));
            materialize_id_relations(
                &stratum_plans,
                &mut state,
                oracle,
                &interner,
                &mut stats,
                sp.as_mut(),
            )?;
            match options.strategy {
                Strategy::SemiNaive | Strategy::Magic => {
                    let same_stratum: FxHashSet<SymbolId> =
                        stratum_plans.iter().map(|p| p.head_pred).collect();
                    eval_stratum(
                        &mut state,
                        &stratum_plans,
                        &same_stratum,
                        &mut stats,
                        threads,
                        &governor,
                        sp.as_mut(),
                    )?;
                }
                Strategy::Naive => {
                    eval_stratum_naive(
                        &mut state,
                        &stratum_plans,
                        &mut stats,
                        threads,
                        &governor,
                        sp.as_mut(),
                    )?;
                }
            }
            if let (Some(p), Some(sp)) = (profile.as_mut(), sp) {
                p.strata.push(sp);
            }
        }
        Ok(())
    })();

    if let Some(p) = profile.as_mut() {
        p.totals = stats;
    }
    let output = EvalOutput {
        interner,
        state,
        stats,
        profile,
    };
    match run {
        Ok(()) => Ok(output),
        Err(CoreError::LimitExceeded { limit }) => Err(EvalError::Limit {
            limit,
            partial: Box::new(output),
        }),
        Err(CoreError::Cancelled) => Err(EvalError::Cancelled {
            partial: Box::new(output),
        }),
        Err(e) => Err(EvalError::Core(e)),
    }
}

/// Set up an [`EvalState`] for enumeration: interner check, input relations
/// copied, IDB relations created empty.
pub(crate) fn install_for_enumeration(
    program: &ValidatedProgram,
    db: &Database,
    state: &mut EvalState,
    backend: BackendKind,
) -> CoreResult<()> {
    if !Arc::ptr_eq(program.interner(), db.interner()) {
        return Err(CoreError::Input {
            message: "database and program must share one interner \
                      (use Database::with_interner(program.interner().clone()))"
                .into(),
        });
    }
    install_inputs(program, db, state, backend)?;
    install_idb(program, &refine_sorts(program, db)?, db, state, backend)?;
    Ok(())
}

/// Re-run sort inference seeded with the database's actual input column
/// sorts, so IDB relations whose sorts the program text leaves open get the
/// types the data implies (e.g. an unconstrained column joined with an
/// integer input column becomes sort `i`).
fn refine_sorts(program: &ValidatedProgram, db: &Database) -> CoreResult<SortMap> {
    let mut seeds = Vec::new();
    for &pred in program.inputs() {
        if let Some(rel) = db.relation_by_id(pred) {
            for col in 0..rel.arity() {
                seeds.push((pred, col, rel.rtype().sort(col)));
            }
        }
    }
    let mut arities = idlog_common::FxHashMap::default();
    for &p in program.inputs().iter().chain(program.idb()) {
        if let Some(a) = program.arity(p) {
            arities.insert(p, a);
        }
    }
    infer_with_seeds(program.ast(), &arities, program.interner(), &seeds).map_err(|e| {
        CoreError::Input {
            message: format!("database sorts conflict with the program: {e}"),
        }
    })
}

/// Copy input relations from the database (or create empty ones), checking
/// arity and constrained sorts. The working copies are converted to the
/// requested storage backend in bulk — the database itself stays untouched.
fn install_inputs(
    program: &ValidatedProgram,
    db: &Database,
    state: &mut EvalState,
    backend: BackendKind,
) -> CoreResult<()> {
    let interner = program.interner();
    for &pred in program.inputs() {
        let arity = program.arity(pred).expect("input predicate has an arity");
        match db.relation_by_id(pred) {
            Some(rel) => {
                if rel.arity() != arity {
                    return Err(CoreError::Input {
                        message: format!(
                            "relation {} has arity {} but the program uses arity {arity}",
                            interner.resolve(pred),
                            rel.arity()
                        ),
                    });
                }
                for col in 0..arity {
                    if let Some(want) = program.sorts().constraint(pred, col) {
                        if rel.rtype().sort(col) != want {
                            return Err(CoreError::Input {
                                message: format!(
                                    "column {} of {} must have sort {want}",
                                    col + 1,
                                    interner.resolve(pred)
                                ),
                            });
                        }
                    }
                }
                state.put(PredKey::Ordinary(pred), rel.clone().to_backend(backend));
            }
            None => {
                let rtype = program
                    .sorts()
                    .rel_type(pred)
                    .expect("arity known implies type known");
                state.put(PredKey::Ordinary(pred), Relation::new_in(rtype, backend));
            }
        }
    }
    Ok(())
}

/// Create empty relations for every IDB predicate, using the
/// database-refined sorts. Rejects databases that store facts under an IDB
/// predicate — they would be silently ignored otherwise (the paper's input
/// predicates never occur in heads; put such facts in the program instead).
fn install_idb(
    program: &ValidatedProgram,
    refined: &SortMap,
    db: &Database,
    state: &mut EvalState,
    backend: BackendKind,
) -> CoreResult<()> {
    for &pred in program.idb() {
        if db.relation_by_id(pred).is_some_and(|r| !r.is_empty()) {
            return Err(CoreError::Input {
                message: format!(
                    "predicate {} is defined by rules but the database also stores facts \
                     for it; move them into the program or rename one of the two",
                    program.interner().resolve(pred)
                ),
            });
        }
        let rtype = refined
            .rel_type(pred)
            .or_else(|| program.sorts().rel_type(pred))
            .expect("IDB predicate has a type");
        state.put(PredKey::Ordinary(pred), Relation::new_in(rtype, backend));
    }
    Ok(())
}

/// Materialize every ID-relation the given plans read that is not yet
/// present. Lower strata are complete, so the base relations are final.
///
/// The oracle is consulted in sorted (base name, grouping) order. Iterating
/// the collection map directly would consult it in hash order — fine for
/// [`crate::tid::CanonicalOracle`], but any oracle with call-order-dependent
/// state would then produce different perfect models run-to-run.
fn materialize_id_relations(
    plans: &[&RulePlan],
    state: &mut EvalState,
    oracle: &mut dyn TidOracle,
    interner: &Interner,
    stats: &mut EvalStats,
    mut prof: Option<&mut StratumProfile>,
) -> CoreResult<()> {
    // Collect first: borrow juggling (state is read and written).
    let mut needed: FxHashMap<PredKey, (SymbolId, Vec<usize>)> = FxHashMap::default();
    for plan in plans {
        for step in &plan.steps {
            if let Some(PredKey::Id(base, grouping)) = step.reads() {
                let key = PredKey::Id(*base, grouping.clone());
                if !state.has(&key) {
                    needed.insert(key, (*base, grouping.clone()));
                }
            }
        }
    }
    let mut needed: Vec<(PredKey, (SymbolId, Vec<usize>))> = needed.into_iter().collect();
    needed.sort_by_key(|(_, (base, grouping))| (interner.resolve(*base), grouping.clone()));
    for (key, (base, grouping)) in needed {
        let rel = state
            .get(&PredKey::Ordinary(base))
            .cloned()
            .ok_or_else(|| CoreError::Eval {
                message: format!(
                    "ID-relation of {} requested before its base relation exists",
                    interner.resolve(base)
                ),
            })?;
        // The oracle is third-party code (trait object); contain its panics.
        // The failpoint sits inside the contained region so an injected
        // `panic` action exercises the same unwind path an oracle bug would.
        let assignment =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| -> Result<_, String> {
                #[cfg(feature = "failpoints")]
                idlog_common::failpoint::hit("oracle.assign")?;
                Ok(oracle.assign(base, &grouping, &rel, interner))
            }))
            .map_err(|payload| CoreError::Internal {
                clause: None,
                message: format!(
                    "ID-oracle panicked for {}: {}",
                    interner.resolve(base),
                    panic_message(payload)
                ),
            })?
            .map_err(|message| CoreError::Internal {
                clause: None,
                message,
            })?;
        if let Some(p) = prof.as_deref_mut() {
            // Each group gets exactly one tid-0 tuple, so counting them
            // counts the groups.
            let groups = rel.iter().filter(|t| assignment.tid(t) == Some(0)).count() as u64;
            p.id_relations.push(IdRelationProfile {
                name: interner.resolve(base),
                grouping: grouping.clone(),
                groups,
                tuples: rel.len() as u64,
            });
        }
        let id_rel = make_id_relation(&rel, &assignment).map_err(|e| CoreError::Internal {
            clause: None,
            message: format!("ID-oracle assignment for {}: {e}", interner.resolve(base)),
        })?;
        // `make_id_relation` builds on the (cheap-to-append) hash backend;
        // convert in bulk so the ID-relation lives where its base does.
        state.put(key, id_rel.to_backend(rel.backend_kind()));
        stats.id_relations += 1;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tid::{CanonicalOracle, ExplicitOracle};
    use idlog_common::{Tuple, Value};

    fn setup(src: &str, facts: &[(&str, &[&str])]) -> (ValidatedProgram, Database) {
        let interner = Arc::new(Interner::new());
        let program = ValidatedProgram::parse(src, Arc::clone(&interner)).unwrap();
        let mut db = Database::with_interner(interner);
        for (pred, cols) in facts {
            db.insert_syms(pred, cols).unwrap();
        }
        (program, db)
    }

    fn run(
        program: &ValidatedProgram,
        db: &Database,
        oracle: &mut dyn TidOracle,
    ) -> CoreResult<EvalOutput> {
        evaluate_with_options(program, db, oracle, &EvalOptions::default())
    }

    fn names(out: &EvalOutput, rel: &str) -> Vec<String> {
        let interner = out.interner();
        let mut v: Vec<String> = out
            .relation(rel)
            .map(|r| {
                r.iter()
                    .map(|t| {
                        t.values()
                            .iter()
                            .map(|x| x.display(interner).to_string())
                            .collect::<Vec<_>>()
                            .join(",")
                    })
                    .collect()
            })
            .unwrap_or_default();
        v.sort();
        v
    }

    #[test]
    fn transitive_closure() {
        let (p, db) = setup(
            "tc(X, Y) :- e(X, Y). tc(X, Y) :- e(X, Z), tc(Z, Y).",
            &[("e", &["a", "b"]), ("e", &["b", "c"]), ("e", &["c", "d"])],
        );
        let out = run(&p, &db, &mut CanonicalOracle).unwrap();
        assert_eq!(
            names(&out, "tc"),
            ["a,b", "a,c", "a,d", "b,c", "b,d", "c,d"]
        );
    }

    #[test]
    fn stratified_negation() {
        let (p, db) = setup(
            "unreach(X) :- node(X), not reach(X).
             reach(X) :- start(X).
             reach(Y) :- reach(X), e(X, Y).",
            &[
                ("node", &["a"]),
                ("node", &["b"]),
                ("node", &["c"]),
                ("start", &["a"]),
                ("e", &["a", "b"]),
            ],
        );
        let out = run(&p, &db, &mut CanonicalOracle).unwrap();
        assert_eq!(names(&out, "reach"), ["a", "b"]);
        assert_eq!(names(&out, "unreach"), ["c"]);
    }

    #[test]
    fn facts_in_program() {
        let (p, db) = setup("p(a). q(X) :- p(X).", &[]);
        let out = run(&p, &db, &mut CanonicalOracle).unwrap();
        assert_eq!(names(&out, "q"), ["a"]);
    }

    #[test]
    fn id_literal_selects_one_per_group() {
        // all_depts via emp[2](N, D, 0): one employee per department.
        let (p, db) = setup(
            "one_per_dept(N, D) :- emp[2](N, D, 0).",
            &[
                ("emp", &["ann", "sales"]),
                ("emp", &["bob", "sales"]),
                ("emp", &["cay", "dev"]),
            ],
        );
        let out = run(&p, &db, &mut CanonicalOracle).unwrap();
        // Canonical order: ann before bob in sales.
        assert_eq!(names(&out, "one_per_dept"), ["ann,sales", "cay,dev"]);
        assert_eq!(out.stats().id_relations, 1);
    }

    #[test]
    fn explicit_oracle_changes_the_answer() {
        let (p, db) = setup(
            "one_per_dept(N, D) :- emp[2](N, D, 0).",
            &[
                ("emp", &["ann", "sales"]),
                ("emp", &["bob", "sales"]),
                ("emp", &["cay", "dev"]),
            ],
        );
        let mut oracle = ExplicitOracle::new();
        // Group "dev" = [cay], group "sales" = [ann, bob] (canonical key
        // order: dev < sales). Swap sales so bob gets tid 0.
        oracle.set("emp", vec![1], vec![vec![0], vec![1, 0]]);
        let out = run(&p, &db, &mut oracle).unwrap();
        assert_eq!(names(&out, "one_per_dept"), ["bob,sales", "cay,dev"]);
    }

    #[test]
    fn arithmetic_chain() {
        let (p, mut db) = setup("double(N, M) :- num(N), plus(N, N, M).", &[]);
        db.insert("num", Tuple::new(vec![Value::Int(3)])).unwrap();
        db.insert("num", Tuple::new(vec![Value::Int(5)])).unwrap();
        let out = run(&p, &db, &mut CanonicalOracle).unwrap();
        assert_eq!(names(&out, "double"), ["3,6", "5,10"]);
    }

    #[test]
    fn missing_input_relation_is_empty() {
        let (p, db) = setup("p(X) :- q(X).", &[]);
        let out = run(&p, &db, &mut CanonicalOracle).unwrap();
        assert!(names(&out, "p").is_empty());
    }

    #[test]
    fn arity_mismatch_in_db_is_input_error() {
        let (p, mut db) = setup("p(X) :- q(X).", &[]);
        db.insert_syms("q", &["a", "b"]).unwrap();
        assert!(matches!(
            run(&p, &db, &mut CanonicalOracle),
            Err(CoreError::Input { .. })
        ));
    }

    #[test]
    fn sort_mismatch_in_db_is_input_error() {
        let (p, mut db) = setup("r(N) :- q(N), succ(N, M).", &[]);
        db.insert_syms("q", &["a"]).unwrap();
        assert!(matches!(
            run(&p, &db, &mut CanonicalOracle),
            Err(CoreError::Input { .. })
        ));
    }

    #[test]
    fn different_interner_is_rejected() {
        let interner = Arc::new(Interner::new());
        let program = ValidatedProgram::parse("p(X) :- q(X).", interner).unwrap();
        let db = Database::new();
        assert!(matches!(
            run(&program, &db, &mut CanonicalOracle),
            Err(CoreError::Input { .. })
        ));
    }

    #[test]
    fn idb_facts_in_the_database_are_rejected() {
        let (p, mut db) = setup("p(X) :- q(X).", &[("q", &["a"])]);
        db.insert_syms("p", &["stray"]).unwrap();
        assert!(matches!(
            run(&p, &db, &mut CanonicalOracle),
            Err(CoreError::Input { .. })
        ));
    }

    #[test]
    fn paper_example2_with_canonical_oracle() {
        // sex_guess has two tuples per person (male/female guesses), grouped
        // by person. The canonical oracle gives female tid 0, male tid 1
        // (female < male), so man(X) :- sex_guess[1](X, male, 1) holds for
        // everyone and woman(X) for no one.
        let (p, db) = setup(
            "sex_guess(X, male) :- person(X).
             sex_guess(X, female) :- person(X).
             man(X) :- sex_guess[1](X, male, 1).
             woman(X) :- sex_guess[1](X, female, 1).",
            &[("person", &["a"]), ("person", &["b"])],
        );
        let out = run(&p, &db, &mut CanonicalOracle).unwrap();
        assert_eq!(names(&out, "man"), ["a", "b"]);
        assert!(names(&out, "woman").is_empty());
    }

    #[test]
    fn naive_and_seminaive_agree() {
        let (p, db) = setup(
            "tc(X, Y) :- e(X, Y). tc(X, Y) :- e(X, Z), tc(Z, Y).",
            &[
                ("e", &["a", "b"]),
                ("e", &["b", "c"]),
                ("e", &["c", "d"]),
                ("e", &["d", "a"]),
            ],
        );
        let semi = evaluate_with_options(
            &p,
            &db,
            &mut CanonicalOracle,
            &EvalOptions::new().strategy(Strategy::SemiNaive),
        )
        .unwrap();
        let naive = evaluate_with_options(
            &p,
            &db,
            &mut CanonicalOracle,
            &EvalOptions::new().strategy(Strategy::Naive),
        )
        .unwrap();
        assert!(semi
            .relation("tc")
            .unwrap()
            .set_eq(naive.relation("tc").unwrap()));
        // Semi-naive derives strictly fewer duplicate facts on a cycle.
        assert!(
            semi.stats().derived < naive.stats().derived,
            "semi {} vs naive {}",
            semi.stats().derived,
            naive.stats().derived
        );
    }

    #[test]
    fn profiling_records_strata_rules_and_id_relations() {
        let (p, db) = setup(
            "reach(X) :- start(X).
             reach(Y) :- reach(X), e(X, Y).
             pick(X) :- reach[](X, 0).",
            &[("start", &["a"]), ("e", &["a", "b"]), ("e", &["b", "c"])],
        );
        let plain = run(&p, &db, &mut CanonicalOracle).unwrap();
        assert!(plain.profile().is_none(), "profiling must be opt-in");

        let out = evaluate_with_options(
            &p,
            &db,
            &mut CanonicalOracle,
            &EvalOptions::new().profile(true),
        )
        .unwrap();
        let profile = out.profile().expect("profile requested");
        assert_eq!(profile.totals, out.stats(), "totals mirror EvalStats");
        assert_eq!(out.stats(), plain.stats(), "profiling changes no counters");
        assert!(
            plain
                .relation("pick")
                .unwrap()
                .set_eq(out.relation("pick").unwrap()),
            "profiling changes no relations"
        );
        assert_eq!(profile.rules.len(), 3, "clause text captured");
        // reach[] materialized in the pick stratum: 3 tuples, 1 group.
        let idr: Vec<_> = profile
            .strata
            .iter()
            .flat_map(|s| s.id_relations.iter())
            .collect();
        assert_eq!(idr.len(), 1);
        assert_eq!(idr[0].display_name(), "reach[]");
        assert_eq!(idr[0].tuples, 3);
        assert_eq!(idr[0].groups, 1);
        // Per-rule counters sum to the totals on every attributed field.
        let per_rule = profile.per_rule_totals();
        let summed = per_rule.iter().fold(EvalStats::default(), |mut acc, t| {
            acc += t.stats;
            acc
        });
        assert_eq!(summed.instantiations, profile.totals.instantiations);
        assert_eq!(summed.derived, profile.totals.derived);
        assert_eq!(summed.inserted, profile.totals.inserted);
        assert_eq!(summed.probes, profile.totals.probes);
        assert_eq!(summed.builtin_evals, profile.totals.builtin_evals);
        // Rounds across strata equal the iterations counter.
        let rounds: u64 = profile.strata.iter().map(|s| s.rounds.len() as u64).sum();
        assert_eq!(rounds, profile.totals.iterations);
    }

    #[test]
    fn negated_id_literal() {
        // Everyone who is NOT the tid-0 employee of their department.
        let (p, db) = setup(
            "rest(N, D) :- emp(N, D), not emp[2](N, D, 0).",
            &[
                ("emp", &["ann", "sales"]),
                ("emp", &["bob", "sales"]),
                ("emp", &["cay", "dev"]),
            ],
        );
        let out = run(&p, &db, &mut CanonicalOracle).unwrap();
        assert_eq!(names(&out, "rest"), ["bob,sales"]);
    }
}
