//! The user-facing query API.
//!
//! A [`Query`] couples a validated program with one output predicate. It
//! evaluates the program portion related to the output (the paper's `P/q`),
//! so unrelated clauses neither cost work nor contribute non-determinism.
//! Evaluation runs through a [`Session`]: borrow the query and database,
//! set [`EvalOptions`] with builder calls, then `run()` (one model) or
//! `all_answers()` (every model).
//!
//! ```
//! use idlog_core::Query;
//!
//! let query = Query::parse(
//!     "select_emp(N) :- emp[2](N, D, 0).", // one employee per department
//!     "select_emp",
//! ).unwrap();
//! let mut db = query.new_database();
//! db.insert_syms("emp", &["ann", "sales"]).unwrap();
//! db.insert_syms("emp", &["bob", "sales"]).unwrap();
//!
//! // One non-deterministic answer, resolved canonically:
//! let result = query.session(&db).run().unwrap();
//! assert_eq!(result.relation.len(), 1);
//!
//! // The full answer set: either ann or bob.
//! let all = query.session(&db).all_answers().unwrap();
//! assert_eq!(all.len(), 2);
//! ```

use std::sync::Arc;
use std::time::Duration;

use idlog_common::Interner;
use idlog_storage::{Database, Relation};

use crate::config::EvalOptions;
use crate::enumerate::{enumerate_governed, AnswerSet, EnumBudget};
use crate::error::{CoreError, CoreResult};
use crate::eval::{evaluate_governed, Strategy};
use crate::govern::{CancelToken, EvalError, Limits};
use crate::profile::Profile;
use crate::program::ValidatedProgram;
use crate::stats::EvalStats;
use crate::tid::{CanonicalOracle, TidOracle};

/// A program with a designated output predicate.
#[derive(Debug, Clone)]
pub struct Query {
    /// The full validated program.
    program: ValidatedProgram,
    /// The portion related to `output` (the paper's `P/q`) — what actually
    /// gets evaluated.
    related: ValidatedProgram,
    output: String,
    /// Whether the ID-taint analysis ([`crate::taint`]) certifies the
    /// output ID-function-independent over `related`. Computed once at
    /// construction; lets [`Session::all_answers`] skip enumeration.
    deterministic: bool,
    /// The termination certificate ([`crate::termination`]) over `related`.
    /// Computed once at construction; a certified depth bound becomes an
    /// automatic `max_rounds` ceiling on every evaluation, so even a buggy
    /// certificate trips deterministically instead of hanging.
    termination: crate::termination::TerminationCert,
    /// The goal-directed relevance analysis ([`crate::relevance`]) over
    /// `related`, rooted at the output predicate. Computed once at
    /// construction, mirroring the taint and termination certs.
    relevance: crate::relevance::RelevanceAnalysis,
    /// The validated magic-sets rewrite of `related`, present iff the
    /// relevance analysis certified it. [`Strategy::Magic`] sessions
    /// evaluate this program instead of `related`.
    magic: Option<ValidatedProgram>,
    /// The termination certificate of the magic program (its round
    /// structure differs from `related`'s, so it gets its own bound).
    magic_termination: Option<crate::termination::TerminationCert>,
}

/// The outcome of one [`Session::run`]: the output relation, the
/// evaluation statistics, and (when requested via
/// [`EvalOptions::profile`]) the per-rule [`Profile`].
#[derive(Debug, Clone)]
pub struct EvalResult {
    /// The output predicate's relation in the computed model.
    pub relation: Relation,
    /// Counters accumulated across the whole evaluation.
    pub stats: EvalStats,
    /// The per-rule profile, present iff profiling was enabled.
    pub profile: Option<Profile>,
}

/// One evaluation or enumeration of a [`Query`] over a [`Database`],
/// configured by [`EvalOptions`].
///
/// Built by [`Query::session`]; consumed by [`Session::run`],
/// [`Session::run_with`], or [`Session::all_answers`].
#[derive(Debug, Clone)]
pub struct Session<'q, 'd> {
    query: &'q Query,
    db: &'d Database,
    options: EvalOptions,
    cancel: Option<CancelToken>,
}

impl<'q, 'd> Session<'q, 'd> {
    /// Replace the whole option set.
    pub fn options(mut self, options: EvalOptions) -> Self {
        self.options = options;
        self
    }

    /// Set the worker-thread count (`0` = auto).
    pub fn threads(mut self, threads: usize) -> Self {
        self.options = self.options.threads(threads);
        self
    }

    /// Toggle per-rule profiling for [`Session::run`]/[`Session::run_with`].
    pub fn profile(mut self, profile: bool) -> Self {
        self.options = self.options.profile(profile);
        self
    }

    /// Set the fixpoint [`Strategy`].
    pub fn strategy(mut self, strategy: Strategy) -> Self {
        self.options = self.options.strategy(strategy);
        self
    }

    /// Set the storage backend for materialized relations (see
    /// [`EvalOptions::backend`]).
    pub fn backend(mut self, backend: idlog_storage::BackendKind) -> Self {
        self.options = self.options.backend(backend);
        self
    }

    /// Set the enumeration budget for [`Session::all_answers`].
    pub fn budget(mut self, budget: EnumBudget) -> Self {
        self.options = self.options.budget(budget);
        self
    }

    /// Replace every resource ceiling at once (see
    /// [`EvalOptions::limits`]).
    pub fn limits(mut self, limits: Limits) -> Self {
        self.options = self.options.limits(limits);
        self
    }

    /// Set a wall-clock budget for the evaluation.
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.options = self.options.deadline(deadline);
        self
    }

    /// Attach a cancellation token: any clone of it can stop this session's
    /// evaluation or enumeration promptly (e.g. from a Ctrl-C handler).
    pub fn cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// One answer of the (possibly non-deterministic) query, resolved by
    /// the canonical oracle (tids in first-derivation order).
    pub fn run(self) -> CoreResult<EvalResult> {
        self.run_with(&mut CanonicalOracle)
    }

    /// One answer, with non-determinism resolved by `oracle`.
    pub fn run_with(self, oracle: &mut dyn TidOracle) -> CoreResult<EvalResult> {
        self.try_run_with(oracle).map_err(EvalError::into_core)
    }

    /// Like [`Session::run`], but limit trips and cancellations return the
    /// structured [`EvalError`], which carries the partial output computed
    /// up to the last completed round barrier.
    pub fn try_run(self) -> Result<EvalResult, EvalError> {
        self.try_run_with(&mut CanonicalOracle)
    }

    /// Like [`Session::run_with`], with the structured [`EvalError`].
    pub fn try_run_with(self, oracle: &mut dyn TidOracle) -> Result<EvalResult, EvalError> {
        self.query
            .eval_inner(self.db, oracle, &self.options, self.cancel.as_ref())
    }

    /// Every answer of the query, bounded by the options' budget.
    ///
    /// When the query is [certified deterministic](Query::certified_deterministic)
    /// and [`EvalOptions::det_fastpath`] is on (the default), the answer
    /// set is computed by a single canonical evaluation — no ID-function
    /// enumeration, always complete, `models_explored() == 1`.
    /// Limit trips and cancellations are reported through
    /// [`AnswerSet::stopped`], not as errors: the walk is bounded by design,
    /// so a stop truncates the set the same way the model budget does.
    pub fn all_answers(self) -> CoreResult<AnswerSet> {
        let query = self.query;
        if let Some(answers) = query.edb_answer(self.db) {
            return Ok(answers);
        }
        if self.options.det_fastpath && query.deterministic {
            // A stop mid-evaluation yields no complete perfect model, so the
            // partial relation is *not* an answer — report an empty,
            // stopped set instead.
            return match query.eval_inner(
                self.db,
                &mut CanonicalOracle,
                &self.options,
                self.cancel.as_ref(),
            ) {
                Ok(result) => Ok(AnswerSet::collect(
                    [result.relation],
                    true,
                    1,
                    query.program.interner(),
                )),
                Err(e @ (EvalError::Limit { .. } | EvalError::Cancelled { .. })) => {
                    let stop = match e.into_core() {
                        CoreError::LimitExceeded { limit } => {
                            crate::govern::StopReason::Limit(limit)
                        }
                        _ => crate::govern::StopReason::Cancelled,
                    };
                    Ok(AnswerSet::collect_stopped(
                        [],
                        Some(stop),
                        0,
                        query.program.interner(),
                    ))
                }
                Err(e) => Err(e.into_core()),
            };
        }
        // The enumeration walk ignores the fixpoint strategy, so an
        // uncertified magic request must refuse here too (with the same
        // witness) instead of silently evaluating the full program.
        if self.options.strategy == Strategy::Magic && query.magic.is_none() {
            return Err(query.magic_refusal_error());
        }
        enumerate_governed(
            &query.related,
            self.db,
            &query.output,
            &self.options,
            self.cancel.as_ref(),
        )
    }
}

impl Query {
    /// Parse `src` into a fresh interner and designate `output`.
    pub fn parse(src: &str, output: &str) -> CoreResult<Query> {
        Self::parse_with_interner(src, output, Arc::new(Interner::new()))
    }

    /// Parse with an existing interner (to share symbols with other queries
    /// or databases).
    pub fn parse_with_interner(
        src: &str,
        output: &str,
        interner: Arc<Interner>,
    ) -> CoreResult<Query> {
        let program = ValidatedProgram::parse(src, interner)?;
        Self::new(program, output)
    }

    /// Wrap an already validated program.
    pub fn new(program: ValidatedProgram, output: &str) -> CoreResult<Query> {
        let output_id = program
            .interner()
            .get(output)
            .filter(|id| program.arity(*id).is_some());
        let Some(output_id) = output_id else {
            return Err(CoreError::Validation {
                clause: None,
                message: format!("output predicate {output} does not occur in the program"),
            });
        };
        let related = program.restrict_to(output_id)?;
        let deterministic = crate::taint::analyze_taint(related.ast()).deterministic(output_id);
        let termination = crate::termination::analyze_termination(related.ast());
        let (relevance, magic) = if related.arity(output_id).is_some() {
            let relevance = crate::relevance::analyze_relevance(related.ast(), output_id);
            let magic = crate::relevance::magic_program(
                related.ast(),
                output_id,
                program.interner(),
                &relevance,
            )
            .and_then(|ast| ValidatedProgram::new(ast, Arc::clone(program.interner())).ok());
            (relevance, magic)
        } else {
            // Output is an input predicate: the identity query, nothing to
            // adorn or rewrite.
            (crate::relevance::RelevanceAnalysis::default(), None)
        };
        let magic_termination = magic
            .as_ref()
            .map(|m| crate::termination::analyze_termination(m.ast()));
        Ok(Query {
            program,
            related,
            output: output.to_string(),
            deterministic,
            termination,
            relevance,
            magic,
            magic_termination,
        })
    }

    /// True when the conservative ID-taint analysis certifies this query's
    /// answer identical under every ID-function (Theorem 3 makes the exact
    /// property undecidable, so `false` means *unknown*, not
    /// non-deterministic). Certified queries have a singleton answer set,
    /// and [`Session::all_answers`] computes it with one canonical
    /// evaluation instead of enumerating ID-functions (unless
    /// [`EvalOptions::det_fastpath`] is off).
    pub fn certified_deterministic(&self) -> bool {
        self.deterministic
    }

    /// The termination certificate for the related portion `P/q`. When it
    /// [certifies boundedness](crate::TerminationCert::bounded), every
    /// session automatically runs under the certified
    /// [round bound](crate::TerminationCert::round_bound) as a `max_rounds`
    /// ceiling (tightening, never loosening, caller-set limits).
    pub fn termination_cert(&self) -> &crate::termination::TerminationCert {
        &self.termination
    }

    /// The goal-directed relevance analysis over `P/q`, rooted at the
    /// output predicate (see [`crate::relevance`]). Certification means a
    /// [`Strategy::Magic`] session is semantics-preserving; a refusal
    /// carries the witness walk every magic session will report.
    pub fn relevance(&self) -> &crate::relevance::RelevanceAnalysis {
        &self.relevance
    }

    /// True when [`Strategy::Magic`] sessions will run the magic-sets
    /// rewrite instead of refusing.
    pub fn magic_certified(&self) -> bool {
        self.magic.is_some()
    }

    /// The validated magic-sets rewrite of `P/q`, when certified.
    pub fn magic_plan(&self) -> Option<&ValidatedProgram> {
        self.magic.as_ref()
    }

    /// The output predicate name.
    pub fn output(&self) -> &str {
        &self.output
    }

    /// The full program.
    pub fn program(&self) -> &ValidatedProgram {
        &self.program
    }

    /// The related portion `P/q` that evaluation actually runs.
    pub fn related_program(&self) -> &ValidatedProgram {
        &self.related
    }

    /// The shared interner.
    pub fn interner(&self) -> &Arc<Interner> {
        self.program.interner()
    }

    /// A fresh empty database sharing this query's interner.
    pub fn new_database(&self) -> Database {
        Database::with_interner(Arc::clone(self.program.interner()))
    }

    /// Start a [`Session`] over `db` with default [`EvalOptions`].
    pub fn session<'q, 'd>(&'q self, db: &'d Database) -> Session<'q, 'd> {
        Session {
            query: self,
            db,
            options: EvalOptions::default(),
            cancel: None,
        }
    }

    /// The shared implementation behind [`Session::try_run_with`].
    fn eval_inner(
        &self,
        db: &Database,
        oracle: &mut dyn TidOracle,
        options: &EvalOptions,
        cancel: Option<&CancelToken>,
    ) -> Result<EvalResult, EvalError> {
        // An output with no defining clause is an input predicate: the
        // identity query over the stored relation.
        let output_id = self
            .program
            .interner()
            .get(&self.output)
            .expect("checked at new()");
        if self.related.arity(output_id).is_none() {
            let arity = self.program.arity(output_id).expect("checked at new()");
            let rel = db
                .relation_by_id(output_id)
                .cloned()
                .unwrap_or_else(|| Relation::elementary(arity));
            return Ok(EvalResult {
                relation: rel,
                stats: EvalStats::default(),
                profile: options.profile.then(Profile::empty),
            });
        }
        if options.strategy == Strategy::Magic {
            return self.eval_magic(db, oracle, options, cancel);
        }
        // Install the certified depth bound as a static round ceiling: a
        // correct cert never trips it (the bound over-approximates), and a
        // buggy one trips deterministically instead of hanging.
        let mut options = *options;
        if let Some(bound) = self.termination.round_bound(db) {
            options.limits = options.limits.tighten_rounds(bound);
        }
        let mut out = evaluate_governed(&self.related, db, oracle, &options, cancel)?;
        let rel = out
            .relation(&self.output)
            .cloned()
            .expect("output predicate exists in the related program");
        Ok(EvalResult {
            relation: rel,
            stats: out.stats(),
            profile: out.take_profile(),
        })
    }

    /// The [`Strategy::Magic`] evaluation path: run the certified rewrite,
    /// or refuse with the relevance witness. The root predicate keeps its
    /// original name in the rewrite, so output projection — including from
    /// the partial state a limit trip carries — works unchanged.
    fn eval_magic(
        &self,
        db: &Database,
        oracle: &mut dyn TidOracle,
        options: &EvalOptions,
        cancel: Option<&CancelToken>,
    ) -> Result<EvalResult, EvalError> {
        let Some(magic) = &self.magic else {
            return Err(EvalError::Core(self.magic_refusal_error()));
        };
        let mut options = *options;
        if let Some(bound) = self
            .magic_termination
            .as_ref()
            .and_then(|t| t.round_bound(db))
        {
            options.limits = options.limits.tighten_rounds(bound);
        }
        let mut out = evaluate_governed(magic, db, oracle, &options, cancel)?;
        let mut stats = out.stats();
        stats.tuples_pruned = crate::relevance::magic_tuples_pruned(magic, db, &out);
        let rel = out
            .relation(&self.output)
            .cloned()
            .expect("the rewrite keeps the output predicate's name");
        let mut profile = out.take_profile();
        if let Some(p) = profile.as_mut() {
            p.totals.tuples_pruned = stats.tuples_pruned;
        }
        Ok(EvalResult {
            relation: rel,
            stats,
            profile,
        })
    }

    /// The [`CoreError`] explaining why `strategy=magic` is refused for
    /// this query. Every refusal carries the relevance witness walk; the
    /// only witnessless case is a rewrite that failed revalidation (which
    /// the analysis should prevent — kept as a defensive fallback).
    pub(crate) fn magic_refusal_error(&self) -> CoreError {
        let message = match self.relevance.refusal() {
            Some(r) => {
                let reason = match r.reason {
                    crate::relevance::RefusalReason::Floundering => {
                        "the query flounders under the left-to-right SIPS"
                    }
                    crate::relevance::RefusalReason::ChoiceSite => {
                        "the related region contains a choice site"
                    }
                };
                format!(
                    "strategy=magic refused: {reason}; witness: {}",
                    r.render(self.program.interner())
                )
            }
            None => "strategy=magic is unavailable for this query".to_string(),
        };
        CoreError::Validation {
            clause: None,
            message,
        }
    }

    /// The single-answer set when the output is an input predicate (no
    /// defining clause): the identity query.
    fn edb_answer(&self, db: &Database) -> Option<AnswerSet> {
        let output_id = self
            .program
            .interner()
            .get(&self.output)
            .expect("checked at new()");
        if self.related.arity(output_id).is_some() {
            return None;
        }
        let arity = self.program.arity(output_id).expect("checked at new()");
        let rel = db
            .relation_by_id(output_id)
            .cloned()
            .unwrap_or_else(|| Relation::elementary(arity));
        Some(AnswerSet::collect([rel], true, 1, self.program.interner()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tid::SeededOracle;

    #[test]
    fn eval_and_all_answers_agree() {
        let q = Query::parse("pick(N) :- emp[2](N, D, 0).", "pick").unwrap();
        let mut db = q.new_database();
        for (n, d) in [("a", "x"), ("b", "x"), ("c", "y")] {
            db.insert_syms("emp", &[n, d]).unwrap();
        }
        let all = q.session(&db).all_answers().unwrap();
        assert!(all.complete());
        // Every oracle-produced answer must be among the enumerated ones.
        for seed in 0..8 {
            let rel = q
                .session(&db)
                .run_with(&mut SeededOracle::new(seed))
                .unwrap()
                .relation;
            let tuples: Vec<_> = rel.iter().cloned().collect();
            assert!(
                all.contains_answer(&tuples),
                "seed {seed} answer not enumerated"
            );
        }
        let rel = q.session(&db).run().unwrap().relation;
        let tuples: Vec<_> = rel.iter().cloned().collect();
        assert!(all.contains_answer(&tuples));
    }

    #[test]
    fn certified_query_skips_enumeration() {
        // `D` ranges over the departments regardless of the ID-function.
        let q = Query::parse("all_depts(D) :- emp[2](N, D, 0).", "all_depts").unwrap();
        assert!(q.certified_deterministic());
        let mut db = q.new_database();
        for (n, d) in [("a", "x"), ("b", "x"), ("c", "y")] {
            db.insert_syms("emp", &[n, d]).unwrap();
        }
        let fast = q.session(&db).all_answers().unwrap();
        assert!(fast.complete());
        assert_eq!(fast.models_explored(), 1);
        assert_eq!(fast.len(), 1);
        // The full enumeration agrees (soundness spot check; the proptest
        // suite covers this at scale).
        let slow = q
            .session(&db)
            .options(EvalOptions::new().det_fastpath(false))
            .all_answers()
            .unwrap();
        assert!(slow.models_explored() > 1);
        assert!(fast.same_answers(&slow, q.interner()));
    }

    #[test]
    fn uncertified_query_still_enumerates() {
        let q = Query::parse("pick(N) :- emp[2](N, D, 0).", "pick").unwrap();
        assert!(!q.certified_deterministic());
        let mut db = q.new_database();
        db.insert_syms("emp", &["a", "x"]).unwrap();
        db.insert_syms("emp", &["b", "x"]).unwrap();
        let all = q.session(&db).all_answers().unwrap();
        assert_eq!(all.len(), 2, "fast path must not fire on tainted queries");
    }

    #[test]
    fn unknown_output_rejected_at_construction() {
        assert!(Query::parse("p(X) :- q(X).", "nope").is_err());
    }

    #[test]
    fn unrelated_clauses_do_not_affect_stats() {
        let q1 = Query::parse("out(X) :- base(X).", "out").unwrap();
        let q2 = Query::parse_with_interner(
            "out(X) :- base(X). junk(Y) :- other(Y), other2(Y).",
            "out",
            Arc::clone(q1.interner()),
        )
        .unwrap();
        let mut db = q1.new_database();
        db.insert_syms("base", &["a"]).unwrap();
        db.insert_syms("other", &["b"]).unwrap();
        db.insert_syms("other2", &["b"]).unwrap();
        let s1 = q1.session(&db).run().unwrap().stats;
        let s2 = q2.session(&db).run().unwrap().stats;
        assert_eq!(
            s1.instantiations, s2.instantiations,
            "junk clauses were evaluated"
        );
    }

    #[test]
    fn querying_an_input_predicate_is_the_identity() {
        let q = Query::parse("out(X) :- p(X).", "p").unwrap();
        let mut db = q.new_database();
        db.insert_syms("p", &["a"]).unwrap();
        db.insert_syms("p", &["b"]).unwrap();
        let result = q.session(&db).profile(true).run().unwrap();
        assert_eq!(result.relation.len(), 2);
        // The EDB identity path still honors the profile opt-in (empty).
        let profile = result.profile.expect("profile requested");
        assert!(profile.strata.is_empty());
        let all = q.session(&db).all_answers().unwrap();
        assert_eq!(all.len(), 1);
        assert!(all.complete());
        // With an empty database the answer is the empty relation.
        let empty_db = q.new_database();
        let rel = q.session(&empty_db).run().unwrap().relation;
        assert!(rel.is_empty());
    }

    #[test]
    fn session_profile_toggle_controls_presence() {
        let q = Query::parse("pick(N) :- emp[2](N, D, 0).", "pick").unwrap();
        let mut db = q.new_database();
        db.insert_syms("emp", &["a", "x"]).unwrap();
        let plain = q.session(&db).run().unwrap();
        assert!(plain.profile.is_none());
        let profiled = q.session(&db).profile(true).run().unwrap();
        let profile = profiled.profile.expect("profile requested");
        assert_eq!(profile.totals, profiled.stats);
        assert_eq!(plain.relation, profiled.relation);
        assert_eq!(plain.stats, profiled.stats);
    }

    #[test]
    fn try_run_surfaces_limit_with_partial_output() {
        let q = Query::parse("count(0). count(M) :- count(N), plus(N, 1, M).", "count").unwrap();
        let db = q.new_database();
        let err = q
            .session(&db)
            .limits(Limits {
                max_rounds: Some(5),
                ..Limits::none()
            })
            .try_run()
            .unwrap_err();
        match &err {
            EvalError::Limit { limit, partial } => {
                assert_eq!(*limit, crate::govern::LimitKind::Rounds);
                let rel = partial.relation("count").expect("partial carries output");
                assert!(!rel.is_empty(), "partial output should hold derived facts");
            }
            other => panic!("expected Limit, got {other:?}"),
        }
        // The legacy surface flattens the same failure.
        let core = q
            .session(&db)
            .limits(Limits {
                max_rounds: Some(5),
                ..Limits::none()
            })
            .run()
            .unwrap_err();
        assert_eq!(
            core,
            CoreError::LimitExceeded {
                limit: crate::govern::LimitKind::Rounds
            }
        );
    }

    #[test]
    fn certified_bound_becomes_automatic_round_ceiling() {
        let q = Query::parse("tc(X, Y) :- e(X, Y). tc(X, Y) :- e(X, Z), tc(Z, Y).", "tc").unwrap();
        let cert = q.termination_cert();
        assert!(cert.bounded());
        let mut db = q.new_database();
        for (a, b) in [("a", "b"), ("b", "c"), ("c", "d")] {
            db.insert_syms("e", &[a, b]).unwrap();
        }
        let bound = cert.round_bound(&db).expect("certified");
        // The certified ceiling never trips an honest evaluation …
        let ok = q.session(&db).run().unwrap();
        assert!(ok.stats.iterations <= bound);
        // … and tightening keeps a stricter caller limit intact.
        let err = q
            .session(&db)
            .limits(Limits {
                max_rounds: Some(1),
                ..Limits::none()
            })
            .try_run()
            .unwrap_err();
        assert!(matches!(
            err,
            EvalError::Limit {
                limit: crate::govern::LimitKind::Rounds,
                ..
            }
        ));
    }

    #[test]
    fn uncertified_query_keeps_no_automatic_ceiling() {
        let q = Query::parse("count(0). count(M) :- count(N), plus(N, 1, M).", "count").unwrap();
        assert!(!q.termination_cert().bounded());
        assert!(q.termination_cert().growth_witness().is_some());
        let db = q.new_database();
        assert!(q.termination_cert().round_bound(&db).is_none());
    }

    #[test]
    fn cancelled_session_reports_cancellation() {
        let q = Query::parse("out(X) :- base(X).", "out").unwrap();
        let mut db = q.new_database();
        db.insert_syms("base", &["a"]).unwrap();
        let token = CancelToken::new();
        token.cancel();
        let err = q.session(&db).cancel_token(token.clone()).try_run();
        assert!(matches!(err, Err(EvalError::Cancelled { .. })));
        // Reset and the same session setup succeeds.
        token.reset();
        let ok = q.session(&db).cancel_token(token).try_run().unwrap();
        assert_eq!(ok.relation.len(), 1);
    }

    #[test]
    fn all_answers_reports_stop_reason() {
        let q = Query::parse("pick(N) :- emp[2](N, D, 0).", "pick").unwrap();
        let mut db = q.new_database();
        db.insert_syms("emp", &["a", "x"]).unwrap();
        db.insert_syms("emp", &["b", "x"]).unwrap();
        let token = CancelToken::new();
        token.cancel();
        let all = q.session(&db).cancel_token(token).all_answers().unwrap();
        assert!(!all.complete());
        assert_eq!(all.stopped(), Some(crate::govern::StopReason::Cancelled));
    }

    #[test]
    fn det_fastpath_stop_yields_empty_stopped_set() {
        // Certified-deterministic query + cancelled token: the canonical
        // evaluation cannot finish, so no perfect model exists yet — the
        // answer set is empty and names the stop.
        let q = Query::parse("all_depts(D) :- emp[2](N, D, 0).", "all_depts").unwrap();
        assert!(q.certified_deterministic());
        let mut db = q.new_database();
        db.insert_syms("emp", &["a", "x"]).unwrap();
        let token = CancelToken::new();
        token.cancel();
        let all = q.session(&db).cancel_token(token).all_answers().unwrap();
        assert!(all.is_empty());
        assert_eq!(all.stopped(), Some(crate::govern::StopReason::Cancelled));
    }

    const ANCESTOR: &str = "
        ancestor(X, Y) :- parent(X, Y).
        ancestor(X, Z) :- ancestor(X, Y), parent(Y, Z).
        query(Y) :- ancestor(ann, Y).
    ";

    fn family_db(q: &Query) -> Database {
        let mut db = q.new_database();
        for (x, y) in [
            ("ann", "bob"),
            ("bob", "cal"),
            ("cal", "dee"),
            ("eve", "fay"),
            ("fay", "gus"),
            ("gus", "hal"),
        ] {
            db.insert_syms("parent", &[x, y]).unwrap();
        }
        db
    }

    #[test]
    fn magic_strategy_agrees_and_prunes() {
        let q = Query::parse(ANCESTOR, "query").unwrap();
        assert!(q.magic_certified());
        assert!(q.relevance().is_point_query());
        let db = family_db(&q);
        let direct = q.session(&db).run().unwrap();
        let magic = q.session(&db).strategy(Strategy::Magic).run().unwrap();
        assert!(direct.relation.set_eq(&magic.relation));
        assert_eq!(magic.relation.len(), 3);
        // Profit: the eve-branch is never derived, and the pruned counter
        // sees its parent tuples.
        assert!(magic.stats.inserted < direct.stats.inserted);
        assert!(magic.stats.tuples_pruned > 0);
        assert_eq!(direct.stats.tuples_pruned, 0);
        // The counter is part of the deterministic stats contract.
        let again = q
            .session(&db)
            .strategy(Strategy::Magic)
            .threads(2)
            .run()
            .unwrap();
        assert_eq!(again.stats, magic.stats);
    }

    #[test]
    fn magic_strategy_refused_with_witness() {
        let q = Query::parse("picked(X) :- pool[](X, 0). q(X) :- picked(X).", "q").unwrap();
        assert!(!q.magic_certified());
        let db = q.new_database();
        let err = q.session(&db).strategy(Strategy::Magic).run().unwrap_err();
        match err {
            CoreError::Validation { message, .. } => {
                assert!(message.contains("choice site"), "{message}");
                assert!(message.contains("witness"), "{message}");
            }
            other => panic!("expected Validation refusal, got {other:?}"),
        }
    }

    #[test]
    fn magic_limit_trip_carries_partial_output() {
        let q = Query::parse(ANCESTOR, "query").unwrap();
        let db = family_db(&q);
        let err = q
            .session(&db)
            .strategy(Strategy::Magic)
            .limits(Limits {
                max_rounds: Some(1),
                ..Limits::none()
            })
            .try_run()
            .unwrap_err();
        match &err {
            EvalError::Limit { limit, partial } => {
                assert_eq!(*limit, crate::govern::LimitKind::Rounds);
                // The rewrite keeps the root name, so partial projection
                // works exactly like the direct strategy's.
                assert!(partial.relation("query").is_some());
            }
            other => panic!("expected Limit, got {other:?}"),
        }
    }

    #[test]
    fn doc_example_runs() {
        let query = Query::parse("select_emp(N) :- emp[2](N, D, 0).", "select_emp").unwrap();
        let mut db = query.new_database();
        db.insert_syms("emp", &["ann", "sales"]).unwrap();
        db.insert_syms("emp", &["bob", "sales"]).unwrap();
        let result = query.session(&db).run().unwrap();
        assert_eq!(result.relation.len(), 1);
        let all = query.session(&db).all_answers().unwrap();
        assert_eq!(all.len(), 2);
    }
}
