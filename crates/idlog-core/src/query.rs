//! The user-facing query API.
//!
//! A [`Query`] couples a validated program with one output predicate. It
//! evaluates the program portion related to the output (the paper's `P/q`),
//! so unrelated clauses neither cost work nor contribute non-determinism.
//!
//! ```
//! use idlog_core::{CanonicalOracle, EnumBudget, Query};
//!
//! let query = Query::parse(
//!     "select_emp(N) :- emp[2](N, D, 0).", // one employee per department
//!     "select_emp",
//! ).unwrap();
//! let mut db = query.new_database();
//! db.insert_syms("emp", &["ann", "sales"]).unwrap();
//! db.insert_syms("emp", &["bob", "sales"]).unwrap();
//!
//! // One non-deterministic answer, resolved canonically:
//! let rel = query.eval(&db, &mut CanonicalOracle).unwrap();
//! assert_eq!(rel.len(), 1);
//!
//! // The full answer set: either ann or bob.
//! let all = query.all_answers(&db, &EnumBudget::default()).unwrap();
//! assert_eq!(all.len(), 2);
//! ```

use std::sync::Arc;

use idlog_common::Interner;
use idlog_storage::{Database, Relation};

use crate::config::EvalConfig;
use crate::enumerate::{
    enumerate_answers, enumerate_answers_parallel, enumerate_answers_with, AnswerSet, EnumBudget,
};
use crate::error::{CoreError, CoreResult};
use crate::eval::{evaluate_with_config, Strategy};
use crate::program::ValidatedProgram;
use crate::stats::EvalStats;
use crate::tid::TidOracle;

/// A program with a designated output predicate.
#[derive(Debug, Clone)]
pub struct Query {
    /// The full validated program.
    program: ValidatedProgram,
    /// The portion related to `output` (the paper's `P/q`) — what actually
    /// gets evaluated.
    related: ValidatedProgram,
    output: String,
}

impl Query {
    /// Parse `src` into a fresh interner and designate `output`.
    pub fn parse(src: &str, output: &str) -> CoreResult<Query> {
        Self::parse_with_interner(src, output, Arc::new(Interner::new()))
    }

    /// Parse with an existing interner (to share symbols with other queries
    /// or databases).
    pub fn parse_with_interner(
        src: &str,
        output: &str,
        interner: Arc<Interner>,
    ) -> CoreResult<Query> {
        let program = ValidatedProgram::parse(src, interner)?;
        Self::new(program, output)
    }

    /// Wrap an already validated program.
    pub fn new(program: ValidatedProgram, output: &str) -> CoreResult<Query> {
        let output_id = program
            .interner()
            .get(output)
            .filter(|id| program.arity(*id).is_some());
        let Some(output_id) = output_id else {
            return Err(CoreError::Validation {
                clause: None,
                message: format!("output predicate {output} does not occur in the program"),
            });
        };
        let related = program.restrict_to(output_id)?;
        Ok(Query {
            program,
            related,
            output: output.to_string(),
        })
    }

    /// The output predicate name.
    pub fn output(&self) -> &str {
        &self.output
    }

    /// The full program.
    pub fn program(&self) -> &ValidatedProgram {
        &self.program
    }

    /// The related portion `P/q` that evaluation actually runs.
    pub fn related_program(&self) -> &ValidatedProgram {
        &self.related
    }

    /// The shared interner.
    pub fn interner(&self) -> &Arc<Interner> {
        self.program.interner()
    }

    /// A fresh empty database sharing this query's interner.
    pub fn new_database(&self) -> Database {
        Database::with_interner(Arc::clone(self.program.interner()))
    }

    /// One answer of the (possibly non-deterministic) query, resolved by
    /// `oracle`.
    pub fn eval(&self, db: &Database, oracle: &mut dyn TidOracle) -> CoreResult<Relation> {
        self.eval_with_stats(db, oracle).map(|(rel, _)| rel)
    }

    /// Like [`Query::eval`], also returning evaluation statistics.
    pub fn eval_with_stats(
        &self,
        db: &Database,
        oracle: &mut dyn TidOracle,
    ) -> CoreResult<(Relation, EvalStats)> {
        self.eval_configured(db, oracle, &EvalConfig::default())
    }

    /// Like [`Query::eval_with_stats`] with an explicit [`EvalConfig`]
    /// (thread count). Relations and statistics do not depend on the
    /// configured thread count.
    pub fn eval_configured(
        &self,
        db: &Database,
        oracle: &mut dyn TidOracle,
        config: &EvalConfig,
    ) -> CoreResult<(Relation, EvalStats)> {
        // An output with no defining clause is an input predicate: the
        // identity query over the stored relation.
        let output_id = self
            .program
            .interner()
            .get(&self.output)
            .expect("checked at new()");
        if self.related.arity(output_id).is_none() {
            let arity = self.program.arity(output_id).expect("checked at new()");
            let rel = db
                .relation_by_id(output_id)
                .cloned()
                .unwrap_or_else(|| Relation::elementary(arity));
            return Ok((rel, EvalStats::default()));
        }
        let out = evaluate_with_config(&self.related, db, oracle, Strategy::SemiNaive, config)?;
        let rel = out
            .relation(&self.output)
            .cloned()
            .expect("output predicate exists in the related program");
        Ok((rel, out.stats()))
    }

    /// Every answer of the query (bounded by `budget`).
    pub fn all_answers(&self, db: &Database, budget: &EnumBudget) -> CoreResult<AnswerSet> {
        match self.edb_answer(db) {
            Some(answers) => Ok(answers),
            None => enumerate_answers(&self.related, db, &self.output, budget),
        }
    }

    /// Every answer, exploring the first choice point in parallel.
    pub fn all_answers_parallel(
        &self,
        db: &Database,
        budget: &EnumBudget,
    ) -> CoreResult<AnswerSet> {
        match self.edb_answer(db) {
            Some(answers) => Ok(answers),
            None => enumerate_answers_parallel(&self.related, db, &self.output, budget),
        }
    }

    /// Every answer under an explicit [`EvalConfig`] (thread count for the
    /// choice-point fan-out and per-branch rounds).
    pub fn all_answers_configured(
        &self,
        db: &Database,
        budget: &EnumBudget,
        config: &EvalConfig,
    ) -> CoreResult<AnswerSet> {
        match self.edb_answer(db) {
            Some(answers) => Ok(answers),
            None => enumerate_answers_with(&self.related, db, &self.output, budget, config),
        }
    }

    /// The single-answer set when the output is an input predicate (no
    /// defining clause): the identity query.
    fn edb_answer(&self, db: &Database) -> Option<AnswerSet> {
        let output_id = self
            .program
            .interner()
            .get(&self.output)
            .expect("checked at new()");
        if self.related.arity(output_id).is_some() {
            return None;
        }
        let arity = self.program.arity(output_id).expect("checked at new()");
        let rel = db
            .relation_by_id(output_id)
            .cloned()
            .unwrap_or_else(|| Relation::elementary(arity));
        Some(AnswerSet::collect([rel], true, 1, self.program.interner()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tid::{CanonicalOracle, SeededOracle};

    #[test]
    fn eval_and_all_answers_agree() {
        let q = Query::parse("pick(N) :- emp[2](N, D, 0).", "pick").unwrap();
        let mut db = q.new_database();
        for (n, d) in [("a", "x"), ("b", "x"), ("c", "y")] {
            db.insert_syms("emp", &[n, d]).unwrap();
        }
        let all = q.all_answers(&db, &EnumBudget::default()).unwrap();
        assert!(all.complete());
        // Every oracle-produced answer must be among the enumerated ones.
        for seed in 0..8 {
            let rel = q.eval(&db, &mut SeededOracle::new(seed)).unwrap();
            let tuples: Vec<_> = rel.iter().cloned().collect();
            assert!(
                all.contains_answer(&tuples),
                "seed {seed} answer not enumerated"
            );
        }
        let rel = q.eval(&db, &mut CanonicalOracle).unwrap();
        let tuples: Vec<_> = rel.iter().cloned().collect();
        assert!(all.contains_answer(&tuples));
    }

    #[test]
    fn unknown_output_rejected_at_construction() {
        assert!(Query::parse("p(X) :- q(X).", "nope").is_err());
    }

    #[test]
    fn unrelated_clauses_do_not_affect_stats() {
        let q1 = Query::parse("out(X) :- base(X).", "out").unwrap();
        let q2 = Query::parse_with_interner(
            "out(X) :- base(X). junk(Y) :- other(Y), other2(Y).",
            "out",
            Arc::clone(q1.interner()),
        )
        .unwrap();
        let mut db = q1.new_database();
        db.insert_syms("base", &["a"]).unwrap();
        db.insert_syms("other", &["b"]).unwrap();
        db.insert_syms("other2", &["b"]).unwrap();
        let (_, s1) = q1.eval_with_stats(&db, &mut CanonicalOracle).unwrap();
        let (_, s2) = q2.eval_with_stats(&db, &mut CanonicalOracle).unwrap();
        assert_eq!(
            s1.instantiations, s2.instantiations,
            "junk clauses were evaluated"
        );
    }

    #[test]
    fn querying_an_input_predicate_is_the_identity() {
        let q = Query::parse("out(X) :- p(X).", "p").unwrap();
        let mut db = q.new_database();
        db.insert_syms("p", &["a"]).unwrap();
        db.insert_syms("p", &["b"]).unwrap();
        let rel = q.eval(&db, &mut CanonicalOracle).unwrap();
        assert_eq!(rel.len(), 2);
        let all = q.all_answers(&db, &EnumBudget::default()).unwrap();
        assert_eq!(all.len(), 1);
        assert!(all.complete());
        // With an empty database the answer is the empty relation.
        let empty_db = q.new_database();
        let rel = q.eval(&empty_db, &mut CanonicalOracle).unwrap();
        assert!(rel.is_empty());
    }

    #[test]
    fn doc_example_runs() {
        let query = Query::parse("select_emp(N) :- emp[2](N, D, 0).", "select_emp").unwrap();
        let mut db = query.new_database();
        db.insert_syms("emp", &["ann", "sales"]).unwrap();
        db.insert_syms("emp", &["bob", "sales"]).unwrap();
        let rel = query.eval(&db, &mut CanonicalOracle).unwrap();
        assert_eq!(rel.len(), 1);
        let all = query.all_answers(&db, &EnumBudget::default()).unwrap();
        assert_eq!(all.len(), 2);
    }
}
