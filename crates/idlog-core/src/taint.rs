//! ID-taint dataflow and conservative determinism certification.
//!
//! The paper's Theorem 3 proves that deciding whether an IDLOG program is
//! deterministic is undecidable, so this analysis is *sound but incomplete*:
//! every predicate it certifies is genuinely ID-function-independent, but
//! some deterministic programs (e.g. `programs/parity.idl`, which counts
//! along an arbitrary tid order) remain uncertified.
//!
//! The analysis is a monotone fixpoint over the predicate dependency graph
//! with two coupled lattices:
//!
//! * **membership taint** — the set of tuples derivable for a predicate can
//!   vary with the chosen ID-function. A head is tainted when its clause
//!   reads a tainted predicate, contains an ID-literal occurrence that is
//!   not *choice-free* (see [`choice_free_occurrence`]), or uses the
//!   `choice`/`!` constructs of the emulated languages.
//! * **column (value) taint** — a column can carry a tid-derived value even
//!   when reaching the clause at all is deterministic. Tracked per
//!   `(predicate, column)` and propagated through joins and `=` builtins;
//!   it feeds the W011 lint and makes witness messages precise. Membership
//!   taint is the sound gate: a clause binding a variable from a tainted
//!   column of predicate `p` is already membership-tainted via `p`.
//!
//! Certification (`deterministic(p)`) is the complement of membership
//! taint, and every taint carries a [`TaintStep`] witness so diagnostics
//! can show a concrete derivation path to the offending literal.

use idlog_common::{FxHashMap, FxHashSet, SymbolId};
use idlog_parser::{Builtin, Clause, Literal, PredicateRef, Program, Term};

/// One step in a taint witness: how ID-function dependence reaches a
/// predicate. Chased transitively by [`TaintAnalysis::witness`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaintStep {
    /// The literal at `(clause, literal)` introduces a choice directly: an
    /// ID-literal whose enumerated bindings vary across ID-functions, or a
    /// `choice`/`!` construct.
    Choice {
        /// Clause index in the program.
        clause: usize,
        /// Body literal index within that clause.
        literal: usize,
    },
    /// The body literal at `(clause, literal)` reads the already-tainted
    /// predicate `from`.
    Via {
        /// Clause index in the program.
        clause: usize,
        /// Body literal index within that clause.
        literal: usize,
        /// The tainted predicate this literal reads.
        from: SymbolId,
    },
}

/// The result of the ID-taint fixpoint over one program.
#[derive(Debug, Clone, Default)]
pub struct TaintAnalysis {
    /// First taint step recorded per membership-tainted predicate.
    tainted: FxHashMap<SymbolId, TaintStep>,
    /// `(predicate, column)` pairs that can carry tid-derived values.
    tainted_cols: FxHashSet<(SymbolId, usize)>,
}

impl TaintAnalysis {
    /// True when the analysis certifies `pred`'s contents identical under
    /// every ID-function. Predicates the program never defines (EDB inputs)
    /// are trivially certified.
    pub fn deterministic(&self, pred: SymbolId) -> bool {
        !self.tainted.contains_key(&pred)
    }

    /// True when column `col` of `pred` can carry a tid-derived value.
    pub fn col_tainted(&self, pred: SymbolId, col: usize) -> bool {
        self.tainted_cols.contains(&(pred, col))
    }

    /// All membership-tainted predicates, in arbitrary order.
    pub fn tainted_predicates(&self) -> impl Iterator<Item = SymbolId> + '_ {
        self.tainted.keys().copied()
    }

    /// All tainted `(predicate, column)` pairs, in arbitrary order.
    pub fn tainted_columns(&self) -> impl Iterator<Item = (SymbolId, usize)> + '_ {
        self.tainted_cols.iter().copied()
    }

    /// The witness path from `pred` down to a choice-introducing literal:
    /// a sequence of [`TaintStep::Via`] hops ending in a
    /// [`TaintStep::Choice`]. Empty when `pred` is certified.
    pub fn witness(&self, pred: SymbolId) -> Vec<TaintStep> {
        let mut path = Vec::new();
        let mut at = pred;
        while let Some(&step) = self.tainted.get(&at) {
            path.push(step);
            match step {
                TaintStep::Choice { .. } => break,
                // First-taint order makes the chain acyclic, but guard
                // against pathological growth anyway.
                TaintStep::Via { from, .. } if path.len() <= 1024 => at = from,
                TaintStep::Via { .. } => break,
            }
        }
        path
    }

    /// The variables of `clause` that can carry tid-derived values, given
    /// the column taint computed so far. Exposed for per-clause reporting
    /// (the W011 lint); sound only on the fixpoint result.
    pub fn value_tainted_vars<'c>(&self, clause: &'c Clause) -> FxHashSet<&'c str> {
        value_tainted_vars(clause, &self.tainted_cols)
    }
}

/// Run the ID-taint fixpoint over `program`. Works on the surface AST so
/// the analyzer can run it on programs that fail later validation stages.
pub fn analyze_taint(program: &Program) -> TaintAnalysis {
    let mut t = TaintAnalysis::default();
    loop {
        let mut changed = false;
        for (ci, clause) in program.clauses.iter().enumerate() {
            let step = clause_taint_step(clause, ci, &t);
            let vars = value_tainted_vars(clause, &t.tainted_cols);
            for h in &clause.head {
                let head = h.atom.pred.base();
                if let Some(step) = step {
                    if let std::collections::hash_map::Entry::Vacant(e) = t.tainted.entry(head) {
                        e.insert(step);
                        changed = true;
                    }
                }
                for (pos, term) in h.atom.terms.iter().enumerate() {
                    if let Term::Var(v) = term {
                        if vars.contains(v.as_str()) {
                            changed |= t.tainted_cols.insert((head, pos));
                        }
                    }
                }
            }
        }
        if !changed {
            return t;
        }
    }
}

/// Why `clause` membership-taints its head(s), if it does: the first body
/// literal that reads a tainted predicate or introduces a choice.
fn clause_taint_step(clause: &Clause, ci: usize, t: &TaintAnalysis) -> Option<TaintStep> {
    for (li, lit) in clause.body.iter().enumerate() {
        match lit {
            Literal::Pos(a) | Literal::Neg(a) => {
                let base = a.pred.base();
                if !t.deterministic(base) {
                    return Some(TaintStep::Via {
                        clause: ci,
                        literal: li,
                        from: base,
                    });
                }
                if a.pred.is_id_version() && !choice_free_occurrence(clause, li) {
                    return Some(TaintStep::Choice {
                        clause: ci,
                        literal: li,
                    });
                }
            }
            // `choice((X̄),(Ȳ))` picks one Ȳ per X̄; `!` commits to the
            // first solution of a search order: both inherently
            // non-deterministic.
            Literal::Choice { .. } | Literal::Cut => {
                return Some(TaintStep::Choice {
                    clause: ci,
                    literal: li,
                });
            }
            Literal::Builtin { .. } => {}
        }
    }
    None
}

/// True when the ID-literal occurrence at `clause.body[li]` is
/// *choice-free*: the set of clause instantiations it admits is the same
/// under every ID-function, so it introduces no non-determinism of its own.
///
/// Sound cases (anything else returns `false`):
///
/// * **Full grouping** (`grouping.len() == base arity`): every group is a
///   singleton, so every ID-function assigns the same tids — deterministic
///   for positive *and* negated occurrences (the W004 degenerate case).
/// * **Positive occurrence testing only group membership**: every
///   non-grouping base position is a variable occurring exactly once in
///   the whole clause (a pure existential — which group member carries
///   which tid cannot be observed), *and* the tid term is a constant or a
///   variable constrained only by comparisons against constants. The tids
///   of a k-member group are always exactly `{0, …, k−1}`, so
///   `∃t ∈ {0..k−1}: C(t)` depends only on the group size, never on the
///   ID-function. Note this is strictly stronger than H001 tid-boundedness:
///   `pick(N) :- emp[2](N, D, 0)` is tid-bounded but non-deterministic,
///   because N escapes to the head.
/// * **Negated occurrences** are choice-free only under full grouping:
///   range restriction forces their variables to be bound elsewhere, so
///   they always observe the member↔tid assignment.
pub fn choice_free_occurrence(clause: &Clause, li: usize) -> bool {
    let Some(atom) = clause.body[li].atom() else {
        return false;
    };
    let PredicateRef::IdVersion { grouping, .. } = &atom.pred else {
        return false;
    };
    if atom.terms.is_empty() {
        return false;
    }
    let tid_pos = atom.terms.len() - 1;
    if grouping.len() == atom.base_arity() {
        return true;
    }
    if matches!(clause.body[li], Literal::Neg(_)) {
        return false;
    }
    let counts = variable_counts(clause);
    for (pos, term) in atom.terms[..tid_pos].iter().enumerate() {
        if grouping.contains(&pos) {
            continue;
        }
        match term {
            Term::Var(v) if counts.get(v.as_str()) == Some(&1) => {}
            _ => return false,
        }
    }
    match &atom.terms[tid_pos] {
        // A symbolic constant never matches the integer-sorted tid column:
        // the occurrence admits no instantiation under any ID-function.
        Term::Int(_) | Term::Sym(_) => true,
        Term::Var(v) => tid_var_is_local(clause, li, v),
    }
}

/// True when tid variable `v` of the ID-literal at `clause.body[li]` is
/// constrained only by that literal and by builtins over constants, so the
/// set of tids satisfying the constraints is a function of the group size
/// alone.
fn tid_var_is_local(clause: &Clause, li: usize, v: &str) -> bool {
    let occurs = |t: &Term| matches!(t, Term::Var(name) if name == v);
    if clause.head.iter().any(|h| h.atom.terms.iter().any(occurs)) {
        return false;
    }
    for (i, lit) in clause.body.iter().enumerate() {
        match lit {
            _ if i == li => {
                // Within the ID-literal itself `v` must fill only the tid
                // position; reuse at a base position couples the tid with
                // the member↔tid assignment.
                let atom = lit.atom().expect("li indexes an ID-literal");
                let tid_pos = atom.terms.len() - 1;
                if atom.terms[..tid_pos].iter().any(occurs) {
                    return false;
                }
            }
            Literal::Builtin { args, .. } => {
                // A builtin mentioning `v` keeps it local only when every
                // other argument is a constant (the constraint is then a
                // fixed predicate on the tid value).
                if args.iter().any(occurs)
                    && args.iter().any(|t| !occurs(t) && matches!(t, Term::Var(_)))
                {
                    return false;
                }
            }
            _ => {
                if lit.variables().contains(&v) {
                    return false;
                }
            }
        }
    }
    true
}

/// Occurrence count of every variable across the whole clause (heads,
/// atoms, builtins, choice literals), counting repeats.
fn variable_counts(clause: &Clause) -> FxHashMap<&str, usize> {
    let mut terms: Vec<&Term> = Vec::new();
    for h in &clause.head {
        terms.extend(&h.atom.terms);
    }
    for lit in &clause.body {
        match lit {
            Literal::Pos(a) | Literal::Neg(a) => terms.extend(&a.terms),
            Literal::Builtin { args, .. } => terms.extend(args),
            Literal::Choice { grouped, chosen } => {
                terms.extend(grouped);
                terms.extend(chosen);
            }
            Literal::Cut => {}
        }
    }
    let mut counts: FxHashMap<&str, usize> = FxHashMap::default();
    for t in terms {
        if let Term::Var(v) = t {
            *counts.entry(v.as_str()).or_insert(0) += 1;
        }
    }
    counts
}

/// The clause's variables that can carry tid-derived values: tid-position
/// and non-grouping variables of non-choice-free positive ID-literals, plus
/// variables bound from tainted columns, closed under `=` builtins.
fn value_tainted_vars<'c>(
    clause: &'c Clause,
    tainted_cols: &FxHashSet<(SymbolId, usize)>,
) -> FxHashSet<&'c str> {
    let mut tainted: FxHashSet<&'c str> = FxHashSet::default();
    for (li, lit) in clause.body.iter().enumerate() {
        let Literal::Pos(a) = lit else { continue };
        match &a.pred {
            PredicateRef::IdVersion { grouping, .. } => {
                if a.terms.is_empty() || choice_free_occurrence(clause, li) {
                    continue;
                }
                let tid_pos = a.terms.len() - 1;
                for (pos, term) in a.terms.iter().enumerate() {
                    if let Term::Var(v) = term {
                        // Grouping positions range over the (deterministic)
                        // projection of the base relation; every other
                        // position pairs with the ID-function's choices.
                        if pos == tid_pos || !grouping.contains(&pos) {
                            tainted.insert(v.as_str());
                        }
                        // Base columns of the ID-relation inherit the base
                        // predicate's column taint below.
                        if pos < tid_pos && tainted_cols.contains(&(a.pred.base(), pos)) {
                            tainted.insert(v.as_str());
                        }
                    }
                }
            }
            PredicateRef::Ordinary(p) => {
                for (pos, term) in a.terms.iter().enumerate() {
                    if let Term::Var(v) = term {
                        if tainted_cols.contains(&(*p, pos)) {
                            tainted.insert(v.as_str());
                        }
                    }
                }
            }
        }
    }
    // Close under value-producing builtins: `X = Y` and the arithmetic
    // relations spread taint among their arguments. Pure comparisons
    // (`<`, …) constrain but do not carry values; membership taint already
    // accounts for their effect on derivability.
    loop {
        let mut changed = false;
        for lit in &clause.body {
            if let Literal::Builtin { op, args } = lit {
                if !op.is_comparison() || matches!(op, Builtin::Eq) {
                    let any = args
                        .iter()
                        .any(|t| matches!(t, Term::Var(v) if tainted.contains(v.as_str())));
                    if any {
                        for t in args {
                            if let Term::Var(v) = t {
                                changed |= tainted.insert(v.as_str());
                            }
                        }
                    }
                }
            }
        }
        if !changed {
            return tainted;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use idlog_common::Interner;
    use idlog_parser::parse_program;

    fn taints(src: &str) -> (TaintAnalysis, Arc<Interner>) {
        let interner = Arc::new(Interner::new());
        let program = parse_program(src, &interner).expect("test program parses");
        (analyze_taint(&program), interner)
    }

    fn det(src: &str, pred: &str) -> bool {
        let (t, interner) = taints(src);
        t.deterministic(interner.intern(pred))
    }

    #[test]
    fn pure_existential_group_scan_is_certified() {
        assert!(det("all_depts(D) :- emp[2](N, D, 0).", "all_depts"));
        // Any constant tid works, as does a tid variable compared against
        // constants (group-size tests).
        assert!(det("has_two(D) :- emp[2](N, D, T), T = 1.", "has_two"));
        assert!(det("big(D) :- emp[2](N, D, T), T > 2.", "big"));
        // A symbolic tid never matches: vacuously deterministic.
        assert!(det("none(D) :- emp[2](N, D, a).", "none"));
    }

    #[test]
    fn escaping_member_variable_taints() {
        // The chosen member reaches the head …
        assert!(!det("pick(N) :- emp[2](N, D, 0).", "pick"));
        // … or is constrained by another literal.
        assert!(!det("q(D) :- emp[2](N, D, 0), male(N).", "q"));
        // A constant at a non-grouping position observes the assignment.
        assert!(!det("q(D) :- emp[2](ann, D, 0).", "q"));
        // The member variable repeated inside the atom observes it too.
        assert!(!det("q(D) :- emp[2](N, N, 0).", "q"));
    }

    #[test]
    fn escaping_tid_variable_taints() {
        assert!(!det("pick(N, T) :- emp[](N, D, T).", "pick"));
        // Tid compared against another variable leaks through the builtin.
        assert!(!det("q(D) :- emp[2](N, D, T), size(M), T < M.", "q"));
        // Tid reused at a base position of the same atom.
        assert!(!det("q(D) :- emp[2](N, D, D).", "q"));
    }

    #[test]
    fn full_grouping_is_certified_both_polarities() {
        assert!(det("p(N, D) :- emp[1,2](N, D, 0).", "p"));
        assert!(det("p(N, D) :- emp(N, D), not emp[1,2](N, D, 1).", "p"));
        // Partial grouping under negation observes the assignment.
        assert!(!det(
            "rest(N, D) :- emp(N, D), not emp[2](N, D, 0).",
            "rest"
        ));
    }

    #[test]
    fn taint_propagates_transitively() {
        let src = "
            picked(N) :- emp[2](N, D, 0).
            via(X) :- picked(X).
            clean(D) :- emp[2](N, D, 0).
            downstream(X) :- clean(X).
        ";
        let (t, interner) = taints(src);
        assert!(!t.deterministic(interner.intern("picked")));
        assert!(!t.deterministic(interner.intern("via")));
        assert!(t.deterministic(interner.intern("clean")));
        assert!(t.deterministic(interner.intern("downstream")));
    }

    #[test]
    fn id_literal_over_tainted_base_taints() {
        // h's ID-occurrence is choice-free in shape, but its base g is
        // itself tainted.
        let src = "
            g(N, D) :- emp[2](N, D, 0), dept(D).
            h(D) :- g[2](M, D, 0).
        ";
        let (t, interner) = taints(src);
        assert!(!t.deterministic(interner.intern("g")));
        assert!(!t.deterministic(interner.intern("h")));
        match t.witness(interner.intern("h")).as_slice() {
            [TaintStep::Via { from, .. }, TaintStep::Choice { clause: 0, .. }] => {
                assert_eq!(*from, interner.intern("g"));
            }
            other => panic!("unexpected witness {other:?}"),
        }
    }

    #[test]
    fn choice_and_cut_taint() {
        assert!(!det("s(N) :- emp(N, D), choice((D), (N)).", "s"));
        assert!(!det("first(X) :- cand(X), !.", "first"));
    }

    #[test]
    fn column_taint_tracks_tid_values() {
        let src = "
            numbered(X, T) :- person[](X, T).
            copy(T) :- numbered(X, T).
            names(X) :- numbered(X, T).
        ";
        let (t, interner) = taints(src);
        let numbered = interner.intern("numbered");
        // Column 1 carries the tid; column 0 carries the (non-determinately
        // paired) member.
        assert!(t.col_tainted(numbered, 1));
        assert!(t.col_tainted(numbered, 0));
        assert!(t.col_tainted(interner.intern("copy"), 0));
        // Membership taint still gates everything downstream.
        assert!(!t.deterministic(interner.intern("names")));
    }

    #[test]
    fn certified_program_has_empty_witness() {
        let (t, interner) = taints("all_depts(D) :- emp[2](N, D, 0).");
        assert!(t.witness(interner.intern("all_depts")).is_empty());
        assert_eq!(t.tainted_predicates().count(), 0);
    }

    #[test]
    fn equality_spreads_value_taint() {
        let src = "
            leak(Y) :- person[](X, T), T = Y2, Y = Y2.
        ";
        let (t, interner) = taints(src);
        assert!(!t.deterministic(interner.intern("leak")));
        assert!(t.col_tainted(interner.intern("leak"), 0));
    }
}
