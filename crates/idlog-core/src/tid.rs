//! Tid oracles: where the non-determinism comes from.
//!
//! An IDLOG interpretation assigns to each ID-predicate `p[s]` an ID-relation
//! of `pᴵ` on `s`. Operationally, once the engine has fully computed `p`, it
//! asks a [`TidOracle`] for an [`IdAssignment`] — one permutation per
//! sub-relation. Different oracles give different perfect models:
//!
//! * [`CanonicalOracle`] — deterministic: tids follow the canonical
//!   (name-based) tuple order. Reproducible across runs and interners.
//! * [`SeededOracle`] — pseudo-random permutations, reproducible from a seed;
//!   distinct predicates draw from independent streams so adding a predicate
//!   does not perturb the others.
//! * [`ExplicitOracle`] — test fixture: explicit permutations per predicate,
//!   falling back to canonical.

use std::hash::{Hash, Hasher};

use rand::rngs::SmallRng;
use rand::SeedableRng;

use idlog_common::{FxHashMap, FxHasher, Interner, SymbolId};
use idlog_storage::{group_by, IdAssignment, Relation};

/// Chooses ID-functions for materializing ID-relations.
pub trait TidOracle {
    /// Produce the assignment for `pred`'s relation `rel` grouped by
    /// `grouping` (0-based, ascending).
    fn assign(
        &mut self,
        pred: SymbolId,
        grouping: &[usize],
        rel: &Relation,
        interner: &Interner,
    ) -> IdAssignment;
}

/// Deterministic oracle: canonical tid order.
#[derive(Debug, Clone, Copy, Default)]
pub struct CanonicalOracle;

impl TidOracle for CanonicalOracle {
    fn assign(
        &mut self,
        _pred: SymbolId,
        grouping: &[usize],
        rel: &Relation,
        interner: &Interner,
    ) -> IdAssignment {
        IdAssignment::canonical(rel, grouping, interner)
    }
}

/// Seeded pseudo-random oracle.
#[derive(Debug, Clone, Copy)]
pub struct SeededOracle {
    seed: u64,
}

impl SeededOracle {
    /// Build from a master seed.
    pub fn new(seed: u64) -> Self {
        SeededOracle { seed }
    }
}

impl TidOracle for SeededOracle {
    fn assign(
        &mut self,
        pred: SymbolId,
        grouping: &[usize],
        rel: &Relation,
        interner: &Interner,
    ) -> IdAssignment {
        // Derive an independent stream per (pred name, grouping) so the
        // permutation of one predicate does not depend on evaluation order.
        // Hash the *name*, not the raw id, for interning-order independence.
        let mut h = FxHasher::default();
        interner.with_resolved(pred, |name| name.hash(&mut h));
        grouping.hash(&mut h);
        self.seed.hash(&mut h);
        let mut rng = SmallRng::seed_from_u64(h.finish());
        IdAssignment::random(rel, grouping, interner, &mut rng)
    }
}

/// Test oracle with explicit per-predicate permutations.
///
/// Permutations are keyed by `(predicate name, grouping)`; `perms[g][k]` is
/// the tid of the `k`-th canonical member of the `g`-th canonical group.
/// Predicates without an entry fall back to the canonical assignment.
#[derive(Debug, Clone, Default)]
pub struct ExplicitOracle {
    perms: FxHashMap<(String, Vec<usize>), Vec<Vec<i64>>>,
}

impl ExplicitOracle {
    /// Empty oracle (pure canonical fallback).
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the permutations for one ID-predicate.
    pub fn set(&mut self, pred: &str, grouping: Vec<usize>, perms: Vec<Vec<i64>>) -> &mut Self {
        self.perms.insert((pred.to_string(), grouping), perms);
        self
    }
}

impl TidOracle for ExplicitOracle {
    fn assign(
        &mut self,
        pred: SymbolId,
        grouping: &[usize],
        rel: &Relation,
        interner: &Interner,
    ) -> IdAssignment {
        let key = (interner.resolve(pred), grouping.to_vec());
        match self.perms.get(&key) {
            Some(perms) => {
                let g = group_by(rel, grouping, interner);
                IdAssignment::from_permutations(&g, perms)
            }
            None => IdAssignment::canonical(rel, grouping, interner),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idlog_common::{Tuple, Value};

    fn rel(i: &Interner, pairs: &[(&str, &str)]) -> Relation {
        let mut r = Relation::elementary(2);
        for (x, y) in pairs {
            r.insert(vec![Value::Sym(i.intern(x)), Value::Sym(i.intern(y))].into())
                .unwrap();
        }
        r
    }

    fn t(i: &Interner, x: &str, y: &str) -> Tuple {
        vec![Value::Sym(i.intern(x)), Value::Sym(i.intern(y))].into()
    }

    #[test]
    fn canonical_oracle_is_deterministic() {
        let i = Interner::new();
        let r = rel(&i, &[("a", "c"), ("a", "d"), ("b", "c")]);
        let p = i.intern("r");
        let a1 = CanonicalOracle.assign(p, &[0], &r, &i);
        let a2 = CanonicalOracle.assign(p, &[0], &r, &i);
        assert_eq!(a1, a2);
        assert_eq!(a1.tid(&t(&i, "a", "c")), Some(0));
    }

    #[test]
    fn seeded_oracle_reproducible_and_seed_sensitive() {
        let i = Interner::new();
        // A bigger group so permutations actually vary.
        let pairs: Vec<(String, String)> =
            (0..6).map(|k| ("g".to_string(), format!("v{k}"))).collect();
        let pairs_ref: Vec<(&str, &str)> = pairs
            .iter()
            .map(|(a, b)| (a.as_str(), b.as_str()))
            .collect();
        let r = rel(&i, &pairs_ref);
        let p = i.intern("r");
        let a1 = SeededOracle::new(42).assign(p, &[0], &r, &i);
        let a2 = SeededOracle::new(42).assign(p, &[0], &r, &i);
        assert_eq!(a1, a2);
        let differing = (0..64)
            .filter(|&s| SeededOracle::new(s).assign(p, &[0], &r, &i) != a1)
            .count();
        assert!(differing > 0, "some seed must give a different permutation");
    }

    #[test]
    fn explicit_oracle_uses_perms_and_falls_back() {
        let i = Interner::new();
        let r = rel(&i, &[("a", "c"), ("a", "d"), ("b", "c")]);
        let p = i.intern("emp");
        let mut o = ExplicitOracle::new();
        o.set("emp", vec![0], vec![vec![1, 0], vec![0]]);
        let a = o.assign(p, &[0], &r, &i);
        assert_eq!(a.tid(&t(&i, "a", "c")), Some(1));
        assert_eq!(a.tid(&t(&i, "a", "d")), Some(0));
        // Unknown predicate: canonical.
        let q = i.intern("other");
        let a = o.assign(q, &[0], &r, &i);
        assert_eq!(a.tid(&t(&i, "a", "c")), Some(0));
    }
}
