//! Semi-naive bottom-up execution of rule plans.
//!
//! [`EvalState`] stores one [`Relation`] per [`PredKey`] (ordinary predicates
//! and materialized ID-relations). Each relation carries its own pluggable
//! storage backend ([`idlog_storage::Storage`]): the engine talks to it only
//! through scan / indexed probe / `delta_batch_insert`, so hash and columnar
//! relations evaluate through identical code. A stratum is evaluated by
//! running every rule once in full, then iterating delta variants — each
//! positive same-stratum atom step replayed against the newly derived tuples
//! — until no new facts appear.
//!
//! Rounds execute shared-nothing parallel: the work list (one item per rule
//! in round 0; one item per (plan, delta step, delta shard) afterwards) is
//! built in a deterministic order, fanned out over a [`std::thread::scope`]
//! pool against the read-only state (indexes are readied *before* the round
//! via [`Relation::ensure_index`], so a round is pure reads), and each
//! worker's local `out` sink and local [`EvalStats`] are merged at the round
//! barrier **in work-item order**. Delta shards are a function of the delta
//! size only — never of the thread count — so answer relations and
//! statistics are identical for any `threads` value. And because every
//! engine counter is a function of relation *contents* (never of scan
//! order), they are identical across backends too.

use idlog_common::{FxHashMap, FxHashSet, SymbolId, Tuple, Value};
use idlog_parser::Builtin;
use idlog_storage::Relation;

use crate::builtins;
use crate::error::{CoreError, CoreResult};
use crate::govern::{panic_message, Governor};
use crate::plan::{AtomStep, RulePlan, Step, TermPat};
use crate::pred::PredKey;
use crate::profile::{ItemRec, RoundProfile, StratumProfile};
use crate::stats::EvalStats;

/// All relations (EDB, IDB, and materialized ID-relations) during one
/// evaluation.
///
/// Indexes live *inside* each relation's storage backend and are maintained
/// incrementally on insert — there is no per-state index cache to rebuild
/// (the former `Index::build`-per-round churn), and cloning the state (once
/// per enumeration branch) carries the indexes along, so branches never
/// rebuild them either.
#[derive(Debug, Default, Clone)]
pub struct EvalState {
    rels: FxHashMap<PredKey, Relation>,
}

impl EvalState {
    /// Empty state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Install (or replace) a relation.
    pub fn put(&mut self, key: PredKey, rel: Relation) {
        self.rels.insert(key, rel);
    }

    /// Read a relation.
    pub fn get(&self, key: &PredKey) -> Option<&Relation> {
        self.rels.get(key)
    }

    /// True when the key has been installed (even if empty).
    pub fn has(&self, key: &PredKey) -> bool {
        self.rels.contains_key(key)
    }

    /// Mutable access to a relation (incremental maintenance applies
    /// inserts and removals in place).
    pub(crate) fn get_mut(&mut self, key: &PredKey) -> Option<&mut Relation> {
        self.rels.get_mut(key)
    }

    /// Ready every index the given plans will probe: each probing atom step
    /// gets [`Relation::ensure_index`] on its bound positions. A no-op once
    /// the index exists — backends maintain indexes incrementally from then
    /// on.
    fn ensure_indexes(&mut self, plans: &[&RulePlan]) {
        for plan in plans {
            for step in &plan.steps {
                if let Step::Atom(a) = step {
                    if a.probe.is_empty() {
                        continue;
                    }
                    let positions: Vec<usize> = a.probe.iter().map(|&(p, _)| p).collect();
                    if let Some(rel) = self.rels.get_mut(&a.key) {
                        rel.ensure_index(&positions);
                    }
                }
            }
        }
    }

    /// Ready every index the given plans probe (public entry point for
    /// read-only consumers like the model checker; evaluation calls the
    /// internal version per iteration).
    pub fn rebuild_indexes_for(&mut self, plans: &[&RulePlan]) {
        self.ensure_indexes(plans);
    }

    /// Rough, deterministic estimate of the bytes held by every stored
    /// relation (indexes are derived data and excluded). A pure function of
    /// relation sizes and types, so the governor's `max_bytes` ceiling
    /// trips at the same round at any thread count, on any backend.
    pub fn estimated_bytes(&self) -> u64 {
        self.rels.values().map(Relation::estimated_bytes).sum()
    }
}

/// One unit of round work: a rule plan, optionally restricted to replaying
/// one atom step against a shard of the round's delta.
struct WorkItem<'a> {
    plan: &'a RulePlan,
    delta: Option<(usize, &'a [Tuple])>,
}

impl WorkItem<'_> {
    /// The profile record for this item's execution.
    fn record(&self, out_len: usize, stats: EvalStats, wall_nanos: u64) -> ItemRec {
        ItemRec {
            clause: self.plan.clause_idx,
            delta_step: self.delta.map(|(si, _)| si),
            delta_tuples: self.delta.map_or(0, |(_, d)| d.len() as u64),
            out_len,
            stats,
            wall_nanos,
        }
    }
}

/// Upper bound on shards per (plan, step, predicate) delta. A small constant:
/// enough slack for an 8-way host, while keeping the per-round item count —
/// and therefore the merge cost — bounded.
const MAX_DELTA_SHARDS: usize = 8;

/// A delta is not split below this many tuples per shard; sharding a tiny
/// delta only buys scheduling overhead.
const SHARD_MIN_TUPLES: usize = 64;

/// Estimated round work (in delta tuples) below which the round runs on the
/// calling thread. Thread-count-independent, so it only affects scheduling,
/// never results.
const PARALLEL_MIN_WORK: usize = 256;

/// Number of shards for a delta of `n` tuples.
///
/// Deliberately a function of `n` **only**: when the delta step is not the
/// plan's first step, the steps before it re-run once per shard, so
/// `EvalStats.probes` depends on the shard count. Deriving it from the
/// thread count would make statistics vary across `--threads` values.
fn shard_count(n: usize) -> usize {
    (n / SHARD_MIN_TUPLES).clamp(1, MAX_DELTA_SHARDS)
}

/// Run one work item with panic containment: a panic inside rule execution
/// (a buggy builtin, a storage fault, an injected failpoint) surfaces as
/// [`CoreError::Internal`] carrying the rule's clause index instead of
/// unwinding across the scoped-thread boundary and aborting the process.
/// Unwind safety: on any error the caller discards `out`, `stats`, and the
/// whole round, so partially mutated locals are never observed.
fn run_item(
    state: &EvalState,
    item: &WorkItem<'_>,
    out: &mut Vec<(SymbolId, Tuple)>,
    stats: &mut EvalStats,
) -> CoreResult<()> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        // The failpoint sits inside the contained region so an injected
        // `panic`/`oom` action exercises the same unwind path a real rule
        // fault would.
        #[cfg(feature = "failpoints")]
        idlog_common::failpoint::hit("eval.worker").map_err(|message| CoreError::Internal {
            clause: Some(item.plan.clause_idx),
            message,
        })?;
        run_rule(state, item.plan, item.delta, out, stats)
    }))
    .unwrap_or_else(|payload| {
        Err(CoreError::Internal {
            clause: Some(item.plan.clause_idx),
            message: format!("rule evaluation panicked: {}", panic_message(payload)),
        })
    })
}

/// Execute one round's work items, serially or over a scoped thread pool,
/// returning the concatenated derivations **in work-item order**. The merged
/// `out` and the statistics are identical for every `threads` value.
///
/// The governor is polled between work items on every path, so a deadline
/// or cancellation stops all workers promptly; the caller discards the
/// round on any error, keeping the surviving state barrier-consistent.
/// Failures (governor trips, rule errors, contained panics) surface as the
/// first failing item in work-item order — the same error the serial path
/// reports, except for the inherently timing-dependent deadline/cancel
/// trips.
///
/// When `recs` is provided, one [`ItemRec`] per work item is appended — in
/// work-item order, so profiles inherit the determinism of the merge. The
/// `recs: None` path is exactly the unprofiled code.
fn run_round(
    state: &EvalState,
    items: &[WorkItem<'_>],
    threads: usize,
    governor: &Governor,
    stats: &mut EvalStats,
    mut recs: Option<&mut Vec<ItemRec>>,
) -> CoreResult<Vec<(SymbolId, Tuple)>> {
    // Estimate the round's work to skip thread spawn for tiny rounds. Full
    // (round 0) items count as heavy; the estimate uses no thread-dependent
    // input, so the serial/parallel decision is the same for a given round
    // regardless of `threads` — and either path computes the same result.
    let est: usize = items
        .iter()
        .map(|it| it.delta.map_or(PARALLEL_MIN_WORK, |(_, d)| d.len()))
        .sum();
    if threads <= 1 || items.len() <= 1 || est < PARALLEL_MIN_WORK {
        if let Some(recs) = recs {
            // Profiled serial path: per-item local stats so counters can be
            // attributed, merged into `stats` exactly as the parallel path
            // does.
            let mut out: Vec<(SymbolId, Tuple)> = Vec::new();
            for item in items {
                governor.poll()?;
                let before = out.len();
                let started = std::time::Instant::now();
                let mut local = EvalStats::default();
                run_item(state, item, &mut out, &mut local)?;
                let nanos = started.elapsed().as_nanos() as u64;
                recs.push(item.record(out.len() - before, local, nanos));
                *stats += local;
            }
            return Ok(out);
        }
        let mut out: Vec<(SymbolId, Tuple)> = Vec::new();
        for item in items {
            governor.poll()?;
            run_item(state, item, &mut out, stats)?;
        }
        return Ok(out);
    }

    type Slot = Option<CoreResult<(Vec<(SymbolId, Tuple)>, EvalStats, u64)>>;
    let profiling = recs.is_some();
    let mut slots: Vec<Slot> = items.iter().map(|_| None).collect();
    let chunk = items.len().div_ceil(threads.min(items.len()));
    std::thread::scope(|scope| {
        for (item_chunk, slot_chunk) in items.chunks(chunk).zip(slots.chunks_mut(chunk)) {
            scope.spawn(move || {
                for (item, slot) in item_chunk.iter().zip(slot_chunk.iter_mut()) {
                    let started = profiling.then(std::time::Instant::now);
                    let mut out: Vec<(SymbolId, Tuple)> = Vec::new();
                    let mut local = EvalStats::default();
                    let res = governor
                        .poll()
                        .and_then(|()| run_item(state, item, &mut out, &mut local));
                    let nanos = started.map_or(0, |t| t.elapsed().as_nanos() as u64);
                    let failed = res.is_err();
                    *slot = Some(res.map(|()| (out, local, nanos)));
                    if failed {
                        // The round is doomed; don't burn time on the rest
                        // of the chunk. Later slots stay `None`.
                        break;
                    }
                }
            });
        }
    });

    // A worker stops at its first failing item, leaving later slots in its
    // chunk empty — so in work-item order every `None` is preceded by that
    // chunk's `Err`, and the first non-Ok slot overall is the error the
    // serial path would have reported.
    if slots.iter().any(|s| !matches!(s, Some(Ok(_)))) {
        for slot in slots {
            if let Some(Err(e)) = slot {
                return Err(e);
            }
        }
        return Err(CoreError::Internal {
            clause: None,
            message: "round worker left no result and no error".to_string(),
        });
    }
    let mut merged: Vec<(SymbolId, Tuple)> = Vec::new();
    for (item, slot) in items.iter().zip(slots) {
        let Some(Ok((out, local, nanos))) = slot else {
            continue; // unreachable: the all-Ok scan above returned otherwise
        };
        if let Some(recs) = recs.as_deref_mut() {
            recs.push(item.record(out.len(), local, nanos));
        }
        merged.extend(out);
        *stats += local;
    }
    Ok(merged)
}

/// Build the delta round's work list in deterministic (plan, step, shard)
/// order. Only positive ordinary atom steps on same-stratum predicates with
/// a non-empty delta contribute items.
fn delta_work_list<'a>(
    plans: &[&'a RulePlan],
    same_stratum: &FxHashSet<SymbolId>,
    delta: &'a FxHashMap<SymbolId, Vec<Tuple>>,
) -> Vec<WorkItem<'a>> {
    let mut items: Vec<WorkItem<'a>> = Vec::new();
    for plan in plans {
        for (si, step) in plan.steps.iter().enumerate() {
            let Step::Atom(astep) = step else { continue };
            let PredKey::Ordinary(pred) = &astep.key else {
                continue;
            };
            if !same_stratum.contains(pred) {
                continue;
            }
            let Some(d) = delta.get(pred) else { continue };
            if d.is_empty() {
                continue;
            }
            let per_shard = d.len().div_ceil(shard_count(d.len()));
            for shard in d.chunks(per_shard) {
                items.push(WorkItem {
                    plan,
                    delta: Some((si, shard)),
                });
            }
        }
    }
    items
}

/// Evaluate one stratum to fixpoint **naively**: every round re-runs every
/// rule in full until nothing new is derived. Exists as the ablation
/// baseline for the semi-naive strategy ([`eval_stratum`]); results are
/// identical, the work is not.
pub fn eval_stratum_naive(
    state: &mut EvalState,
    plans: &[&RulePlan],
    stats: &mut EvalStats,
    threads: usize,
    governor: &Governor,
    mut prof: Option<&mut StratumProfile>,
) -> CoreResult<()> {
    let mut round = 0usize;
    loop {
        state.ensure_indexes(plans);
        let items: Vec<WorkItem> = plans
            .iter()
            .map(|p| WorkItem {
                plan: p,
                delta: None,
            })
            .collect();
        let mut recs = prof.as_ref().map(|_| Vec::new());
        let out = run_round(state, &items, threads, governor, stats, recs.as_mut())?;
        let delta = absorb_contained(state, out, stats, recs.as_mut())?;
        if let (Some(p), Some(recs)) = (prof.as_deref_mut(), recs) {
            p.rounds.push(RoundProfile::from_items(round, recs));
        }
        stats.iterations += 1;
        round += 1;
        if delta.is_empty() {
            return Ok(());
        }
        // Another round is coming: a deterministic barrier, where merged
        // state and stats are thread-count independent — the only place
        // the rounds/tuples/bytes ceilings are allowed to trip.
        governor.check_barrier(stats, || state.estimated_bytes())?;
    }
}

/// Evaluate one stratum to fixpoint.
///
/// `plans` are the rules whose head is in this stratum; `same_stratum` is the
/// set of head predicates of the stratum (used to pick delta steps). Head
/// relations must already be installed in `state`. `threads` bounds the
/// round's worker pool; results and statistics do not depend on it.
pub fn eval_stratum(
    state: &mut EvalState,
    plans: &[&RulePlan],
    same_stratum: &FxHashSet<SymbolId>,
    stats: &mut EvalStats,
    threads: usize,
    governor: &Governor,
    mut prof: Option<&mut StratumProfile>,
) -> CoreResult<()> {
    // Round 0: full evaluation of every rule.
    state.ensure_indexes(plans);
    let full: Vec<WorkItem> = plans
        .iter()
        .map(|p| WorkItem {
            plan: p,
            delta: None,
        })
        .collect();
    let mut recs = prof.as_ref().map(|_| Vec::new());
    let out = run_round(state, &full, threads, governor, stats, recs.as_mut())?;
    let mut delta = absorb_contained(state, out, stats, recs.as_mut())?;
    if let (Some(p), Some(recs)) = (prof.as_deref_mut(), recs) {
        p.rounds.push(RoundProfile::from_items(0, recs));
    }
    stats.iterations += 1;

    // Delta rounds.
    let mut round = 1usize;
    while !delta.is_empty() {
        // Deterministic barrier: merged state and stats are identical at
        // any thread count here, so *whether* and *which* ceiling trips —
        // and the partial output it leaves behind — are too. An evaluation
        // that reaches fixpoint never gets here, so completing runs are
        // never reported as tripped.
        governor.check_barrier(stats, || state.estimated_bytes())?;
        state.ensure_indexes(plans);
        let items = delta_work_list(plans, same_stratum, &delta);
        let mut recs = prof.as_ref().map(|_| Vec::new());
        let out = run_round(state, &items, threads, governor, stats, recs.as_mut())?;
        delta = absorb_contained(state, out, stats, recs.as_mut())?;
        if let (Some(p), Some(recs)) = (prof.as_deref_mut(), recs) {
            p.rounds.push(RoundProfile::from_items(round, recs));
        }
        stats.iterations += 1;
        round += 1;
    }
    Ok(())
}

/// Run [`absorb`] with panic containment: a fault in the storage layer
/// (e.g. an injected `storage.insert` failpoint) becomes a clean
/// [`CoreError::Internal`]. On error the evaluation is abandoned wholesale,
/// so the partially absorbed round is never observed as a barrier state.
fn absorb_contained(
    state: &mut EvalState,
    out: Vec<(SymbolId, Tuple)>,
    stats: &mut EvalStats,
    recs: Option<&mut Vec<ItemRec>>,
) -> CoreResult<FxHashMap<SymbolId, Vec<Tuple>>> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        absorb(state, out, stats, recs)
    }))
    .map_err(|payload| CoreError::Internal {
        clause: None,
        message: format!("tuple store panicked: {}", panic_message(payload)),
    })
}

/// Insert derived tuples as **per-predicate batches** through
/// [`Relation::delta_batch_insert`]; return the per-predicate delta of new
/// facts, in derivation order. Duplicates cost one membership check and no
/// allocation; the delta holds the already-owned tuple, so a new fact is
/// cloned exactly once (into the stored relation). Batching is what lets
/// the columnar backend turn a round's derivations into one sorted run.
///
/// With `recs`, `derived`/`inserted` are also attributed to the work item
/// that produced each tuple: `out` is the concatenation of per-item output
/// segments in record order, so a cursor over the records' `out_len`
/// boundaries identifies the owner. Flags are computed per predicate but
/// walked in global derivation order, so the attribution is identical to
/// the former tuple-at-a-time insertion.
fn absorb(
    state: &mut EvalState,
    out: Vec<(SymbolId, Tuple)>,
    stats: &mut EvalStats,
    recs: Option<&mut Vec<ItemRec>>,
) -> FxHashMap<SymbolId, Vec<Tuple>> {
    // Group derivation positions per predicate, in first-seen order.
    let mut pred_slot: FxHashMap<SymbolId, usize> = FxHashMap::default();
    let mut groups: Vec<(SymbolId, Vec<usize>)> = Vec::new();
    for (i, (pred, _)) in out.iter().enumerate() {
        let slot = *pred_slot.entry(*pred).or_insert_with(|| {
            groups.push((*pred, Vec::new()));
            groups.len() - 1
        });
        groups[slot].1.push(i);
    }
    // One batch insert per predicate; flags flow back to global positions.
    let mut flags: Vec<bool> = vec![false; out.len()];
    for (pred, positions) in &groups {
        let batch: Vec<&Tuple> = positions.iter().map(|&i| &out[i].1).collect();
        let rel = state
            .rels
            .get_mut(&PredKey::Ordinary(*pred))
            .expect("IDB relation installed before evaluation");
        let batch_flags = rel.delta_batch_insert(&batch);
        for (&i, f) in positions.iter().zip(batch_flags) {
            flags[i] = f;
        }
    }
    // Walk the derivations in global order: statistics, attribution, delta.
    let mut delta: FxHashMap<SymbolId, Vec<Tuple>> = FxHashMap::default();
    let Some(recs) = recs else {
        for (new, (pred, t)) in flags.into_iter().zip(out) {
            stats.derived += 1;
            if new {
                stats.inserted += 1;
                delta.entry(pred).or_default().push(t);
            }
        }
        return delta;
    };
    let mut ri = 0usize;
    let mut remaining = recs.first().map_or(0, |r| r.out_len);
    for (new, (pred, t)) in flags.into_iter().zip(out) {
        while remaining == 0 {
            ri += 1;
            remaining = recs[ri].out_len;
        }
        stats.derived += 1;
        recs[ri].stats.derived += 1;
        if new {
            stats.inserted += 1;
            recs[ri].stats.inserted += 1;
            delta.entry(pred).or_default().push(t);
        }
        remaining -= 1;
    }
    delta
}

/// Execute one rule, optionally replaying step `delta.0` against the delta
/// tuples `delta.1` (a slice so callers can shard) instead of the stored
/// relation.
pub fn run_rule(
    state: &EvalState,
    plan: &RulePlan,
    delta: Option<(usize, &[Tuple])>,
    out: &mut Vec<(SymbolId, Tuple)>,
    stats: &mut EvalStats,
) -> CoreResult<()> {
    let mut bindings: Vec<Option<Value>> = vec![None; plan.n_vars];
    exec(state, plan, 0, delta, &mut bindings, out, stats)
}

fn resolve(pat: TermPat, bindings: &[Option<Value>]) -> Value {
    match pat {
        TermPat::Const(c) => c,
        TermPat::Var(v) => bindings[v].expect("variable bound by plan order"),
    }
}

fn exec(
    state: &EvalState,
    plan: &RulePlan,
    si: usize,
    delta: Option<(usize, &[Tuple])>,
    bindings: &mut Vec<Option<Value>>,
    out: &mut Vec<(SymbolId, Tuple)>,
    stats: &mut EvalStats,
) -> CoreResult<()> {
    if si == plan.steps.len() {
        stats.instantiations += 1;
        let head: Tuple = plan.head.iter().map(|&p| resolve(p, bindings)).collect();
        out.push((plan.head_pred, head));
        return Ok(());
    }
    match &plan.steps[si] {
        Step::Atom(astep) => {
            let is_delta_step = delta.is_some_and(|(di, _)| di == si);
            if is_delta_step {
                let (_, dtuples) = delta.expect("delta step implies delta");
                // Scan the (small) delta shard, re-checking probe positions.
                for t in dtuples {
                    stats.probes += 1;
                    try_tuple(state, plan, si, astep, t, true, delta, bindings, out, stats)?;
                }
            } else if astep.probe.is_empty() {
                let Some(rel) = state.get(&astep.key) else {
                    return Ok(());
                };
                for t in rel.iter() {
                    stats.probes += 1;
                    try_tuple(
                        state, plan, si, astep, t, false, delta, bindings, out, stats,
                    )?;
                }
            } else {
                let positions: Vec<usize> = astep.probe.iter().map(|&(p, _)| p).collect();
                let key_tuple: Tuple = astep
                    .probe
                    .iter()
                    .map(|&(_, pat)| resolve(pat, bindings))
                    .collect();
                let Some(rel) = state.get(&astep.key) else {
                    // No relation installed → no matches.
                    return Ok(());
                };
                for t in rel.probe(&positions, &key_tuple).iter() {
                    stats.probes += 1;
                    // Probe positions already match; only bind/check remain.
                    try_tuple(
                        state, plan, si, astep, t, false, delta, bindings, out, stats,
                    )?;
                }
            }
            Ok(())
        }
        Step::Negation { key, terms } => {
            let t: Tuple = terms.iter().map(|&p| resolve(p, bindings)).collect();
            stats.probes += 1;
            let holds = state.get(key).is_some_and(|rel| rel.contains(&t));
            if !holds {
                exec(state, plan, si + 1, delta, bindings, out, stats)?;
            }
            Ok(())
        }
        Step::Builtin { op, args, bound } => {
            stats.builtin_evals += 1;
            exec_builtin(
                state, plan, si, *op, args, bound, delta, bindings, out, stats,
            )
        }
    }
}

/// Match one candidate tuple against an atom step: verify probe positions
/// (needed for delta scans), bind new variables, check repeats, recurse.
#[allow(clippy::too_many_arguments)]
fn try_tuple(
    state: &EvalState,
    plan: &RulePlan,
    si: usize,
    astep: &AtomStep,
    t: &Tuple,
    verify_probe: bool,
    delta: Option<(usize, &[Tuple])>,
    bindings: &mut Vec<Option<Value>>,
    out: &mut Vec<(SymbolId, Tuple)>,
    stats: &mut EvalStats,
) -> CoreResult<()> {
    if verify_probe {
        for &(pos, pat) in &astep.probe {
            if t[pos] != resolve(pat, bindings) {
                return Ok(());
            }
        }
    }
    for &(pos, v) in &astep.bind {
        bindings[v] = Some(t[pos]);
    }
    let checks_ok = astep
        .check
        .iter()
        .all(|&(pos, v)| bindings[v].expect("bound earlier in step") == t[pos]);
    if checks_ok {
        exec(state, plan, si + 1, delta, bindings, out, stats)?;
    }
    for &(_, v) in &astep.bind {
        bindings[v] = None;
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn exec_builtin(
    state: &EvalState,
    plan: &RulePlan,
    si: usize,
    op: Builtin,
    args: &[TermPat],
    bound: &[bool],
    delta: Option<(usize, &[Tuple])>,
    bindings: &mut Vec<Option<Value>>,
    out: &mut Vec<(SymbolId, Tuple)>,
    stats: &mut EvalStats,
) -> CoreResult<()> {
    // `=` and `!=` work on both sorts; handle them on Values directly.
    if matches!(op, Builtin::Eq | Builtin::Ne) {
        let vals: Vec<Option<Value>> = args
            .iter()
            .zip(bound)
            .map(|(&a, &b)| if b { Some(resolve(a, bindings)) } else { None })
            .collect();
        match (vals[0], vals[1]) {
            (Some(a), Some(b)) => {
                if builtins::eq_check(op, a, b) {
                    exec(state, plan, si + 1, delta, bindings, out, stats)?;
                }
            }
            (Some(known), None) | (None, Some(known)) => {
                debug_assert_eq!(op, Builtin::Eq, "Ne requires both sides bound");
                let free = if vals[0].is_none() { args[0] } else { args[1] };
                let TermPat::Var(v) = free else {
                    unreachable!("free side is a variable")
                };
                bindings[v] = Some(known);
                exec(state, plan, si + 1, delta, bindings, out, stats)?;
                bindings[v] = None;
            }
            (None, None) => unreachable!("mode table requires one bound side"),
        }
        return Ok(());
    }

    // Arithmetic: integer-only.
    let mut ints: Vec<Option<i64>> = Vec::with_capacity(args.len());
    for (&a, &b) in args.iter().zip(bound) {
        if b {
            match resolve(a, bindings) {
                Value::Int(n) => ints.push(Some(n)),
                Value::Sym(_) => return Ok(()), // wrong sort: no solutions
            }
        } else {
            ints.push(None);
        }
    }
    for sol in builtins::solve(op, &ints)? {
        // Walk arguments: bind free vars, check everything else.
        let mut newly: Vec<usize> = Vec::new();
        let mut ok = true;
        for (k, &a) in args.iter().enumerate() {
            let want = Value::Int(sol[k]);
            match a {
                TermPat::Const(c) => {
                    if c != want {
                        ok = false;
                        break;
                    }
                }
                TermPat::Var(v) => match bindings[v] {
                    Some(cur) => {
                        if cur != want {
                            ok = false;
                            break;
                        }
                    }
                    None => {
                        bindings[v] = Some(want);
                        newly.push(v);
                    }
                },
            }
        }
        if ok {
            exec(state, plan, si + 1, delta, bindings, out, stats)?;
        }
        for v in newly {
            bindings[v] = None;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use idlog_common::{Interner, Value};

    fn rel(i: &Interner, names: &[&str]) -> Relation {
        let mut r = Relation::elementary(1);
        for n in names {
            r.insert(vec![Value::Sym(i.intern(n))].into()).unwrap();
        }
        r
    }

    #[test]
    fn put_get_has_roundtrip() {
        let i = Interner::new();
        let p = i.intern("p");
        let mut state = EvalState::new();
        assert!(!state.has(&PredKey::Ordinary(p)));
        state.put(PredKey::Ordinary(p), rel(&i, &["a"]));
        assert!(state.has(&PredKey::Ordinary(p)));
        assert_eq!(state.get(&PredKey::Ordinary(p)).unwrap().len(), 1);
        // Replacing bumps the version (observable through index staleness,
        // checked below) and swaps the relation.
        state.put(PredKey::Ordinary(p), rel(&i, &["a", "b"]));
        assert_eq!(state.get(&PredKey::Ordinary(p)).unwrap().len(), 2);
    }

    #[test]
    fn ordinary_and_id_keys_are_distinct() {
        let i = Interner::new();
        let p = i.intern("p");
        let mut state = EvalState::new();
        state.put(PredKey::Ordinary(p), rel(&i, &["a"]));
        assert!(!state.has(&PredKey::Id(p, vec![0])));
        let mut idr = Relation::new(idlog_common::RelType::new(vec![
            idlog_common::Sort::U,
            idlog_common::Sort::I,
        ]));
        idr.insert(vec![Value::Sym(i.intern("a")), Value::Int(0)].into())
            .unwrap();
        state.put(PredKey::Id(p, vec![0]), idr);
        assert!(state.has(&PredKey::Id(p, vec![0])));
        assert_ne!(
            state.get(&PredKey::Ordinary(p)).unwrap().arity(),
            state.get(&PredKey::Id(p, vec![0])).unwrap().arity()
        );
    }

    #[test]
    fn clone_keeps_relations_and_their_indexes() {
        let i = Interner::new();
        let p = i.intern("p");
        let mut state = EvalState::new();
        state.put(PredKey::Ordinary(p), rel(&i, &["a", "b"]));
        // Indexes now live inside each relation's backend and travel with
        // the clone (enumeration branches reuse them instead of rebuilding).
        if let Some(r) = state.rels.get_mut(&PredKey::Ordinary(p)) {
            r.ensure_index(&[0]);
        }
        let cloned = state.clone();
        let cloned_rel = cloned.get(&PredKey::Ordinary(p)).unwrap();
        assert_eq!(cloned_rel.len(), 2);
        let key: Tuple = vec![Value::Sym(i.intern("a"))].into();
        assert_eq!(cloned_rel.probe(&[0], &key).len(), 1);
    }
}
