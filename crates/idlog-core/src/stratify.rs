//! Stratification.
//!
//! The dependency graph has an edge `p → h` for every clause with head
//! predicate `h` and body occurrence of `p`. The edge is *strict* when the
//! occurrence is negated **or** is an ID-literal `p[s]`: an ID-relation can
//! only be materialized after `p` is completely evaluated, exactly like the
//! complement of a negated predicate. A program is stratifiable when no cycle
//! contains a strict edge; [`stratify`] assigns each predicate the smallest
//! stratum compatible with `stratum(h) ≥ stratum(p) + strictness`.

use idlog_common::{FxHashMap, FxHashSet, Interner, SymbolId};
use idlog_parser::{Literal, PredicateRef, Program};

use crate::error::{CoreError, CoreResult};

/// Result of stratification.
#[derive(Debug, Clone)]
pub struct Stratification {
    /// Stratum index per predicate (inputs are stratum 0).
    stratum_of: FxHashMap<SymbolId, usize>,
    /// Number of strata (at least 1).
    count: usize,
}

impl Stratification {
    /// The stratum of `pred` (predicates unknown to the program get 0).
    pub fn stratum(&self, pred: SymbolId) -> usize {
        self.stratum_of.get(&pred).copied().unwrap_or(0)
    }

    /// Number of strata.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Clause indices grouped by the stratum of their head predicate, in
    /// stratum order.
    pub fn clauses_by_stratum(&self, program: &Program) -> Vec<Vec<usize>> {
        let mut out = vec![Vec::new(); self.count];
        for (ci, clause) in program.clauses.iter().enumerate() {
            let head = clause.head[0].atom.pred.base();
            out[self.stratum(head)].push(ci);
        }
        out
    }
}

/// An edge in the predicate dependency graph, with the clause and body
/// literal that induced it (for span-carrying diagnostics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DepEdge {
    /// Body predicate the head depends on.
    pub from: SymbolId,
    /// Head predicate.
    pub to: SymbolId,
    /// Strict: the occurrence is negated or an ID-literal.
    pub strict: bool,
    /// Index of the inducing clause.
    pub clause: usize,
    /// Index of the inducing body literal within that clause.
    pub literal: usize,
}

/// The dependency edges of `program` (one per ordinary/ID/negated body
/// occurrence; clauses with non-atom heads are skipped defensively).
pub fn dependency_edges(program: &Program) -> Vec<DepEdge> {
    let mut out = Vec::new();
    for (ci, clause) in program.clauses.iter().enumerate() {
        let Some(h) = clause.head.first() else {
            continue;
        };
        let head = h.atom.pred.base();
        for (li, lit) in clause.body.iter().enumerate() {
            match lit {
                Literal::Pos(a) => {
                    let strict = matches!(a.pred, PredicateRef::IdVersion { .. });
                    out.push(DepEdge {
                        from: a.pred.base(),
                        to: head,
                        strict,
                        clause: ci,
                        literal: li,
                    });
                }
                Literal::Neg(a) => {
                    out.push(DepEdge {
                        from: a.pred.base(),
                        to: head,
                        strict: true,
                        clause: ci,
                        literal: li,
                    });
                }
                Literal::Builtin { .. } | Literal::Choice { .. } | Literal::Cut => {}
            }
        }
    }
    out
}

/// Stratify `program`, or return the edges of a cycle through a strict
/// edge: `cycle[0]` is the strict edge, and each edge's `to` is the next
/// edge's `from`, closing back at `cycle[0].from`.
pub fn stratify_check(program: &Program) -> Result<Stratification, Vec<DepEdge>> {
    let es = dependency_edges(program);
    let mut preds: FxHashSet<SymbolId> = FxHashSet::default();
    for e in &es {
        preds.insert(e.from);
        preds.insert(e.to);
    }
    for clause in &program.clauses {
        if let Some(h) = clause.head.first() {
            preds.insert(h.atom.pred.base());
        }
    }

    let mut stratum: FxHashMap<SymbolId, usize> = preds.iter().map(|&p| (p, 0)).collect();
    // Longest-path relaxation; more than |preds| full passes that still
    // change something means a positive-weight cycle.
    let n = preds.len().max(1);
    for pass in 0..=n {
        let mut changed = false;
        for e in &es {
            let need = stratum[&e.from] + usize::from(e.strict);
            let cur = stratum[&e.to];
            if cur < need {
                stratum.insert(e.to, need);
                changed = true;
            }
        }
        if !changed {
            let count = stratum.values().copied().max().unwrap_or(0) + 1;
            return Ok(Stratification {
                stratum_of: stratum,
                count,
            });
        }
        if pass == n {
            break;
        }
    }
    Err(find_cycle(&es))
}

/// Stratify `program`, or report a cycle through a strict edge.
pub fn stratify(program: &Program, interner: &Interner) -> CoreResult<Stratification> {
    stratify_check(program).map_err(|cycle| CoreError::Stratification {
        cycle: cycle_names(&cycle, interner),
    })
}

/// The predicates along `cycle` (as produced by [`stratify_check`]),
/// starting and ending at the same predicate: `[p, q, …, p]`.
pub fn cycle_names(cycle: &[DepEdge], interner: &Interner) -> Vec<String> {
    match cycle.first() {
        None => vec!["<unknown>".into()],
        Some(first) => {
            let mut names = vec![interner.resolve(first.from)];
            for e in cycle {
                names.push(interner.resolve(e.to));
            }
            names
        }
    }
}

/// Find some cycle containing a strict edge: the strict edge `u → v`
/// followed by a path `v ⇝ u`.
fn find_cycle(es: &[DepEdge]) -> Vec<DepEdge> {
    let mut adj: FxHashMap<SymbolId, Vec<DepEdge>> = FxHashMap::default();
    for e in es {
        adj.entry(e.from).or_default().push(*e);
    }
    for e in es.iter().filter(|e| e.strict) {
        if e.from == e.to {
            return vec![*e];
        }
        let mut stack = vec![e.to];
        let mut visited: FxHashSet<SymbolId> = FxHashSet::default();
        // The edge that discovered each node during the walk from `e.to`.
        let mut parent: FxHashMap<SymbolId, DepEdge> = FxHashMap::default();
        visited.insert(e.to);
        while let Some(u) = stack.pop() {
            if u == e.from {
                // Walk parent edges back from u to e.to, then prepend e.
                let mut path = Vec::new();
                let mut at = u;
                while at != e.to {
                    let pe = parent[&at];
                    path.push(pe);
                    at = pe.from;
                }
                path.push(*e);
                path.reverse();
                return path;
            }
            for &edge in adj.get(&u).into_iter().flatten() {
                if visited.insert(edge.to) {
                    parent.insert(edge.to, edge);
                    stack.push(edge.to);
                }
            }
        }
    }
    Vec::new()
}

#[cfg(test)]
mod tests {
    use super::*;
    use idlog_parser::parse_program;

    fn strat(src: &str) -> CoreResult<(Stratification, Interner, Program)> {
        let i = Interner::new();
        let p = parse_program(src, &i).unwrap();
        stratify(&p, &i).map(|s| (s, i, p))
    }

    #[test]
    fn positive_recursion_is_one_stratum() {
        let (s, i, _) = strat("tc(X, Y) :- e(X, Y). tc(X, Y) :- e(X, Z), tc(Z, Y).").unwrap();
        assert_eq!(s.count(), 1);
        assert_eq!(s.stratum(i.get("tc").unwrap()), 0);
        assert_eq!(s.stratum(i.get("e").unwrap()), 0);
    }

    #[test]
    fn negation_lifts_stratum() {
        let (s, i, _) = strat("p(X) :- q(X), not r(X). r(X) :- b(X).").unwrap();
        assert_eq!(s.stratum(i.get("r").unwrap()), 0);
        assert_eq!(s.stratum(i.get("p").unwrap()), 1);
        assert_eq!(s.count(), 2);
    }

    #[test]
    fn id_literal_lifts_stratum_like_negation() {
        // Paper Example 2: man reads sex_guess[1], so man is strictly above.
        let (s, i, _) = strat(
            "sex_guess(X, male) :- person(X).
             man(X) :- sex_guess[1](X, male, 1).",
        )
        .unwrap();
        assert_eq!(s.stratum(i.get("sex_guess").unwrap()), 0);
        assert_eq!(s.stratum(i.get("man").unwrap()), 1);
    }

    #[test]
    fn negative_cycle_is_rejected() {
        let err = strat("p(X) :- q(X), not p(X).").unwrap_err();
        match err {
            CoreError::Stratification { cycle } => {
                assert_eq!(cycle.first().map(String::as_str), Some("p"));
                assert_eq!(cycle.last().map(String::as_str), Some("p"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn id_cycle_is_rejected() {
        // p reads its own ID-relation: not stratifiable.
        let err = strat("p(X) :- q(X). p(X) :- p[](X, 0).").unwrap_err();
        assert!(matches!(err, CoreError::Stratification { .. }));
    }

    #[test]
    fn longer_strict_chain_counts_strata() {
        let (s, i, _) = strat(
            "a(X) :- base(X).
             b(X) :- a[](X, 0).
             c(X) :- b(X), not a(X).
             d(X) :- c[](X, 0).",
        )
        .unwrap();
        assert_eq!(s.stratum(i.get("a").unwrap()), 0);
        assert_eq!(s.stratum(i.get("b").unwrap()), 1);
        assert_eq!(
            s.stratum(i.get("c").unwrap()),
            1.max(s.stratum(i.get("b").unwrap()))
        );
        assert_eq!(
            s.stratum(i.get("d").unwrap()),
            s.stratum(i.get("c").unwrap()) + 1
        );
        assert_eq!(s.count(), s.stratum(i.get("d").unwrap()) + 1);
    }

    #[test]
    fn clauses_grouped_by_stratum() {
        let (s, _, p) = strat("r(X) :- b(X). p(X) :- q(X), not r(X).").unwrap();
        let by = s.clauses_by_stratum(&p);
        assert_eq!(by.len(), 2);
        assert_eq!(by[0], vec![0]);
        assert_eq!(by[1], vec![1]);
    }

    #[test]
    fn mutual_negative_cycle_reported() {
        let err = strat("p(X) :- a(X), not q(X). q(X) :- a(X), not p(X).").unwrap_err();
        match err {
            CoreError::Stratification { cycle } => {
                assert!(cycle.len() >= 2);
                assert_eq!(cycle.first(), cycle.last());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn cycle_edges_carry_clause_anchors_and_chain() {
        let i = Interner::new();
        let p = parse_program("p(X) :- a(X), not q(X). q(X) :- a(X), not p(X).", &i).unwrap();
        let cycle = stratify_check(&p).unwrap_err();
        assert!(!cycle.is_empty());
        assert!(cycle[0].strict, "cycle starts with the strict edge");
        for pair in cycle.windows(2) {
            assert_eq!(pair[0].to, pair[1].from, "edges chain head-to-tail");
        }
        assert_eq!(cycle.last().unwrap().to, cycle[0].from, "cycle closes");
        // Anchors point at the clause/literal inducing each edge.
        let qp = cycle.iter().find(|e| i.resolve(e.from) == "q").unwrap();
        assert_eq!((qp.clause, qp.literal), (0, 1));
        let names = cycle_names(&cycle, &i);
        assert_eq!(names.first(), names.last());
    }
}
