//! Evaluation options: the single knob surface shared by evaluation
//! ([`crate::eval::evaluate_with_options`]), enumeration
//! ([`crate::enumerate::enumerate_with_options`]), and the session API
//! ([`crate::query::Session`]).
//!
//! Determinism contract: neither the thread count nor profiling changes
//! what is computed. Round work lists are built in a fixed (plan, step,
//! shard) order, every worker derives into a local sink, and sinks are
//! merged at the round barrier in work-item order — so answer relations,
//! [`crate::EvalStats`], and [`crate::Profile`] (wall time excepted) are
//! identical for any `threads` value.

use std::num::NonZeroUsize;
use std::time::Duration;

use idlog_storage::BackendKind;

use crate::enumerate::EnumBudget;
use crate::eval::Strategy;
use crate::govern::Limits;

/// Environment variable consulted when [`EvalOptions::threads`] is `0`
/// (auto). CI uses it to run the whole test suite under a fixed thread
/// count.
pub const THREADS_ENV_VAR: &str = "IDLOG_THREADS";

/// Builder-style options for one evaluation or enumeration.
///
/// ```
/// use idlog_core::{EvalOptions, Strategy};
///
/// let opts = EvalOptions::new()
///     .strategy(Strategy::SemiNaive)
///     .threads(4)
///     .profile(true);
/// assert_eq!(opts.effective_threads(), 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvalOptions {
    /// Fixpoint strategy per stratum.
    pub strategy: Strategy,
    /// Worker threads for fixpoint rounds and enumeration fan-out.
    ///
    /// `0` means *auto*: the `IDLOG_THREADS` environment variable when set
    /// to a positive integer, otherwise
    /// [`std::thread::available_parallelism`].
    pub threads: usize,
    /// Collect a per-rule [`crate::Profile`] alongside the statistics.
    /// Near-zero cost when off; deterministic (wall time excepted) when on.
    pub profile: bool,
    /// Bounds for all-answers enumeration (ignored by single-model
    /// evaluation).
    pub budget: EnumBudget,
    /// Skip ID-function enumeration when the taint analysis certifies the
    /// query deterministic ([`crate::Query::certified_deterministic`]): one
    /// canonical evaluation then yields the complete answer set. On by
    /// default; turn off to force the full enumeration (benchmark
    /// baselines, soundness tests).
    pub det_fastpath: bool,
    /// Resource ceilings enforced by the [`crate::Governor`] (deadline,
    /// rounds, tuples, bytes). Unlimited by default.
    pub limits: Limits,
    /// Storage backend for the relations the evaluation materializes
    /// (IDB relations, ID-relations, and the working copies of the EDB).
    /// Results and statistics are identical across backends; wall time and
    /// memory layout are not.
    pub backend: BackendKind,
}

impl EvalOptions {
    /// Default options: semi-naive, auto threads, profiling off, default
    /// enumeration budget.
    pub fn new() -> Self {
        EvalOptions {
            strategy: Strategy::SemiNaive,
            threads: 0,
            profile: false,
            budget: EnumBudget::default(),
            det_fastpath: true,
            limits: Limits::none(),
            backend: BackendKind::Hash,
        }
    }

    /// Single-threaded evaluation (exactly the pre-parallel behavior).
    pub fn serial() -> Self {
        EvalOptions::new().threads(1)
    }

    /// Set the fixpoint [`Strategy`].
    pub fn strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Set the worker-thread count (`0` = auto).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Toggle per-rule profiling.
    pub fn profile(mut self, profile: bool) -> Self {
        self.profile = profile;
        self
    }

    /// Set the enumeration budget.
    pub fn budget(mut self, budget: EnumBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Toggle the certified-deterministic enumeration fast path.
    pub fn det_fastpath(mut self, det_fastpath: bool) -> Self {
        self.det_fastpath = det_fastpath;
        self
    }

    /// Set the storage [`BackendKind`] for materialized relations.
    pub fn backend(mut self, backend: BackendKind) -> Self {
        self.backend = backend;
        self
    }

    /// Replace every resource ceiling at once.
    pub fn limits(mut self, limits: Limits) -> Self {
        self.limits = limits;
        self
    }

    /// Set a wall-clock budget for the evaluation.
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.limits.deadline = Some(deadline);
        self
    }

    /// Cap the number of semi-naive fixpoint rounds (cumulative across
    /// strata).
    pub fn max_rounds(mut self, max_rounds: u64) -> Self {
        self.limits.max_rounds = Some(max_rounds);
        self
    }

    /// Cap the number of newly derived tuples.
    pub fn max_tuples(mut self, max_tuples: u64) -> Self {
        self.limits.max_tuples = Some(max_tuples);
        self
    }

    /// Cap the estimated bytes of stored tuples.
    pub fn max_bytes(mut self, max_bytes: u64) -> Self {
        self.limits.max_bytes = Some(max_bytes);
        self
    }

    /// Resolve the configured thread count to a concrete positive number.
    pub fn effective_threads(&self) -> usize {
        resolve_threads(self.threads)
    }
}

impl Default for EvalOptions {
    fn default() -> Self {
        EvalOptions::new()
    }
}

fn resolve_threads(threads: usize) -> usize {
    if threads > 0 {
        return threads;
    }
    if let Ok(raw) = std::env::var(THREADS_ENV_VAR) {
        if let Ok(n) = raw.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, NonZeroUsize::get)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_threads_win() {
        assert_eq!(EvalOptions::serial().effective_threads(), 1);
        assert_eq!(EvalOptions::new().threads(6).effective_threads(), 6);
    }

    #[test]
    fn auto_is_positive() {
        // Whatever the host/env says, the resolved count is usable.
        assert!(EvalOptions::default().effective_threads() >= 1);
    }

    #[test]
    fn builder_sets_every_field() {
        let opts = EvalOptions::new()
            .strategy(Strategy::Naive)
            .threads(3)
            .profile(true)
            .budget(EnumBudget {
                max_models: 7,
                max_answers: 5,
            })
            .det_fastpath(false)
            .backend(BackendKind::Columnar)
            .deadline(Duration::from_millis(250))
            .max_rounds(9)
            .max_tuples(1_000)
            .max_bytes(1 << 20);
        assert_eq!(opts.strategy, Strategy::Naive);
        assert_eq!(opts.threads, 3);
        assert!(opts.profile);
        assert_eq!(opts.budget.max_models, 7);
        assert_eq!(opts.budget.max_answers, 5);
        assert!(!opts.det_fastpath);
        assert_eq!(opts.backend, BackendKind::Columnar);
        assert_eq!(EvalOptions::new().backend, BackendKind::Hash);
        assert_eq!(opts.limits.deadline, Some(Duration::from_millis(250)));
        assert_eq!(opts.limits.max_rounds, Some(9));
        assert_eq!(opts.limits.max_tuples, Some(1_000));
        assert_eq!(opts.limits.max_bytes, Some(1 << 20));
        assert!(EvalOptions::new().det_fastpath);
        assert!(EvalOptions::new().limits.is_unlimited());
    }

    #[test]
    fn limits_builder_replaces_all_ceilings() {
        let limits = Limits {
            max_rounds: Some(4),
            ..Limits::none()
        };
        let opts = EvalOptions::new().max_tuples(5).limits(limits);
        assert_eq!(opts.limits, limits);
    }
}
