//! Evaluation configuration: the worker-thread budget shared by round
//! execution ([`crate::engine`]) and answer enumeration
//! ([`crate::enumerate`]).
//!
//! Determinism contract: the thread count never changes what is computed.
//! Round work lists are built in a fixed (plan, step, shard) order, every
//! worker derives into a local sink, and sinks are merged at the round
//! barrier in work-item order — so answer relations *and*
//! [`crate::EvalStats`] are identical for any `threads` value.

use std::num::NonZeroUsize;

/// Environment variable consulted when [`EvalConfig::threads`] is `0`
/// (auto). CI uses it to run the whole test suite under a fixed thread
/// count.
pub const THREADS_ENV_VAR: &str = "IDLOG_THREADS";

/// Knobs for one evaluation or enumeration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvalConfig {
    /// Worker threads for fixpoint rounds and enumeration fan-out.
    ///
    /// `0` means *auto*: the `IDLOG_THREADS` environment variable when set
    /// to a positive integer, otherwise
    /// [`std::thread::available_parallelism`].
    pub threads: usize,
}

impl EvalConfig {
    /// Single-threaded evaluation (exactly the pre-parallel behavior).
    pub const fn serial() -> Self {
        EvalConfig { threads: 1 }
    }

    /// A fixed thread count (`0` = auto).
    pub const fn with_threads(threads: usize) -> Self {
        EvalConfig { threads }
    }

    /// Resolve the configured thread count to a concrete positive number.
    pub fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            return self.threads;
        }
        if let Ok(raw) = std::env::var(THREADS_ENV_VAR) {
            if let Ok(n) = raw.trim().parse::<usize>() {
                if n > 0 {
                    return n;
                }
            }
        }
        std::thread::available_parallelism().map_or(1, NonZeroUsize::get)
    }
}

impl Default for EvalConfig {
    /// Auto thread count (env var, then hardware).
    fn default() -> Self {
        EvalConfig { threads: 0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_threads_win() {
        assert_eq!(EvalConfig::serial().effective_threads(), 1);
        assert_eq!(EvalConfig::with_threads(6).effective_threads(), 6);
    }

    #[test]
    fn auto_is_positive() {
        // Whatever the host/env says, the resolved count is usable.
        assert!(EvalConfig::default().effective_threads() >= 1);
    }
}
